// End-to-end tests for the serve daemon (net::Server + net::Client over
// real loopback sockets): responses bit-identical to direct library runs,
// the error taxonomy on the wire, admission control under a pipelined
// burst, per-tenant fairness under a flooding tenant, graceful-drain
// accounting (accepted == completed), the Prometheus scrape escape hatch,
// and a connection-churn stress sized by HDLTS_SERVE_STRESS_CONNS for the
// CI ThreadSanitizer leg.
#include "hdlts/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/io/workload_io.hpp"
#include "hdlts/net/client.hpp"
#include "hdlts/net/protocol.hpp"
#include "hdlts/sched/registry.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/json_parse.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

using net::Client;
using net::Server;
using net::ServerOptions;

const sched::Registry& shared_registry() {
  static const sched::Registry registry = core::default_registry();
  return registry;
}

/// The generator dialect used throughout: the server materialises the same
/// net::GeneratorSpec on an engine worker, so a direct make_workload with
/// the same spec/seed is the oracle.
std::string generator_json(std::size_t tasks, std::size_t cpus) {
  return "\"generator\":{\"kind\":\"random\",\"tasks\":" +
         std::to_string(tasks) + ",\"cpus\":" + std::to_string(cpus) + "}";
}

net::GeneratorSpec generator_spec(std::size_t tasks, std::size_t cpus) {
  net::GeneratorSpec spec;
  spec.tasks = tasks;
  spec.cpus = cpus;
  return spec;
}

TEST(ServeTest, PingStatsAndMalformed) {
  Server server(shared_registry());
  server.start();
  Client client(server.port());

  EXPECT_EQ(client.request("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");

  const std::string stats = client.request("{\"op\":\"stats\"}");
  const util::JsonValue v = util::parse_json(stats);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("accepted")->as_number(), 0.0);
  EXPECT_EQ(v.find("active_sessions")->as_number(), 1.0);

  // Error taxonomy on the wire: malformed JSON and schema violations are
  // code 1, with id/tenant salvaged when readable.
  const std::string bad = client.request("this is not json");
  EXPECT_EQ(util::parse_json(bad).find("code")->as_number(), 1.0);
  const std::string unknown_op =
      client.request("{\"op\":\"nope\",\"id\":3,\"tenant\":\"t\"}");
  const util::JsonValue u = util::parse_json(unknown_op);
  EXPECT_EQ(u.find("code")->as_number(), 1.0);
  EXPECT_EQ(u.find("error")->as_string(), "MalformedRequest");
  EXPECT_EQ(u.find("id")->as_number(), 3.0);
  EXPECT_EQ(u.find("tenant")->as_string(), "t");

  // Over-limits is code 2.
  ServerOptions small;
  small.limits.max_schedulers = 1;
  Server limited(shared_registry(), small);
  limited.start();
  Client c2(limited.port());
  const std::string over = c2.request(
      "{\"op\":\"submit\"," + generator_json(10, 3) +
      ",\"schedulers\":[\"heft\",\"cpop\"]}");
  EXPECT_EQ(util::parse_json(over).find("code")->as_number(), 2.0);

  server.drain();
  limited.drain();
}

TEST(ServeTest, StaticSubmitBitIdenticalToDirectRun) {
  Server server(shared_registry());
  server.start();
  Client client(server.port());

  const std::uint64_t seed = 42;
  const std::string reply = client.request(
      "{\"op\":\"submit\",\"id\":1,\"seed\":" + std::to_string(seed) + "," +
      generator_json(30, 4) + ",\"schedulers\":[\"hdlts\",\"heft\"]}");

  // Oracle: the identical generator run + schedule, rendered through the
  // same protocol functions — the full results array must match byte for
  // byte (docs/SERVICE.md's bit-identity promise).
  const sim::Workload workload =
      net::make_workload(generator_spec(30, 4), seed);
  const sim::Problem problem(workload);
  std::vector<std::string> entries;
  for (const char* name : {"hdlts", "heft"}) {
    const double makespan =
        shared_registry().make(name)->schedule(problem).makespan();
    entries.push_back(net::render_static_entry(name, true, makespan, ""));
  }
  std::string expect = "\"results\":[" + entries[0] + "," + entries[1] + "]";
  EXPECT_NE(reply.find(expect), std::string::npos) << reply;
  EXPECT_EQ(reply.rfind("{\"ok\":true,\"id\":1,", 0), 0u) << reply;

  // An unknown scheduler fails its entry, not the whole request.
  const std::string partial = client.request(
      "{\"op\":\"submit\",\"seed\":1," + generator_json(10, 3) +
      ",\"schedulers\":[\"heft\",\"mystery\"]}");
  const util::JsonValue v = util::parse_json(partial);
  EXPECT_TRUE(v.find("ok")->as_bool());
  const auto& results = v.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].find("ok")->as_bool());
  EXPECT_FALSE(results[1].find("ok")->as_bool());

  server.drain();
}

TEST(ServeTest, InlineWorkloadMatchesGeneratorPath) {
  // The same workload submitted inline (io text format) and by generator
  // spec must produce identical makespans — the server defers both to the
  // engine worker through the same WorkloadFn seam.
  Server server(shared_registry());
  server.start();
  Client client(server.port());

  const std::uint64_t seed = 7;
  const sim::Workload workload =
      net::make_workload(generator_spec(20, 3), seed);
  std::ostringstream text;
  io::write_workload(text, workload);

  const std::string by_generator = client.request(
      "{\"op\":\"submit\",\"seed\":" + std::to_string(seed) + "," +
      generator_json(20, 3) + ",\"schedulers\":[\"heft\"]}");
  const std::string inline_reply = client.request(
      "{\"op\":\"submit\",\"seed\":" + std::to_string(seed) +
      ",\"workload\":\"" + util::json_escape(text.str()) +
      "\",\"schedulers\":[\"heft\"]}");
  EXPECT_EQ(
      util::parse_json(by_generator).find("results")->as_array()[0]
          .find("makespan")->as_number(),
      util::parse_json(inline_reply).find("results")->as_array()[0]
          .find("makespan")->as_number());

  server.drain();
}

TEST(ServeTest, OnlineSubmitBitIdenticalToRunOnline) {
  Server server(shared_registry());
  server.start();
  Client client(server.port());

  const std::uint64_t seed = 11;
  const sim::Workload workload =
      net::make_workload(generator_spec(25, 4), seed);
  const double clean = core::Hdlts().schedule(sim::Problem(workload)).makespan();
  const std::vector<core::ProcFailure> failures{{0, clean * 0.5}};
  const core::OnlineResult expected = core::run_online(workload, failures);

  const std::string reply = client.request(
      "{\"op\":\"submit\",\"kind\":\"online\",\"seed\":" +
      std::to_string(seed) + "," + generator_json(25, 4) +
      ",\"failures\":[{\"proc\":0,\"time\":" +
      util::json_number(failures[0].time) + "}]}");
  const std::string expect =
      "\"completed\":" + std::string(expected.completed ? "true" : "false") +
      ",\"makespan\":" + util::json_number(expected.makespan) +
      ",\"executions\":" + std::to_string(expected.executions.size()) +
      ",\"lost_executions\":" + std::to_string(expected.lost_executions);
  EXPECT_NE(reply.find(expect), std::string::npos) << reply;

  server.drain();
}

TEST(ServeTest, StreamSubmitBitIdenticalToRunStream) {
  Server server(shared_registry());
  server.start();
  Client client(server.port());

  const std::uint64_t seed = 5;
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({net::make_workload(generator_spec(15, 3), seed), 0.0});
  arrivals.push_back(
      {net::make_workload(generator_spec(15, 3), seed + 1), 25.0});
  const core::StreamResult expected = core::run_stream(arrivals);

  const std::string reply = client.request(
      "{\"op\":\"submit\",\"kind\":\"stream\",\"seed\":" +
      std::to_string(seed) + ",\"arrivals\":[{" + generator_json(15, 3) +
      "},{" + generator_json(15, 3) + ",\"seed\":" + std::to_string(seed + 1) +
      ",\"arrival\":25}]}");
  // The full rendered response (minus id/tenant context) is the oracle.
  const std::string expect_suffix =
      net::render_stream_response(std::nullopt, "", seed, expected);
  // Our reply carries tenant "default"; compare from "kind" onwards.
  const std::size_t cut = expect_suffix.find("\"kind\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_NE(reply.find(expect_suffix.substr(
                cut, expect_suffix.size() - cut - 2)),  // strip "}\n"
            std::string::npos)
      << reply;

  server.drain();
}

TEST(ServeTest, QueueFullUnderPipelinedBurst) {
  // One engine worker, a one-slot ring, and a one-slot tenant queue: a
  // pipelined burst of slow requests must trip admission control with
  // QueueFull while the earlier requests still complete.
  ServerOptions options;
  options.engine_threads = 1;
  options.engine_queue_capacity = 1;
  options.fair.per_tenant_capacity = 1;
  Server server(shared_registry(), options);
  server.start();
  Client client(server.port());

  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    client.send_line("{\"op\":\"submit\",\"id\":" + std::to_string(i) + "," +
                     generator_json(1500, 8) + ",\"schedulers\":[\"heft\"]}");
  }
  int ok = 0;
  int queue_full = 0;
  for (int i = 0; i < kBurst; ++i) {
    const util::JsonValue v = util::parse_json(client.recv_line());
    if (v.find("ok")->as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(v.find("code")->as_number(), 3.0);
      EXPECT_EQ(v.find("error")->as_string(), "QueueFull");
      ++queue_full;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(queue_full, 0);
  EXPECT_EQ(ok + queue_full, kBurst);

  server.drain();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(queue_full));
}

TEST(ServeTest, FloodingTenantCannotStarveLightTenant) {
  // Tenant "flood" pipelines a deep backlog on one connection; tenant
  // "light" then submits a single request. DRR admission means light's
  // request is dispatched within one round — its response must arrive well
  // before the flood's backlog finishes (checked via the stats verb, which
  // the event loop answers immediately).
  ServerOptions options;
  options.engine_threads = 1;
  options.fair.per_tenant_capacity = 64;
  Server server(shared_registry(), options);
  server.start();

  Client flood(server.port());
  constexpr int kFlood = 40;
  for (int i = 0; i < kFlood; ++i) {
    flood.send_line("{\"op\":\"submit\",\"tenant\":\"flood\",\"id\":" +
                    std::to_string(i) + "," + generator_json(400, 6) +
                    ",\"schedulers\":[\"heft\"]}");
  }
  Client light(server.port());
  const std::string reply = light.request(
      "{\"op\":\"submit\",\"tenant\":\"light\",\"id\":999," +
      generator_json(10, 3) + ",\"schedulers\":[\"heft\"]}");
  EXPECT_TRUE(util::parse_json(reply).find("ok")->as_bool()) << reply;

  // At the moment light's reply arrived, the flood backlog must not have
  // fully completed — light was not served last.
  const util::JsonValue stats =
      util::parse_json(light.request("{\"op\":\"stats\"}"));
  EXPECT_LT(stats.find("completed")->as_number(), kFlood + 1.0);

  for (int i = 0; i < kFlood; ++i) {
    EXPECT_TRUE(util::parse_json(flood.recv_line()).find("ok")->as_bool());
  }
  server.drain();
  EXPECT_EQ(server.stats().completed, static_cast<std::uint64_t>(kFlood + 1));
}

/// First sample value of a metric in a Prometheus exposition body; -1 when
/// absent. (Totals are deltas in these tests: the registry is process-global
/// and other tests in this binary bump the same counters.)
double metric_value(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stod(line.substr(name.size() + 1));
    }
  }
  return -1.0;
}

TEST(ServeTest, MetricsScrape) {
  Server server(shared_registry());
  server.start();
  const std::string before = Client::scrape_metrics(server.port());

  Client client(server.port());
  client.request("{\"op\":\"submit\",\"seed\":1," + generator_json(10, 3) +
                 ",\"schedulers\":[\"heft\"]}");
  client.request("not json");

  const std::string body = Client::scrape_metrics(server.port());
  EXPECT_EQ(metric_value(body, "svc_serve_accepted_total") -
                metric_value(before, "svc_serve_accepted_total"),
            1.0);
  EXPECT_EQ(metric_value(body, "svc_serve_completed_total") -
                metric_value(before, "svc_serve_completed_total"),
            1.0);
  EXPECT_EQ(metric_value(body, "svc_serve_rejected_total") -
                metric_value(before, "svc_serve_rejected_total"),
            1.0);
  EXPECT_NE(body.find("# TYPE svc_serve_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(body.find("svc_serve_tenant_queue_depth_default"),
            std::string::npos);

  server.drain();
}

TEST(ServeTest, DrainVerbAndInvariants) {
  Server server(shared_registry());
  server.start();
  Client client(server.port());
  for (int i = 0; i < 4; ++i) {
    client.send_line("{\"op\":\"submit\",\"id\":" + std::to_string(i) +
                     ",\"seed\":" + std::to_string(i) + "," +
                     generator_json(20, 3) + ",\"schedulers\":[\"heft\"]}");
  }
  client.send_line("{\"op\":\"drain\"}");
  // Every admitted submit still gets its response, then the drain ack
  // (responses flush in order on one session).
  int submit_replies = 0;
  bool drain_ack = false;
  for (int i = 0; i < 5; ++i) {
    const util::JsonValue v = util::parse_json(client.recv_line());
    if (v.find("op") != nullptr && v.find("op")->as_string() == "drain") {
      drain_ack = true;
    } else if (v.find("ok")->as_bool()) {
      ++submit_replies;
    }
  }
  EXPECT_TRUE(drain_ack);
  EXPECT_EQ(submit_replies, 4);
  server.wait();

  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.queued, 0u);
  const svc::BatchEngineStats engine = server.engine_stats();
  EXPECT_EQ(engine.submitted, engine.completed + engine.cancelled);

  // Draining servers refuse new connections; submits on live sessions get
  // QueueFull("server is draining") — covered by the churn test's tail.
}

TEST(ServeTest, OrphanedSessionStillCountsCompleted) {
  // A client that disconnects before reading its response must not break
  // the accepted == completed invariant; the response is counted orphaned.
  Server server(shared_registry());
  server.start();
  {
    Client client(server.port());
    client.send_line("{\"op\":\"submit\",\"seed\":3," + generator_json(200, 4) +
                     ",\"schedulers\":[\"heft\"]}");
    client.close();  // gone before the result lands
  }
  // Wait until the event loop has admitted the request (an immediate drain
  // could close the listener before the backlogged connection is accepted);
  // the EOF is processed in the same read pass, so the session is already
  // gone when the engine's result arrives.
  for (int i = 0; i < 5000 && server.stats().accepted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.drain();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.orphaned, 1u);
}

TEST(ServeStress, ConnectionChurn) {
  // Sized by HDLTS_SERVE_STRESS_CONNS (the CI TSan leg scales it up): many
  // short-lived concurrent connections, a mix of clean request/response
  // cycles and rude disconnects, racing the event loop, dispatcher, and
  // engine workers. The drain invariants must survive all of it.
  const auto conns = static_cast<int>(
      util::env_int("HDLTS_SERVE_STRESS_CONNS", 24));
  ServerOptions options;
  options.engine_threads = 2;
  Server server(shared_registry(), options);
  server.start();

  constexpr int kThreads = 4;
  std::atomic<int> next{0};
  std::atomic<int> clean_replies{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= conns) return;
        try {
          Client client(server.port());
          client.send_line("{\"op\":\"submit\",\"id\":" + std::to_string(i) +
                           ",\"tenant\":\"t" + std::to_string(i % 3) +
                           "\",\"seed\":" + std::to_string(i) + "," +
                           generator_json(15 + (i % 3) * 10, 3) +
                           ",\"schedulers\":[\"heft\"]}");
          if (i % 4 == 0) continue;  // rude disconnect: orphan the result
          const util::JsonValue v = util::parse_json(client.recv_line());
          if (v.find("ok")->as_bool()) {
            clean_replies.fetch_add(1);
          }
        } catch (const Error&) {
          // Accept loss mid-churn (e.g. max_sessions); invariants are
          // checked after the drain.
        }
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  server.drain();

  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed);
  EXPECT_GE(stats.completed,
            static_cast<std::uint64_t>(clean_replies.load()));
  EXPECT_EQ(stats.queued, 0u);
  const svc::BatchEngineStats engine = server.engine_stats();
  EXPECT_EQ(engine.submitted, engine.completed + engine.cancelled);
  EXPECT_EQ(engine.submitted, stats.accepted);
}

}  // namespace
}  // namespace hdlts
