// PEFT regression and behaviour tests.
#include <gtest/gtest.h>

#include "hdlts/sched/heft.hpp"
#include "hdlts/sched/peft.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/montage.hpp"

namespace hdlts::sched {
namespace {

TEST(Peft, ClassicGraphMakespanRegression) {
  // Our PEFT (Arabnejad & Barbosa 2014) yields 85 on the classic graph; the
  // HDLTS paper reports 86 (see EXPERIMENTS.md for the discrepancy note).
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Peft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 85.0);
}

TEST(Peft, LookaheadCanDifferFromHeftChoice) {
  // PEFT's whole point is that processor selection includes the optimistic
  // remaining cost; on the classic graph it must not produce the identical
  // schedule to HEFT (different makespans suffice as evidence).
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  EXPECT_NE(Peft().schedule(p).makespan(), Heft().schedule(p).makespan());
}

TEST(Peft, ValidOnMontageWorkflow) {
  workload::MontageParams params;
  params.num_nodes = 50;
  params.costs.num_procs = 5;
  const sim::Workload w = workload::montage_workload(params, 5);
  const sim::Problem p(w);
  const sim::Schedule s = Peft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Peft, SingleProcessorDegeneratesGracefully) {
  workload::MontageParams params;
  params.num_nodes = 20;
  params.costs.num_procs = 1;
  const sim::Workload w = workload::montage_workload(params, 6);
  const sim::Problem p(w);
  const sim::Schedule s = Peft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Peft, Name) { EXPECT_EQ(Peft().name(), "peft"); }

}  // namespace
}  // namespace hdlts::sched
