// RuntimeMonitor unit tests: a fake clock and an injected registry drive
// sample_once() deterministically (no background thread, no sleeps), so
// window rates, percentile extraction, RSS-growth anchoring, and the SLO
// verdict logic are all asserted exactly. The background thread itself is
// exercised once with a real clock (and again under the TSan CI job).
// Prometheus text exposition is format-checked against golden output.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/monitor.hpp"
#include "hdlts/obs/prometheus.hpp"
#include "hdlts/util/config.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::obs {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

/// Fixture state shared by the fake-clock tests: an isolated registry, a
/// controllable clock, and a controllable process sampler.
struct FakeEnv {
  MetricRegistry registry;
  std::int64_t now_ns = 0;
  ProcessStats stats;
  std::ostringstream timeline;

  FakeEnv() {
    stats.valid = true;
    stats.rss_mb = 100.0;
    stats.threads = 3;
  }

  MonitorOptions options() {
    MonitorOptions o;
    o.registry = &registry;
    o.timeline = &timeline;
    o.clock_ns = [this] { return now_ns; };
    o.process_stats = [this] { return stats; };
    return o;
  }
};

TEST(Monitor, WindowRatesFromFakeClock) {
  FakeEnv env;
  Counter& done = env.registry.counter("t.done");
  RuntimeMonitor monitor(env.options());
  monitor.baseline();

  done.add(100);
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_NE(env.timeline.str().find("\"t.done\":100"), std::string::npos);

  done.add(50);  // 50 more over a 2 s window -> 25/s
  env.now_ns += 2 * kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.samples(), 2u);
  EXPECT_NE(env.timeline.str().find("\"t.done\":25"), std::string::npos);
}

TEST(Monitor, WindowPercentilesResetEachSample) {
  FakeEnv env;
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram& lat = env.registry.histogram("t.lat", bounds);
  RuntimeMonitor monitor(env.options());
  monitor.baseline();

  for (int i = 0; i < 4; ++i) lat.observe(7.0);
  env.now_ns += kSecond;
  monitor.sample_once();
  // Point mass at 7 -> exact percentiles in the first window.
  EXPECT_NE(env.timeline.str().find("\"p99\":7"), std::string::npos);

  // Second window sees only 50s: windowed percentiles must forget the 7s
  // (a cumulative p50 over 4x7 + 4x50 would still sit in the first bucket).
  env.timeline.str("");
  for (int i = 0; i < 4; ++i) lat.observe(50.0);
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_NE(env.timeline.str().find("\"p50\":50"), std::string::npos);
  EXPECT_NE(env.timeline.str().find("\"windowed\":true"), std::string::npos);

  // A quiet window falls back to the cumulative distribution, flagged.
  env.timeline.str("");
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_NE(env.timeline.str().find("\"windowed\":false"), std::string::npos);
  EXPECT_NE(env.timeline.str().find("\"window_count\":0"), std::string::npos);
}

TEST(Monitor, WholeRunVerdictPassesGenerousGates) {
  FakeEnv env;
  Counter& done = env.registry.counter("t.done");
  MonitorOptions options = env.options();
  options.gates.push_back(
      {SloKind::kMinCounterRate, "t.done", 10.0, "min_rate"});
  options.gates.push_back(
      {SloKind::kMaxCounterTotal, "t.done", 1000.0, "max_total"});
  RuntimeMonitor monitor(std::move(options));
  monitor.baseline();
  done.add(150);
  env.now_ns += 3 * kSecond;
  monitor.sample_once();

  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.verdict, Verdict::kPass);
  ASSERT_EQ(report.gates.size(), 2u);
  EXPECT_DOUBLE_EQ(report.gates[0].observed, 50.0);  // 150 over 3 s
  EXPECT_DOUBLE_EQ(report.gates[1].observed, 150.0);
  EXPECT_DOUBLE_EQ(report.elapsed_s, 3.0);
}

TEST(Monitor, ImpossiblyTightGateFails) {
  FakeEnv env;
  Counter& done = env.registry.counter("t.done");
  MonitorOptions options = env.options();
  options.gates.push_back(
      {SloKind::kMinCounterRate, "t.done", 1e9, "min_rate"});
  RuntimeMonitor monitor(std::move(options));
  monitor.baseline();
  done.add(1000);
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.report().verdict, Verdict::kFail);
}

TEST(Monitor, WithinWarnMarginIsWarnNotFail) {
  FakeEnv env;
  Counter& done = env.registry.counter("t.done");
  MonitorOptions options = env.options();
  // Floor 100, margin 10%: observed 105 passes the floor but sits inside
  // the warning band (< 110).
  options.gates.push_back(
      {SloKind::kMinCounterRate, "t.done", 100.0, "min_rate"});
  RuntimeMonitor monitor(std::move(options));
  monitor.baseline();
  done.add(105);
  env.now_ns += kSecond;
  monitor.sample_once();
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.verdict, Verdict::kWarn);
  EXPECT_EQ(report.gates[0].verdict, Verdict::kWarn);
}

TEST(Monitor, ZeroViolationGateTripsOnFirstViolation) {
  FakeEnv env;
  Counter& violations = env.registry.counter("t.violations");
  MonitorOptions options = env.options();
  options.gates.push_back(
      {SloKind::kMaxCounterTotal, "t.violations", 0.0, "max_violations"});
  RuntimeMonitor monitor(std::move(options));
  monitor.baseline();
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.report().verdict, Verdict::kPass);
  violations.add(1);
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.report().verdict, Verdict::kFail);
}

TEST(Monitor, RssGrowthAnchorsAtConfiguredSample) {
  FakeEnv env;
  MonitorOptions options = env.options();
  options.rss_baseline_sample = 1;  // skip warm-up growth
  options.gates.push_back(
      {SloKind::kMaxRssGrowth, "", 1.5, "max_rss_growth"});
  RuntimeMonitor monitor(std::move(options));
  env.stats.rss_mb = 100.0;
  monitor.baseline();

  env.stats.rss_mb = 200.0;  // warm-up doubling; becomes the anchor
  env.now_ns += kSecond;
  monitor.sample_once();

  env.stats.rss_mb = 250.0;  // 1.25x the anchor: inside the ceiling
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.report().verdict, Verdict::kPass);

  env.stats.rss_mb = 400.0;  // 2x the anchor: leak-like growth
  env.now_ns += kSecond;
  monitor.sample_once();
  EXPECT_EQ(monitor.report().verdict, Verdict::kFail);
}

TEST(Monitor, GateOverUnknownMetricFails) {
  // A typo'd metric name must not silently disable the SLO.
  FakeEnv env;
  MonitorOptions options = env.options();
  options.gates.push_back(
      {SloKind::kMinCounterRate, "t.doesnotexist", 1.0, "min_rate"});
  RuntimeMonitor monitor(std::move(options));
  monitor.baseline();
  env.now_ns += kSecond;
  monitor.sample_once();
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.verdict, Verdict::kFail);
  EXPECT_NE(report.gates[0].detail.find("never observed"),
            std::string::npos);
}

TEST(Monitor, TimelineIsOneJsonObjectPerLine) {
  FakeEnv env;
  env.registry.counter("t.done").add(1);
  env.registry.gauge("t.gauge").set(2.5);
  RuntimeMonitor monitor(env.options());
  monitor.baseline();
  for (int i = 0; i < 3; ++i) {
    env.now_ns += kSecond;
    monitor.sample_once();
  }
  std::istringstream lines(env.timeline.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"rss_mb\":100"), std::string::npos);
    EXPECT_NE(line.find("\"threads\":3"), std::string::npos);
    EXPECT_NE(line.find("\"t.gauge\":2.5"), std::string::npos);
  }
  EXPECT_EQ(count, 3u);
}

TEST(Monitor, SampleBeforeBaselineThrows) {
  FakeEnv env;
  RuntimeMonitor monitor(env.options());
  EXPECT_THROW(monitor.sample_once(), InvalidArgument);
}

TEST(Monitor, BackgroundThreadProducesSamples) {
  // Real clock, fast period: start() must sample on its own and finish()
  // must stop the thread, take a final sample, and report.
  MetricRegistry registry;
  registry.counter("t.bg").add(1);
  std::ostringstream timeline;
  MonitorOptions options;
  options.registry = &registry;
  options.timeline = &timeline;
  options.period = std::chrono::milliseconds(5);
  RuntimeMonitor monitor(std::move(options));
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const MonitorReport report = monitor.finish();
  EXPECT_GE(report.samples, 3u);
  EXPECT_EQ(report.verdict, Verdict::kPass);  // no gates
  EXPECT_GE(timeline.str().size(), report.samples);  // one line each
}

TEST(Monitor, DoubleStartThrows) {
  MetricRegistry registry;
  MonitorOptions options;
  options.registry = &registry;
  options.period = std::chrono::hours(1);
  RuntimeMonitor monitor(std::move(options));
  monitor.start();
  EXPECT_THROW(monitor.start(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("svc.batch.latency_ms.hdlts-online"),
            "svc_batch_latency_ms_hdlts_online");
  EXPECT_EQ(prometheus_name("already_valid:name"), "already_valid:name");
  EXPECT_EQ(prometheus_name("9starts.with.digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(Prometheus, RendersCounterGaugeHistogramTriplet) {
  MetricRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(2.5);
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram& h = reg.histogram("c.hist", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  std::ostringstream os;
  prometheus_render(reg, os);
  const std::string want =
      "# HELP a_count_total hdlts counter a.count\n"
      "# TYPE a_count_total counter\n"
      "a_count_total 3\n"
      "# HELP b_gauge hdlts gauge b.gauge\n"
      "# TYPE b_gauge gauge\n"
      "b_gauge 2.5\n"
      "# HELP c_hist hdlts histogram c.hist\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"1\"} 1\n"
      "c_hist_bucket{le=\"10\"} 2\n"
      "c_hist_bucket{le=\"+Inf\"} 3\n"
      "c_hist_sum 105.5\n"
      "c_hist_count 3\n";
  EXPECT_EQ(os.str(), want);
}

TEST(Prometheus, NonFiniteValuesUseTheFormatLiterals) {
  MetricRegistry reg;
  reg.gauge("n.nan").set(std::nan(""));
  reg.gauge("n.inf").set(std::numeric_limits<double>::infinity());
  std::ostringstream os;
  prometheus_render(reg, os);
  EXPECT_NE(os.str().find("n_nan NaN\n"), std::string::npos);
  EXPECT_NE(os.str().find("n_inf +Inf\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// util::Config (the stress_tool scenario strings)

TEST(Config, ParsesTypedKeysAndTracksUse) {
  util::Config config(
      "duration=30, threads=4 ,rate=2.5,check=true,schedulers=heft+cpop");
  EXPECT_EQ(config.get_int("duration", 0), 30);
  EXPECT_EQ(config.get_int("threads", 0), 4);
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(config.get_bool("check", false));
  const std::vector<std::string> want = {"heft", "cpop"};
  EXPECT_EQ(config.get_list("schedulers", ""), want);
  EXPECT_TRUE(config.unused_keys().empty());
}

TEST(Config, FallbacksForAbsentKeys) {
  util::Config config("a=1");
  EXPECT_EQ(config.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(config.get_bool("missing", false));
  EXPECT_EQ(config.get_string("missing", "x"), "x");
  const std::vector<std::string> want = {"p", "q"};
  EXPECT_EQ(config.get_list("missing", "p+q"), want);
}

TEST(Config, UnusedKeysSurfaceTypos) {
  util::Config config("duration=30,duratoin=60");
  (void)config.get_int("duration", 0);
  const std::vector<std::string> unused = config.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "duratoin");
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(util::Config("noequals"), InvalidArgument);
  EXPECT_THROW(util::Config("=value"), InvalidArgument);
  EXPECT_THROW(util::Config("a=1,a=2"), InvalidArgument);
  util::Config config("n=30x,b=maybe");
  EXPECT_THROW(config.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(config.get_double("n", 0.0), InvalidArgument);
  EXPECT_THROW(config.get_bool("b", false), InvalidArgument);
}

TEST(Config, TrailingCommasAndEmptySegmentsAreIgnored) {
  util::Config config("a=1,,b=2,");
  EXPECT_EQ(config.size(), 2u);
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_int("b", 0), 2);
  util::Config empty("");
  EXPECT_EQ(empty.size(), 0u);
}

}  // namespace
}  // namespace hdlts::obs
