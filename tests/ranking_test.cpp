// Tests for the shared rank computations, anchored to the published rank
// tables of the HEFT paper (Topcuoglu et al. 2002) for the classic graph.
#include <gtest/gtest.h>

#include <cmath>

#include "hdlts/sched/ranking.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::sched {
namespace {

class RankingClassic : public ::testing::Test {
 protected:
  RankingClassic() : workload_(workload::classic_workload()),
                     problem_(workload_) {}
  sim::Workload workload_;
  sim::Problem problem_;
};

TEST_F(RankingClassic, UpwardRankMatchesHeftPaperTable) {
  const auto rank = upward_rank_mean(problem_);
  const double expected[10] = {108.0, 77.0,  80.0, 80.0, 69.0,
                               63.33, 42.67, 35.67, 44.33, 14.67};
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(rank[static_cast<graph::TaskId>(i)], expected[i], 0.01)
        << "task T" << (i + 1);
  }
}

TEST_F(RankingClassic, DownwardRankHandComputed) {
  const auto rank = downward_rank_mean(problem_);
  EXPECT_DOUBLE_EQ(rank[0], 0.0);
  EXPECT_NEAR(rank[1], 31.0, 0.01);   // 13 + 18
  EXPECT_NEAR(rank[2], 25.0, 0.01);   // 13 + 12
  EXPECT_NEAR(rank[3], 22.0, 0.01);   // 13 + 9
  EXPECT_NEAR(rank[4], 24.0, 0.01);   // 13 + 11
  EXPECT_NEAR(rank[5], 27.0, 0.01);   // 13 + 14
  EXPECT_NEAR(rank[8], 63.67, 0.01);  // via T2
}

TEST_F(RankingClassic, CpopPriorityIdentifiesCriticalPath) {
  const auto up = upward_rank_mean(problem_);
  const auto down = downward_rank_mean(problem_);
  // |CP| = priority of the entry = 108; T1-T2-T9-T10 all sit at 108.
  EXPECT_NEAR(up[0] + down[0], 108.0, 0.01);
  EXPECT_NEAR(up[1] + down[1], 108.0, 0.01);
  EXPECT_NEAR(up[8] + down[8], 108.0, 0.01);
  EXPECT_NEAR(up[9] + down[9], 108.0, 0.01);
  // An off-path task sits strictly below.
  EXPECT_LT(up[4] + down[4], 107.99);
}

TEST_F(RankingClassic, StddevRankDecreasesAlongPaths) {
  const auto rank = upward_rank_stddev(problem_);
  // Upward ranks strictly decrease from parent to child when weights and
  // comm are positive.
  const auto& g = problem_.graph();
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::Adjacent& c : g.children(v)) {
      EXPECT_GT(rank[v], rank[c.task]);
    }
  }
}

TEST_F(RankingClassic, OctExitRowIsZeroAndRanksPositive) {
  const auto oct = oct_table(problem_);
  const std::size_t np = problem_.procs().size();
  for (std::size_t p = 0; p < np; ++p) {
    EXPECT_DOUBLE_EQ(oct[9 * np + p], 0.0);  // T10 is the exit
  }
  const auto rank = oct_rank(problem_, oct);
  EXPECT_DOUBLE_EQ(rank[9], 0.0);
  for (int i = 0; i < 9; ++i) {
    EXPECT_GT(rank[static_cast<graph::TaskId>(i)], 0.0);
  }
  // The entry must carry the largest optimistic cost toward the exit.
  for (int i = 1; i < 10; ++i) {
    EXPECT_GE(rank[0], rank[static_cast<graph::TaskId>(i)]);
  }
}

TEST_F(RankingClassic, OctIsOptimisticLowerBoundOfUpwardRank) {
  // OCT charges each child its *cheapest* processor and at most mean comm,
  // so mean-OCT rank can never exceed HEFT's mean upward rank minus the
  // task's own mean cost... but it is always <= upward rank itself.
  const auto oct = oct_rank(problem_, oct_table(problem_));
  const auto up = upward_rank_mean(problem_);
  for (graph::TaskId v = 0; v < 10; ++v) {
    EXPECT_LE(oct[v], up[v] + 1e-9);
  }
}

TEST_F(RankingClassic, PetsAttributes) {
  const PetsRank r = pets_rank(problem_);
  // T1: ACC = 13, DTC = 18+12+9+11+14 = 64, RPT = 0 -> rank = 77.
  EXPECT_NEAR(r.acc[0], 13.0, 1e-9);
  EXPECT_NEAR(r.dtc[0], 64.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.rpt[0], 0.0);
  EXPECT_DOUBLE_EQ(r.rank[0], 77.0);
  // T10 is a sink: DTC = 0; RPT is the max parent rank.
  EXPECT_DOUBLE_EQ(r.dtc[9], 0.0);
  EXPECT_GT(r.rpt[9], 0.0);
  // Ranks are integers by construction (rounded).
  for (graph::TaskId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(r.rank[v], std::round(r.rank[v]));
  }
}

TEST(Ranking, OctRankRejectsWrongSize) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(oct_rank(p, wrong), ContractViolation);
}

}  // namespace
}  // namespace hdlts::sched
