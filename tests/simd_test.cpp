// Differential and edge-case tests for the runtime-dispatched SIMD kernels
// (src/hdlts/simd/).
//
// Two layers:
//   1. Kernel level: every compiled-in backend must agree bit-for-bit with
//     the scalar reference on random inputs of every size (crossing vector
//     width and tail boundaries) and on the adversarial edge cases the
//     documented semantics pin down — NaN rows, mixed NaN/±inf, signed
//     zeros, dead-processor masks.
//   2. Scheduler level: the full ported-scheduler grid must produce
//     bit-identical schedules under the scalar and SIMD backends
//     (force_backend differential; skipped when the binary or CPU lacks the
//     backend).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/util/reduction_tree.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

const simd::Dispatch& scalar() {
  const simd::Dispatch* s = simd::backend("scalar");
  EXPECT_NE(s, nullptr);
  return *s;
}

/// Every backend compiled into this binary and usable on this CPU.
std::vector<const simd::Dispatch*> available_backends() {
  std::vector<const simd::Dispatch*> out;
  for (const char* name : {"scalar", "avx2", "neon"}) {
    if (const simd::Dispatch* b = simd::backend(name)) out.push_back(b);
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndOffAliasesIt) {
  EXPECT_NE(simd::backend("scalar"), nullptr);
  EXPECT_EQ(simd::backend("off"), simd::backend("scalar"));
  EXPECT_EQ(simd::backend("bogus"), nullptr);
  EXPECT_FALSE(simd::force_backend("bogus"));
  // active() always returns something usable.
  const std::string_view name = simd::active_backend();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon");
  ASSERT_TRUE(simd::force_backend(name));  // restore is a no-op
}

TEST(SimdKernels, ArgminEdgeCases) {
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    const std::vector<double> plain = {3.0, 1.0, 2.0, 1.0};
    EXPECT_EQ(k->argmin(plain.data(), plain.size()), 1u);  // tie -> first
    const std::vector<double> single = {7.5};
    EXPECT_EQ(k->argmin(single.data(), 1), 0u);
    // NaN is never minimal; [NaN, +inf] must pick the +inf (the documented
    // two-pass semantics — a single-pass `<` scan would answer 0 here).
    const std::vector<double> nan_inf = {kNaN, kInf};
    EXPECT_EQ(k->argmin(nan_inf.data(), nan_inf.size()), 1u);
    const std::vector<double> all_nan = {kNaN, kNaN, kNaN, kNaN, kNaN};
    EXPECT_EQ(k->argmin(all_nan.data(), all_nan.size()), 0u);
    // Signed zeros compare equal: the first zero wins regardless of sign.
    const std::vector<double> zeros1 = {+0.0, -0.0, 1.0};
    EXPECT_EQ(k->argmin(zeros1.data(), zeros1.size()), 0u);
    const std::vector<double> zeros2 = {1.0, -0.0, +0.0};
    EXPECT_EQ(k->argmin(zeros2.data(), zeros2.size()), 1u);
    const std::vector<double> neg_inf = {0.0, -kInf, -kInf};
    EXPECT_EQ(k->argmin(neg_inf.data(), neg_inf.size()), 1u);
    // NaN padding around the minimum at every lane position.
    for (std::size_t n = 1; n <= 12; ++n) {
      std::vector<double> row(n, kNaN);
      for (std::size_t at = 0; at < n; ++at) {
        row[at] = -1.0;
        EXPECT_EQ(k->argmin(row.data(), n), at) << "n=" << n << " at=" << at;
        row[at] = kNaN;
      }
    }
  }
}

TEST(SimdKernels, ArgminMaskedEdgeCases) {
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    const std::vector<double> row = {0.5, 0.1, 0.2, 0.1, 9.0};
    const std::vector<unsigned char> all = {1, 1, 1, 1, 1};
    EXPECT_EQ(k->argmin_masked(row.data(), all.data(), row.size()), 1u);
    // The global minimum is dead: the masked minimum must win.
    const std::vector<unsigned char> dead_min = {1, 0, 1, 0, 1};
    EXPECT_EQ(k->argmin_masked(row.data(), dead_min.data(), row.size()), 2u);
    // Nothing alive -> n.
    const std::vector<unsigned char> none(5, 0);
    EXPECT_EQ(k->argmin_masked(row.data(), none.data(), row.size()), 5u);
    // Every alive entry NaN -> first alive index.
    const std::vector<double> nans = {kNaN, kNaN, kNaN, kNaN};
    const std::vector<unsigned char> tail_alive = {0, 0, 1, 1};
    EXPECT_EQ(k->argmin_masked(nans.data(), tail_alive.data(), nans.size()),
              2u);
    // A dead NaN must not poison the scan.
    const std::vector<double> mixed = {kNaN, 3.0, 2.0};
    const std::vector<unsigned char> live_tail = {0, 1, 1};
    EXPECT_EQ(k->argmin_masked(mixed.data(), live_tail.data(), mixed.size()),
              2u);
  }
}

TEST(SimdKernels, ArgmaxKeyEdgeCases) {
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    const std::vector<double> pv = {1.0, 3.0, 3.0, 2.0};
    // Equal maxima resolve to the smallest key, wherever it sits.
    const std::vector<std::uint32_t> keys_fwd = {0, 7, 4, 9};
    EXPECT_EQ(k->argmax_key(pv.data(), keys_fwd.data(), pv.size()), 2u);
    const std::vector<std::uint32_t> keys_rev = {0, 2, 5, 9};
    EXPECT_EQ(k->argmax_key(pv.data(), keys_rev.data(), pv.size()), 1u);
    // NaN PVs never win; all-NaN -> 0.
    const std::vector<double> with_nan = {kNaN, 1.0, kNaN};
    const std::vector<std::uint32_t> keys3 = {5, 6, 7};
    EXPECT_EQ(k->argmax_key(with_nan.data(), keys3.data(), with_nan.size()),
              1u);
    const std::vector<double> all_nan = {kNaN, kNaN, kNaN};
    EXPECT_EQ(k->argmax_key(all_nan.data(), keys3.data(), all_nan.size()), 0u);
    const std::vector<double> one = {0.25};
    const std::vector<std::uint32_t> key1 = {11};
    EXPECT_EQ(k->argmax_key(one.data(), key1.data(), 1), 0u);
  }
}

TEST(SimdKernels, RandomDifferentialAgainstScalar) {
  const simd::Dispatch& ref = scalar();
  util::Rng rng(0x51D0ULL);
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    for (int iter = 0; iter < 400; ++iter) {
      const std::size_t n = 1 + rng() % 67;
      std::vector<double> row(n);
      std::vector<unsigned char> alive(n);
      std::vector<std::uint32_t> keys(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Coarse values so duplicates (and therefore tie-breaks) are common;
        // sprinkle NaN/inf to exercise the documented semantics.
        const std::uint64_t r = rng();
        row[i] = (r % 16 == 0) ? kNaN
                               : ((r % 16 == 1) ? kInf
                                                : static_cast<double>(r % 8));
        alive[i] = rng() % 3 != 0 ? 1 : 0;
        keys[i] = static_cast<std::uint32_t>(rng() % 97);
      }
      EXPECT_EQ(k->argmin(row.data(), n), ref.argmin(row.data(), n))
          << "iter " << iter;
      EXPECT_EQ(k->argmin_masked(row.data(), alive.data(), n),
                ref.argmin_masked(row.data(), alive.data(), n))
          << "iter " << iter;
      EXPECT_EQ(k->argmax_key(row.data(), keys.data(), n),
                ref.argmax_key(row.data(), keys.data(), n))
          << "iter " << iter;
    }
  }
}

TEST(SimdKernels, CombineUpMatchesTreeOpsBitwise) {
  using Op = util::ReductionTree::Op;
  util::Rng rng(0x7EE5ULL);
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    for (const Op op : {Op::kSum, Op::kMin, Op::kMax}) {
      for (std::size_t base : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{8}, std::size_t{16},
                               std::size_t{64}}) {
        std::vector<double> want(2 * base, 0.0);
        for (std::size_t i = 0; i < base; ++i) {
          want[base + i] =
              static_cast<double>(rng() % 1000) / 7.0 - 50.0;
        }
        std::vector<double> got = want;
        util::tree_ops::combine_up(op, want, base);
        k->combine_up(op, got.data(), base);
        for (std::size_t i = 1; i < 2 * base; ++i) {
          EXPECT_EQ(got[i], want[i])
              << k->name << " op=" << static_cast<int>(op)
              << " base=" << base << " node=" << i;
        }
      }
    }
  }
}

TEST(SimdKernels, SquareIsExact) {
  util::Rng rng(0xABCDULL);
  for (const simd::Dispatch* k : available_backends()) {
    SCOPED_TRACE(k->name);
    for (std::size_t n = 1; n <= 19; ++n) {
      std::vector<double> src(n), dst(n, -1.0);
      for (std::size_t i = 0; i < n; ++i) {
        src[i] = static_cast<double>(rng() % 4096) / 3.0;
      }
      k->square(src.data(), dst.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i], src[i] * src[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler-level differential: the whole ported grid, scalar vs SIMD.

sim::Workload random_problem(std::uint64_t seed) {
  util::Rng rng(util::derive_seed(seed, 0xc0deULL));
  workload::RandomDagParams params;
  params.num_tasks = 15 + seed % 7 * 9;                // 15..69 tasks
  params.alpha = (seed % 3 == 0) ? 0.5 : ((seed % 3 == 1) ? 1.0 : 2.0);
  params.density = 1 + seed % 4;
  params.costs.num_procs = 2 + seed % 7;               // 2..8 processors
  params.costs.ccr = (seed % 4 == 0) ? 0.5 : ((seed % 4 == 1) ? 2.0 : 8.0);
  sim::Workload w = workload::random_workload(params, seed);
  for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
    if (w.platform.num_alive() > 1 && rng() % 4 == 0) {
      w.platform.set_alive(p, false);
    }
  }
  return w;
}

void expect_identical(const sim::Schedule& got, const sim::Schedule& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_tasks(), want.num_tasks()) << what;
  for (graph::TaskId v = 0; v < got.num_tasks(); ++v) {
    SCOPED_TRACE(what + ", task " + std::to_string(v));
    const sim::Placement& a = got.placement(v);
    const sim::Placement& b = want.placement(v);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.finish, b.finish);
    const auto da = got.duplicates(v);
    const auto db = want.duplicates(v);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
}

/// Restores the startup-selected backend even when a test fails out early.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active_backend()) {}
  ~BackendGuard() { simd::force_backend(saved_); }

 private:
  std::string saved_;
};

void run_grid_against_scalar(const char* backend_name) {
  if (simd::backend(backend_name) == nullptr) {
    GTEST_SKIP() << backend_name
                 << " backend not available on this binary/CPU";
  }
  BackendGuard guard;
  const sched::Registry registry = core::default_registry();
  const std::vector<std::string> ported = {
      "hdlts",       "hdlts-nodup",     "hdlts-static", "hdlts-popstddev",
      "hdlts-range", "hdlts-insertion", "hdlts-multidup",
      "heft",        "cpop",            "peft",         "pets",
      "sdbats",      "dls",             "lookahead"};
  std::size_t pairs = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const sim::Workload w = random_problem(seed * 17 + 3);
    const sim::Problem problem(w);
    for (const std::string& name : ported) {
      const auto scheduler = registry.make(name);
      ASSERT_TRUE(simd::force_backend("scalar"));
      const sim::Schedule want = scheduler->schedule(problem);
      ASSERT_TRUE(simd::force_backend(backend_name));
      const sim::Schedule got = scheduler->schedule(problem);
      expect_identical(got, want, name + ", seed " + std::to_string(seed));
      ++pairs;
    }
  }
  EXPECT_GE(pairs, 200u);  // 16 problems x 14 schedulers
}

TEST(SimdSchedulerEquivalence, Avx2MatchesScalarOnFullGrid) {
  run_grid_against_scalar("avx2");
}

TEST(SimdSchedulerEquivalence, NeonMatchesScalarOnFullGrid) {
  run_grid_against_scalar("neon");
}

}  // namespace
}  // namespace hdlts
