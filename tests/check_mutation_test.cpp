// Mutation tests for the dynamic validators — guard the guard. Each test
// corrupts a *valid* OnlineResult / StreamResult in exactly one way and
// requires a specific complaint: a validator that waves the corruption
// through is itself broken (same idiom as tests/fuzz_validate_test.cpp for
// the static oracle).
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "hdlts/check/validate.hpp"
#include "hdlts/core/periodic.hpp"
#include "hdlts/workload/forkjoin.hpp"

namespace hdlts {
namespace {

bool any_contains(const std::vector<std::string>& violations,
                  const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string joined(const std::vector<std::string>& violations) {
  std::string out;
  for (const std::string& v : violations) out += v + "\n";
  return out;
}

/// A deterministic scenario whose run loses at least one execution and
/// still completes — the richest kind of result to mutate.
class OnlineMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ForkJoinParams params;
    params.chains = 3;
    params.length = 4;
    params.costs.num_procs = 3;
    for (std::uint64_t seed = 0; seed < 64 && !found_; ++seed) {
      sim::Workload w = workload::forkjoin_workload(params, seed);
      const double clean =
          core::Hdlts().schedule(sim::Problem(w)).makespan();
      for (platform::ProcId p = 0; p < 3 && !found_; ++p) {
        std::vector<core::ProcFailure> plan = {{p, 0.4 * clean}};
        core::OnlineResult r = core::run_online(w, plan);
        if (r.lost_executions > 0 && r.completed) {
          workload_.emplace(std::move(w));
          failures_ = std::move(plan);
          result_ = std::move(r);
          found_ = true;
        }
      }
    }
    ASSERT_TRUE(found_) << "no seed produced a lost execution";
    const check::OnlineValidator validator;
    ASSERT_TRUE(validator.validate(*workload_, failures_, result_).empty())
        << "the unmutated result must be valid";
  }

  std::vector<std::string> validate(const core::OnlineResult& mutated) const {
    const check::OnlineValidator validator;
    return validator.validate(*workload_, failures_, mutated);
  }

  double exec_cost(const core::OnlineExec& e) const {
    return workload_->costs(e.task, e.proc);
  }

  bool found_ = false;
  std::optional<sim::Workload> workload_;
  std::vector<core::ProcFailure> failures_;
  core::OnlineResult result_;
};

TEST_F(OnlineMutationTest, StartShiftedBeforeParentArrivalIsCaught) {
  // Find a surviving execution whose cheapest parent delivery is strictly
  // positive, then slide it to start at t = 0.
  core::OnlineResult mutated = result_;
  bool mutated_one = false;
  for (core::OnlineExec& e : mutated.executions) {
    if (e.lost || e.duplicate || e.start <= 0.5 ||
        workload_->graph.parents(e.task).empty()) {
      continue;
    }
    e.finish = e.finish - e.start;  // keep the duration equal to W(v, p)
    e.start = 0.0;
    mutated_one = true;
    break;
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "before its data from parent"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, WorkOnDeadProcessorIsCaught) {
  // Move a surviving execution onto the failed processor, entirely after
  // its failure instant.
  const platform::ProcId dead = failures_.front().proc;
  const double fail_time = failures_.front().time;
  core::OnlineResult mutated = result_;
  bool mutated_one = false;
  for (core::OnlineExec& e : mutated.executions) {
    if (e.lost || e.duplicate) continue;
    if (workload_->costs(e.task, dead) <= 1e-6) continue;
    e.proc = dead;
    e.start = fail_time + 1.0;
    e.finish = e.start + workload_->costs(e.task, dead);
    mutated_one = true;
    break;
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "after its failure at"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, OverlappingAttemptsOnOneLaneAreCaught) {
  // Relocate one execution onto another's processor, overlapping it.
  core::OnlineResult mutated = result_;
  const core::OnlineExec* anchor = nullptr;
  for (const core::OnlineExec& e : mutated.executions) {
    if (!e.lost && !e.duplicate && exec_cost(e) > 1e-3) {
      anchor = &e;
      break;
    }
  }
  ASSERT_NE(anchor, nullptr);
  bool mutated_one = false;
  for (core::OnlineExec& e : mutated.executions) {
    if (&e == anchor || e.lost || e.duplicate || e.task == anchor->task) {
      continue;
    }
    const double cost = workload_->costs(e.task, anchor->proc);
    if (cost <= 1e-3) continue;
    e.proc = anchor->proc;
    e.start = anchor->start;
    e.finish = e.start + cost;
    mutated_one = true;
    break;
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "attempts overlap on processor"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, DroppedLostFlagIsCaught) {
  core::OnlineResult mutated = result_;
  bool mutated_one = false;
  for (core::OnlineExec& e : mutated.executions) {
    if (e.lost) {
      e.lost = false;
      mutated_one = true;
      break;
    }
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "the replay kills"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, CorruptedMakespanIsCaught) {
  core::OnlineResult mutated = result_;
  mutated.makespan += 1.0;
  const auto violations = validate(mutated);
  EXPECT_TRUE(
      any_contains(violations, "does not equal the max surviving finish"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, CorruptedLostCounterIsCaught) {
  core::OnlineResult mutated = result_;
  mutated.lost_executions += 1;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "lost_executions"))
      << joined(violations);
}

TEST_F(OnlineMutationTest, FlippedCompletedFlagIsCaught) {
  core::OnlineResult mutated = result_;
  mutated.completed = false;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "completed == false"))
      << joined(violations);
}

TEST(OnlineStaticIdentityTest, PerturbedStartDivergesFromStaticSchedule) {
  workload::ForkJoinParams params;
  params.chains = 3;
  params.length = 4;
  params.costs.num_procs = 3;
  const sim::Workload workload = workload::forkjoin_workload(params, 7);
  core::OnlineResult result = core::run_online(workload, {});
  const check::OnlineValidator validator;
  ASSERT_TRUE(validator.validate(workload, {}, result).empty());
  // A perturbation far below every tolerance still breaks bit-identity.
  for (core::OnlineExec& e : result.executions) {
    if (!e.duplicate && e.start > 0.0) {
      e.start += 1e-9;
      e.finish += 1e-9;
      break;
    }
  }
  const auto violations = validator.validate(workload, {}, result);
  EXPECT_TRUE(any_contains(violations, "diverges from the static schedule"))
      << joined(violations);
}

class StreamMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ForkJoinParams params;
    params.chains = 3;
    params.length = 3;
    params.costs.num_procs = 3;
    arrivals_.push_back({workload::forkjoin_workload(params, 1), 0.0});
    arrivals_.push_back({workload::forkjoin_workload(params, 2), 5.0});
    result_ = core::run_stream(arrivals_);
    const check::StreamValidator validator;
    ASSERT_TRUE(validator.validate(arrivals_, result_).empty());
  }

  std::vector<std::string> validate(const core::StreamResult& mutated) const {
    const check::StreamValidator validator;
    return validator.validate(arrivals_, mutated);
  }

  std::vector<core::StreamArrival> arrivals_;
  core::StreamResult result_;
};

TEST_F(StreamMutationTest, StartBeforeArrivalIsCaught) {
  core::StreamResult mutated = result_;
  bool mutated_one = false;
  for (core::StreamTaskExec& e : mutated.executions) {
    if (e.workflow == 1 && e.start >= 5.0) {
      e.finish -= e.start;  // preserve the duration
      e.start = 0.0;
      mutated_one = true;
      break;
    }
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "before its workflow arrives"))
      << joined(violations);
}

TEST_F(StreamMutationTest, DoubleScheduledTaskIsCaught) {
  core::StreamResult mutated = result_;
  ASSERT_FALSE(mutated.executions.empty());
  mutated.executions.push_back(mutated.executions.front());
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "more than once")) << joined(violations);
}

TEST_F(StreamMutationTest, CorruptedFlowTimeIsCaught) {
  core::StreamResult mutated = result_;
  mutated.flow_time[0] += 3.0;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "flow time")) << joined(violations);
}

TEST_F(StreamMutationTest, WrongDurationIsCaught) {
  core::StreamResult mutated = result_;
  bool mutated_one = false;
  for (core::StreamTaskExec& e : mutated.executions) {
    if (e.finish - e.start > 1e-3) {
      e.finish += 0.5;
      mutated_one = true;
      break;
    }
  }
  ASSERT_TRUE(mutated_one);
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "W(v,p)")) << joined(violations);
}

/// Deadline/busy-interval scenario: a periodic stream with tight deadlines
/// (so misses genuinely occur) on a pre-occupied platform. The unmutated
/// result must be valid under the deadline-aware overload before any
/// corruption is attempted.
class DeadlineStreamMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::PeriodicStreamParams params;
    params.count = 4;
    params.period = 8.0;
    params.deadline_factor = 0.6;  // tight on purpose: some workflows miss
    params.hard_fraction = 0.5;
    params.busy_fraction = 0.9;
    core::PeriodicStream stream = core::make_periodic_stream(
        params,
        [](std::size_t, std::uint64_t seed) {
          workload::ForkJoinParams p;
          p.chains = 3;
          p.length = 3;
          p.costs.num_procs = 3;
          return workload::forkjoin_workload(p, seed);
        },
        7);
    arrivals_ = std::move(stream.arrivals);
    busy_ = std::move(stream.busy);
    ASSERT_FALSE(busy_.empty());
    result_ = core::run_stream(arrivals_, {}, nullptr, busy_);
    ASSERT_GT(result_.deadline_misses, 0u)
        << "scenario must actually miss a deadline";
    const check::StreamValidator validator;
    ASSERT_TRUE(validator.validate(arrivals_, busy_, result_).empty());
  }

  std::vector<std::string> validate(const core::StreamResult& mutated) const {
    const check::StreamValidator validator;
    return validator.validate(arrivals_, busy_, mutated);
  }

  std::vector<core::StreamArrival> arrivals_;
  std::vector<core::BusyInterval> busy_;
  core::StreamResult result_;
};

TEST_F(DeadlineStreamMutationTest, FlippedDeadlineFlagIsCaught) {
  core::StreamResult mutated = result_;
  ASSERT_FALSE(mutated.deadline_missed.empty());
  mutated.deadline_missed[0] = mutated.deadline_missed[0] == 0 ? 1 : 0;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "deadline flag")) << joined(violations);
}

TEST_F(DeadlineStreamMutationTest, CorruptedMissCounterIsCaught) {
  core::StreamResult mutated = result_;
  mutated.deadline_misses += 1;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "deadline miss count"))
      << joined(violations);
}

TEST_F(DeadlineStreamMutationTest, CorruptedHardMissCounterIsCaught) {
  core::StreamResult mutated = result_;
  mutated.hard_deadline_misses += 1;
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "hard deadline miss count"))
      << joined(violations);
}

TEST_F(DeadlineStreamMutationTest, TruncatedDeadlineArrayIsCaught) {
  core::StreamResult mutated = result_;
  mutated.deadline_missed.pop_back();
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "deadline_missed array"))
      << joined(violations);
}

TEST_F(DeadlineStreamMutationTest, ExecutionMovedIntoBusyIntervalIsCaught) {
  core::StreamResult mutated = result_;
  bool mutated_one = false;
  for (const core::BusyInterval& b : busy_) {
    for (core::StreamTaskExec& e : mutated.executions) {
      if (e.proc != b.proc) continue;
      const double duration = e.finish - e.start;
      e.start = b.start;  // slide the block onto the pre-occupied interval
      e.finish = b.start + duration;
      mutated_one = true;
      break;
    }
    if (mutated_one) break;
  }
  ASSERT_TRUE(mutated_one) << "no execution shares a processor with a "
                              "busy interval";
  const auto violations = validate(mutated);
  EXPECT_TRUE(any_contains(violations, "pre-occupied")) << joined(violations);
}

}  // namespace
}  // namespace hdlts
