// Crafted-scenario behaviour tests: cases designed so a specific mechanism
// (insertion policy, OCT lookahead, duplication pruning, zero-cost blocks)
// visibly changes the outcome.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sim/compact.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/gantt.hpp"
#include "hdlts/workload/forkjoin.hpp"

namespace hdlts {
namespace {

/// A graph where HEFT's insertion policy provably saves time: a high-rank
/// long task T1 leaves a gap on P1 before it (waiting on comm), and a
/// low-rank short task T2 fits exactly into that gap.
sim::Workload insertion_showcase() {
  graph::TaskGraph g;
  const auto t0 = g.add_task("t0");
  const auto t1 = g.add_task("t1");   // long, fed remotely
  const auto t2 = g.add_task("t2");   // short and independent
  const auto t3 = g.add_task("t3");
  g.add_edge(t0, t1, 10.0);  // big transfer forces a gap on the other proc
  g.add_edge(t1, t3, 1.0);
  g.add_edge(t2, t3, 1.0);
  sim::CostTable w(4, 2);
  // t0 fast on P1; t1 much faster on P2 (worth the transfer); t2 short.
  w.set(t0, 0, 2);
  w.set(t0, 1, 8);
  w.set(t1, 0, 30);
  w.set(t1, 1, 10);
  w.set(t2, 0, 20);
  w.set(t2, 1, 6);
  w.set(t3, 0, 2);
  w.set(t3, 1, 2);
  return sim::Workload{std::move(g), std::move(w), platform::Platform(2)};
}

TEST(Behavior, InsertionFillsCommGaps) {
  const sim::Workload w = insertion_showcase();
  const sim::Problem p(w);
  const double with = sched::Heft(true).schedule(p).makespan();
  const double without = sched::Heft(false).schedule(p).makespan();
  EXPECT_LE(with, without);
  // The gap on P2 before t1's input arrives (t0 finishes at 2, +10 comm =
  // 12) can hold t2 (6 units) under insertion.
  const sim::Schedule s = sched::Heft(true).schedule(p);
  const sim::Placement& t1 = s.placement(1);
  const sim::Placement& t2 = s.placement(2);
  if (t1.proc == t2.proc) {
    EXPECT_LE(t2.finish, t1.start + 1e-9);  // t2 squeezed before t1
  }
}

TEST(Behavior, DuplicationPrunedWhenCommIsFree) {
  // With zero communication there is never a reason to duplicate the entry
  // (the duplicate finishes no earlier than data arrives instantly).
  graph::TaskGraph g;
  const auto e = g.add_task("e");
  const auto a = g.add_task("a");
  const auto b = g.add_task("b");
  g.add_edge(e, a, 0.0);
  g.add_edge(e, b, 0.0);
  sim::CostTable w(3, 2);
  for (graph::TaskId v = 0; v < 3; ++v) {
    w.set(v, 0, 5);
    w.set(v, 1, 5);
  }
  const sim::Workload wl{std::move(g), std::move(w), platform::Platform(2)};
  const sim::Problem p(wl);
  const sim::Schedule s = core::Hdlts().schedule(p);
  EXPECT_TRUE(s.duplicates(0).empty());
}

TEST(Behavior, DuplicationRulesDivergeWhenChildrenDisagree) {
  // Entry with one heavy edge (benefits from a duplicate) and one zero-cost
  // edge (cannot benefit): kAnyChildBenefits duplicates, kAllChildrenBenefit
  // does not.
  graph::TaskGraph g;
  const auto e = g.add_task("e");
  const auto heavy = g.add_task("heavy");
  const auto light = g.add_task("light");
  g.add_edge(e, heavy, 50.0);
  g.add_edge(e, light, 0.0);
  sim::CostTable w(3, 2);
  for (graph::TaskId v = 0; v < 3; ++v) {
    w.set(v, 0, 10);
    w.set(v, 1, 10);
  }
  const sim::Workload wl{std::move(g), std::move(w), platform::Platform(2)};
  const sim::Problem p(wl);
  core::HdltsOptions any;
  any.duplication = core::DuplicationRule::kAnyChildBenefits;
  core::HdltsOptions all;
  all.duplication = core::DuplicationRule::kAllChildrenBenefit;
  EXPECT_EQ(core::Hdlts(any).schedule(p).duplicates(0).size(), 1u);
  EXPECT_EQ(core::Hdlts(all).schedule(p).duplicates(0).size(), 0u);
}

TEST(Behavior, EngineHandlesZeroCostChains) {
  // A workflow that is all pseudo-like zero-cost tasks still replays.
  graph::TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task("z", 0.0);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  sim::CostTable w(3, 1);  // all-zero costs
  const sim::Workload wl{std::move(g), std::move(w), platform::Platform(1)};
  const sim::Problem p(wl);
  const sim::Schedule s = core::Hdlts().schedule(p);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  const sim::EngineResult r = sim::replay(p, s);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.matches_schedule);
}

TEST(Behavior, GanttHandlesZeroMakespan) {
  sim::Schedule s(1, 1);
  s.place(0, 0, 0.0, 0.0);
  EXPECT_NO_THROW(sim::to_gantt(s));
}

TEST(Behavior, CompactRecoversInsertionLostToEagerQueueing) {
  // HDLTS (no insertion) can leave avoidable gaps on fork-join graphs;
  // compaction must close part of them without changing assignments.
  workload::ForkJoinParams params;
  params.chains = 5;
  params.length = 3;
  params.costs.num_procs = 3;
  params.costs.ccr = 4.0;
  const sim::Workload w = workload::forkjoin_workload(params, 4);
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const sim::Schedule c = sim::compact(p, s);
  EXPECT_LE(c.makespan(), s.makespan() + 1e-9);
  EXPECT_TRUE(c.validate(p).empty());
}

}  // namespace
}  // namespace hdlts
