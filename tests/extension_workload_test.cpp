// Tests for the extension workloads (Laplace, fork-join) and the
// network-heterogeneity machinery.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/graph/algorithms.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/laplace.hpp"

namespace hdlts::workload {
namespace {

TEST(Laplace, StructureIsDiamond) {
  const graph::TaskGraph g = laplace_structure(4);
  EXPECT_EQ(g.num_tasks(), 16u);
  EXPECT_TRUE(graph::is_acyclic(g));
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(graph::num_levels(g), 7u);  // 2m - 1
  EXPECT_EQ(graph::level_widths(g),
            (std::vector<std::size_t>{1, 2, 3, 4, 3, 2, 1}));
}

TEST(Laplace, EveryTaskOnEntryExitPath) {
  const graph::TaskGraph g = laplace_structure(5);
  EXPECT_EQ(graph::descendants(g, g.single_entry()).size(), 24u);
  EXPECT_EQ(graph::ancestors(g, g.single_exit()).size(), 24u);
}

TEST(Laplace, RejectsTinySizes) {
  EXPECT_THROW(laplace_structure(1), InvalidArgument);
  LaplaceParams p;
  p.size = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Laplace, WorkloadSchedulesValidly) {
  LaplaceParams p;
  p.size = 6;
  p.costs.num_procs = 4;
  p.costs.ccr = 3.0;
  const sim::Workload w = laplace_workload(p, 3);
  const sim::Problem problem(w);
  const auto s = core::Hdlts().schedule(problem);
  EXPECT_TRUE(s.validate(problem).empty());
}

TEST(ForkJoin, StructureCounts) {
  const graph::TaskGraph g = forkjoin_structure(4, 5);
  EXPECT_EQ(g.num_tasks(), 22u);
  EXPECT_EQ(g.out_degree(g.single_entry()), 4u);
  EXPECT_EQ(g.in_degree(g.single_exit()), 4u);
  EXPECT_EQ(graph::num_levels(g), 7u);  // fork + 5 + join
}

TEST(ForkJoin, SingleChainIsAPath) {
  const graph::TaskGraph g = forkjoin_structure(1, 3);
  EXPECT_EQ(g.num_tasks(), 5u);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_LE(g.out_degree(v), 1u);
  }
}

TEST(ForkJoin, RejectsDegenerateParams) {
  EXPECT_THROW(forkjoin_structure(0, 3), InvalidArgument);
  EXPECT_THROW(forkjoin_structure(3, 0), InvalidArgument);
}

TEST(ForkJoin, EntryDuplicationShinesHere) {
  // With heavy communication, HDLTS's entry duplication must beat the same
  // algorithm without duplication on fork-join workloads.
  ForkJoinParams p;
  p.chains = 6;
  p.length = 2;
  p.costs.num_procs = 3;
  p.costs.ccr = 5.0;
  core::HdltsOptions nodup;
  nodup.duplication = core::DuplicationRule::kOff;
  double total_with = 0.0;
  double total_without = 0.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::Workload w = forkjoin_workload(p, seed);
    const sim::Problem problem(w);
    total_with += core::Hdlts().schedule(problem).makespan();
    total_without += core::Hdlts(nodup).schedule(problem).makespan();
  }
  EXPECT_LT(total_with, total_without);
}

TEST(Network, RandomizeBandwidthsRespectsBand) {
  ForkJoinParams p;
  p.costs.num_procs = 5;
  sim::Workload w = forkjoin_workload(p, 2);
  util::Rng rng(9);
  randomize_bandwidths(w, /*gamma=*/1.0, /*mean=*/2.0, rng);
  for (platform::ProcId a = 0; a < 5; ++a) {
    for (platform::ProcId b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_GE(w.platform.bandwidth(a, b), 1.0 - 1e-9);
      EXPECT_LE(w.platform.bandwidth(a, b), 3.0 + 1e-9);
      EXPECT_DOUBLE_EQ(w.platform.bandwidth(a, b),
                       w.platform.bandwidth(b, a));
    }
  }
}

TEST(Network, GammaZeroIsUniform) {
  ForkJoinParams p;
  p.costs.num_procs = 3;
  sim::Workload w = forkjoin_workload(p, 2);
  util::Rng rng(9);
  randomize_bandwidths(w, 0.0, 4.0, rng);
  EXPECT_DOUBLE_EQ(w.platform.bandwidth(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(w.platform.mean_bandwidth(), 4.0);
}

TEST(Network, RejectsBadParameters) {
  ForkJoinParams p;
  sim::Workload w = forkjoin_workload(p, 1);
  util::Rng rng(1);
  EXPECT_THROW(randomize_bandwidths(w, 2.0, 1.0, rng), InvalidArgument);
  EXPECT_THROW(randomize_bandwidths(w, -0.1, 1.0, rng), InvalidArgument);
  EXPECT_THROW(randomize_bandwidths(w, 0.5, 0.0, rng), InvalidArgument);
}

TEST(Network, HeterogeneousLinksStillScheduleValidly) {
  LaplaceParams p;
  p.size = 5;
  p.costs.num_procs = 4;
  p.costs.ccr = 3.0;
  sim::Workload w = laplace_workload(p, 7);
  util::Rng rng(7);
  randomize_bandwidths(w, 1.5, 1.0, rng);
  const sim::Problem problem(w);
  for (auto& scheduler : core::paper_schedulers()) {
    const auto s = scheduler->schedule(problem);
    EXPECT_TRUE(s.validate(problem).empty()) << scheduler->name();
  }
}

}  // namespace
}  // namespace hdlts::workload
