// Differential property tests for the incremental scheduling state: the
// optimized HDLTS (cached EFT rows + reduction-tree PV moments + O(1)
// availability) and HEFT must produce *bit-identical* schedules to the
// brute-force reference implementations (core/reference.hpp) that rebuild
// every EFT row and rescan every timeline each round — across random DAGs,
// every PvKind, insertion on/off, every duplication rule, static/dynamic
// priorities, and dead-processor subsets. The O(1) Schedule caches are also
// re-verified against full timeline scans after every run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/reference.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

sim::Workload random_problem(std::uint64_t seed) {
  util::Rng rng(util::derive_seed(seed, 0x1e9cULL));
  workload::RandomDagParams params;
  params.num_tasks = 20 + seed % 5 * 12;               // 20..68 tasks
  params.alpha = (seed % 3 == 0) ? 0.5 : ((seed % 3 == 1) ? 1.0 : 2.0);
  params.density = 2 + seed % 3;
  params.costs.num_procs = 2 + seed % 7;               // 2..8 processors
  params.costs.ccr = (seed % 4 == 0) ? 0.5 : ((seed % 4 == 1) ? 2.0 : 10.0);
  sim::Workload w = workload::random_workload(params, seed);
  // Dead-processor subset: kill each processor with probability ~1/4, always
  // keeping at least one alive.
  for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
    if (w.platform.num_alive() > 1 && rng() % 4 == 0) {
      w.platform.set_alive(p, false);
    }
  }
  return w;
}

void expect_identical(const sim::Schedule& got, const sim::Schedule& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_tasks(), want.num_tasks()) << what;
  for (graph::TaskId v = 0; v < got.num_tasks(); ++v) {
    SCOPED_TRACE(what + ", task " + std::to_string(v));
    const sim::Placement& a = got.placement(v);
    const sim::Placement& b = want.placement(v);
    EXPECT_EQ(a.proc, b.proc);
    // Bitwise equality, not near: the incremental path must not drift.
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.finish, b.finish);
    const auto da = got.duplicates(v);
    const auto db = want.duplicates(v);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
}

/// The O(1) caches must agree with full scans of the final timelines.
void expect_caches_consistent(const sim::Schedule& schedule) {
  double span = 0.0;
  for (platform::ProcId p = 0; p < schedule.num_procs(); ++p) {
    double avail = 0.0;
    for (const sim::Placement& pl : schedule.timeline(p)) {
      avail = std::max(avail, pl.finish);
    }
    EXPECT_EQ(schedule.proc_available(p), avail) << "proc " << p;
    span = std::max(span, avail);
  }
  EXPECT_EQ(schedule.makespan(), span);
}

std::vector<core::HdltsOptions> hdlts_option_grid() {
  std::vector<core::HdltsOptions> grid;
  for (const core::PvKind pv :
       {core::PvKind::kSampleStddev, core::PvKind::kPopulationStddev,
        core::PvKind::kRange}) {
    for (const bool insertion : {false, true}) {
      for (const core::DuplicationRule dup :
           {core::DuplicationRule::kOff,
            core::DuplicationRule::kAnyChildBenefits,
            core::DuplicationRule::kAllChildrenBenefit}) {
        for (const bool dynamic : {true, false}) {
          core::HdltsOptions o;
          o.pv = pv;
          o.insertion = insertion;
          o.duplication = dup;
          o.dynamic_priorities = dynamic;
          // Exercise the generalized-duplication extension on part of the
          // grid (it changes which tasks qualify, not the inner loop).
          o.duplicate_all_sources = insertion && dynamic;
          grid.push_back(o);
        }
      }
    }
  }
  return grid;
}

TEST(IncrementalEquivalence, PvAccumulatorUpdateMatchesRebuildBitwise) {
  // The fixed-shape reduction tree is what makes incremental PV maintenance
  // provably drift-free: after any sequence of single-column updates, pv()
  // must equal — bitwise — a fresh rebuild from the current row.
  util::Rng rng(123);
  auto uniform = [&rng] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53 * 1000.0;
  };
  for (const core::PvKind kind :
       {core::PvKind::kSampleStddev, core::PvKind::kPopulationStddev,
        core::PvKind::kRange}) {
    for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 32u, 33u}) {
      std::vector<double> row(n);
      for (double& x : row) x = uniform();
      core::PvAccumulator incremental(kind, n);
      incremental.assign(row);
      for (int step = 0; step < 64; ++step) {
        const std::size_t i = rng() % n;
        row[i] = uniform();
        incremental.update(i, row[i]);
        core::PvAccumulator rebuilt(kind, n);
        rebuilt.assign(row);
        ASSERT_EQ(incremental.pv(), rebuilt.pv())
            << "kind " << static_cast<int>(kind) << ", n " << n << ", step "
            << step;
        ASSERT_EQ(incremental.pv(), core::penalty_value(kind, row));
      }
    }
  }
}

TEST(IncrementalEquivalence, ReductionTreeSumTracksLeaves) {
  util::ReductionTree tree(util::ReductionTree::Op::kSum, 5);
  EXPECT_EQ(tree.root(), 0.0);
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  tree.assign(xs);
  EXPECT_EQ(tree.root(), 15.0);
  EXPECT_EQ(tree.leaf(3), 4.0);
  tree.update(3, 10.0);
  EXPECT_EQ(tree.root(), 21.0);
  EXPECT_THROW(tree.update(5, 0.0), InvalidArgument);
  EXPECT_THROW(tree.assign(std::vector<double>(4, 0.0)), InvalidArgument);
  EXPECT_THROW(util::ReductionTree(util::ReductionTree::Op::kMin, 0),
               InvalidArgument);
}

TEST(IncrementalEquivalence, HdltsMatchesReferenceAcrossOptionGrid) {
  const auto grid = hdlts_option_grid();  // 36 option combinations
  std::size_t problems = 0;
  for (std::size_t ci = 0; ci < grid.size(); ++ci) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const sim::Workload w = random_problem(seed * 101 + ci);
      const sim::Problem problem(w);
      const core::Hdlts optimized(grid[ci]);
      const core::ReferenceHdlts reference(grid[ci]);
      const sim::Schedule got = optimized.schedule(problem);
      const sim::Schedule want = reference.schedule(problem);
      expect_identical(got, want,
                       "combo " + std::to_string(ci) + ", seed " +
                           std::to_string(seed));
      expect_caches_consistent(got);
      ++problems;
    }
  }
  // The acceptance bar: >= 200 random problems, every option combination.
  EXPECT_GE(problems, 200u);
}

TEST(IncrementalEquivalence, LegacyPathMatchesReferenceAcrossOptionGrid) {
  // schedule() now defaults to the compiled flat path, so the grid test
  // above pins compiled == reference. This one pins the retained legacy
  // (pointer-chasing) path to the same contract, closing the triangle
  // compiled == legacy == reference.
  const auto grid = hdlts_option_grid();
  for (std::size_t ci = 0; ci < grid.size(); ci += 4) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const sim::Workload w = random_problem(seed * 57 + ci);
      const sim::Problem problem(w);
      core::Hdlts legacy(grid[ci]);
      legacy.set_use_compiled(false);
      const core::ReferenceHdlts reference(grid[ci]);
      const sim::Schedule got = legacy.schedule(problem);
      const sim::Schedule want = reference.schedule(problem);
      expect_identical(got, want,
                       "legacy combo " + std::to_string(ci) + ", seed " +
                           std::to_string(seed));
      expect_caches_consistent(got);
    }
  }
}

TEST(IncrementalEquivalence, TracedScheduleMatchesUntraced) {
  // schedule_traced always runs the legacy path; the trace must be a pure
  // observer, and its schedule must equal the compiled default's.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const sim::Workload w = random_problem(seed * 11 + 1);
    const sim::Problem problem(w);
    const core::Hdlts hdlts;
    core::HdltsTrace trace;
    const sim::Schedule traced = hdlts.schedule_traced(problem, &trace);
    const sim::Schedule untraced = hdlts.schedule(problem);
    expect_identical(traced, untraced, "seed " + std::to_string(seed));
    EXPECT_EQ(trace.steps.size(), problem.num_tasks());
  }
}

TEST(IncrementalEquivalence, HeftMatchesReferenceWithAndWithoutInsertion) {
  std::size_t problems = 0;
  for (const bool insertion : {true, false}) {
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      const sim::Workload w = random_problem(seed * 7 + 3);
      const sim::Problem problem(w);
      const sched::Heft optimized(insertion);
      const core::ReferenceHeft reference(insertion);
      const sim::Schedule got = optimized.schedule(problem);
      const sim::Schedule want = reference.schedule(problem);
      expect_identical(got, want,
                       std::string("insertion=") +
                           (insertion ? "on" : "off") + ", seed " +
                           std::to_string(seed));
      expect_caches_consistent(got);
      ++problems;
    }
  }
  EXPECT_GE(problems, 200u);
}

}  // namespace
}  // namespace hdlts
