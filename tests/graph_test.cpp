// Unit tests for hdlts/graph: construction, algorithms, DOT, serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/graph/dot.hpp"
#include "hdlts/graph/serialize.hpp"
#include "hdlts/graph/task_graph.hpp"

namespace hdlts::graph {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
TaskGraph diamond() {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 20);
  g.add_edge(1, 3, 30);
  g.add_edge(2, 3, 40);
  return g;
}

TEST(TaskGraph, AddTaskAssignsDenseIdsAndDefaultNames) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(), 0u);
  EXPECT_EQ(g.add_task("custom", 2.5), 1u);
  EXPECT_EQ(g.name(0), "t0");
  EXPECT_EQ(g.name(1), "custom");
  EXPECT_DOUBLE_EQ(g.work(0), 1.0);
  EXPECT_DOUBLE_EQ(g.work(1), 2.5);
}

TEST(TaskGraph, RejectsNegativeWork) {
  TaskGraph g;
  EXPECT_THROW(g.add_task("x", -1.0), InvalidArgument);
  g.add_task();
  EXPECT_THROW(g.set_work(0, -0.5), InvalidArgument);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  g.add_task();
  g.add_task();
  EXPECT_THROW(g.add_edge(0, 0, 1), InvalidArgument);   // self loop
  EXPECT_THROW(g.add_edge(0, 7, 1), InvalidArgument);   // unknown dst
  EXPECT_THROW(g.add_edge(7, 0, 1), InvalidArgument);   // unknown src
  EXPECT_THROW(g.add_edge(0, 1, -2), InvalidArgument);  // negative data
  g.add_edge(0, 1, 5);
  EXPECT_THROW(g.add_edge(0, 1, 5), InvalidArgument);  // duplicate
}

TEST(TaskGraph, AdjacencyViews) {
  const TaskGraph g = diamond();
  ASSERT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.children(0)[0].task, 1u);
  EXPECT_DOUBLE_EQ(g.children(0)[1].data, 20.0);
  ASSERT_EQ(g.parents(3).size(), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(TaskGraph, EdgeDataQueriesAndUpdates) {
  TaskGraph g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_data(2, 3), 40.0);
  EXPECT_THROW(g.edge_data(3, 0), InvalidArgument);
  g.set_edge_data(0, 1, 99.0);
  EXPECT_DOUBLE_EQ(g.edge_data(0, 1), 99.0);
  // Parent-side view must agree after the update.
  EXPECT_DOUBLE_EQ(g.parents(1)[0].data, 99.0);
  EXPECT_THROW(g.set_edge_data(1, 0, 1.0), InvalidArgument);
  EXPECT_THROW(g.set_edge_data(0, 1, -1.0), InvalidArgument);
}

TEST(TaskGraph, EntryAndExitQueries) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.entry_tasks(), std::vector<TaskId>{0});
  EXPECT_EQ(g.exit_tasks(), std::vector<TaskId>{3});
  EXPECT_EQ(g.single_entry(), 0u);
  EXPECT_EQ(g.single_exit(), 3u);
}

TEST(TaskGraph, SingleEntryThrowsOnMultiple) {
  TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_task();
  g.add_edge(0, 2, 0);
  g.add_edge(1, 2, 0);
  EXPECT_EQ(g.entry_tasks().size(), 2u);
  EXPECT_THROW(g.single_entry(), InvalidArgument);
  EXPECT_EQ(g.single_exit(), 2u);
}

TEST(Normalize, NoopOnSingleEntryExit) {
  const auto n = normalize_single_entry_exit(diamond());
  EXPECT_FALSE(n.pseudo_entry.has_value());
  EXPECT_FALSE(n.pseudo_exit.has_value());
  EXPECT_EQ(n.graph.num_tasks(), 4u);
}

TEST(Normalize, AddsPseudoTasksWithZeroCosts) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 2, 3);
  g.add_edge(1, 3, 4);
  const auto n = normalize_single_entry_exit(g);
  ASSERT_TRUE(n.pseudo_entry.has_value());
  ASSERT_TRUE(n.pseudo_exit.has_value());
  EXPECT_EQ(n.graph.num_tasks(), 6u);
  EXPECT_DOUBLE_EQ(n.graph.work(*n.pseudo_entry), 0.0);
  EXPECT_EQ(n.graph.single_entry(), *n.pseudo_entry);
  EXPECT_EQ(n.graph.single_exit(), *n.pseudo_exit);
  // Pseudo edges carry zero data.
  for (const Adjacent& c : n.graph.children(*n.pseudo_entry)) {
    EXPECT_DOUBLE_EQ(c.data, 0.0);
  }
  // Original ids are preserved.
  EXPECT_TRUE(n.graph.has_edge(0, 2));
  EXPECT_TRUE(n.graph.has_edge(1, 3));
}

TEST(Normalize, ThrowsOnGraphWithNoEntry) {
  TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 0);  // cycle: no entry, no exit
  EXPECT_THROW(normalize_single_entry_exit(g), InvalidArgument);
}

TEST(Algorithms, AcyclicityDetection) {
  TaskGraph g = diamond();
  EXPECT_TRUE(is_acyclic(g));
  g.add_edge(3, 0, 0);
  EXPECT_FALSE(is_acyclic(g));
  EXPECT_THROW(topological_order(g), InvalidArgument);
}

TEST(Algorithms, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const Adjacent& c : g.children(v)) {
      EXPECT_LT(pos[v], pos[c.task]);
    }
  }
}

TEST(Algorithms, TopologicalOrderIsStable) {
  // Ready tasks must come out in id order.
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_task();
  g.add_edge(4, 1, 0);
  const auto order = topological_order(g);
  EXPECT_EQ(order, (std::vector<TaskId>{0, 2, 3, 4, 1}));
}

TEST(Algorithms, PrecedenceLevels) {
  const TaskGraph g = diamond();
  const auto level = precedence_levels(g);
  EXPECT_EQ(level, (std::vector<std::size_t>{0, 1, 1, 2}));
  EXPECT_EQ(num_levels(g), 3u);
  EXPECT_EQ(level_widths(g), (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Algorithms, LevelsUseLongestPath) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);  // shortcut must not lower 2's level
  g.add_edge(2, 3, 0);
  EXPECT_EQ(precedence_levels(g), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Algorithms, DescendantsAndAncestors) {
  const TaskGraph g = diamond();
  EXPECT_EQ(descendants(g, 0), (std::vector<TaskId>{1, 2, 3}));
  EXPECT_EQ(descendants(g, 1), (std::vector<TaskId>{3}));
  EXPECT_EQ(descendants(g, 3), (std::vector<TaskId>{}));
  EXPECT_EQ(ancestors(g, 3), (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(ancestors(g, 0), (std::vector<TaskId>{}));
}

TEST(Algorithms, EmptyGraph) {
  TaskGraph g;
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(num_levels(g), 0u);
  EXPECT_TRUE(topological_order(g).empty());
}

TEST(Dot, ContainsNodesAndLabeledEdges) {
  const std::string dot = to_dot(diamond());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"40\""), std::string::npos);
}

TEST(Dot, EscapesQuotesInNames) {
  TaskGraph g;
  g.add_task("weird\"name");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("weird\\\"name"), std::string::npos);
}

TEST(Serialize, RoundTripPreservesEverything) {
  TaskGraph g = diamond();
  g.set_work(2, 7.25);
  std::stringstream ss;
  write_text(ss, g);
  const TaskGraph back = read_text(ss);
  ASSERT_EQ(back.num_tasks(), g.num_tasks());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(back.name(v), g.name(v));
    EXPECT_DOUBLE_EQ(back.work(v), g.work(v));
  }
  EXPECT_DOUBLE_EQ(back.edge_data(2, 3), 40.0);
}

TEST(Serialize, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return read_text(is);
  };
  EXPECT_THROW(parse(""), InvalidArgument);                 // no header
  EXPECT_THROW(parse("workflow 1\n"), InvalidArgument);     // missing task
  EXPECT_THROW(parse("workflow 1\ntask 5 a 1\n"), InvalidArgument);  // gap id
  EXPECT_THROW(parse("workflow 1\ntask 0 a 1\nedge 0 3 1\n"),
               InvalidArgument);  // unknown edge target
  EXPECT_THROW(parse("workflow 1\ntask 0 a 1\nbogus\n"), InvalidArgument);
  EXPECT_THROW(parse("workflow 1\nworkflow 1\ntask 0 a 1\n"),
               InvalidArgument);  // duplicate header
}

TEST(Serialize, IgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# leading comment\n\nworkflow 2\ntask 0 a 1 # trailing\ntask 1 b 2\n"
      "edge 0 1 3.5\n");
  const TaskGraph g = read_text(is);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_data(0, 1), 3.5);
}

}  // namespace
}  // namespace hdlts::graph
