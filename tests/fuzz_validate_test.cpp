// Mutation testing of Schedule::validate: take a correct schedule, break it
// in a specific way, and require a complaint. If validate were too lax,
// every property test in the suite would silently weaken — this file guards
// the guard.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sim {
namespace {

/// Rebuilds `s` with one block's interval replaced.
Schedule rebuild_with(const Problem& problem, const Schedule& s,
                      graph::TaskId victim, double new_start,
                      double new_finish) {
  Schedule out(s.num_tasks(), s.num_procs());
  for (graph::TaskId v = 0; v < s.num_tasks(); ++v) {
    const Placement& pl = s.placement(v);
    if (v == victim) {
      out.place(v, pl.proc, new_start, new_finish);
    } else {
      out.place(v, pl.proc, pl.start, pl.finish);
    }
    for (const Placement& d : s.duplicates(v)) {
      out.place_duplicate(v, d.proc, d.start, d.finish);
    }
  }
  (void)problem;
  return out;
}

struct Fixture {
  sim::Workload workload;
  Problem problem;
  Schedule schedule;

  explicit Fixture(std::uint64_t seed)
      : workload(make(seed)), problem(workload),
        schedule(core::Hdlts().schedule(problem)) {}

  static sim::Workload make(std::uint64_t seed) {
    workload::RandomDagParams p;
    p.num_tasks = 30;
    p.costs.num_procs = 3;
    p.costs.ccr = 2.0;
    return workload::random_workload(p, seed);
  }
};

TEST(FuzzValidate, BaselineSchedulesAreClean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(seed);
    EXPECT_TRUE(f.schedule.validate(f.problem).empty()) << "seed " << seed;
  }
}

TEST(FuzzValidate, StartingBeforeReadyIsCaught) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(seed);
    // Find a task with meaningful ready time on its processor.
    for (graph::TaskId v = 0; v < f.problem.num_tasks(); ++v) {
      const Placement& pl = f.schedule.placement(v);
      const double ready = f.schedule.ready_time(f.problem, v, pl.proc);
      if (ready < 1.0) continue;
      const double dur = pl.finish - pl.start;
      // Move the block to start strictly before its inputs arrive. The
      // rebuild may legitimately throw (overlap with an earlier block),
      // which is also a correct rejection.
      try {
        const Schedule broken = rebuild_with(f.problem, f.schedule, v,
                                             ready - 0.5, ready - 0.5 + dur);
        const auto violations = broken.validate(f.problem);
        EXPECT_FALSE(violations.empty()) << "seed " << seed << " task " << v;
      } catch (const InvalidArgument&) {
        SUCCEED();
      }
      break;
    }
  }
}

TEST(FuzzValidate, WrongDurationIsCaught) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(seed);
    util::Rng rng(seed);
    const auto v = static_cast<graph::TaskId>(rng.uniform_int(
        0, static_cast<std::int64_t>(f.problem.num_tasks()) - 1));
    const Placement& pl = f.schedule.placement(v);
    if (pl.finish - pl.start < 0.2) continue;
    const Schedule broken =
        rebuild_with(f.problem, f.schedule, v, pl.start, pl.finish - 0.1);
    bool duration_flagged = false;
    for (const auto& msg : broken.validate(f.problem)) {
      if (msg.find("duration") != std::string::npos) duration_flagged = true;
    }
    EXPECT_TRUE(duration_flagged) << "seed " << seed << " task " << v;
  }
}

TEST(FuzzValidate, MissingTaskIsCaught) {
  Fixture f(3);
  Schedule partial(f.schedule.num_tasks(), f.schedule.num_procs());
  for (graph::TaskId v = 0; v + 1 < f.schedule.num_tasks(); ++v) {
    const Placement& pl = f.schedule.placement(v);
    partial.place(v, pl.proc, pl.start, pl.finish);
  }
  EXPECT_FALSE(partial.validate(f.problem).empty());
}

TEST(FuzzValidate, MovingToSlowerProcessorIsCaught) {
  // Keeping the interval but switching the processor breaks the duration
  // invariant whenever W differs across machines.
  Fixture f(4);
  for (graph::TaskId v = 0; v < f.problem.num_tasks(); ++v) {
    const Placement& pl = f.schedule.placement(v);
    const platform::ProcId other = pl.proc == 0 ? 1 : 0;
    if (std::abs(f.problem.exec_time(v, pl.proc) -
                 f.problem.exec_time(v, other)) < 0.1) {
      continue;
    }
    Schedule broken(f.schedule.num_tasks(), f.schedule.num_procs());
    for (graph::TaskId u = 0; u < f.schedule.num_tasks(); ++u) {
      const Placement& q = f.schedule.placement(u);
      try {
        broken.place(u, u == v ? other : q.proc, q.start, q.finish);
      } catch (const InvalidArgument&) {
        SUCCEED();  // overlap on the new processor: also a rejection
        return;
      }
    }
    EXPECT_FALSE(broken.validate(f.problem).empty());
    return;
  }
}

}  // namespace
}  // namespace hdlts::sim
