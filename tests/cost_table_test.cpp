// Unit tests for hdlts/sim CostTable, Workload, and Problem views.
#include <gtest/gtest.h>

#include "hdlts/sim/cost_table.hpp"
#include "hdlts/sim/problem.hpp"

namespace hdlts::sim {
namespace {

TEST(CostTable, SetGetAndSummaries) {
  CostTable w(2, 3);
  w.set(0, 0, 14);
  w.set(0, 1, 16);
  w.set(0, 2, 9);
  EXPECT_DOUBLE_EQ(w(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(w.mean(0), 13.0);
  EXPECT_DOUBLE_EQ(w.min(0), 9.0);
  EXPECT_NEAR(w.stddev_sample(0), 3.6056, 1e-3);
  // Untouched rows are zero.
  EXPECT_DOUBLE_EQ(w.mean(1), 0.0);
}

TEST(CostTable, RejectsNegativeCostAndBadDims) {
  CostTable w(1, 2);
  EXPECT_THROW(w.set(0, 0, -1.0), InvalidArgument);
  EXPECT_THROW(CostTable(3, 0), InvalidArgument);
  EXPECT_THROW(w(0, 5), ContractViolation);
}

TEST(CostTable, FromSpeeds) {
  graph::TaskGraph g;
  g.add_task("a", 10.0);
  g.add_task("b", 20.0);
  const std::vector<double> speeds{1.0, 2.0};
  const CostTable w = CostTable::from_speeds(g, speeds);
  EXPECT_DOUBLE_EQ(w(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(w(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(w(1, 1), 10.0);
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(CostTable::from_speeds(g, bad), InvalidArgument);
}

Workload tiny_workload() {
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 12.0);
  CostTable w(2, 2);
  w.set(0, 0, 3);
  w.set(0, 1, 5);
  w.set(1, 0, 4);
  w.set(1, 1, 2);
  return Workload{std::move(g), std::move(w), platform::Platform(2, 4.0)};
}

TEST(Workload, ValidateCatchesDimensionMismatch) {
  Workload w = tiny_workload();
  EXPECT_NO_THROW(w.validate());
  Workload bad_procs{w.graph, CostTable(2, 3), platform::Platform(2)};
  EXPECT_THROW(bad_procs.validate(), InvalidArgument);
  Workload bad_tasks{w.graph, CostTable(5, 2), platform::Platform(2)};
  EXPECT_THROW(bad_tasks.validate(), InvalidArgument);
}

TEST(Workload, ValidateCatchesCycle) {
  Workload w = tiny_workload();
  w.graph.add_edge(1, 0, 1.0);
  EXPECT_THROW(w.validate(), InvalidArgument);
}

TEST(Problem, CostQueries) {
  const Workload w = tiny_workload();
  const Problem p(w);
  EXPECT_EQ(p.num_tasks(), 2u);
  EXPECT_EQ(p.num_procs(), 2u);
  EXPECT_DOUBLE_EQ(p.exec_time(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(p.data(0, 1), 12.0);
  // Same processor: zero; different: data / bandwidth = 12 / 4.
  EXPECT_DOUBLE_EQ(p.comm_time(0, 1, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.comm_time(0, 1, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.mean_comm(0, 1), 3.0);
}

TEST(Problem, ProcsExcludeDeadProcessors) {
  Workload w = tiny_workload();
  w.platform.set_alive(0, false);
  const Problem p(w);
  EXPECT_EQ(p.procs(), (std::vector<platform::ProcId>{1}));
}

TEST(Problem, ThrowsWhenNoAliveProcessor) {
  Workload w = tiny_workload();
  w.platform.set_alive(0, false);
  w.platform.set_alive(1, false);
  EXPECT_THROW(Problem{w}, InvalidArgument);
}

}  // namespace
}  // namespace hdlts::sim
