// Property test: Schedule::earliest_start with insertion must agree with a
// brute-force reference on randomly built timelines — earliest feasible
// start, never overlapping, never before ready.
#include <gtest/gtest.h>

#include <algorithm>

#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/rng.hpp"

namespace hdlts::sim {
namespace {

struct Interval {
  double start;
  double finish;
};

/// O(grid) reference: try candidate starts on a fine lattice plus all block
/// boundaries; return the smallest feasible one.
double brute_force_earliest(const std::vector<Interval>& busy, double ready,
                            double duration) {
  auto feasible = [&](double start) {
    if (start < ready - 1e-12) return false;
    for (const Interval& b : busy) {
      const bool overlap =
          start < b.finish - 1e-9 && b.start < start + duration - 1e-9;
      if (overlap) return false;
    }
    return true;
  };
  std::vector<double> candidates{ready};
  for (const Interval& b : busy) {
    candidates.push_back(b.finish);
    candidates.push_back(std::max(ready, b.finish));
  }
  std::sort(candidates.begin(), candidates.end());
  for (const double c : candidates) {
    if (feasible(c)) return c;
  }
  // Fall back to after everything (always feasible).
  double last = ready;
  for (const Interval& b : busy) last = std::max(last, b.finish);
  return last;
}

TEST(InsertionProperty, MatchesBruteForceOnRandomTimelines) {
  util::Rng rng(2024);
  for (int iteration = 0; iteration < 300; ++iteration) {
    // Build a random non-overlapping timeline of 0-8 blocks.
    const auto blocks = static_cast<std::size_t>(rng.uniform_int(0, 8));
    Schedule s(blocks == 0 ? 1 : blocks, 1);
    std::vector<Interval> busy;
    double cursor = 0.0;
    for (std::size_t i = 0; i < blocks; ++i) {
      cursor += rng.uniform(0.0, 6.0);  // gap
      const double len = rng.uniform(0.5, 5.0);
      s.place(static_cast<graph::TaskId>(i), 0, cursor, cursor + len);
      busy.push_back({cursor, cursor + len});
      cursor += len;
    }
    const double ready = rng.uniform(0.0, cursor + 4.0);
    const double duration = rng.uniform(0.1, 6.0);

    const double got = s.earliest_start(0, ready, duration, true);
    const double want = brute_force_earliest(busy, ready, duration);
    ASSERT_NEAR(got, want, 1e-6)
        << "iteration " << iteration << " blocks " << blocks << " ready "
        << ready << " duration " << duration;

    // And the returned slot must itself be conflict-free and >= ready.
    ASSERT_GE(got, ready - 1e-9);
    for (const Interval& b : busy) {
      const bool overlap =
          got < b.finish - 1e-9 && b.start < got + duration - 1e-9;
      ASSERT_FALSE(overlap);
    }

    // Non-insertion placement goes after everything.
    const double tail = s.earliest_start(0, ready, duration, false);
    ASSERT_GE(tail + 1e-9, cursor);
    ASSERT_GE(tail + 1e-9, got);  // insertion never loses to end-of-queue
  }
}

TEST(InsertionProperty, ZeroDurationNeverBlockedByGaps) {
  util::Rng rng(7);
  Schedule s(3, 1);
  s.place(0, 0, 2.0, 5.0);
  s.place(1, 0, 8.0, 11.0);
  for (int i = 0; i < 50; ++i) {
    const double ready = rng.uniform(0.0, 12.0);
    // A zero-length block can sit anywhere at/after ready.
    EXPECT_DOUBLE_EQ(s.earliest_start(0, ready, 0.0, true), ready);
  }
}

}  // namespace
}  // namespace hdlts::sim
