// Schedule compaction tests.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/compact.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sim {
namespace {

TEST(Compact, LeftShiftsPaddedSchedule) {
  // Chain 0 -> 1 on one processor with gratuitous idle gaps.
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0.0);
  CostTable costs(2, 1);
  costs.set(0, 0, 5);
  costs.set(1, 0, 5);
  const Workload w{std::move(g), std::move(costs), platform::Platform(1)};
  const Problem p(w);
  Schedule padded(2, 1);
  padded.place(0, 0, 10.0, 15.0);
  padded.place(1, 0, 40.0, 45.0);
  const Schedule tight = compact(p, padded);
  EXPECT_DOUBLE_EQ(tight.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(tight.placement(1).start, 5.0);
  EXPECT_DOUBLE_EQ(tight.makespan(), 10.0);
  EXPECT_TRUE(tight.validate(p).empty());
}

TEST(Compact, IdempotentOnHeuristicSchedules) {
  workload::RandomDagParams params;
  params.num_tasks = 50;
  params.costs.num_procs = 4;
  params.costs.ccr = 2.0;
  const Workload w = workload::random_workload(params, 13);
  const Problem p(w);
  for (auto& scheduler : core::paper_schedulers()) {
    const Schedule s = scheduler->schedule(p);
    const Schedule c1 = compact(p, s);
    const Schedule c2 = compact(p, c1);
    EXPECT_LE(c1.makespan(), s.makespan() + 1e-9) << scheduler->name();
    EXPECT_TRUE(c1.validate(p).empty()) << scheduler->name();
    EXPECT_DOUBLE_EQ(c1.makespan(), c2.makespan()) << scheduler->name();
    for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
      EXPECT_EQ(c1.placement(v).proc, s.placement(v).proc);
      EXPECT_DOUBLE_EQ(c1.placement(v).start, c2.placement(v).start);
    }
  }
}

TEST(Compact, PreservesDuplicates) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const Schedule c = compact(p, s);
  EXPECT_EQ(c.duplicates(0).size(), s.duplicates(0).size());
  EXPECT_DOUBLE_EQ(c.makespan(), 73.0);  // already tight
}

TEST(Compact, ThrowsOnDeadlockedSchedule) {
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0.0);
  CostTable costs(2, 1);
  costs.set(0, 0, 5);
  costs.set(1, 0, 5);
  const Workload w{std::move(g), std::move(costs), platform::Platform(1)};
  const Problem p(w);
  Schedule bad(2, 1);
  bad.place(1, 0, 0.0, 5.0);  // child queued before parent
  bad.place(0, 0, 5.0, 10.0);
  EXPECT_THROW(compact(p, bad), InvalidArgument);
}

}  // namespace
}  // namespace hdlts::sim
