// Unit tests for the pure half of the serve stack: the strict JSON parser
// (util/json_parse.hpp), the JSONL framer, the wire protocol's parse +
// render functions, and the deficit-round-robin fair queue.
//
// The render tests are golden fixtures: they pin the exact bytes of every
// response verb and every error-taxonomy code (docs/SERVICE.md promises a
// fixed key order and %.17g doubles), so any wire-format drift fails here
// long before the e2e CI leg runs a real daemon.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "hdlts/io/workload_io.hpp"
#include "hdlts/net/fair_queue.hpp"
#include "hdlts/net/frame.hpp"
#include "hdlts/net/protocol.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/util/json_parse.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

using net::ErrorCode;
using net::FairQueue;
using net::FairQueueOptions;
using net::LineFramer;
using net::Limits;
using net::ParsedRequest;
using net::ProtocolError;
using net::Verb;
using util::JsonValue;

// ---------------------------------------------------------------- JSON parse

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(util::parse_json("null").is_null());
  EXPECT_TRUE(util::parse_json("true").as_bool());
  EXPECT_FALSE(util::parse_json("false").as_bool());
  EXPECT_EQ(util::parse_json("42").as_number(), 42.0);
  EXPECT_EQ(util::parse_json("-7.5e2").as_number(), -750.0);
  EXPECT_EQ(util::parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(util::parse_json("  3  ").as_number(), 3.0);
}

TEST(JsonParse, IntegersRoundTripExactly) {
  // Integers within the double-exact range must come back bit-exact — the
  // protocol carries seeds and ids this way.
  EXPECT_EQ(util::parse_json("4294967295").as_number(), 4294967295.0);
  EXPECT_EQ(util::parse_json("9007199254740992").as_number(),
            9007199254740992.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(util::parse_json(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  // \uXXXX decodes to UTF-8 (here: é = U+00E9 = 0xC3 0xA9).
  EXPECT_EQ(util::parse_json(R"("\u00e9")").as_string(), "\xc3\xa9");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue v = util::parse_json(
      R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(util::parse_json(""), util::JsonParseError);
  EXPECT_THROW(util::parse_json("{"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("[1,]"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("{\"a\":1,}"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("'single'"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("01"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("1 2"), util::JsonParseError);  // trailing
  EXPECT_THROW(util::parse_json("nul"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("\"unterminated"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("\"bad \x01 ctrl\""), util::JsonParseError);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(util::parse_json(R"({"a":1,"a":2})"), util::JsonParseError);
}

TEST(JsonParse, DepthBounded) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  EXPECT_THROW(util::parse_json(deep), util::JsonParseError);
  // Within the default bound it parses fine.
  std::string ok;
  for (int i = 0; i < 16; ++i) ok += '[';
  for (int i = 0; i < 16; ++i) ok += ']';
  EXPECT_NO_THROW(util::parse_json(ok));
}

TEST(JsonParse, ErrorCarriesOffset) {
  try {
    util::parse_json("{\"a\": tru}");
    FAIL() << "expected JsonParseError";
  } catch (const util::JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

// ------------------------------------------------------------------- framing

TEST(LineFramerTest, SplitsAcrossFeeds) {
  LineFramer framer(1024);
  std::string frame;
  framer.feed("{\"op\":\"pi");
  EXPECT_EQ(framer.next(frame), LineFramer::Next::kNeedMore);
  framer.feed("ng\"}\n{\"op\":\"stats\"}\n");
  ASSERT_EQ(framer.next(frame), LineFramer::Next::kFrame);
  EXPECT_EQ(frame, "{\"op\":\"ping\"}");
  ASSERT_EQ(framer.next(frame), LineFramer::Next::kFrame);
  EXPECT_EQ(frame, "{\"op\":\"stats\"}");
  EXPECT_EQ(framer.next(frame), LineFramer::Next::kNeedMore);
}

TEST(LineFramerTest, StripsCarriageReturn) {
  LineFramer framer(1024);
  std::string frame;
  framer.feed("hello\r\n");
  ASSERT_EQ(framer.next(frame), LineFramer::Next::kFrame);
  EXPECT_EQ(frame, "hello");
}

TEST(LineFramerTest, OverflowIsPermanent) {
  LineFramer framer(8);
  std::string frame;
  framer.feed("0123456789");  // 10 > 8, no newline
  EXPECT_EQ(framer.next(frame), LineFramer::Next::kOverflow);
  EXPECT_TRUE(framer.overflowed());
  framer.feed("\nok\n");  // too late: a line protocol cannot resync
  EXPECT_EQ(framer.next(frame), LineFramer::Next::kOverflow);
}

TEST(LineFramerTest, ExactBoundIsNotOverflow) {
  LineFramer framer(5);
  std::string frame;
  framer.feed("12345\n");  // newline excluded from the bound
  ASSERT_EQ(framer.next(frame), LineFramer::Next::kFrame);
  EXPECT_EQ(frame, "12345");
}

// ------------------------------------------------------- golden render bytes

TEST(ProtocolRender, Pong) {
  EXPECT_EQ(net::render_pong(), "{\"ok\":true,\"op\":\"ping\"}\n");
}

TEST(ProtocolRender, DrainAck) {
  EXPECT_EQ(net::render_drain_ack(),
            "{\"ok\":true,\"op\":\"drain\",\"draining\":true}\n");
}

TEST(ProtocolRender, ErrorEveryCode) {
  EXPECT_EQ(net::render_error(ErrorCode::kMalformedRequest, "bad frame", 7,
                              "alice"),
            "{\"ok\":false,\"code\":1,\"error\":\"MalformedRequest\","
            "\"message\":\"bad frame\",\"id\":7,\"tenant\":\"alice\"}\n");
  EXPECT_EQ(net::render_error(ErrorCode::kOverLimits, "too big", std::nullopt,
                              ""),
            "{\"ok\":false,\"code\":2,\"error\":\"OverLimits\","
            "\"message\":\"too big\"}\n");
  EXPECT_EQ(net::render_error(ErrorCode::kQueueFull, "tenant queue full",
                              std::nullopt, "bob"),
            "{\"ok\":false,\"code\":3,\"error\":\"QueueFull\","
            "\"message\":\"tenant queue full\",\"tenant\":\"bob\"}\n");
  EXPECT_EQ(net::render_error(ErrorCode::kInternal, "boom", 1, ""),
            "{\"ok\":false,\"code\":4,\"error\":\"Internal\","
            "\"message\":\"boom\",\"id\":1}\n");
}

TEST(ProtocolRender, ErrorEscapesMessage) {
  EXPECT_EQ(net::render_error(ErrorCode::kMalformedRequest, "say \"hi\"\n",
                              std::nullopt, ""),
            "{\"ok\":false,\"code\":1,\"error\":\"MalformedRequest\","
            "\"message\":\"say \\\"hi\\\"\\n\"}\n");
}

TEST(ProtocolRender, Stats) {
  net::StatsSnapshot s;
  s.accepted = 10;
  s.rejected = 2;
  s.completed = 9;
  s.active_sessions = 3;
  s.queued = 1;
  s.engine_submitted = 9;
  s.engine_completed = 8;
  s.engine_cancelled = 1;
  s.draining = true;
  EXPECT_EQ(net::render_stats(s),
            "{\"ok\":true,\"op\":\"stats\",\"accepted\":10,\"rejected\":2,"
            "\"completed\":9,\"active_sessions\":3,\"queued\":1,"
            "\"engine_submitted\":9,\"engine_completed\":8,"
            "\"engine_cancelled\":1,\"draining\":true}\n");
}

TEST(ProtocolRender, StaticEntryAndResponse) {
  EXPECT_EQ(net::render_static_entry("heft", true, 12.5, ""),
            "{\"scheduler\":\"heft\",\"ok\":true,\"makespan\":12.5}");
  EXPECT_EQ(net::render_static_entry("nope", false, 0.0, "unknown scheduler"),
            "{\"scheduler\":\"nope\",\"ok\":false,"
            "\"error\":\"unknown scheduler\"}");
  const std::vector<std::string> entries = {
      net::render_static_entry("heft", true, 1.0, ""),
      net::render_static_entry("cpop", true, 2.0, ""),
  };
  EXPECT_EQ(net::render_static_response(5, "alice", 42, entries),
            "{\"ok\":true,\"id\":5,\"tenant\":\"alice\",\"kind\":\"static\","
            "\"seed\":42,\"results\":[{\"scheduler\":\"heft\",\"ok\":true,"
            "\"makespan\":1},{\"scheduler\":\"cpop\",\"ok\":true,"
            "\"makespan\":2}]}\n");
}

TEST(ProtocolRender, MakespanIsRoundTrippable) {
  // %.17g: the rendered token must parse back to the identical double.
  const double makespan = 476.63129587161808;
  const std::string entry = net::render_static_entry("x", true, makespan, "");
  const JsonValue v = util::parse_json(entry);
  EXPECT_EQ(v.find("makespan")->as_number(), makespan);
}

TEST(ProtocolRender, OnlineResponse) {
  core::OnlineResult result;
  result.executions.resize(3);
  result.makespan = 99.25;
  result.completed = true;
  result.lost_executions = 1;
  EXPECT_EQ(net::render_online_response(8, "t", 3, result),
            "{\"ok\":true,\"id\":8,\"tenant\":\"t\",\"kind\":\"online\","
            "\"seed\":3,\"completed\":true,\"makespan\":99.25,"
            "\"executions\":3,\"lost_executions\":1}\n");
}

TEST(ProtocolRender, StreamResponse) {
  core::StreamResult result;
  result.executions.resize(2);
  result.finish = {4.0, 6.5};
  result.flow_time = {4.0, 2.5};
  result.makespan = 6.5;
  EXPECT_EQ(net::render_stream_response(std::nullopt, "t", 0, result),
            "{\"ok\":true,\"tenant\":\"t\",\"kind\":\"stream\",\"seed\":0,"
            "\"makespan\":6.5,\"executions\":2,\"finish\":[4,6.5],"
            "\"flow_time\":[4,2.5]}\n");
}

TEST(ProtocolRender, MetricsHttp) {
  const std::string body = "# TYPE a counter\na 1\n";
  EXPECT_EQ(net::render_metrics_http(body),
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " +
                std::to_string(body.size()) +
                "\r\n"
                "Connection: close\r\n\r\n" +
                body);
}

TEST(ProtocolRender, MetricsRequestDetection) {
  EXPECT_TRUE(net::is_metrics_request("GET /metrics"));
  EXPECT_TRUE(net::is_metrics_request("GET /metrics HTTP/1.1"));
  EXPECT_FALSE(net::is_metrics_request("GET /other"));
  EXPECT_FALSE(net::is_metrics_request("{\"op\":\"ping\"}"));
}

// ------------------------------------------------------------- parse_request

ErrorCode parse_error_code(const std::string& frame,
                           const Limits& limits = {}) {
  try {
    net::parse_request(frame, limits);
  } catch (const ProtocolError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolError for: " << frame;
  return ErrorCode::kInternal;
}

TEST(ParseRequest, ControlVerbs) {
  EXPECT_EQ(net::parse_request("{\"op\":\"ping\"}", {}).verb, Verb::kPing);
  EXPECT_EQ(net::parse_request("{\"op\":\"stats\"}", {}).verb, Verb::kStats);
  EXPECT_EQ(net::parse_request("{\"op\":\"drain\"}", {}).verb, Verb::kDrain);
  const ParsedRequest req =
      net::parse_request("{\"op\":\"ping\",\"id\":9,\"tenant\":\"t\"}", {});
  ASSERT_TRUE(req.id.has_value());
  EXPECT_EQ(*req.id, 9u);
  EXPECT_EQ(req.tenant, "t");
}

TEST(ParseRequest, StaticSubmitWithGenerator) {
  const ParsedRequest req = net::parse_request(
      "{\"op\":\"submit\",\"id\":1,\"seed\":7,"
      "\"generator\":{\"kind\":\"random\",\"tasks\":20,\"cpus\":3},"
      "\"schedulers\":[\"heft\",\"cpop\"]}",
      {});
  EXPECT_EQ(req.verb, Verb::kSubmit);
  EXPECT_EQ(req.job, svc::BatchJob::kStatic);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.tenant, "default");
  ASSERT_TRUE(req.generator.has_value());
  EXPECT_EQ(req.generator->kind, "random");
  EXPECT_EQ(req.generator->tasks, 20u);
  EXPECT_EQ(req.generator->cpus, 3u);
  ASSERT_EQ(req.schedulers.size(), 2u);
  EXPECT_EQ(req.schedulers[0], "heft");
  EXPECT_FALSE(req.workload.has_value());
}

TEST(ParseRequest, InlineWorkloadRoundTrips) {
  // An inline workload travels as the io text format inside a JSON string;
  // the parsed copy must schedule bit-identically to the original.
  workload::RandomDagParams params;
  params.num_tasks = 16;
  params.costs.num_procs = 3;
  const sim::Workload original = workload::random_workload(params, 11);
  std::ostringstream text;
  io::write_workload(text, original);
  const std::string frame =
      "{\"op\":\"submit\",\"schedulers\":[\"heft\"],\"workload\":\"" +
      util::json_escape(text.str()) + "\"}";
  const ParsedRequest req = net::parse_request(frame, {});
  ASSERT_TRUE(req.workload.has_value());
  const sim::Problem a(original);
  const sim::Problem b(*req.workload);
  sched::Heft heft;
  EXPECT_EQ(heft.schedule(a).makespan(), heft.schedule(b).makespan());
}

TEST(ParseRequest, OnlineSubmitWithFailures) {
  const ParsedRequest req = net::parse_request(
      "{\"op\":\"submit\",\"kind\":\"online\","
      "\"generator\":{\"kind\":\"random\"},"
      "\"failures\":[{\"proc\":1,\"time\":5.5},{\"proc\":0}]}",
      {});
  EXPECT_EQ(req.job, svc::BatchJob::kOnline);
  ASSERT_EQ(req.failures.size(), 2u);
  EXPECT_EQ(req.failures[0].proc, 1u);
  EXPECT_EQ(req.failures[0].time, 5.5);
  EXPECT_EQ(req.failures[1].proc, 0u);
  EXPECT_EQ(req.failures[1].time, 0.0);
}

TEST(ParseRequest, StreamSubmitMaterializesArrivals) {
  const ParsedRequest req = net::parse_request(
      "{\"op\":\"submit\",\"kind\":\"stream\",\"seed\":2,\"policy\":\"fifo\","
      "\"arrivals\":["
      "{\"generator\":{\"kind\":\"random\",\"tasks\":10,\"cpus\":3}},"
      "{\"generator\":{\"kind\":\"random\",\"tasks\":10,\"cpus\":3},"
      "\"arrival\":4.5,\"seed\":9}]}",
      {});
  EXPECT_EQ(req.job, svc::BatchJob::kStream);
  ASSERT_EQ(req.arrivals.size(), 2u);
  EXPECT_EQ(req.arrivals[0].arrival, 0.0);
  EXPECT_EQ(req.arrivals[1].arrival, 4.5);
  // First arrival has no seed of its own, so it materialises with the
  // request seed — identical to a direct generator run.
  net::GeneratorSpec spec;
  spec.tasks = 10;
  spec.cpus = 3;
  EXPECT_EQ(req.arrivals[0].workload.graph.num_tasks(),
            net::make_workload(spec, 2).graph.num_tasks());
  EXPECT_EQ(req.stream_options.policy, core::StreamPolicy::kFifoEft);
}

TEST(ParseRequest, MalformedTaxonomy) {
  EXPECT_EQ(parse_error_code("not json"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("[1,2]"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{}"), ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{\"op\":\"nope\"}"),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\"}"),
            ErrorCode::kMalformedRequest);  // neither workload nor generator
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"seed\":-1,"
                             "\"generator\":{},\"schedulers\":[\"heft\"]}"),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"generator\":{},"
                             "\"schedulers\":[]}"),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(
      parse_error_code("{\"op\":\"submit\",\"kind\":\"online\","
                       "\"generator\":{},\"schedulers\":[\"heft\"]}"),
      ErrorCode::kMalformedRequest);  // schedulers on an online submit
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"generator\":{},"
                             "\"schedulers\":[\"heft\"],\"failures\":[]}"),
            ErrorCode::kMalformedRequest);  // failures on a static submit
  EXPECT_EQ(parse_error_code("{\"op\":\"ping\",\"tenant\":\"\"}"),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"kind\":\"stream\","
                             "\"arrivals\":[]}"),
            ErrorCode::kMalformedRequest);
}

TEST(ParseRequest, OverLimitsTaxonomy) {
  Limits limits;
  limits.max_schedulers = 1;
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"generator\":{},"
                             "\"schedulers\":[\"heft\",\"cpop\"]}",
                             limits),
            ErrorCode::kOverLimits);
  limits = {};
  limits.max_tasks = 10;
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\","
                             "\"generator\":{\"tasks\":100},"
                             "\"schedulers\":[\"heft\"]}",
                             limits),
            ErrorCode::kOverLimits);
  limits = {};
  limits.max_procs = 4;
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\","
                             "\"generator\":{\"cpus\":8},"
                             "\"schedulers\":[\"heft\"]}",
                             limits),
            ErrorCode::kOverLimits);
  limits = {};
  limits.max_failures = 1;
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"kind\":\"online\","
                             "\"generator\":{},\"failures\":["
                             "{\"proc\":0},{\"proc\":1}]}",
                             limits),
            ErrorCode::kOverLimits);
  limits = {};
  limits.max_arrivals = 1;
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\",\"kind\":\"stream\","
                             "\"arrivals\":[{\"generator\":{}},"
                             "{\"generator\":{}}]}",
                             limits),
            ErrorCode::kOverLimits);
}

TEST(ParseRequest, ErrorSalvagesIdAndTenant) {
  try {
    net::parse_request(
        "{\"op\":\"submit\",\"id\":77,\"tenant\":\"alice\",\"kind\":\"bad\"}",
        {});
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedRequest);
    ASSERT_TRUE(e.id().has_value());
    EXPECT_EQ(*e.id(), 77u);
    EXPECT_EQ(e.tenant(), "alice");
  }
}

TEST(ParseRequest, RejectsUnknownGeneratorKeys) {
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\","
                             "\"generator\":{\"kind\":\"random\",\"typo\":1},"
                             "\"schedulers\":[\"heft\"]}"),
            ErrorCode::kMalformedRequest);
  EXPECT_EQ(parse_error_code("{\"op\":\"submit\","
                             "\"generator\":{\"kind\":\"mystery\"},"
                             "\"schedulers\":[\"heft\"]}"),
            ErrorCode::kMalformedRequest);
}

// ---------------------------------------------------------------- fair queue

TEST(FairQueueTest, FifoWithinOneTenant) {
  FairQueue<int> q{FairQueueOptions{}};
  ASSERT_EQ(q.push("a", 1), FairQueue<int>::Push::kOk);
  ASSERT_EQ(q.push("a", 2), FairQueue<int>::Push::kOk);
  std::string tenant;
  int item = 0;
  ASSERT_TRUE(q.pop(&tenant, &item));
  EXPECT_EQ(item, 1);
  ASSERT_TRUE(q.pop(&tenant, &item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(q.pop(&tenant, &item));
  EXPECT_TRUE(q.empty());
}

TEST(FairQueueTest, WeightedInterleaveIsExact) {
  // weights a:2, b:1, quantum 1 — the DRR order is pinned exactly:
  // a gets 2 units per round, b gets 1, so the service order repeats
  // a,a,b. Tests drive the queue single-threaded for determinism.
  FairQueueOptions options;
  options.weights = {{"a", 2}, {"b", 1}};
  FairQueue<int> q{options};
  for (int i = 0; i < 6; ++i) ASSERT_EQ(q.push("a", i), FairQueue<int>::Push::kOk);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(q.push("b", i), FairQueue<int>::Push::kOk);
  std::vector<std::string> order;
  std::string tenant;
  int item = 0;
  while (q.pop(&tenant, &item)) order.push_back(tenant);
  const std::vector<std::string> expected = {"a", "a", "b", "a", "a", "b",
                                             "a", "a", "b"};
  EXPECT_EQ(order, expected);
}

TEST(FairQueueTest, FloodingTenantCannotStarveLightTenant) {
  // The flooding tenant fills its whole FIFO before the light tenant's
  // single request arrives; DRR still serves the light tenant within one
  // round (here: the very next pop).
  FairQueueOptions options;
  options.per_tenant_capacity = 64;
  FairQueue<int> q{options};
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(q.push("flood", i), FairQueue<int>::Push::kOk);
  }
  ASSERT_EQ(q.push("light", 999), FairQueue<int>::Push::kOk);
  std::string tenant;
  int item = 0;
  std::size_t pops_until_light = 0;
  while (q.pop(&tenant, &item)) {
    ++pops_until_light;
    if (tenant == "light") break;
  }
  EXPECT_LE(pops_until_light, 2u);
  EXPECT_EQ(item, 999);
}

TEST(FairQueueTest, PerTenantCapacityRejects) {
  FairQueueOptions options;
  options.per_tenant_capacity = 2;
  FairQueue<int> q{options};
  EXPECT_EQ(q.push("a", 1), FairQueue<int>::Push::kOk);
  EXPECT_EQ(q.push("a", 2), FairQueue<int>::Push::kOk);
  EXPECT_EQ(q.push("a", 3), FairQueue<int>::Push::kTenantFull);
  // Another tenant is unaffected by a's full queue.
  EXPECT_EQ(q.push("b", 4), FairQueue<int>::Push::kOk);
  EXPECT_EQ(q.depth("a"), 2u);
  EXPECT_EQ(q.depth("b"), 1u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(FairQueueTest, MaxTenantsRejects) {
  FairQueueOptions options;
  options.max_tenants = 2;
  FairQueue<int> q{options};
  EXPECT_EQ(q.push("a", 1), FairQueue<int>::Push::kOk);
  EXPECT_EQ(q.push("b", 2), FairQueue<int>::Push::kOk);
  EXPECT_EQ(q.push("c", 3), FairQueue<int>::Push::kTooManyTenants);
  EXPECT_EQ(q.num_tenants(), 2u);
}

TEST(FairQueueTest, DrainedTenantLosesDeficit) {
  // Standard DRR: an emptied tenant re-enters its next busy period with a
  // zero deficit — it cannot bank service credit while idle.
  FairQueueOptions options;
  options.weights = {{"a", 5}};
  FairQueue<int> q{options};
  ASSERT_EQ(q.push("a", 1), FairQueue<int>::Push::kOk);
  std::string tenant;
  int item = 0;
  ASSERT_TRUE(q.pop(&tenant, &item));  // a tops up 5, spends 1, drains
  ASSERT_EQ(q.push("a", 2), FairQueue<int>::Push::kOk);
  ASSERT_EQ(q.push("b", 3), FairQueue<int>::Push::kOk);
  // a serves its one item with a fresh top-up, then b is served: the idle
  // period gave a no extra turns.
  ASSERT_TRUE(q.pop(&tenant, &item));
  EXPECT_EQ(tenant, "a");
  ASSERT_TRUE(q.pop(&tenant, &item));
  EXPECT_EQ(tenant, "b");
}

TEST(FairQueueTest, WeightLookupAndValidation) {
  FairQueueOptions options;
  options.default_weight = 2;
  options.weights = {{"vip", 8}};
  FairQueue<int> q{options};
  EXPECT_EQ(q.weight_of("vip"), 8u);
  EXPECT_EQ(q.weight_of("anyone"), 2u);

  FairQueueOptions bad;
  bad.per_tenant_capacity = 0;
  EXPECT_THROW(FairQueue<int>{bad}, InvalidArgument);
  bad = {};
  bad.quantum = 0;
  EXPECT_THROW(FairQueue<int>{bad}, InvalidArgument);
  bad = {};
  bad.weights = {{"x", 0}};
  EXPECT_THROW(FairQueue<int>{bad}, InvalidArgument);
}

TEST(FairQueueTest, DepthsSnapshot) {
  FairQueue<int> q{FairQueueOptions{}};
  ASSERT_EQ(q.push("b", 1), FairQueue<int>::Push::kOk);
  ASSERT_EQ(q.push("a", 2), FairQueue<int>::Push::kOk);
  ASSERT_EQ(q.push("a", 3), FairQueue<int>::Push::kOk);
  const auto depths = q.depths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths[0].first, "a");
  EXPECT_EQ(depths[0].second, 2u);
  EXPECT_EQ(depths[1].first, "b");
  EXPECT_EQ(depths[1].second, 1u);
}

}  // namespace
}  // namespace hdlts
