// Differential tests for intra-problem parallelism in the compiled HDLTS
// path: with a borrowed util::ThreadPool attached (sched::Scheduler::
// set_thread_pool) the per-entry EFT refresh and the ready-task row fills
// fan out across workers, and the schedule must stay bit-identical to the
// fully serial run — the entries write disjoint state and the selection rule
// is order-independent, so this is an exact (==, not near) contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/thread_pool.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

sim::Workload random_problem(std::uint64_t seed) {
  util::Rng rng(util::derive_seed(seed, 0xc0deULL));
  workload::RandomDagParams params;
  params.num_tasks = 15 + seed % 7 * 9;                // 15..69 tasks
  params.alpha = (seed % 3 == 0) ? 0.5 : ((seed % 3 == 1) ? 1.0 : 2.0);
  params.density = 1 + seed % 4;
  params.costs.num_procs = 2 + seed % 7;               // 2..8 processors
  params.costs.ccr = (seed % 4 == 0) ? 0.5 : ((seed % 4 == 1) ? 2.0 : 8.0);
  sim::Workload w = workload::random_workload(params, seed);
  for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
    if (w.platform.num_alive() > 1 && rng() % 4 == 0) {
      w.platform.set_alive(p, false);
    }
  }
  return w;
}

/// A wide workload: many independent chains keep the ITQ large, so the
/// parallel gate actually opens for a meaningful share of the rounds.
sim::Workload wide_problem(std::uint64_t seed) {
  workload::RandomDagParams params;
  params.num_tasks = 400;
  params.alpha = 2.0;  // shallow and wide
  params.density = 2;
  params.costs.num_procs = 8;
  params.costs.ccr = 1.0;
  return workload::random_workload(params, seed);
}

void expect_identical(const sim::Schedule& got, const sim::Schedule& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_tasks(), want.num_tasks()) << what;
  for (graph::TaskId v = 0; v < got.num_tasks(); ++v) {
    SCOPED_TRACE(what + ", task " + std::to_string(v));
    const sim::Placement& a = got.placement(v);
    const sim::Placement& b = want.placement(v);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.finish, b.finish);
    const auto da = got.duplicates(v);
    const auto db = want.duplicates(v);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
}

void expect_pool_matches_serial(const core::HdltsOptions& options,
                                const sim::Problem& problem,
                                util::ThreadPool& pool,
                                const std::string& what) {
  const core::Hdlts serial(options);
  core::Hdlts parallel(options);
  parallel.set_thread_pool(&pool);
  const sim::Schedule want = serial.schedule(problem);
  const sim::Schedule got = parallel.schedule(problem);
  expect_identical(got, want, what);
}

TEST(ParallelEft, BitIdenticalAcrossVariantsAndSeeds) {
  util::ThreadPool pool(4);
  // parallel_min_work = 0 forces the team dispatch on every round, so even
  // the small grid problems exercise the parallel path (the default 4096
  // threshold would keep them serial).
  std::vector<core::HdltsOptions> variants(4);
  variants[0].parallel_min_work = 0;
  variants[1].parallel_min_work = 0;
  variants[1].dynamic_priorities = false;
  variants[2].parallel_min_work = 0;
  variants[2].pv = core::PvKind::kRange;
  variants[3].parallel_min_work = 0;
  variants[3].insertion = true;
  variants[3].duplicate_all_sources = true;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const sim::Workload w = random_problem(seed * 7 + 1);
    const sim::Problem problem(w);
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      expect_pool_matches_serial(variants[vi], problem, pool,
                                 "variant " + std::to_string(vi) + ", seed " +
                                     std::to_string(seed));
    }
  }
}

TEST(ParallelEft, BitIdenticalOnWideProblemsWithDefaultThreshold) {
  util::ThreadPool pool(4);
  // Default threshold: wide 400-task / 8-proc problems open the gate on the
  // big rounds and stay serial on the small ones — both paths inside one run.
  const core::HdltsOptions options;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const sim::Workload w = wide_problem(seed + 11);  // Problem is a view
    const sim::Problem problem(w);
    expect_pool_matches_serial(options, problem, pool,
                               "wide seed " + std::to_string(seed));
  }
}

TEST(ParallelEft, PoolOfOneAndRepeatedRunsAreStable) {
  // A 1-worker pool degenerates to the caller doing all chunks; repeated
  // runs through the same scheduler instance (warm arena) must not drift.
  util::ThreadPool pool(1);
  core::HdltsOptions options;
  options.parallel_min_work = 0;
  core::Hdlts parallel(options);
  parallel.set_thread_pool(&pool);
  const core::Hdlts serial(options);
  const sim::Workload w = random_problem(42);  // Problem is a view
  const sim::Problem problem(w);
  const sim::Schedule want = serial.schedule(problem);
  sim::Schedule recycled(1, 1);
  for (int rep = 0; rep < 3; ++rep) {
    parallel.schedule_into(problem, recycled);
    expect_identical(recycled, want, "rep " + std::to_string(rep));
  }
}

}  // namespace
}  // namespace hdlts
