// svc::BatchEngine tests: bit-identical schedules vs serial execution,
// backpressure rejection, shutdown with in-flight work, and metrics
// accounting (submitted == completed + cancelled, attempts == submitted +
// rejected). The BatchStress suite runs the same engine under contention
// (bounded queue, multiple producers) and is sized by
// HDLTS_BATCH_STRESS_REQUESTS so the CI ThreadSanitizer job can scale it up.
#include "hdlts/svc/batch_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

using svc::BatchEngine;
using svc::BatchEngineOptions;
using svc::BatchRequest;
using svc::BatchResult;

sim::Workload make_workload(std::size_t tasks, std::size_t procs,
                            std::uint64_t seed) {
  workload::RandomDagParams params;
  params.num_tasks = tasks;
  params.costs.num_procs = procs;
  return workload::random_workload(params, seed);
}

/// Every placement triple, duplicate, and the makespan must match exactly —
/// "deterministic" for the engine means bit-identical to a serial run, not
/// merely equal makespans.
void expect_bit_identical(const sim::Schedule& a, const sim::Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.makespan(), b.makespan());
  for (graph::TaskId v = 0; v < a.num_tasks(); ++v) {
    const sim::Placement& pa = a.placement(v);
    const sim::Placement& pb = b.placement(v);
    EXPECT_EQ(pa.proc, pb.proc) << "task " << v;
    EXPECT_EQ(pa.start, pb.start) << "task " << v;
    EXPECT_EQ(pa.finish, pb.finish) << "task " << v;
    const auto da = a.duplicates(v);
    const auto db = b.duplicates(v);
    ASSERT_EQ(da.size(), db.size()) << "task " << v;
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc) << "task " << v << " dup " << i;
      EXPECT_EQ(da[i].start, db[i].start) << "task " << v << " dup " << i;
      EXPECT_EQ(da[i].finish, db[i].finish) << "task " << v << " dup " << i;
    }
  }
}

/// Thread-safe collector that copies every result (schedule included) so
/// the test can compare after shutdown. Keyed by (request id, scheduler
/// index); duplicate keys fail the test.
struct Collector {
  struct Entry {
    bool ok = false;
    std::string scheduler;
    std::string error;
    double makespan = 0.0;
    sim::Schedule schedule{0, 1};
  };

  svc::ResultFn callback() {
    return [this](const BatchResult& r) {
      Entry entry;
      entry.ok = r.ok;
      entry.scheduler = std::string(r.scheduler);
      entry.error = std::string(r.error);
      entry.makespan = r.makespan;
      if (r.schedule != nullptr) entry.schedule = *r.schedule;
      std::lock_guard lock(mu);
      const auto [it, inserted] =
          entries.emplace(std::pair{r.id, r.scheduler_index},
                          std::move(entry));
      EXPECT_TRUE(inserted) << "duplicate result for id " << r.id;
      (void)it;
    };
  }

  std::mutex mu;
  std::map<std::pair<std::uint64_t, std::size_t>, Entry> entries;
};

const std::vector<std::string> kSchedulers = {"hdlts", "heft", "cpop"};

TEST(BatchEngine, BitIdenticalToSerialOver100Problems) {
  constexpr std::size_t kProblems = 100;
  std::vector<sim::Workload> workloads;
  std::vector<sim::Problem> problems;
  workloads.reserve(kProblems);
  problems.reserve(kProblems);
  for (std::size_t i = 0; i < kProblems; ++i) {
    const std::size_t tasks = 20 + (i * 7) % 120;
    const std::size_t procs = 2 + i % 7;
    workloads.push_back(
        make_workload(tasks, procs, util::derive_seed(1234, i)));
    problems.emplace_back(workloads.back());
  }

  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.threads = 4;
  options.queue_capacity = 16;
  {
    BatchEngine engine(registry, collector.callback(), options);
    ASSERT_EQ(engine.threads(), 4u);
    BatchRequest request;
    request.schedulers = kSchedulers;
    for (std::size_t i = 0; i < kProblems; ++i) {
      request.id = i;
      request.problem = &problems[i];
      ASSERT_TRUE(engine.submit(request));
    }
    engine.shutdown(BatchEngine::Drain::kDrain);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, kProblems);
    EXPECT_EQ(stats.completed, kProblems);
    EXPECT_EQ(stats.sched_failures, 0u);
  }

  // Serial reference: the same recycled-schedule entry point the engine
  // workers use, one scheduler instance per name.
  ASSERT_EQ(collector.entries.size(), kProblems * kSchedulers.size());
  for (std::size_t si = 0; si < kSchedulers.size(); ++si) {
    const auto scheduler = registry.make(kSchedulers[si]);
    sim::Schedule serial(0, 1);
    for (std::size_t i = 0; i < kProblems; ++i) {
      scheduler->schedule_into(problems[i], serial);
      const auto it = collector.entries.find({i, si});
      ASSERT_NE(it, collector.entries.end());
      ASSERT_TRUE(it->second.ok) << it->second.error;
      SCOPED_TRACE(kSchedulers[si] + " problem " + std::to_string(i));
      expect_bit_identical(serial, it->second.schedule);
    }
  }
}

TEST(BatchEngine, DeterministicAcrossThreadCounts) {
  constexpr std::size_t kProblems = 24;
  std::vector<sim::Workload> workloads;
  std::vector<sim::Problem> problems;
  for (std::size_t i = 0; i < kProblems; ++i) {
    workloads.push_back(make_workload(30 + i * 5, 3 + i % 4,
                                      util::derive_seed(77, i)));
  }
  for (const auto& w : workloads) problems.emplace_back(w);

  const sched::Registry registry = core::default_registry();
  auto run = [&](std::size_t threads) {
    Collector collector;
    BatchEngineOptions options;
    options.threads = threads;
    options.queue_capacity = 8;
    BatchEngine engine(registry, collector.callback(), options);
    BatchRequest request;
    request.schedulers = kSchedulers;
    for (std::size_t i = 0; i < kProblems; ++i) {
      request.id = i;
      request.problem = &problems[i];
      EXPECT_TRUE(engine.submit(request));
    }
    engine.shutdown(BatchEngine::Drain::kDrain);
    std::map<std::pair<std::uint64_t, std::size_t>, double> makespans;
    for (const auto& [key, entry] : collector.entries) {
      EXPECT_TRUE(entry.ok);
      makespans[key] = entry.makespan;
    }
    return makespans;
  };

  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one, four);
}

TEST(BatchEngine, GeneratedRequestsMatchDirectProblems) {
  const svc::WorkloadFn generator = [](std::uint64_t seed) {
    return make_workload(60, 4, seed);
  };
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.threads = 3;
  {
    BatchEngine engine(registry, collector.callback(), options);
    BatchRequest request;
    request.generator = &generator;
    request.schedulers = kSchedulers;
    for (std::size_t i = 0; i < 16; ++i) {
      request.id = i;
      request.seed = util::derive_seed(9, i);
      ASSERT_TRUE(engine.submit(request));
    }
    engine.shutdown(BatchEngine::Drain::kDrain);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const sim::Workload w = generator(util::derive_seed(9, i));
    const sim::Problem problem(w);
    for (std::size_t si = 0; si < kSchedulers.size(); ++si) {
      const auto scheduler = registry.make(kSchedulers[si]);
      const sim::Schedule serial = scheduler->schedule(problem);
      const auto it = collector.entries.find({i, si});
      ASSERT_NE(it, collector.entries.end());
      ASSERT_TRUE(it->second.ok) << it->second.error;
      EXPECT_EQ(serial.makespan(), it->second.makespan);
    }
  }
}

/// A generator whose first call parks its worker until release() — the
/// deterministic way to hold the (single-threaded) engine busy while the
/// test fills the queue behind it.
struct GateGenerator {
  GateGenerator() : fn([this](std::uint64_t seed) {
    entered.set_value();
    release_future.wait();
    return make_workload(20, 2, seed);
  }) {}

  void wait_entered() { entered.get_future().wait(); }
  void release() { release_promise.set_value(); }

  std::promise<void> entered;
  std::promise<void> release_promise;
  std::shared_future<void> release_future{release_promise.get_future()};
  svc::WorkloadFn fn;
};

TEST(BatchEngine, BackpressureRejectsWhenQueueFull) {
  const sim::Workload w = make_workload(25, 3, 5);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  GateGenerator gate;
  Collector collector;
  BatchEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  BatchEngine engine(registry, collector.callback(), options);

  BatchRequest blocked;
  blocked.id = 100;
  blocked.generator = &gate.fn;
  blocked.schedulers = {"heft"};
  ASSERT_TRUE(engine.submit(blocked));
  gate.wait_entered();  // the only worker is now parked inside the request

  BatchRequest direct;
  direct.problem = &problem;
  direct.schedulers = {"heft"};
  direct.id = 0;
  ASSERT_TRUE(engine.try_submit(direct));
  direct.id = 1;
  ASSERT_TRUE(engine.try_submit(direct));

  // Queue full (capacity 2) and the worker is parked: both submission
  // flavors must reject instead of deadlocking.
  direct.id = 2;
  EXPECT_FALSE(engine.try_submit(direct));
  EXPECT_FALSE(engine.submit(direct, std::chrono::milliseconds(20)));
  EXPECT_EQ(engine.stats().rejected, 2u);
  EXPECT_EQ(engine.stats().queue_high_water, 2u);

  gate.release();
  engine.wait_idle();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(collector.entries.size(), 3u);
}

TEST(BatchEngine, ShutdownDrainFinishesQueuedWork) {
  const sim::Workload w = make_workload(40, 4, 3);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.threads = 2;
  options.queue_capacity = 64;
  BatchEngine engine(registry, collector.callback(), options);
  BatchRequest request;
  request.problem = &problem;
  request.schedulers = kSchedulers;
  for (std::size_t i = 0; i < 32; ++i) {
    request.id = i;
    ASSERT_TRUE(engine.submit(request));
  }
  engine.shutdown(BatchEngine::Drain::kDrain);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.completed, 32u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(collector.entries.size(), 32u * kSchedulers.size());
}

TEST(BatchEngine, ShutdownCancelDropsQueuedButFinishesInFlight) {
  const sim::Workload w = make_workload(25, 3, 9);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  GateGenerator gate;
  Collector collector;
  BatchEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 8;
  BatchEngine engine(registry, collector.callback(), options);

  BatchRequest blocked;
  blocked.id = 50;
  blocked.generator = &gate.fn;
  blocked.schedulers = {"heft"};
  ASSERT_TRUE(engine.submit(blocked));
  gate.wait_entered();

  BatchRequest direct;
  direct.problem = &problem;
  direct.schedulers = {"heft"};
  for (std::size_t i = 0; i < 3; ++i) {
    direct.id = i;
    ASSERT_TRUE(engine.try_submit(direct));
  }

  // shutdown(kCancel) blocks until the in-flight gate request finishes, so
  // the gate must open from another thread — once the cancellation has
  // provably happened (cancelled == 3).
  std::thread releaser([&] {
    while (engine.stats().cancelled != 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate.release();
  });
  engine.shutdown(BatchEngine::Drain::kCancel);
  releaser.join();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 1u);  // only the in-flight request ran
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled);
  ASSERT_EQ(collector.entries.size(), 1u);
  EXPECT_EQ(collector.entries.begin()->first.first, 50u);
}

TEST(BatchEngine, SubmissionsAfterShutdownAreRejected) {
  const sim::Workload w = make_workload(20, 2, 1);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngine engine(registry, collector.callback(), {});
  engine.shutdown();
  BatchRequest request;
  request.problem = &problem;
  request.schedulers = {"heft"};
  EXPECT_FALSE(engine.try_submit(request));
  EXPECT_FALSE(engine.submit(request));
  EXPECT_FALSE(engine.submit(request, std::chrono::milliseconds(5)));
  EXPECT_EQ(engine.stats().rejected, 3u);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST(BatchEngine, MalformedRequestsThrow) {
  const sim::Workload w = make_workload(20, 2, 1);
  const sim::Problem problem(w);
  const svc::WorkloadFn generator = [](std::uint64_t seed) {
    return make_workload(20, 2, seed);
  };
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngine engine(registry, collector.callback(), {});

  BatchRequest neither;
  neither.schedulers = {"heft"};
  EXPECT_THROW(engine.try_submit(neither), InvalidArgument);

  BatchRequest both;
  both.problem = &problem;
  both.generator = &generator;
  both.schedulers = {"heft"};
  EXPECT_THROW(engine.try_submit(both), InvalidArgument);

  BatchRequest no_schedulers;
  no_schedulers.problem = &problem;
  EXPECT_THROW(engine.try_submit(no_schedulers), InvalidArgument);

  EXPECT_EQ(engine.stats().submitted, 0u);
  EXPECT_EQ(engine.stats().rejected, 0u);
}

TEST(BatchEngine, UnknownSchedulerFailsThatResultOnly) {
  const sim::Workload w = make_workload(30, 3, 2);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngine engine(registry, collector.callback(), {});
  BatchRequest request;
  request.id = 7;
  request.problem = &problem;
  request.schedulers = {"heft", "definitely-not-a-scheduler", "cpop"};
  ASSERT_TRUE(engine.submit(request));
  engine.shutdown();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.sched_failures, 1u);
  ASSERT_EQ(collector.entries.size(), 3u);
  EXPECT_TRUE(collector.entries.at({7, 0}).ok);
  EXPECT_FALSE(collector.entries.at({7, 1}).ok);
  EXPECT_FALSE(collector.entries.at({7, 1}).error.empty());
  EXPECT_TRUE(collector.entries.at({7, 2}).ok);
}

TEST(BatchEngine, OnlineJobsMatchDirectRuns) {
  // A kOnline request must deliver exactly the result core::run_online
  // produces for the same (problem, fault plan), regardless of which worker
  // picks it up or how warm that worker's recycled online state is.
  const sim::Workload w = make_workload(40, 4, 5);
  const sim::Problem problem(w);
  const std::vector<std::vector<core::ProcFailure>> plans = {
      {},
      {{1, 10.0}},
      {{0, 5.0}, {2, 20.0}},
  };
  const sched::Registry registry = core::default_registry();
  std::mutex mu;
  std::map<std::uint64_t, std::pair<bool, double>> got;  // id -> (ok, mk)
  std::map<std::uint64_t, std::size_t> lost;
  BatchEngineOptions options;
  options.threads = 2;
  BatchEngine engine(
      registry,
      [&](const BatchResult& r) {
        EXPECT_EQ(r.scheduler, "hdlts-online");
        EXPECT_EQ(r.schedule, nullptr);
        ASSERT_NE(r.online, nullptr);
        std::lock_guard lock(mu);
        got[r.id] = {r.ok, r.makespan};
        lost[r.id] = r.online->lost_executions;
      },
      options);
  for (std::size_t round = 0; round < 3; ++round) {  // warm + reuse
    for (std::size_t i = 0; i < plans.size(); ++i) {
      BatchRequest request;
      request.id = round * plans.size() + i;
      request.problem = &problem;
      request.job = svc::BatchJob::kOnline;
      request.failures = plans[i];
      ASSERT_TRUE(engine.submit(request));
    }
  }
  engine.shutdown();
  ASSERT_EQ(got.size(), 9u);
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const core::OnlineResult want = core::run_online(w, plans[i]);
      const std::uint64_t id = round * plans.size() + i;
      EXPECT_TRUE(got.at(id).first);
      EXPECT_EQ(got.at(id).second, want.makespan) << "id " << id;
      EXPECT_EQ(lost.at(id), want.lost_executions) << "id " << id;
    }
  }
}

TEST(BatchEngine, StreamJobsMatchDirectRuns) {
  // A kStream request must deliver exactly the result core::run_stream
  // produces for the same arrival list, under both ITQ policies, regardless
  // of which worker picks it up or how warm its recycled stream state is.
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({make_workload(20, 3, 1), 0.0});
  arrivals.push_back({make_workload(15, 3, 2), 12.5});
  arrivals.push_back({make_workload(25, 3, 3), 30.0});
  std::vector<core::StreamOptions> variants(2);
  variants[0].policy = core::StreamPolicy::kHdltsPv;
  variants[1].policy = core::StreamPolicy::kFifoEft;
  const sched::Registry registry = core::default_registry();
  std::mutex mu;
  std::map<std::uint64_t, core::StreamResult> got;
  BatchEngineOptions options;
  options.threads = 2;
  BatchEngine engine(
      registry,
      [&](const BatchResult& r) {
        EXPECT_EQ(r.scheduler, "hdlts-stream");
        EXPECT_TRUE(r.ok) << r.error;
        ASSERT_NE(r.stream, nullptr);
        std::lock_guard lock(mu);
        got[r.id] = *r.stream;  // copy the worker's recycled buffer
      },
      options);
  for (std::size_t round = 0; round < 2; ++round) {  // warm + reuse
    for (std::size_t v = 0; v < variants.size(); ++v) {
      BatchRequest request;
      request.id = round * variants.size() + v;
      request.job = svc::BatchJob::kStream;
      request.arrivals = &arrivals;
      request.stream_options = variants[v];
      ASSERT_TRUE(engine.submit(request));
    }
  }
  engine.shutdown();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const core::StreamResult want = core::run_stream(arrivals, variants[v]);
      const core::StreamResult& have = got.at(round * variants.size() + v);
      EXPECT_EQ(have.makespan, want.makespan);
      EXPECT_EQ(have.finish, want.finish);
      EXPECT_EQ(have.flow_time, want.flow_time);
      ASSERT_EQ(have.executions.size(), want.executions.size());
      for (std::size_t i = 0; i < want.executions.size(); ++i) {
        EXPECT_EQ(have.executions[i].workflow, want.executions[i].workflow);
        EXPECT_EQ(have.executions[i].task, want.executions[i].task);
        EXPECT_EQ(have.executions[i].proc, want.executions[i].proc);
        EXPECT_EQ(have.executions[i].start, want.executions[i].start);
        EXPECT_EQ(have.executions[i].finish, want.executions[i].finish);
      }
    }
  }
}

TEST(BatchEngine, StreamJobValidation) {
  const sched::Registry registry = core::default_registry();
  BatchEngine engine(registry, [](const BatchResult&) {}, {});
  const sim::Workload w = make_workload(10, 3, 1);
  const sim::Problem problem(w);
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({make_workload(10, 3, 2), 0.0});

  BatchRequest request;
  request.job = svc::BatchJob::kStream;
  request.arrivals = &arrivals;
  request.problem = &problem;  // kStream must leave problem unset
  EXPECT_THROW(engine.submit(request), InvalidArgument);

  request.problem = nullptr;
  request.arrivals = nullptr;  // and needs arrivals
  EXPECT_THROW(engine.submit(request), InvalidArgument);

  request.job = svc::BatchJob::kStatic;
  request.problem = &problem;
  request.schedulers = {"heft"};
  request.arrivals = &arrivals;  // arrivals only valid on kStream
  EXPECT_THROW(engine.submit(request), InvalidArgument);
}

TEST(BatchEngine, OnlineJobWithSchedulerNamesThrows) {
  const sched::Registry registry = core::default_registry();
  BatchEngine engine(registry, [](const BatchResult&) {}, {});
  const sim::Workload w = make_workload(10, 3, 1);
  const sim::Problem problem(w);
  BatchRequest request;
  request.problem = &problem;
  request.job = svc::BatchJob::kOnline;
  request.schedulers = {"heft"};
  EXPECT_THROW(engine.submit(request), InvalidArgument);
}

TEST(BatchEngine, ValidationFailuresSurfaceAsFailedResults) {
  const sim::Workload w = make_workload(30, 3, 4);
  const sim::Problem problem(w);
  // "random" places work arbitrarily but still validly, so use a registry
  // check instead: check_schedules with a healthy scheduler must not fail.
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.check_schedules = true;
  BatchEngine engine(registry, collector.callback(), options);
  BatchRequest request;
  request.problem = &problem;
  request.schedulers = kSchedulers;
  ASSERT_TRUE(engine.submit(request));
  engine.shutdown();
  EXPECT_EQ(engine.stats().sched_failures, 0u);
  for (const auto& [key, entry] : collector.entries) {
    EXPECT_TRUE(entry.ok) << entry.error;
  }
}

TEST(BatchEngine, MetricsRegistryMirrorsEngineStats) {
  auto& registry_metrics = obs::MetricRegistry::global();
  const auto submitted0 =
      registry_metrics.counter("svc.batch.submitted").value();
  const auto completed0 =
      registry_metrics.counter("svc.batch.completed").value();
  const auto rejected0 = registry_metrics.counter("svc.batch.rejected").value();

  const sim::Workload w = make_workload(30, 3, 8);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.threads = 2;
  options.queue_capacity = 4;
  {
    BatchEngine engine(registry, collector.callback(), options);
    BatchRequest request;
    request.problem = &problem;
    request.schedulers = {"heft"};
    for (std::size_t i = 0; i < 10; ++i) {
      request.id = i;
      ASSERT_TRUE(engine.submit(request));
    }
    engine.shutdown();
    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, 10u);
    EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled);
    EXPECT_EQ(registry_metrics.counter("svc.batch.submitted").value(),
              submitted0 + stats.submitted);
    EXPECT_EQ(registry_metrics.counter("svc.batch.completed").value(),
              completed0 + stats.completed);
    EXPECT_EQ(registry_metrics.counter("svc.batch.rejected").value(),
              rejected0 + stats.rejected);
    // Latency histogram: one observation per successful (request, scheduler).
    EXPECT_GE(registry_metrics
                  .histogram("svc.batch.latency_ms.heft",
                             std::span<const double>{})
                  .count(),
              stats.completed);
  }
}

TEST(BatchEngine, StealsDrainAParkedWorkersShard) {
  // Deterministic stealing scenario: park BOTH workers inside gate
  // generators (one request lands in each shard, so each worker ends up
  // inside one), queue direct requests round-robin across both shards, then
  // release a single worker. The still-parked worker's shard can only drain
  // through steals, so the free worker must record at least one.
  const sim::Workload w = make_workload(25, 3, 7);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  GateGenerator gate_a;
  GateGenerator gate_b;
  Collector collector;
  BatchEngineOptions options;
  options.threads = 2;
  options.queue_capacity = 16;
  BatchEngine engine(registry, collector.callback(), options);
  ASSERT_EQ(engine.threads(), 2u);

  BatchRequest blocked;
  blocked.schedulers = {"heft"};
  blocked.id = 1000;
  blocked.generator = &gate_a.fn;
  ASSERT_TRUE(engine.submit(blocked));
  blocked.id = 1001;
  blocked.generator = &gate_b.fn;
  ASSERT_TRUE(engine.submit(blocked));
  gate_a.wait_entered();
  gate_b.wait_entered();  // both workers parked, both shards empty

  constexpr std::size_t kDirects = 8;  // dealt 4 into each shard
  BatchRequest direct;
  direct.problem = &problem;
  direct.schedulers = {"heft"};
  for (std::size_t i = 0; i < kDirects; ++i) {
    direct.id = i;
    ASSERT_TRUE(engine.try_submit(direct));
  }

  gate_a.release();  // one worker drains everything; its peer stays parked
  while (engine.stats().completed < 1 + kDirects) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(engine.stats().steals, 1u);

  gate_b.release();
  engine.shutdown(BatchEngine::Drain::kDrain);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2 + kDirects);
  EXPECT_EQ(stats.completed, 2 + kDirects);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled);
  EXPECT_EQ(collector.entries.size(), 2 + kDirects);
  // The steal counter mirrors into the metric registry.
  EXPECT_GE(obs::MetricRegistry::global().counter("svc.batch.steals").value(),
            stats.steals);
}

TEST(BatchEngine, SingleThreadNeverSteals) {
  const sim::Workload w = make_workload(20, 2, 4);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  Collector collector;
  BatchEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 8;
  BatchEngine engine(registry, collector.callback(), options);
  BatchRequest request;
  request.problem = &problem;
  request.schedulers = {"heft"};
  for (std::size_t i = 0; i < 12; ++i) {
    request.id = i;
    ASSERT_TRUE(engine.submit(request));
  }
  engine.shutdown(BatchEngine::Drain::kDrain);
  EXPECT_EQ(engine.stats().steals, 0u);
  EXPECT_EQ(engine.stats().completed, 12u);
}

// ---------------------------------------------------------------------------
// Stress suite: sized via HDLTS_BATCH_STRESS_REQUESTS (CI TSan runs a larger
// setting). Contention by construction: a queue much smaller than the
// request count (every submit exercises blocking backpressure) and two
// producer threads.
// ---------------------------------------------------------------------------

TEST(BatchStress, ContendedProducersStayDeterministic) {
  const auto requests = static_cast<std::size_t>(
      util::env_int("HDLTS_BATCH_STRESS_REQUESTS", 200));
  constexpr std::size_t kDistinctProblems = 8;
  std::vector<sim::Workload> workloads;
  std::vector<sim::Problem> problems;
  for (std::size_t i = 0; i < kDistinctProblems; ++i) {
    workloads.push_back(make_workload(50, 4, util::derive_seed(31, i)));
  }
  for (const auto& w : workloads) problems.emplace_back(w);

  const sched::Registry registry = core::default_registry();
  // Serial reference makespans, one per (problem, scheduler).
  std::vector<std::vector<double>> reference(kDistinctProblems);
  for (std::size_t p = 0; p < kDistinctProblems; ++p) {
    for (const auto& name : kSchedulers) {
      reference[p].push_back(
          registry.make(name)->schedule(problems[p]).makespan());
    }
  }

  // Lock-free result recording: every (id, scheduler) owns its own slot.
  std::vector<double> makespans(requests * kSchedulers.size(), -1.0);
  auto on_result = [&](const BatchResult& r) {
    ASSERT_TRUE(r.ok) << r.error;
    makespans[r.id * kSchedulers.size() + r.scheduler_index] = r.makespan;
  };

  BatchEngineOptions options;
  options.threads = 4;
  options.queue_capacity = 8;  // far below `requests`: submits block
  BatchEngine engine(registry, on_result, options);

  auto producer = [&](std::size_t begin, std::size_t end) {
    BatchRequest request;
    request.schedulers = kSchedulers;
    for (std::size_t i = begin; i < end; ++i) {
      request.id = i;
      request.problem = &problems[i % kDistinctProblems];
      ASSERT_TRUE(engine.submit(request));
    }
  };
  std::thread half([&] { producer(0, requests / 2); });
  producer(requests / 2, requests);
  half.join();
  engine.shutdown(BatchEngine::Drain::kDrain);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, requests);
  EXPECT_EQ(stats.completed, requests);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.sched_failures, 0u);
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_LE(stats.queue_high_water, options.queue_capacity);

  for (std::size_t i = 0; i < requests; ++i) {
    for (std::size_t si = 0; si < kSchedulers.size(); ++si) {
      EXPECT_EQ(makespans[i * kSchedulers.size() + si],
                reference[i % kDistinctProblems][si])
          << "request " << i << " scheduler " << kSchedulers[si];
    }
  }
}

TEST(BatchStress, BurstySubmissionExercisesStealing) {
  // Bursts much larger than the worker count land in every shard while
  // request costs vary (different problem sizes), so fast workers go
  // stealing from slow ones — the contended shape the CI TSan job soaks.
  const auto requests = static_cast<std::size_t>(
      util::env_int("HDLTS_BATCH_STRESS_REQUESTS", 200));
  std::vector<sim::Workload> workloads;
  std::vector<sim::Problem> problems;
  for (std::size_t i = 0; i < 6; ++i) {
    // 10..60 tasks: an order of magnitude spread in per-request cost.
    workloads.push_back(make_workload(10 + i * 10, 3, util::derive_seed(7, i)));
  }
  for (const auto& w : workloads) problems.emplace_back(w);
  const sched::Registry registry = core::default_registry();

  std::atomic<std::size_t> ok_results{0};
  auto on_result = [&](const BatchResult& r) {
    ASSERT_TRUE(r.ok) << r.error;
    ok_results.fetch_add(1);
  };
  BatchEngineOptions options;
  options.threads = 4;
  options.queue_capacity = 64;
  BatchEngine engine(registry, on_result, options);
  BatchRequest request;
  request.schedulers = {"hdlts"};
  for (std::size_t i = 0; i < requests; ++i) {
    request.id = i;
    request.problem = &problems[i % problems.size()];
    ASSERT_TRUE(engine.submit(request));
    // Drain bursts completely so the next burst starts from idle — fast
    // workers repeatedly outrun slow ones and go stealing.
    if (i % 48 == 47) engine.wait_idle();
  }
  engine.shutdown(BatchEngine::Drain::kDrain);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, requests);
  EXPECT_EQ(stats.completed, requests);
  EXPECT_EQ(ok_results.load(), requests);
  EXPECT_EQ(stats.sched_failures, 0u);
}

TEST(BatchStress, RepeatedStartupShutdownCycles) {
  const sim::Workload w = make_workload(30, 3, 6);
  const sim::Problem problem(w);
  const sched::Registry registry = core::default_registry();
  for (std::size_t cycle = 0; cycle < 8; ++cycle) {
    Collector collector;
    BatchEngineOptions options;
    options.threads = 3;
    options.queue_capacity = 4;
    BatchEngine engine(registry, collector.callback(), options);
    BatchRequest request;
    request.problem = &problem;
    request.schedulers = {"heft"};
    for (std::size_t i = 0; i < 6; ++i) {
      request.id = i;
      ASSERT_TRUE(engine.submit(request));
    }
    // Alternate drain and cancel shutdowns; the accounting invariant holds
    // for both.
    engine.shutdown(cycle % 2 == 0 ? BatchEngine::Drain::kDrain
                                   : BatchEngine::Drain::kCancel);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled);
  }
}

}  // namespace
}  // namespace hdlts
