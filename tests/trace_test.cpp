// JSON trace export tests: structural sanity (balanced, quoted, expected
// keys/counts) without a JSON library.
#include <gtest/gtest.h>

#include <algorithm>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/trace.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::sim {
namespace {

bool balanced(const std::string& s) {
  int depth = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++depth;
        break;
      case '}':
        --depth;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    if (depth < 0 || brackets < 0) return false;
  }
  return depth == 0 && brackets == 0 && !in_string;
}

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(ScheduleJson, ContainsEveryBlockAndBalances) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const std::string json = schedule_json(s, &w.graph);
  EXPECT_TRUE(balanced(json));
  // 10 primaries + 2 entry duplicates.
  EXPECT_EQ(count_substr(json, "\"task\":"), 12u);
  EXPECT_EQ(count_substr(json, "\"duplicate\":true"), 2u);
  EXPECT_NE(json.find("\"makespan\":73"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"T1\""), std::string::npos);
}

TEST(ScheduleJson, WorksWithoutGraph) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const std::string json = schedule_json(s);
  EXPECT_TRUE(balanced(json));
  EXPECT_EQ(json.find("\"name\""), std::string::npos);
}

TEST(ReplayJson, ReportsFlagsAndTimes) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const EngineResult r = replay(p, s);
  const std::string json = replay_json(r);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"matches_schedule\":true"), std::string::npos);
  EXPECT_NE(json.find("\"deadlocked\":false"), std::string::npos);
  EXPECT_EQ(count_substr(json, "\"scheduled\":["), 12u);
  EXPECT_EQ(count_substr(json, "\"actual\":["), 12u);
}

}  // namespace
}  // namespace hdlts::sim
