// JSON trace export tests: structural sanity (balanced, quoted, expected
// keys/counts) without a JSON library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/obs/export.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/sim/trace.hpp"
#include "hdlts/util/json.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sim {
namespace {

bool balanced(const std::string& s) {
  int depth = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++depth;
        break;
      case '}':
        --depth;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    if (depth < 0 || brackets < 0) return false;
  }
  return depth == 0 && brackets == 0 && !in_string;
}

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(ScheduleJson, ContainsEveryBlockAndBalances) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const std::string json = schedule_json(s, &w.graph);
  EXPECT_TRUE(balanced(json));
  // 10 primaries + 2 entry duplicates.
  EXPECT_EQ(count_substr(json, "\"task\":"), 12u);
  EXPECT_EQ(count_substr(json, "\"duplicate\":true"), 2u);
  EXPECT_NE(json.find("\"makespan\":73"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"T1\""), std::string::npos);
}

TEST(ScheduleJson, WorksWithoutGraph) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const std::string json = schedule_json(s);
  EXPECT_TRUE(balanced(json));
  EXPECT_EQ(json.find("\"name\""), std::string::npos);
}

TEST(ReplayJson, ReportsFlagsAndTimes) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  const Schedule s = core::Hdlts().schedule(p);
  const EngineResult r = replay(p, s);
  const std::string json = replay_json(r);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"matches_schedule\":true"), std::string::npos);
  EXPECT_NE(json.find("\"deadlocked\":false"), std::string::npos);
  EXPECT_EQ(count_substr(json, "\"scheduled\":["), 12u);
  EXPECT_EQ(count_substr(json, "\"actual\":["), 12u);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(util::json_number(73.0), "73");
  EXPECT_EQ(util::json_number(-2.5), "-2.5");
  EXPECT_EQ(util::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::json_number(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(util::json_number(std::nan("")), "null");
  // %.17g round-trips every finite double exactly.
  EXPECT_EQ(std::stod(util::json_number(0.1)), 0.1);
  EXPECT_EQ(std::stod(util::json_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(ReplayJson, DeadlockedReplayStaysValidJson) {
  // 0 -> {1, 2} -> 3 with the child queued before its parent on proc 0:
  // nothing can execute, every actual time stays +inf — which must come out
  // as `null`, not the invalid token `inf`.
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 1, 6);
  g.add_edge(0, 2, 6);
  g.add_edge(1, 3, 6);
  g.add_edge(2, 3, 6);
  CostTable costs(4, 2);
  for (graph::TaskId v = 0; v < 4; ++v) {
    costs.set(v, 0, 10);
    costs.set(v, 1, 10);
  }
  const Workload w{std::move(g), std::move(costs), platform::Platform(2)};
  const Problem p(w);
  Schedule s(4, 2);
  s.place(1, 0, 0.0, 10.0);
  s.place(0, 0, 10.0, 20.0);
  s.place(2, 1, 26.0, 36.0);
  s.place(3, 1, 52.0, 62.0);
  const EngineResult r = replay(p, s);
  ASSERT_TRUE(r.deadlocked);
  const std::string json = replay_json(r);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"deadlocked\":true"), std::string::npos);
  EXPECT_EQ(count_substr(json, "\"actual\":["), 4u);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ReplayJson, NonFiniteTimesSerializeAsNull) {
  // The writer must never emit the invalid tokens `inf`/`nan` — a result
  // with non-finite times still round-trips as valid JSON with nulls.
  EngineResult r;
  r.makespan = std::numeric_limits<double>::infinity();
  ExecutedBlock b;
  b.scheduled = Placement{0, 0, 0.0, 10.0, false};
  b.actual_start = std::numeric_limits<double>::quiet_NaN();
  b.actual_finish = -std::numeric_limits<double>::infinity();
  r.blocks.push_back(b);
  const std::string json = replay_json(r);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"makespan\":null"), std::string::npos);
  EXPECT_NE(json.find("\"actual\":[null,null]"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ChromeTrace, FiftyTaskRoundTripLanesMonotone) {
  workload::RandomDagParams params;
  params.num_tasks = 50;
  const Workload w = workload::random_workload(params, 3);
  const Problem p(w);
  obs::RecordingTrace trace;
  core::Hdlts scheduler;
  scheduler.set_trace_sink(&trace);
  const Schedule s = scheduler.schedule(p);
  ASSERT_EQ(trace.steps().size(), p.num_tasks());

  std::ostringstream os;
  obs::ChromeTraceOptions options;
  options.graph = &w.graph;
  obs::write_chrome_trace(os, &s, &trace, nullptr, options);
  const std::string json = os.str();
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  // The emitter writes one event per line, "pid"/"tid"/"ts" first — parse
  // each and require non-decreasing timestamps within every (pid, tid) lane.
  std::istringstream lines(json);
  std::string line;
  std::map<std::pair<int, long long>, double> last_ts;
  std::size_t complete = 0;
  std::size_t instants = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"pid\":", 0) != 0) continue;
    int pid = 0;
    long long tid = 0;
    double ts = -1.0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"pid\":%d,\"tid\":%lld,\"ts\":%lf",
                          &pid, &tid, &ts),
              3);
    EXPECT_GE(ts, 0.0);
    const auto [it, fresh] = last_ts.try_emplace({pid, tid}, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "lane (" << pid << "," << tid
                                << ") went backwards: " << line;
      it->second = ts;
    }
    if (line.find("\"ph\":\"X\"") != std::string::npos) ++complete;
    if (line.find("\"ph\":\"i\"") != std::string::npos) ++instants;
  }
  // Every schedule block becomes a complete event; every step a "select"
  // instant (plus any duplication verdicts).
  EXPECT_GE(complete, s.num_placed());
  EXPECT_GE(instants, p.num_tasks());
  // Decision lane (pid 2, tid 0) plus one lane per processor.
  EXPECT_GE(last_ts.size(), 1u + p.num_procs());
}

}  // namespace
}  // namespace hdlts::sim
