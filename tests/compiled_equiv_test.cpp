// Differential property tests for the compiled problem view and the
// template-over-view scheduler port.
//
// Two contracts:
//   1. Round-trip: every value CompiledProblem serves (CSR adjacency, W,
//      bandwidth, cached statistics, structure) is bit-exact against the
//      mutable TaskGraph / CostTable / Platform it was compiled from, on
//      200+ random problems including dead-processor subsets.
//   2. Path equivalence: every ported scheduler produces a bit-identical
//      schedule on the compiled path and the legacy pointer-chasing path
//      (set_use_compiled(false)) — the two template instantiations share
//      the same arithmetic, only the data layout differs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sim/compiled.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

sim::Workload random_problem(std::uint64_t seed) {
  util::Rng rng(util::derive_seed(seed, 0xc0deULL));
  workload::RandomDagParams params;
  params.num_tasks = 15 + seed % 7 * 9;                // 15..69 tasks
  params.alpha = (seed % 3 == 0) ? 0.5 : ((seed % 3 == 1) ? 1.0 : 2.0);
  params.density = 1 + seed % 4;
  params.costs.num_procs = 2 + seed % 7;               // 2..8 processors
  params.costs.ccr = (seed % 4 == 0) ? 0.5 : ((seed % 4 == 1) ? 2.0 : 8.0);
  sim::Workload w = workload::random_workload(params, seed);
  for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
    if (w.platform.num_alive() > 1 && rng() % 4 == 0) {
      w.platform.set_alive(p, false);
    }
  }
  return w;
}

void expect_round_trip(const sim::Workload& w, const std::string& what) {
  const sim::CompiledProblem c(w.graph, w.costs, w.platform);
  const graph::TaskGraph& g = w.graph;
  SCOPED_TRACE(what);

  ASSERT_EQ(c.num_tasks(), g.num_tasks());
  ASSERT_EQ(c.num_procs(), w.platform.num_procs());
  EXPECT_EQ(c.num_edges(), g.num_edges());

  // CSR adjacency: same neighbours, same order, bit-identical volumes.
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto gc = g.children(v);
    const auto cc = c.children(v);
    ASSERT_EQ(cc.size(), gc.size()) << "children of " << v;
    for (std::size_t i = 0; i < gc.size(); ++i) {
      EXPECT_EQ(cc[i].task, gc[i].task);
      EXPECT_EQ(cc[i].data, gc[i].data);
    }
    const auto gp = g.parents(v);
    const auto cp = c.parents(v);
    ASSERT_EQ(cp.size(), gp.size()) << "parents of " << v;
    for (std::size_t i = 0; i < gp.size(); ++i) {
      EXPECT_EQ(cp[i].task, gp[i].task);
      EXPECT_EQ(cp[i].data, gp[i].data);
    }
    EXPECT_EQ(c.out_degree(v), g.out_degree(v));
    EXPECT_EQ(c.in_degree(v), g.in_degree(v));
    for (const graph::Adjacent& a : gc) {
      EXPECT_EQ(c.edge_data(v, a.task), g.edge_data(v, a.task));
    }
  }

  // W matrix and cached per-task statistics.
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto row = w.costs.row(v);
    const auto crow = c.cost_row(v);
    ASSERT_EQ(crow.size(), row.size());
    for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
      EXPECT_EQ(crow[p], row[p]);
      EXPECT_EQ(c.exec_time(v, p), w.costs(v, p));
    }
    EXPECT_EQ(c.mean_cost(v), w.costs.mean(v));
    EXPECT_EQ(c.min_cost(v), w.costs.min(v));
    EXPECT_EQ(c.stddev_cost(v), w.costs.stddev_sample(v));
    const bool free =
        std::all_of(row.begin(), row.end(), [](double x) { return x <= 0.0; });
    EXPECT_EQ(c.is_free_task(v), free);
  }

  // Bandwidth table and derived communication times.
  EXPECT_EQ(c.mean_bandwidth(), w.platform.mean_bandwidth());
  for (platform::ProcId a = 0; a < w.platform.num_procs(); ++a) {
    for (platform::ProcId b = 0; b < w.platform.num_procs(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(c.bandwidth(a, b), w.platform.bandwidth(a, b));
      const double data = 17.25 * (a + 1) + b;
      EXPECT_EQ(c.comm_time_data(data, a, b),
                data / w.platform.bandwidth(a, b));
    }
    EXPECT_EQ(c.comm_time_data(123.5, a, a), 0.0);
  }
  EXPECT_EQ(c.mean_comm_data(42.75), 42.75 / w.platform.mean_bandwidth());

  // Structure: topological order, levels, entries/exits, alive processors.
  const auto topo = graph::topological_order(g);
  ASSERT_EQ(c.topo_order().size(), topo.size());
  EXPECT_TRUE(std::equal(topo.begin(), topo.end(), c.topo_order().begin()));
  const auto levels = graph::precedence_levels(g);
  ASSERT_EQ(c.levels().size(), levels.size());
  EXPECT_TRUE(
      std::equal(levels.begin(), levels.end(), c.levels().begin()));
  const auto entries = g.entry_tasks();
  ASSERT_EQ(c.entry_tasks().size(), entries.size());
  EXPECT_TRUE(
      std::equal(entries.begin(), entries.end(), c.entry_tasks().begin()));
  const auto exits = g.exit_tasks();
  ASSERT_EQ(c.exit_tasks().size(), exits.size());
  EXPECT_TRUE(std::equal(exits.begin(), exits.end(), c.exit_tasks().begin()));

  const auto alive = w.platform.alive_procs();
  ASSERT_EQ(c.procs().size(), alive.size());
  EXPECT_TRUE(std::equal(alive.begin(), alive.end(), c.procs().begin()));
  EXPECT_EQ(c.num_alive(), w.platform.num_alive());
  for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
    const auto it = std::find(alive.begin(), alive.end(), p);
    if (it == alive.end()) {
      EXPECT_EQ(c.column_of(p), sim::CompiledProblem::kNoColumn);
    } else {
      EXPECT_EQ(c.column_of(p),
                static_cast<std::size_t>(it - alive.begin()));
    }
  }
}

TEST(CompiledRoundTrip, BitExactOn200RandomProblems) {
  std::size_t problems = 0;
  for (std::uint64_t seed = 0; seed < 210; ++seed) {
    expect_round_trip(random_problem(seed), "seed " + std::to_string(seed));
    ++problems;
  }
  EXPECT_GE(problems, 200u);
}

TEST(CompiledRoundTrip, RejectsInvalidDimensionsLikeWorkloadValidate) {
  sim::Workload w = random_problem(1);
  // A cost table with the wrong task count must be rejected at compile time
  // with the same exception Workload::validate throws.
  const sim::CostTable wrong(w.graph.num_tasks() + 1,
                             w.platform.num_procs());
  EXPECT_THROW(sim::CompiledProblem(w.graph, wrong, w.platform),
               InvalidArgument);
}

void expect_identical(const sim::Schedule& got, const sim::Schedule& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_tasks(), want.num_tasks()) << what;
  for (graph::TaskId v = 0; v < got.num_tasks(); ++v) {
    SCOPED_TRACE(what + ", task " + std::to_string(v));
    const sim::Placement& a = got.placement(v);
    const sim::Placement& b = want.placement(v);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.finish, b.finish);
    const auto da = got.duplicates(v);
    const auto db = want.duplicates(v);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
}

TEST(CompiledPathEquivalence, AllPortedSchedulersMatchLegacyBitwise) {
  const sched::Registry registry = core::default_registry();
  const std::vector<std::string> ported = {
      "hdlts",       "hdlts-nodup",     "hdlts-static", "hdlts-popstddev",
      "hdlts-range", "hdlts-insertion", "hdlts-multidup",
      "heft",        "cpop",            "peft",         "pets",
      "sdbats",      "dls",             "lookahead"};
  std::size_t problems = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const sim::Workload w = random_problem(seed * 13 + 5);
    const sim::Problem problem(w);
    for (const std::string& name : ported) {
      const auto compiled_sched = registry.make(name);
      const auto legacy_sched = registry.make(name);
      legacy_sched->set_use_compiled(false);
      ASSERT_TRUE(compiled_sched->use_compiled());
      const sim::Schedule got = compiled_sched->schedule(problem);
      const sim::Schedule want = legacy_sched->schedule(problem);
      expect_identical(got, want, name + ", seed " + std::to_string(seed));
      ++problems;
    }
  }
  // 24 problems x 14 schedulers = 336 compiled/legacy pairs.
  EXPECT_GE(problems, 200u);
}

TEST(CompiledPathEquivalence, RecycledScheduleMatchesFreshSchedule) {
  // schedule_into into a dirty recycled Schedule must equal schedule() into
  // a fresh one — reset() has to clear every piece of incremental state.
  const sched::Registry registry = core::default_registry();
  for (const char* name : {"hdlts", "heft", "cpop", "dls"}) {
    const auto scheduler = registry.make(name);
    sim::Schedule recycled(1, 1);
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const sim::Workload w = random_problem(seed * 31 + 2);
      const sim::Problem problem(w);
      scheduler->schedule_into(problem, recycled);
      const sim::Schedule fresh = scheduler->schedule(problem);
      expect_identical(recycled, fresh,
                       std::string(name) + ", seed " + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace hdlts
