// Workload serialization round-trip and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "hdlts/io/workload_io.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::io {
namespace {

TEST(WorkloadIo, RoundTripClassic) {
  const sim::Workload w = workload::classic_workload();
  std::stringstream ss;
  write_workload(ss, w);
  const sim::Workload back = read_workload(ss);
  ASSERT_EQ(back.graph.num_tasks(), w.graph.num_tasks());
  ASSERT_EQ(back.graph.num_edges(), w.graph.num_edges());
  ASSERT_EQ(back.platform.num_procs(), w.platform.num_procs());
  for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
    for (platform::ProcId p = 0; p < w.platform.num_procs(); ++p) {
      EXPECT_DOUBLE_EQ(back.costs(v, p), w.costs(v, p));
    }
  }
  EXPECT_DOUBLE_EQ(back.graph.edge_data(8, 9), 13.0);
}

TEST(WorkloadIo, RoundTripPreservesBandwidthOverrides) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_bandwidth(0, 2, 2.5);
  std::stringstream ss;
  write_workload(ss, w);
  const sim::Workload back = read_workload(ss);
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(0, 2), 2.5);
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(2, 0), 2.5);
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(0, 1), 1.0);
}

TEST(WorkloadIo, RoundTripRandomWorkloadBitExact) {
  workload::RandomDagParams params;
  params.num_tasks = 60;
  params.costs.num_procs = 4;
  const sim::Workload w = workload::random_workload(params, 77);
  std::stringstream ss;
  write_workload(ss, w);
  const sim::Workload back = read_workload(ss);
  for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
    for (platform::ProcId p = 0; p < 4; ++p) {
      EXPECT_EQ(back.costs(v, p), w.costs(v, p));  // exact, 17 digits
    }
  }
}

TEST(WorkloadIo, FileRoundTrip) {
  const sim::Workload w = workload::classic_workload();
  const std::string path = ::testing::TempDir() + "/hdlts_io_test.wl";
  save_workload(path, w);
  const sim::Workload back = load_workload(path);
  EXPECT_EQ(back.graph.num_tasks(), 10u);
  std::remove(path.c_str());
  EXPECT_THROW(load_workload("/nonexistent/dir/x.wl"), Error);
}

TEST(WorkloadIo, RejectsMissingPlatform) {
  std::istringstream is("workflow 1\ntask 0 a 1\ncost 0 5\n");
  EXPECT_THROW(read_workload(is), InvalidArgument);
}

TEST(WorkloadIo, RejectsMissingCostRow) {
  std::istringstream is(
      "workflow 2\ntask 0 a 1\ntask 1 b 1\nedge 0 1 2\nplatform 1\n"
      "cost 0 5\n");
  EXPECT_THROW(read_workload(is), InvalidArgument);
}

TEST(WorkloadIo, RejectsShortCostRow) {
  std::istringstream is(
      "workflow 1\ntask 0 a 1\nplatform 2\ncost 0 5\n");
  EXPECT_THROW(read_workload(is), InvalidArgument);
}

TEST(WorkloadIo, RejectsBadBandwidthLine) {
  std::istringstream is(
      "workflow 1\ntask 0 a 1\nplatform 2\nbandwidth 0 junk\ncost 0 5 5\n");
  EXPECT_THROW(read_workload(is), InvalidArgument);
}

}  // namespace
}  // namespace hdlts::io
