// Parameterized generator-fidelity sweep: for every workload family and
// every (CCR, beta) combination, the paper's cost-model identities must
// hold on the generated instance:
//   Eq. 13: wbar*(1 - beta/2) <= W(i,j) <= wbar*(1 + beta/2)
//   Eq. 14: data(u, v) = wbar_u * CCR   (0 on pseudo-task edges)
// plus: pseudo tasks are free, and the W-matrix dimensions match.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/laplace.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::workload {
namespace {

using Case = std::tuple<std::string, double /*ccr*/, double /*beta*/>;

sim::Workload make(const std::string& family, const CostParams& costs,
                   std::uint64_t seed) {
  if (family == "random") {
    RandomDagParams p;
    p.num_tasks = 60;
    p.costs = costs;
    return random_workload(p, seed);
  }
  if (family == "fft") {
    FftParams p;
    p.points = 8;
    p.costs = costs;
    return fft_workload(p, seed);
  }
  if (family == "montage") {
    MontageParams p;
    p.num_nodes = 50;
    p.costs = costs;
    return montage_workload(p, seed);
  }
  if (family == "md") {
    MdParams p;
    p.costs = costs;
    return md_workload(p, seed);
  }
  if (family == "gauss") {
    GaussParams p;
    p.matrix_size = 7;
    p.costs = costs;
    return gauss_workload(p, seed);
  }
  if (family == "laplace") {
    LaplaceParams p;
    p.size = 6;
    p.costs = costs;
    return laplace_workload(p, seed);
  }
  ForkJoinParams p;
  p.costs = costs;
  return forkjoin_workload(p, seed);
}

class CostModelProperty : public ::testing::TestWithParam<Case> {};

TEST_P(CostModelProperty, GeneratorObeysCostModel) {
  const auto& [family, ccr, beta] = GetParam();
  CostParams costs;
  costs.num_procs = 4;
  costs.wdag = 60.0;
  costs.ccr = ccr;
  costs.beta = beta;
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    const sim::Workload w = make(family, costs, seed);
    ASSERT_EQ(w.costs.num_tasks(), w.graph.num_tasks());
    ASSERT_EQ(w.costs.num_procs(), 4u);
    for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
      const double wbar = w.graph.work(v);
      ASSERT_GE(wbar, 0.0);
      ASSERT_LE(wbar, 2.0 * costs.wdag + 1e-9);
      for (platform::ProcId p = 0; p < 4; ++p) {
        // Eq. 13 band; degenerate band (beta = 0) collapses to wbar.
        EXPECT_GE(w.costs(v, p), wbar * (1.0 - beta / 2.0) - 1e-9);
        EXPECT_LE(w.costs(v, p), wbar * (1.0 + beta / 2.0) + 1e-9);
      }
      if (wbar == 0.0) {
        // Pseudo task: free everywhere, zero-data out-edges.
        for (platform::ProcId p = 0; p < 4; ++p) {
          EXPECT_DOUBLE_EQ(w.costs(v, p), 0.0);
        }
      }
      for (const graph::Adjacent& c : w.graph.children(v)) {
        // Eq. 14.
        EXPECT_NEAR(c.data, wbar * ccr, 1e-9);
      }
    }
  }
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (const char* family :
       {"random", "fft", "montage", "md", "gauss", "laplace", "forkjoin"}) {
    for (const double ccr : {0.0, 1.0, 5.0}) {
      for (const double beta : {0.0, 0.8, 2.0}) {
        out.emplace_back(family, ccr, beta);
      }
    }
  }
  return out;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& [family, ccr, beta] = info.param;
  return family + "_ccr" + std::to_string(static_cast<int>(ccr * 10)) +
         "_beta" + std::to_string(static_cast<int>(beta * 10));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CostModelProperty,
                         ::testing::ValuesIn(cases()), case_name);

}  // namespace
}  // namespace hdlts::workload
