// Deterministic simulation testing sweep (check::run_dst): seeded fault
// injection across every workload family, with every run replayed through
// the dynamic validators. The tier-1 default is a bounded smoke; set
// HDLTS_DST_ROUNDS to scale it into a soak (the CI TSan job runs one).
// docs/TESTING.md describes how to replay a printed counterexample seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include <string>

#include "hdlts/check/dst.hpp"
#include "hdlts/check/faultplan.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/util/env.hpp"

namespace hdlts {
namespace {

std::size_t configured_rounds() {
  const std::int64_t env = util::env_int("HDLTS_DST_ROUNDS", 0);
  return env > 0 ? static_cast<std::size_t>(env) : check::DstOptions{}.rounds;
}

void report_counterexamples(const check::DstReport& report) {
  for (const check::DstCounterexample& cx : report.counterexamples) {
    ADD_FAILURE() << "DST counterexample (seed=" << cx.seed
                  << ", family=" << cx.family << ", scenario=" << cx.scenario
                  << ")\n  reproducer: " << cx.reproducer
                  << "\n  first violation: " << cx.violations.front();
  }
}

TEST(DstTest, SweepFindsNoViolations) {
  check::DstOptions options;
  options.rounds = configured_rounds();
  const check::DstReport report = check::run_dst(options);
  report_counterexamples(report);
  EXPECT_TRUE(report.ok());
  // The acceptance bar: a real sweep, not a stub. Five families x five
  // rounds x nine plans clears 200 validated fault-injection runs.
  EXPECT_GE(report.online_runs, 200u);
  // Two ITQ policies per (family, round) cell.
  EXPECT_GE(report.stream_runs, 2u * 5u * std::min<std::size_t>(options.rounds, 5));
}

TEST(DstTest, SweepComparesCompiledAgainstLegacyByDefault) {
  // The compiled/legacy differential is part of the default sweep: every
  // online cell and both stream policies replay through the legacy
  // reference schedulers and ==-compare executions, makespan, and lost
  // counts. Divergence surfaces as a counterexample.
  EXPECT_TRUE(check::DstOptions{}.compare_legacy);
  check::DstOptions options;
  options.rounds = 1;
  options.compare_legacy = true;
  const check::DstReport report = check::run_dst(options);
  EXPECT_TRUE(report.ok());
}

TEST(DstTest, SweepIsCleanUnderForcedSimdBackends) {
  const std::string saved(simd::active_backend());
  for (const char* backend : {"scalar", "avx2"}) {
    if (simd::backend(backend) == nullptr) continue;
    ASSERT_TRUE(simd::force_backend(backend));
    check::DstOptions options;
    options.rounds = 1;
    const check::DstReport report = check::run_dst(options);
    report_counterexamples(report);
    EXPECT_TRUE(report.ok()) << "backend " << backend;
  }
  simd::force_backend(saved);
}

TEST(DstTest, SweepIsDeterministic) {
  check::DstOptions options;
  options.rounds = 1;
  const check::DstReport a = check::run_dst(options);
  const check::DstReport b = check::run_dst(options);
  EXPECT_EQ(a.online_runs, b.online_runs);
  EXPECT_EQ(a.stream_runs, b.stream_runs);
  EXPECT_EQ(a.counterexamples.size(), b.counterexamples.size());
}

TEST(DstTest, FaultPlansAreSeededAndShaped) {
  const auto plans = check::make_fault_plans(4, 100.0, 42);
  const auto again = check::make_fault_plans(4, 100.0, 42);
  ASSERT_EQ(plans.size(), again.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ASSERT_EQ(plans[i].failures.size(), again[i].failures.size());
    for (std::size_t j = 0; j < plans[i].failures.size(); ++j) {
      EXPECT_EQ(plans[i].failures[j].proc, again[i].failures[j].proc);
      EXPECT_EQ(plans[i].failures[j].time, again[i].failures[j].time);
    }
  }
  // The family must include the empty plan, an all-procs-die-at-zero plan
  // (forced failure), and at least one forced-completion fault plan.
  bool has_empty = false;
  bool has_must_fail = false;
  bool has_must_complete_with_faults = false;
  for (const check::FaultPlan& p : plans) {
    if (p.failures.empty()) has_empty = true;
    if (p.expectation == check::PlanExpectation::kMustFail) {
      has_must_fail = true;
      EXPECT_EQ(p.failures.size(), 4u);
      for (const auto& f : p.failures) EXPECT_EQ(f.time, 0.0);
    }
    if (p.expectation == check::PlanExpectation::kMustComplete &&
        !p.failures.empty()) {
      has_must_complete_with_faults = true;
    }
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_must_fail);
  EXPECT_TRUE(has_must_complete_with_faults);
  // Seeds must matter: a different seed reshuffles at least the times.
  const auto other = check::make_fault_plans(4, 100.0, 43);
  bool differs = false;
  for (std::size_t i = 0; i < plans.size() && !differs; ++i) {
    if (plans[i].failures.size() != other[i].failures.size()) differs = true;
    for (std::size_t j = 0; !differs && j < plans[i].failures.size(); ++j) {
      differs = plans[i].failures[j].proc != other[i].failures[j].proc ||
                plans[i].failures[j].time != other[i].failures[j].time;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace hdlts
