// Branch-and-bound and genetic-algorithm scheduler tests. The B&B optimum
// anchors heuristic quality: on small graphs every list heuristic must be
// >= optimal, and optimal must be >= the critical-path lower bound.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/sched/genetic.hpp"
#include "hdlts/sched/optimal.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sched {
namespace {

TEST(BranchAndBound, RefusesLargeInstances) {
  workload::RandomDagParams p;
  p.num_tasks = 50;
  const sim::Workload w = workload::random_workload(p, 1);
  const sim::Problem problem(w);
  EXPECT_THROW(BranchAndBound(13).schedule(problem), InvalidArgument);
}

TEST(BranchAndBound, OptimalOnClassicGraph) {
  // The classic 10-task graph is small enough to solve exactly. HDLTS's 73
  // already ties the best duplication-free eager schedule... or beats it —
  // B&B does not duplicate, so it may land above 73 but must be <= HEFT.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem problem(w);
  BranchAndBound bnb(10);
  const sim::Schedule s = bnb.schedule(problem);
  EXPECT_TRUE(s.validate(problem).empty());
  EXPECT_GT(bnb.nodes_explored(), 0u);
  EXPECT_LE(s.makespan(), 80.0);  // no worse than its HEFT seed
  EXPECT_GE(s.makespan(), metrics::min_cost_critical_path(problem));
}

TEST(BranchAndBound, MatchesBruteForceIntuitionOnChain) {
  // A chain must be scheduled sequentially on the fastest path; optimum is
  // easy to state: stay on one processor (no comm) choosing min cost per
  // task is NOT always allowed (comm), but with zero comm it is.
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  sim::CostTable costs(4, 2);
  const double w[4][2] = {{4, 6}, {7, 3}, {5, 5}, {2, 9}};
  for (graph::TaskId v = 0; v < 4; ++v) {
    costs.set(v, 0, w[v][0]);
    costs.set(v, 1, w[v][1]);
  }
  const sim::Workload wl{std::move(g), std::move(costs),
                         platform::Platform(2)};
  const sim::Problem problem(wl);
  const sim::Schedule s = BranchAndBound(6).schedule(problem);
  // Zero comm: optimum = sum of min costs = 4 + 3 + 5 + 2 = 14.
  EXPECT_DOUBLE_EQ(s.makespan(), 14.0);
}

TEST(BranchAndBound, LowerBoundsEveryHeuristicOnSmallGraphs) {
  const sched::Registry reg = core::default_registry();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomDagParams p;
    p.num_tasks = 9;
    p.costs.num_procs = 3;
    p.costs.ccr = 2.0;
    const sim::Workload w = workload::random_workload(p, seed);
    const sim::Problem problem(w);
    const double optimum = BranchAndBound(12).schedule(problem).makespan();
    EXPECT_GE(optimum, metrics::min_cost_critical_path(problem) - 1e-9);
    // Duplication-free heuristics cannot beat the duplication-free optimum.
    for (const char* name : {"heft", "cpop", "pets", "peft", "dls", "minmin",
                             "maxmin", "mct", "random", "hdlts-nodup"}) {
      const double h = reg.make(name)->schedule(problem).makespan();
      EXPECT_GE(h, optimum - 1e-6) << name << " seed " << seed;
    }
  }
}

TEST(Genetic, OptionsValidation) {
  GeneticOptions o;
  o.population = 1;
  EXPECT_THROW(Genetic{o}, InvalidArgument);
  o = GeneticOptions{};
  o.tournament = 0;
  EXPECT_THROW(Genetic{o}, InvalidArgument);
  o = GeneticOptions{};
  o.elites = o.population;
  EXPECT_THROW(Genetic{o}, InvalidArgument);
  o = GeneticOptions{};
  o.crossover_rate = 1.5;
  EXPECT_THROW(Genetic{o}, InvalidArgument);
}

TEST(Genetic, ValidAndDeterministicPerSeed) {
  workload::RandomDagParams p;
  p.num_tasks = 30;
  p.costs.num_procs = 3;
  const sim::Workload w = workload::random_workload(p, 5);
  const sim::Problem problem(w);
  GeneticOptions o;
  o.generations = 10;
  const sim::Schedule a = Genetic(o).schedule(problem);
  const sim::Schedule b = Genetic(o).schedule(problem);
  EXPECT_TRUE(a.validate(problem).empty());
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  o.seed = 2;
  const sim::Schedule c = Genetic(o).schedule(problem);
  EXPECT_TRUE(c.validate(problem).empty());
}

TEST(Genetic, SearchBeatsRandomOrderBaseline) {
  workload::RandomDagParams p;
  p.num_tasks = 40;
  p.costs.num_procs = 4;
  p.costs.ccr = 2.0;
  double genetic_total = 0.0;
  double random_total = 0.0;
  const sched::Registry reg = core::default_registry();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::Workload w = workload::random_workload(p, seed);
    const sim::Problem problem(w);
    genetic_total += reg.make("genetic")->schedule(problem).makespan();
    random_total += reg.make("random")->schedule(problem).makespan();
  }
  EXPECT_LT(genetic_total, random_total);
}

TEST(Genetic, ApproachesOptimumOnTinyInstances) {
  workload::RandomDagParams p;
  p.num_tasks = 8;
  p.costs.num_procs = 2;
  const sim::Workload w = workload::random_workload(p, 11);
  const sim::Problem problem(w);
  const double optimum = BranchAndBound(10).schedule(problem).makespan();
  GeneticOptions o;
  o.generations = 80;
  const double ga = Genetic(o).schedule(problem).makespan();
  EXPECT_GE(ga, optimum - 1e-6);
  EXPECT_LE(ga, optimum * 1.15);  // within 15% of optimal on 8 tasks
}

}  // namespace
}  // namespace hdlts::sched
