// Tests for the SVG report module: builder escaping/structure, Gantt
// rendering, and the paper-style line charts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/report/chart.hpp"
#include "hdlts/report/gantt_svg.hpp"
#include "hdlts/report/svg.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::report {
namespace {

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(Svg, DocumentStructure) {
  Svg svg(200, 100);
  svg.rect(0, 0, 10, 10, "#ff0000");
  svg.line(0, 0, 5, 5, "#000000");
  svg.circle(3, 3, 1, "#00ff00");
  svg.text(1, 1, "hello");
  const std::string out = svg.str();
  EXPECT_NE(out.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(out.find("viewBox=\"0 0 200 100\""), std::string::npos);
  EXPECT_NE(out.find("<rect"), std::string::npos);
  EXPECT_NE(out.find("<line"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find(">hello</text>"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
}

TEST(Svg, EscapesTextContent) {
  EXPECT_EQ(Svg::escape("a<b>&c"), "a&lt;b&gt;&amp;c");
  Svg svg(10, 10);
  svg.text(0, 0, "x<y");
  EXPECT_NE(svg.str().find("x&lt;y"), std::string::npos);
}

TEST(Svg, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Svg(0, 10), InvalidArgument);
  EXPECT_THROW(Svg(10, -1), InvalidArgument);
}

TEST(Svg, PaletteCyclesStably) {
  EXPECT_EQ(palette(0), palette(10));
  EXPECT_NE(palette(0), palette(1));
}

TEST(GanttSvg, RendersEveryPlacement) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  GanttSvgOptions options;
  options.graph = &w.graph;
  options.title = "HDLTS on the classic graph";
  const std::string out = render_gantt(s, options).str();
  // 3 lane backgrounds + 10 primaries + 2 duplicates + the document
  // background = 16 <rect> elements.
  EXPECT_EQ(count_substr(out, "<rect"), 16u);
  EXPECT_NE(out.find("HDLTS on the classic graph"), std::string::npos);
  // Duplicate blocks carry the '*' marker in their labels.
  EXPECT_NE(out.find("T1*"), std::string::npos);
  // Lane labels for all three processors.
  for (const char* lane : {">P1<", ">P2<", ">P3<"}) {
    EXPECT_NE(out.find(lane), std::string::npos) << lane;
  }
}

TEST(GanttSvg, SaveWritesFile) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const std::string path = ::testing::TempDir() + "/hdlts_gantt_test.svg";
  save_gantt_svg(path, s);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("</svg>"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(save_gantt_svg("/nonexistent/x.svg", s), Error);
}

LineChartSpec sample_chart() {
  LineChartSpec spec;
  spec.title = "avg SLR vs CCR";
  spec.x_label = "CCR";
  spec.y_label = "avg SLR";
  spec.x_categories = {"1", "2", "3"};
  spec.series = {{"hdlts", {2.0, 2.5, 3.0}}, {"heft", {2.1, 2.4, 3.2}}};
  return spec;
}

TEST(LineChart, RendersSeriesAndLegend) {
  const std::string out = render_line_chart(sample_chart()).str();
  EXPECT_EQ(count_substr(out, "<polyline"), 2u);
  // 3 markers per series.
  EXPECT_EQ(count_substr(out, "<circle"), 6u);
  EXPECT_NE(out.find(">hdlts</text>"), std::string::npos);
  EXPECT_NE(out.find(">heft</text>"), std::string::npos);
  EXPECT_NE(out.find(">avg SLR vs CCR</text>"), std::string::npos);
}

TEST(LineChart, ValidatesShape) {
  LineChartSpec spec = sample_chart();
  spec.series[0].values.pop_back();
  EXPECT_THROW(render_line_chart(spec), InvalidArgument);
  spec = sample_chart();
  spec.x_categories.clear();
  EXPECT_THROW(render_line_chart(spec), InvalidArgument);
  spec = sample_chart();
  spec.series.clear();
  EXPECT_THROW(render_line_chart(spec), InvalidArgument);
}

TEST(LineChart, ConstantSeriesStillRenders) {
  LineChartSpec spec = sample_chart();
  spec.series = {{"flat", {1.0, 1.0, 1.0}}};
  EXPECT_NO_THROW(render_line_chart(spec));
}

TEST(LineChart, SingleCategoryCentersPoint) {
  LineChartSpec spec;
  spec.x_categories = {"only"};
  spec.series = {{"s", {4.2}}};
  EXPECT_NO_THROW(render_line_chart(spec));
}

TEST(LineChart, SaveWritesFile) {
  const std::string path = ::testing::TempDir() + "/hdlts_chart_test.svg";
  save_line_chart(path, sample_chart());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hdlts::report
