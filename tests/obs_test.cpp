// Telemetry subsystem tests: metric semantics, timing spans, and the
// per-decision trace sink — including the paper's Table I worked example
// traced event by event (entry-duplication verdicts on every CPU).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/obs/export.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/quantile.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/cpop.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::obs {
namespace {

// ---------------------------------------------------------------------------
// Metric registry

TEST(Metrics, CounterAddsAndResets) {
  MetricRegistry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same object.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndRecordMax) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(3.0);
  g.record_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.record_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(Metrics, HistogramBucketsAndNaN) {
  MetricRegistry reg;
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("test.hist", bounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  h.observe(std::nan(""));  // counted, overflow, excluded from sum
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 2u);  // 1000 + NaN
}

TEST(Metrics, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("test.name");
  EXPECT_THROW(reg.gauge("test.name"), InvalidArgument);
  const std::array<double, 1> bounds = {1.0};
  EXPECT_THROW(reg.histogram("test.name", bounds), InvalidArgument);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  MetricRegistry reg;
  EXPECT_THROW(reg.histogram("test.h0", {}), InvalidArgument);
  const std::array<double, 2> unsorted = {2.0, 1.0};
  EXPECT_THROW(reg.histogram("test.h1", unsorted), InvalidArgument);
}

TEST(Metrics, JsonDumpIsValidAndStableOrder) {
  MetricRegistry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("c.gauge").set(std::numeric_limits<double>::infinity());
  const std::array<double, 2> bounds = {1.0, 2.0};
  reg.histogram("d.hist", bounds).observe(1.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  // Registration order, not alphabetical.
  EXPECT_LT(json.find("b.second"), json.find("a.first"));
  // Non-finite gauge value serializes as null, keeping the JSON valid.
  EXPECT_NE(json.find("\"c.gauge\":null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Metrics, VisitIteratesInRegistrationOrder) {
  MetricRegistry reg;
  Counter& c = reg.counter("v.counter");
  Gauge& g = reg.gauge("v.gauge");
  const std::array<double, 2> bounds = {1.0, 2.0};
  Histogram& h = reg.histogram("v.hist", bounds);
  std::vector<std::string> names;
  std::vector<MetricView::Kind> kinds;
  reg.visit([&](const MetricView& view) {
    names.emplace_back(view.name);
    kinds.push_back(view.kind);
    switch (view.kind) {
      case MetricView::Kind::kCounter:
        EXPECT_EQ(view.counter, &c);
        break;
      case MetricView::Kind::kGauge:
        EXPECT_EQ(view.gauge, &g);
        break;
      case MetricView::Kind::kHistogram:
        EXPECT_EQ(view.histogram, &h);
        break;
    }
  });
  const std::vector<std::string> want = {"v.counter", "v.gauge", "v.hist"};
  EXPECT_EQ(names, want);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], MetricView::Kind::kCounter);
  EXPECT_EQ(kinds[1], MetricView::Kind::kGauge);
  EXPECT_EQ(kinds[2], MetricView::Kind::kHistogram);
}

// ---------------------------------------------------------------------------
// Histogram quantile estimation

TEST(Quantiles, EmptyHistogramIsNaN) {
  MetricRegistry reg;
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram& h = reg.histogram("q.empty", bounds);
  EXPECT_TRUE(std::isnan(histogram_quantile(h, 0.5)));
}

TEST(Quantiles, SingleBucketPointMassIsExact) {
  // Every observation equal: the single-occupied-bucket mean estimator must
  // return the value EXACTLY, not a bucket-interpolated approximation.
  MetricRegistry reg;
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("q.point", bounds);
  for (int i = 0; i < 7; ++i) h.observe(7.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.95), 7.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 7.0);
}

TEST(Quantiles, SingleBucketMixedValuesReturnTheMean) {
  MetricRegistry reg;
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram& h = reg.histogram("q.mean", bounds);
  h.observe(2.0);
  h.observe(9.0);  // same bucket (1, 10]
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 5.5);
}

TEST(Quantiles, InterpolatesAcrossBuckets) {
  const std::array<double, 2> bounds = {10.0, 20.0};
  const std::array<std::uint64_t, 3> buckets = {10, 10, 0};
  // rank(0.75) = 15 -> halfway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(
      quantile_from_buckets(bounds, buckets, 0.0, 0.75), 15.0);
  // rank(0.5) = 10 -> exactly the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(
      quantile_from_buckets(bounds, buckets, 0.0, 0.5), 10.0);
}

TEST(Quantiles, OverflowQuantileReturnsLastBound) {
  MetricRegistry reg;
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram& h = reg.histogram("q.over", bounds);
  h.observe(0.5);
  for (int i = 0; i < 99; ++i) h.observe(1000.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 10.0);
}

TEST(Quantiles, JsonDumpCarriesExactPointMassPercentiles) {
  MetricRegistry reg;
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("q.json", bounds);
  for (int i = 0; i < 5; ++i) h.observe(7.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":7"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":7"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":7"), std::string::npos);
}

TEST(Quantiles, JsonDumpEmitsNullPercentilesWhileEmpty) {
  MetricRegistry reg;
  const std::array<double, 1> bounds = {1.0};
  (void)reg.histogram("q.jsonempty", bounds);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"p99\":null"), std::string::npos);
}

TEST(Metrics, ConcurrentCountersSumExactly) {
  MetricRegistry reg;
  Counter& c = reg.counter("test.mt");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

// ---------------------------------------------------------------------------
// Timing spans

TEST(Spans, DisabledLogRecordsNothing) {
  SpanLog& log = SpanLog::global();
  log.disable();
  { const TimingSpan span("obs_test.ignored"); }
  log.enable(16);
  EXPECT_EQ(log.total_recorded(), 0u);
  log.disable();
}

TEST(Spans, NestingDepthsAndOrder) {
  SpanLog& log = SpanLog::global();
  log.enable(16);
  {
    const TimingSpan outer("obs_test.outer");
    { const TimingSpan inner("obs_test.inner"); }
  }
  const auto events = log.snapshot();
  log.disable();
  ASSERT_EQ(events.size(), 2u);
  // Completed-order: the inner span closes (and is recorded) first.
  EXPECT_STREQ(events[0].name, "obs_test.inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "obs_test.outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_GE(events[1].dur_ns, 0);
}

TEST(Spans, RingOverwritesOldestAndCountsDrops) {
  SpanLog& log = SpanLog::global();
  log.enable(4);
  for (int i = 0; i < 10; ++i) {
    const TimingSpan span("obs_test.wrap");
  }
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.snapshot().size(), 4u);
  log.disable();
}

TEST(Spans, WraparoundKeepsTheNewestEvents) {
  SpanLog& log = SpanLog::global();
  log.enable(3);
  const char* names[] = {"obs_test.w0", "obs_test.w1", "obs_test.w2",
                         "obs_test.w3", "obs_test.w4"};
  for (const char* name : names) {
    const TimingSpan span(name);
  }
  const auto events = log.snapshot();
  log.disable();
  // 5 spans through a 3-slot ring: the survivors are the last 3, in order.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "obs_test.w2");
  EXPECT_STREQ(events[1].name, "obs_test.w3");
  EXPECT_STREQ(events[2].name, "obs_test.w4");
}

TEST(Spans, ConcurrentEmissionCountsEverySpan) {
  // Runs under the TSan CI job: multi-thread emission into the shared ring
  // must be race-free and lose no counts (drops are accounted, not silent).
  SpanLog& log = SpanLog::global();
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  log.enable(kCapacity);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        const TimingSpan span("obs_test.mt");
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const auto events = log.snapshot();
  EXPECT_EQ(log.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - kCapacity);
  log.disable();
  ASSERT_EQ(events.size(), kCapacity);
  for (const SpanEvent& ev : events) {
    EXPECT_STREQ(ev.name, "obs_test.mt");
    EXPECT_GE(ev.dur_ns, 0);
    EXPECT_LT(ev.tid, static_cast<std::uint32_t>(kThreads) + 16u);
  }
}

// ---------------------------------------------------------------------------
// Decision trace: the Table I worked example

class TableOneTrace : public ::testing::Test {
 protected:
  TableOneTrace() : workload_(workload::classic_workload()),
                    problem_(workload_) {
    core::Hdlts scheduler;
    scheduler.set_trace_sink(&trace_);
    schedule_ = scheduler.schedule(problem_);
  }
  sim::Workload workload_;
  sim::Problem problem_;
  RecordingTrace trace_;
  sim::Schedule schedule_{0, 1};
};

TEST_F(TableOneTrace, BeginAndEndFrameTheRun) {
  EXPECT_EQ(trace_.scheduler(), "hdlts");
  EXPECT_EQ(trace_.num_tasks(), 10u);
  EXPECT_EQ(trace_.num_procs(), 3u);
  ASSERT_TRUE(trace_.has_end());
  EXPECT_DOUBLE_EQ(trace_.end().makespan, 73.0);
  EXPECT_EQ(trace_.end().steps, 10u);
  EXPECT_EQ(trace_.end().duplicates, 2u);
  EXPECT_GE(trace_.end().itq_high_water, 5u);  // step 2's ready set
  EXPECT_GT(trace_.end().arena_bytes, 0u);     // compiled path
}

TEST_F(TableOneTrace, StepsMatchTableOne) {
  // Selection order and chosen CPUs of the paper's Table I (0-based).
  const std::vector<graph::TaskId> selected = {0, 5, 2, 6, 3, 4, 1, 8, 7, 9};
  const std::vector<platform::ProcId> chosen = {2, 2, 0, 0, 1, 2, 1, 1, 1, 1};
  ASSERT_EQ(trace_.steps().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    const RecordingTrace::StepRecord& step = trace_.steps()[i];
    EXPECT_EQ(step.step, i);
    EXPECT_EQ(step.selected, selected[i]);
    EXPECT_EQ(step.chosen, chosen[i]);
    ASSERT_EQ(step.eft.size(), 3u);
    EXPECT_EQ(step.itq_tasks.size(), step.itq_pv.size());
    // The committed finish is the winning EFT and start is consistent.
    EXPECT_DOUBLE_EQ(step.finish, step.eft[step.chosen]);
    EXPECT_LE(step.start, step.finish);
    // The selected task sits in the snapshot.
    EXPECT_NE(std::find(step.itq_tasks.begin(), step.itq_tasks.end(),
                        step.selected),
              step.itq_tasks.end());
  }
  // Step 0: the entry's EFT row over P1..P3 is {14, 16, 9}.
  EXPECT_DOUBLE_EQ(trace_.steps()[0].eft[0], 14.0);
  EXPECT_DOUBLE_EQ(trace_.steps()[0].eft[1], 16.0);
  EXPECT_DOUBLE_EQ(trace_.steps()[0].eft[2], 9.0);
}

TEST_F(TableOneTrace, DuplicationVerdictsOnAllCpus) {
  // Algorithm 1 examines P1 and P2 (primary on P3) and accepts both:
  // dup [0,14] on P1 and [0,16] on P2 beat the networked arrivals.
  ASSERT_EQ(trace_.duplications().size(), 2u);
  const DuplicationEvent& d0 = trace_.duplications()[0];
  EXPECT_EQ(d0.task, 0u);
  EXPECT_EQ(d0.primary_proc, 2u);
  EXPECT_EQ(d0.candidate_proc, 0u);
  EXPECT_DOUBLE_EQ(d0.dup_start, 0.0);
  EXPECT_DOUBLE_EQ(d0.dup_finish, 14.0);
  EXPECT_TRUE(d0.accepted);
  EXPECT_GT(d0.benefits, 0u);
  EXPECT_EQ(d0.num_children, 5u);
  EXPECT_LT(d0.dup_finish, d0.best_arrival);
  const DuplicationEvent& d1 = trace_.duplications()[1];
  EXPECT_EQ(d1.candidate_proc, 1u);
  EXPECT_DOUBLE_EQ(d1.dup_finish, 16.0);
  EXPECT_TRUE(d1.accepted);
  EXPECT_LT(d1.dup_finish, d1.best_arrival);
}

TEST_F(TableOneTrace, PlacementsCoverScheduleExactly) {
  // 10 primaries + 2 duplicates, all matching the returned schedule.
  ASSERT_EQ(trace_.placements().size(), 12u);
  std::size_t duplicates = 0;
  for (const PlacementEvent& pl : trace_.placements()) {
    if (pl.duplicate) {
      ++duplicates;
      continue;
    }
    const sim::Placement& got = schedule_.placement(pl.task);
    EXPECT_EQ(got.proc, pl.proc);
    EXPECT_DOUBLE_EQ(got.start, pl.start);
    EXPECT_DOUBLE_EQ(got.finish, pl.finish);
  }
  EXPECT_EQ(duplicates, 2u);
}

TEST(DecisionTrace, RejectionEventWhenDuplicateCannotBeat) {
  // Zero-cost communication: the child's input arrives the instant the
  // primary finishes, so a duplicate (same W) can never finish earlier —
  // Algorithm 1 must examine and reject the other CPU.
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0.0);
  sim::CostTable costs(2, 2);
  for (graph::TaskId v = 0; v < 2; ++v) {
    costs.set(v, 0, 10.0);
    costs.set(v, 1, 10.0);
  }
  const sim::Workload w{std::move(g), std::move(costs), platform::Platform(2)};
  const sim::Problem p(w);
  RecordingTrace trace;
  core::Hdlts scheduler;
  scheduler.set_trace_sink(&trace);
  const sim::Schedule s = scheduler.schedule(p);
  EXPECT_EQ(s.duplicates(0).size(), 0u);
  ASSERT_EQ(trace.duplications().size(), 1u);
  const DuplicationEvent& d = trace.duplications()[0];
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.benefits, 0u);
  EXPECT_GE(d.dup_finish, d.best_arrival);
}

TEST(DecisionTrace, CompiledAndLegacyEmitIdenticalDecisions) {
  const sim::Workload w = workload::random_workload({}, 7);
  const sim::Problem p(w);
  RecordingTrace compiled;
  RecordingTrace legacy;
  core::Hdlts a;
  a.set_trace_sink(&compiled);
  a.set_use_compiled(true);
  (void)a.schedule(p);
  core::Hdlts b;
  b.set_trace_sink(&legacy);
  b.set_use_compiled(false);
  (void)b.schedule(p);

  ASSERT_EQ(compiled.steps().size(), legacy.steps().size());
  for (std::size_t i = 0; i < compiled.steps().size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    const auto& x = compiled.steps()[i];
    const auto& y = legacy.steps()[i];
    EXPECT_EQ(x.itq_tasks, y.itq_tasks);  // same queue order, bit for bit
    EXPECT_EQ(x.itq_pv, y.itq_pv);
    EXPECT_EQ(x.selected, y.selected);
    EXPECT_EQ(x.eft, y.eft);
    EXPECT_EQ(x.chosen, y.chosen);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.finish, y.finish);
  }
  ASSERT_EQ(compiled.duplications().size(), legacy.duplications().size());
  for (std::size_t i = 0; i < compiled.duplications().size(); ++i) {
    EXPECT_EQ(compiled.duplications()[i].candidate_proc,
              legacy.duplications()[i].candidate_proc);
    EXPECT_EQ(compiled.duplications()[i].accepted,
              legacy.duplications()[i].accepted);
    EXPECT_EQ(compiled.duplications()[i].dup_finish,
              legacy.duplications()[i].dup_finish);
  }
  ASSERT_EQ(compiled.placements().size(), legacy.placements().size());
}

TEST(DecisionTrace, AttachingSinkDoesNotChangeTheSchedule) {
  const sim::Workload w = workload::random_workload({}, 11);
  const sim::Problem p(w);
  const sim::Schedule plain = core::Hdlts().schedule(p);
  RecordingTrace trace;
  core::Hdlts traced_scheduler;
  traced_scheduler.set_trace_sink(&trace);
  const sim::Schedule traced = traced_scheduler.schedule(p);
  EXPECT_EQ(plain.makespan(), traced.makespan());
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    EXPECT_EQ(plain.placement(v).proc, traced.placement(v).proc);
    EXPECT_EQ(plain.placement(v).start, traced.placement(v).start);
    EXPECT_EQ(plain.placement(v).finish, traced.placement(v).finish);
  }
}

// ---------------------------------------------------------------------------
// Baseline schedulers

TEST(DecisionTrace, HeftEmitsPerDecisionEftRows) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  RecordingTrace trace;
  sched::Heft heft;
  heft.set_trace_sink(&trace);
  const sim::Schedule s = heft.schedule(p);
  EXPECT_EQ(trace.scheduler(), "heft");
  ASSERT_EQ(trace.steps().size(), 10u);
  for (const RecordingTrace::StepRecord& step : trace.steps()) {
    ASSERT_EQ(step.eft.size(), 3u);
    EXPECT_TRUE(step.itq_tasks.empty());  // static list: no ITQ
    // The chosen processor minimizes the recorded row.
    for (const double eft : step.eft) EXPECT_LE(step.eft[step.chosen], eft);
    EXPECT_DOUBLE_EQ(step.finish, step.eft[step.chosen]);
  }
  ASSERT_TRUE(trace.has_end());
  EXPECT_DOUBLE_EQ(trace.end().makespan, s.makespan());
}

TEST(DecisionTrace, ListBaselinesReplayTheirSchedules) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  RecordingTrace trace;
  sched::Cpop cpop;
  cpop.set_trace_sink(&trace);
  const sim::Schedule s = cpop.schedule(p);
  EXPECT_EQ(trace.scheduler(), "cpop");
  EXPECT_EQ(trace.placements().size(), 10u);
  ASSERT_TRUE(trace.has_end());
  EXPECT_DOUBLE_EQ(trace.end().makespan, s.makespan());
}

// ---------------------------------------------------------------------------
// Online / stream integration

TEST(DecisionTrace, OnlineRunEmitsFailureNotes) {
  const sim::Workload w = workload::classic_workload();
  RecordingTrace trace;
  const core::ProcFailure failures[] = {{2, 20.0}};
  const core::OnlineResult r =
      core::run_online(w, failures, core::HdltsOptions{}, &trace);
  EXPECT_TRUE(r.completed);
  bool saw_failure = false;
  std::size_t phases = 0;
  for (const RecordingTrace::NoteRecord& n : trace.notes()) {
    if (n.kind == "online.failure") {
      saw_failure = true;
      EXPECT_DOUBLE_EQ(n.value, 20.0);
    }
    if (n.kind == "online.phase_start") ++phases;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_GE(phases, 2u);  // cold phase + at least one post-failure phase
  ASSERT_TRUE(trace.has_end());
  EXPECT_DOUBLE_EQ(trace.end().makespan, r.makespan);
}

TEST(DecisionTrace, StreamRunEmitsArrivalsAndPlacements) {
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({workload::classic_workload(), 0.0});
  arrivals.push_back({workload::classic_workload(), 25.0});
  RecordingTrace trace;
  const core::StreamResult r =
      core::run_stream(arrivals, core::StreamOptions{}, &trace);
  EXPECT_EQ(trace.scheduler(), "stream-hdlts");
  EXPECT_EQ(trace.placements().size(), 20u);
  std::size_t arrivals_seen = 0;
  for (const RecordingTrace::NoteRecord& n : trace.notes()) {
    if (n.kind == "stream.arrival") ++arrivals_seen;
  }
  EXPECT_EQ(arrivals_seen, 2u);
  ASSERT_TRUE(trace.has_end());
  EXPECT_DOUBLE_EQ(trace.end().makespan, r.makespan);
  // The recorded placements reconstruct the processor lanes in the Chrome
  // export even though run_stream returns no sim::Schedule.
  std::ostringstream os;
  write_chrome_trace(os, nullptr, &trace, nullptr);
  EXPECT_NE(os.str().find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Experiment harness

TEST(DecisionTrace, ExperimentHarnessFeedsSharedSink) {
  RecordingTrace trace;
  metrics::CompareOptions options;
  options.repetitions = 3;
  options.trace_sink = &trace;
  const auto summaries = metrics::compare_schedulers(
      [](std::uint64_t seed) { return workload::random_workload({}, seed); },
      {"hdlts", "heft"}, core::default_registry(), options);
  ASSERT_EQ(summaries.size(), 2u);
  // 3 reps x 2 schedulers, every run framed by an end event; both emit
  // per-decision steps.
  EXPECT_FALSE(trace.steps().empty());
  EXPECT_TRUE(trace.has_end());
}

// ---------------------------------------------------------------------------
// emit_schedule + global registry wiring

TEST(DecisionTrace, EmitScheduleReplaysTimelines) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  RecordingTrace trace;
  emit_schedule(&trace, "replayed", s);
  EXPECT_EQ(trace.scheduler(), "replayed");
  EXPECT_EQ(trace.placements().size(), 12u);
  ASSERT_TRUE(trace.has_end());
  EXPECT_DOUBLE_EQ(trace.end().makespan, 73.0);
  EXPECT_EQ(trace.end().duplicates, 2u);
  // Null sink is a no-op.
  emit_schedule(nullptr, "ignored", s);
}

TEST(Metrics, HdltsRunFeedsGlobalRegistry) {
  MetricRegistry& reg = MetricRegistry::global();
  Counter& calls = reg.counter("hdlts.schedule_calls");
  Counter& placed = reg.counter("hdlts.tasks_placed");
  const std::uint64_t calls_before = calls.value();
  const std::uint64_t placed_before = placed.value();
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  (void)core::Hdlts().schedule(p);
  EXPECT_EQ(calls.value(), calls_before + 1);
  EXPECT_EQ(placed.value(), placed_before + 10);
  std::ostringstream os;
  write_counters_json(os, reg);
  EXPECT_NE(os.str().find("hdlts.itq_high_water"), std::string::npos);
}

}  // namespace
}  // namespace hdlts::obs
