// Edge-case tests for the shared placement helpers (sched/placement.hpp).
#include <gtest/gtest.h>

#include "hdlts/sched/placement.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::sched {
namespace {

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture() : workload_(workload::classic_workload()),
                       problem_(workload_),
                       schedule_(10, 3) {}
  sim::Workload workload_;
  sim::Problem problem_;
  sim::Schedule schedule_;
};

TEST_F(PlacementFixture, EftOnEmptyScheduleIsExecTime) {
  for (platform::ProcId p = 0; p < 3; ++p) {
    const PlacementChoice c = eft_on(problem_, schedule_, 0, p, true);
    EXPECT_DOUBLE_EQ(c.est, 0.0);
    EXPECT_DOUBLE_EQ(c.eft, problem_.exec_time(0, p));
    EXPECT_EQ(c.proc, p);
  }
}

TEST_F(PlacementFixture, EftVectorFollowsProcsOrder) {
  const auto v = eft_vector(problem_, schedule_, 0, false);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 14.0);
  EXPECT_DOUBLE_EQ(v[1], 16.0);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
}

TEST_F(PlacementFixture, BestEftBreaksTiesTowardLowerProc) {
  // Craft a problem with identical costs: the winner must be processor 0.
  graph::TaskGraph g;
  g.add_task();
  sim::CostTable w(1, 3);
  for (platform::ProcId p = 0; p < 3; ++p) w.set(0, p, 7.0);
  const sim::Workload tie{std::move(g), std::move(w), platform::Platform(3)};
  const sim::Problem problem(tie);
  sim::Schedule s(1, 3);
  EXPECT_EQ(best_eft(problem, s, 0, true).proc, 0u);
}

TEST_F(PlacementFixture, BestEftSkipsDeadProcessors) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_alive(2, false);  // P3 had the 9-unit entry
  const sim::Problem problem(w);
  sim::Schedule s(10, 3);
  const PlacementChoice c = best_eft(problem, s, 0, true);
  EXPECT_EQ(c.proc, 0u);  // falls back to P1 (14)
  EXPECT_DOUBLE_EQ(c.eft, 14.0);
}

TEST_F(PlacementFixture, CommitRoundTripsThroughSchedule) {
  const PlacementChoice c = best_eft(problem_, schedule_, 0, true);
  commit(schedule_, 0, c);
  EXPECT_TRUE(schedule_.is_placed(0));
  EXPECT_EQ(schedule_.placement(0).proc, c.proc);
  EXPECT_DOUBLE_EQ(schedule_.placement(0).start, c.est);
  EXPECT_DOUBLE_EQ(schedule_.placement(0).finish, c.eft);
}

TEST_F(PlacementFixture, EftAccountsForReadyTimeAndAvailability) {
  schedule_.place(0, 2, 0.0, 9.0);  // entry on P3, as in Table I
  // T2 (id 1) on P3: ready 9 (local), avail 9 -> EFT = 9 + 18 = 27.
  EXPECT_DOUBLE_EQ(eft_on(problem_, schedule_, 1, 2, false).eft, 27.0);
  // On P1: ready = 9 + 18 (comm), avail 0 -> EFT = 27 + 13 = 40.
  EXPECT_DOUBLE_EQ(eft_on(problem_, schedule_, 1, 0, false).eft, 40.0);
}

}  // namespace
}  // namespace hdlts::sched
