// Graph-profile analysis tests, including generator-fidelity checks (the
// paper's alpha/density parameters must show up in measured profiles).
#include <gtest/gtest.h>

#include "hdlts/graph/analysis.hpp"
#include "hdlts/sched/lookahead.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/laplace.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::graph {
namespace {

TEST(Profile, ClassicGraph) {
  const GraphProfile p = profile(workload::classic_workload().graph);
  EXPECT_EQ(p.num_tasks, 10u);
  EXPECT_EQ(p.num_edges, 15u);
  EXPECT_EQ(p.num_entries, 1u);
  EXPECT_EQ(p.num_exits, 1u);
  EXPECT_EQ(p.height, 4u);
  EXPECT_EQ(p.level_widths, (std::vector<std::size_t>{1, 5, 3, 1}));
  EXPECT_EQ(p.max_width, 5u);
  EXPECT_EQ(p.max_out_degree, 5u);  // the entry fans out to 5 children
  EXPECT_EQ(p.max_in_degree, 3u);   // T8/T9/T10 have 3 parents
  EXPECT_EQ(p.critical_path_hops, 3u);
  EXPECT_NEAR(p.density, 2.0 * 15 / (10 * 9), 1e-12);
}

TEST(Profile, EmptyGraph) {
  const GraphProfile p = profile(TaskGraph{});
  EXPECT_EQ(p.num_tasks, 0u);
  EXPECT_EQ(p.height, 0u);
}

TEST(Profile, LaplaceDiamond) {
  const GraphProfile p = profile(workload::laplace_structure(4));
  EXPECT_EQ(p.height, 7u);
  EXPECT_EQ(p.max_width, 4u);
  EXPECT_EQ(p.level_widths, (std::vector<std::size_t>{1, 2, 3, 4, 3, 2, 1}));
}

TEST(Profile, AlphaShowsUpInMeasuredShape) {
  // The paper: height ~ sqrt(V)/alpha, width ~ alpha*sqrt(V).
  workload::RandomDagParams tall;
  tall.num_tasks = 400;
  tall.alpha = 0.5;
  workload::RandomDagParams fat = tall;
  fat.alpha = 2.0;
  util::Rng r1(5);
  util::Rng r2(5);
  const GraphProfile pt = profile(workload::random_structure(tall, r1));
  const GraphProfile pf = profile(workload::random_structure(fat, r2));
  EXPECT_GT(pt.height, pf.height);
  EXPECT_LT(pt.mean_width, pf.mean_width);
}

TEST(Profile, DensityParameterRaisesOutDegree) {
  workload::RandomDagParams sparse;
  sparse.num_tasks = 300;
  sparse.density = 1;
  workload::RandomDagParams dense = sparse;
  dense.density = 5;
  util::Rng r1(8);
  util::Rng r2(8);
  const GraphProfile ps = profile(workload::random_structure(sparse, r1));
  const GraphProfile pd = profile(workload::random_structure(dense, r2));
  EXPECT_GT(pd.mean_out_degree, ps.mean_out_degree);
}

TEST(Profile, TextRenderingContainsKeyRows) {
  const std::string text =
      to_string(profile(workload::fft_structure(8)));
  EXPECT_NE(text.find("tasks            39"), std::string::npos);
  EXPECT_NE(text.find("entries/exits    1/8"), std::string::npos);
  EXPECT_NE(text.find("profile"), std::string::npos);
}

TEST(Lookahead, ValidAndRegistered) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = sched::LookaheadHeft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_EQ(sched::LookaheadHeft().name(), "lookahead");
  // Regression on the worked example (computed once, pinned): the one-step
  // rollout happens to land on HEFT's 80 here.
  EXPECT_DOUBLE_EQ(s.makespan(), 80.0);
}

}  // namespace
}  // namespace hdlts::graph
