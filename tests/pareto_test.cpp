// Multi-objective scheduling tests: Pareto frontier properties (mutual
// non-domination, dominated exclusion, order determinism) and the
// energy-aware backend's weight-0 anchor — with energy_weight = 0 and no
// deadline, hdlts-energy must be *bit-identical* to baseline HDLTS (every
// placement, every duplicate, the makespan, and the full decision-trace
// stream) across seeded problems from all five DAG families. That equality
// is what lets the weighted rule ship inside the compiled scheduler without
// a parallel oracle: the weight-0 configuration IS the baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hdlts/core/energy_aware.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/thread_pool.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

using metrics::ParetoPoint;
using metrics::pareto_dominates;
using metrics::pareto_frontier;

// ---------------------------------------------------------------------------
// Dominance order basics.

TEST(ParetoDominance, HandCases) {
  const ParetoPoint a{"a", 1.0, 1.0, 0.0};
  const ParetoPoint b{"b", 2.0, 2.0, 0.5};
  const ParetoPoint c{"c", 1.0, 1.0, 0.0};   // equal to a
  const ParetoPoint d{"d", 0.5, 3.0, 0.0};   // trades makespan for energy
  EXPECT_TRUE(pareto_dominates(a, b));
  EXPECT_FALSE(pareto_dominates(b, a));
  EXPECT_FALSE(pareto_dominates(a, c));  // equal points do not dominate
  EXPECT_FALSE(pareto_dominates(c, a));
  EXPECT_FALSE(pareto_dominates(a, d));
  EXPECT_FALSE(pareto_dominates(d, a));
  EXPECT_FALSE(pareto_dominates(a, a));  // irreflexive
}

std::vector<ParetoPoint> random_points(std::size_t n, util::Rng& rng) {
  std::vector<ParetoPoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Coarse grid so equal objectives (and fully equal points) occur often.
    out.push_back({"s" + std::to_string(i),
                   static_cast<double>(rng.uniform_int(1, 5)),
                   static_cast<double>(rng.uniform_int(1, 5)),
                   static_cast<double>(rng.uniform_int(0, 3)) * 0.25});
  }
  return out;
}

bool same_objectives(const ParetoPoint& a, const ParetoPoint& b) {
  return a.scheduler == b.scheduler && a.makespan == b.makespan &&
         a.energy == b.energy && a.miss_rate == b.miss_rate;
}

TEST(ParetoFrontier, MutuallyNonDominatedProperty) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(util::derive_seed(0xfaceULL, seed));
    const auto points =
        random_points(static_cast<std::size_t>(rng.uniform_int(1, 12)), rng);
    const auto frontier =
        pareto_frontier(std::span<const ParetoPoint>(points));
    ASSERT_FALSE(frontier.empty());  // a finite set always has a minimum
    for (const ParetoPoint& p : frontier) {
      for (const ParetoPoint& q : frontier) {
        EXPECT_FALSE(pareto_dominates(p, q))
            << p.scheduler << " dominates " << q.scheduler
            << " inside the frontier (seed " << seed << ")";
      }
    }
  }
}

TEST(ParetoFrontier, DominatedExcludedAndNonDominatedKeptProperty) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(util::derive_seed(0xbeadULL, seed));
    const auto points =
        random_points(static_cast<std::size_t>(rng.uniform_int(1, 12)), rng);
    const auto frontier =
        pareto_frontier(std::span<const ParetoPoint>(points));
    for (const ParetoPoint& p : points) {
      const bool dominated =
          std::any_of(points.begin(), points.end(), [&](const ParetoPoint& q) {
            return pareto_dominates(q, p);
          });
      const bool in_frontier =
          std::any_of(frontier.begin(), frontier.end(),
                      [&](const ParetoPoint& f) { return same_objectives(f, p); });
      EXPECT_EQ(in_frontier, !dominated)
          << p.scheduler << " (seed " << seed << ")";
    }
  }
}

TEST(ParetoFrontier, DeterministicUnderInputShuffles) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Rng rng(util::derive_seed(0x5ffULL, seed));
    const auto points =
        random_points(static_cast<std::size_t>(rng.uniform_int(2, 12)), rng);
    const auto reference =
        pareto_frontier(std::span<const ParetoPoint>(points));
    std::vector<ParetoPoint> shuffled = points;
    for (int round = 0; round < 4; ++round) {
      // Seeded Fisher-Yates: same shuffles on every run.
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(shuffled[i - 1], shuffled[j]);
      }
      const auto frontier =
          pareto_frontier(std::span<const ParetoPoint>(shuffled));
      ASSERT_EQ(frontier.size(), reference.size()) << "seed " << seed;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        EXPECT_TRUE(same_objectives(frontier[i], reference[i]))
            << "position " << i << " (seed " << seed << ")";
      }
    }
  }
}

TEST(ParetoFrontier, EqualPointsAreAllKept) {
  const std::vector<ParetoPoint> points = {
      {"b", 1.0, 2.0, 0.0}, {"a", 1.0, 2.0, 0.0}, {"c", 3.0, 3.0, 0.5}};
  const auto frontier = pareto_frontier(std::span<const ParetoPoint>(points));
  ASSERT_EQ(frontier.size(), 2u);  // c is dominated, both copies survive
  EXPECT_EQ(frontier[0].scheduler, "a");  // name breaks the objective tie
  EXPECT_EQ(frontier[1].scheduler, "b");
}

// ---------------------------------------------------------------------------
// compare_schedulers multi-objective aggregation.

metrics::WorkloadFactory random_factory() {
  return [](std::uint64_t seed) {
    workload::RandomDagParams p;
    p.num_tasks = 24;
    p.costs.num_procs = 3;
    return workload::random_workload(p, seed);
  };
}

TEST(ParetoCompare, SerialAndPooledRunsAgreeBitwise) {
  const auto registry = core::default_registry();
  const std::vector<std::string> names = {"hdlts", "hdlts-energy", "heft"};
  metrics::CompareOptions serial;
  serial.repetitions = 12;
  serial.deadline_factor = 1.5;
  metrics::CompareOptions pooled = serial;
  util::ThreadPool pool(4);
  pooled.pool = &pool;
  const auto a = compare_schedulers(random_factory(), names, registry, serial);
  const auto b = compare_schedulers(random_factory(), names, registry, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scheduler, b[i].scheduler);
    EXPECT_EQ(a[i].makespan.mean(), b[i].makespan.mean());
    EXPECT_EQ(a[i].energy.mean(), b[i].energy.mean());
    EXPECT_EQ(a[i].deadline_miss_rate, b[i].deadline_miss_rate);
  }
  const auto fa = pareto_frontier(a);
  const auto fb = pareto_frontier(b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_TRUE(same_objectives(fa[i], fb[i])) << "position " << i;
  }
}

TEST(ParetoCompare, DeadlineFactorBoundsMissRate) {
  const auto registry = core::default_registry();
  const std::vector<std::string> names = {"hdlts"};
  metrics::CompareOptions options;
  options.repetitions = 8;
  options.deadline_factor = 1e-6;  // unmeetable: every repetition misses
  auto tight = compare_schedulers(random_factory(), names, registry, options);
  EXPECT_DOUBLE_EQ(tight[0].deadline_miss_rate, 1.0);
  options.deadline_factor = 1e6;  // trivially met
  auto loose = compare_schedulers(random_factory(), names, registry, options);
  EXPECT_DOUBLE_EQ(loose[0].deadline_miss_rate, 0.0);
  options.deadline_factor = 0.0;  // accounting off
  auto off = compare_schedulers(random_factory(), names, registry, options);
  EXPECT_DOUBLE_EQ(off[0].deadline_miss_rate, 0.0);
}

// ---------------------------------------------------------------------------
// Weight-0 anchor: hdlts-energy with energy_weight = 0 and no deadline is
// the baseline, bit for bit.

sim::Workload build_family(std::size_t family, std::uint64_t seed) {
  workload::CostParams costs;
  costs.num_procs = 3;
  costs.ccr = 2.0;
  switch (family) {
    case 0: {
      workload::RandomDagParams p;
      p.num_tasks = 24;
      p.costs = costs;
      return workload::random_workload(p, seed);
    }
    case 1: {
      workload::FftParams p;
      p.points = 8;
      p.costs = costs;
      return workload::fft_workload(p, seed);
    }
    case 2: {
      workload::MontageParams p;
      p.num_nodes = 24;
      p.costs = costs;
      return workload::montage_workload(p, seed);
    }
    case 3: {
      workload::MdParams p;
      p.costs = costs;
      return workload::md_workload(p, seed);
    }
    default: {
      workload::ForkJoinParams p;
      p.chains = 4;
      p.length = 4;
      p.costs = costs;
      return workload::forkjoin_workload(p, seed);
    }
  }
}

void expect_same_traces(const obs::RecordingTrace& a,
                        const obs::RecordingTrace& b) {
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    const auto& sa = a.steps()[i];
    const auto& sb = b.steps()[i];
    EXPECT_EQ(sa.step, sb.step);
    EXPECT_EQ(sa.itq_tasks, sb.itq_tasks);
    EXPECT_EQ(sa.itq_pv, sb.itq_pv);
    EXPECT_EQ(sa.selected, sb.selected);
    EXPECT_EQ(sa.eft, sb.eft);
    EXPECT_EQ(sa.chosen, sb.chosen);
    EXPECT_EQ(sa.start, sb.start);
    EXPECT_EQ(sa.finish, sb.finish);
  }
  ASSERT_EQ(a.placements().size(), b.placements().size());
  for (std::size_t i = 0; i < a.placements().size(); ++i) {
    const auto& pa = a.placements()[i];
    const auto& pb = b.placements()[i];
    EXPECT_EQ(pa.task, pb.task);
    EXPECT_EQ(pa.proc, pb.proc);
    EXPECT_EQ(pa.start, pb.start);
    EXPECT_EQ(pa.finish, pb.finish);
    EXPECT_EQ(pa.duplicate, pb.duplicate);
  }
  ASSERT_EQ(a.duplications().size(), b.duplications().size());
  for (std::size_t i = 0; i < a.duplications().size(); ++i) {
    const auto& da = a.duplications()[i];
    const auto& db = b.duplications()[i];
    EXPECT_EQ(da.task, db.task);
    EXPECT_EQ(da.candidate_proc, db.candidate_proc);
    EXPECT_EQ(da.dup_finish, db.dup_finish);
    EXPECT_EQ(da.accepted, db.accepted);
  }
  ASSERT_TRUE(a.has_end());
  ASSERT_TRUE(b.has_end());
  EXPECT_EQ(a.end().makespan, b.end().makespan);
  EXPECT_EQ(a.end().steps, b.end().steps);
  EXPECT_EQ(a.end().duplicates, b.end().duplicates);
}

void expect_same_schedules(const sim::Problem& problem, const sim::Schedule& a,
                           const sim::Schedule& b) {
  ASSERT_EQ(a.num_placed(), b.num_placed());
  EXPECT_EQ(a.makespan(), b.makespan());
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    const sim::Placement& pa = a.placement(v);
    const sim::Placement& pb = b.placement(v);
    EXPECT_EQ(pa.proc, pb.proc);
    EXPECT_EQ(pa.start, pb.start);
    EXPECT_EQ(pa.finish, pb.finish);
    const auto& da = a.duplicates(v);
    const auto& db = b.duplicates(v);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].proc, db[i].proc);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
}

TEST(EnergyAwareAnchor, WeightZeroIsBitIdenticalToBaselineHdlts) {
  // 20 seeds x 5 families = 100 problems, each scheduled by the baseline
  // and by the energy-aware backend configured back to weight 0 / no
  // deadline. Default HdltsOptions already has energy_weight = 0.
  constexpr std::size_t kSeeds = 20;
  constexpr std::size_t kFamilies = 5;
  for (std::size_t family = 0; family < kFamilies; ++family) {
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = util::derive_seed(0xa7c0ULL, family, s);
      const sim::Workload w = build_family(family, seed);
      const sim::Problem problem(w);

      core::Hdlts baseline;
      core::EnergyAwareHdlts zero{core::HdltsOptions{}};
      ASSERT_EQ(zero.options().energy_weight, 0.0);

      obs::RecordingTrace base_trace;
      obs::RecordingTrace zero_trace;
      baseline.set_trace_sink(&base_trace);
      zero.set_trace_sink(&zero_trace);

      const sim::Schedule a = baseline.schedule(problem);
      const sim::Schedule b = zero.schedule(problem);
      expect_same_schedules(problem, a, b);
      expect_same_traces(base_trace, zero_trace);
      if (::testing::Test::HasFailure()) {
        FAIL() << "family " << family << " seed " << s;
      }
    }
  }
}

TEST(EnergyAwareAnchor, RegistryEntryUsesEnergyDefaults) {
  const auto registry = core::default_registry();
  const auto scheduler = registry.make("hdlts-energy");
  EXPECT_EQ(scheduler->name(), "hdlts-energy");
  EXPECT_DOUBLE_EQ(core::EnergyAwareHdlts().options().energy_weight, 1.0);
}

TEST(EnergyAwareAnchor, WeightedSelectionCanLowerEnergy) {
  // Not a tautology of the anchor: with weight > 0 the backend must still
  // produce valid schedules, and across seeds it never spends more dynamic
  // energy than it would by ignoring the weight on at least one problem.
  std::size_t strictly_lower = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const sim::Workload w = build_family(0, util::derive_seed(0xeaULL, s));
    const sim::Problem problem(w);
    core::HdltsOptions heavy;
    heavy.energy_weight = 50.0;
    const sim::Schedule base = core::Hdlts().schedule(problem);
    const sim::Schedule green = core::EnergyAwareHdlts(heavy).schedule(problem);
    EXPECT_TRUE(green.validate(problem).empty());
    double base_dyn = 0.0;
    double green_dyn = 0.0;
    for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
      base_dyn += problem.compiled().dyn_energy(v, base.placement(v).proc);
      green_dyn += problem.compiled().dyn_energy(v, green.placement(v).proc);
    }
    if (green_dyn < base_dyn) ++strictly_lower;
  }
  EXPECT_GT(strictly_lower, 0u);
}

}  // namespace
}  // namespace hdlts
