// HDLTS tests: the full Table I trace of the paper, option variants, and the
// default registry.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::core {
namespace {

class HdltsClassic : public ::testing::Test {
 protected:
  HdltsClassic() : workload_(workload::classic_workload()),
                   problem_(workload_) {}
  sim::Workload workload_;
  sim::Problem problem_;
};

TEST_F(HdltsClassic, MakespanIs73) {
  const sim::Schedule s = Hdlts().schedule(problem_);
  EXPECT_TRUE(s.validate(problem_).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 73.0);
}

TEST_F(HdltsClassic, EntryDuplicatedOnP1AndP2) {
  HdltsTrace trace;
  const sim::Schedule s = Hdlts().schedule_traced(problem_, &trace);
  // Primary on P3 (fastest, 9); duplicates on P1 [0,14] and P2 [0,16].
  EXPECT_EQ(s.placement(0).proc, 2u);
  ASSERT_EQ(trace.duplicated_on.size(), 2u);
  EXPECT_EQ(trace.duplicated_on[0], 0u);
  EXPECT_EQ(trace.duplicated_on[1], 1u);
  ASSERT_EQ(s.duplicates(0).size(), 2u);
  EXPECT_DOUBLE_EQ(s.duplicates(0)[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.duplicates(0)[0].finish, 14.0);
  EXPECT_DOUBLE_EQ(s.duplicates(0)[1].finish, 16.0);
}

TEST_F(HdltsClassic, TableOneTraceReproducesExactly) {
  // Every row of the paper's Table I: the ready set, the selected task, its
  // EFT row over P1..P3, and the chosen processor. The penalty values are
  // checked to the paper's one printed decimal.
  HdltsTrace trace;
  Hdlts().schedule_traced(problem_, &trace);
  ASSERT_EQ(trace.steps.size(), 10u);

  struct Row {
    std::vector<graph::TaskId> ready;  // 0-based task ids
    std::vector<double> pv;            // paper's printed PVs
    graph::TaskId selected;
    std::vector<double> eft;
    platform::ProcId chosen;
  };
  // Table I, translated to 0-based ids. Step 1's PV is the paper's known
  // misprint (prints 7.0; sample stddev of [14,16,9] is 3.6) — we assert
  // the correct value and record the discrepancy in EXPERIMENTS.md.
  const std::vector<Row> expected = {
      {{0}, {3.6}, 0, {14, 16, 9}, 2},
      {{1, 2, 3, 4, 5}, {4.6, 2.0, 1.5, 5.1, 7.1}, 5, {27, 32, 18}, 2},
      {{1, 2, 3, 4}, {4.9, 6.1, 5.7, 1.5}, 2, {25, 29, 37}, 0},
      {{1, 3, 4, 6}, {1.5, 7.4, 4.9, 16.9}, 6, {32, 63, 59}, 0},
      {{1, 3, 4}, {5.5, 10.5, 9.0}, 3, {45, 24, 35}, 1},
      {{1, 4}, {4.7, 8.0}, 4, {44, 37, 28}, 2},
      {{1}, {1.5}, 1, {45, 43, 46}, 1},
      {{7, 8}, {11.1, 13.3}, 8, {77, 55, 79}, 1},
      {{7}, {5.5}, 7, {67, 66, 76}, 1},
      {{9}, {13.2}, 9, {98, 73, 93}, 1},
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i + 1));
    const HdltsStep& got = trace.steps[i];
    const Row& want = expected[i];
    EXPECT_EQ(got.ready, want.ready);
    ASSERT_EQ(got.pv.size(), want.pv.size());
    for (std::size_t j = 0; j < want.pv.size(); ++j) {
      // The paper prints one decimal and truncates (e.g. 2.08 -> "2.0").
      EXPECT_NEAR(got.pv[j], want.pv[j], 0.1);
    }
    EXPECT_EQ(got.selected, want.selected);
    ASSERT_EQ(got.eft.size(), want.eft.size());
    for (std::size_t j = 0; j < want.eft.size(); ++j) {
      EXPECT_NEAR(got.eft[j], want.eft[j], 1e-9);
    }
    EXPECT_EQ(got.chosen, want.chosen);
  }
}

TEST_F(HdltsClassic, BeatsEveryBaselineOnWorkedExample) {
  // §IV: HDLTS(73) < SDBATS(74) < PETS < HEFT(80) < PEFT/CPOP(~86).
  const double hdlts = Hdlts().schedule(problem_).makespan();
  for (auto& s : paper_schedulers()) {
    EXPECT_LE(hdlts, s->schedule(problem_).makespan()) << s->name();
  }
}

TEST_F(HdltsClassic, DuplicationRuleVariantsAgreeHere) {
  // Both Algorithm 1 readings duplicate on P1 and P2 for this graph.
  HdltsOptions any;
  any.duplication = DuplicationRule::kAnyChildBenefits;
  HdltsOptions all;
  all.duplication = DuplicationRule::kAllChildrenBenefit;
  EXPECT_DOUBLE_EQ(Hdlts(any).schedule(problem_).makespan(),
                   Hdlts(all).schedule(problem_).makespan());
}

TEST_F(HdltsClassic, NoDuplicationCostsTime) {
  HdltsOptions o;
  o.duplication = DuplicationRule::kOff;
  const double without = Hdlts(o).schedule(problem_).makespan();
  EXPECT_GT(without, 73.0);
}

TEST_F(HdltsClassic, PvVariantsProduceValidSchedules) {
  for (const PvKind kind : {PvKind::kSampleStddev, PvKind::kPopulationStddev,
                            PvKind::kRange}) {
    HdltsOptions o;
    o.pv = kind;
    const sim::Schedule s = Hdlts(o).schedule(problem_);
    EXPECT_TRUE(s.validate(problem_).empty());
  }
  // Sample and population stddev only differ by a constant factor sqrt((n-1)/n)
  // on equal-length vectors, so the argmax—and the schedule—must coincide.
  HdltsOptions pop;
  pop.pv = PvKind::kPopulationStddev;
  EXPECT_DOUBLE_EQ(Hdlts(pop).schedule(problem_).makespan(), 73.0);
}

TEST_F(HdltsClassic, StaticPriorityVariantIsValid) {
  HdltsOptions o;
  o.dynamic_priorities = false;
  const sim::Schedule s = Hdlts(o).schedule(problem_);
  EXPECT_TRUE(s.validate(problem_).empty());
}

TEST(Hdlts, MultidupReducesToAlgorithmOneOnSingleEntry) {
  // On a single-entry graph whose entry is scheduled first, the generalized
  // source duplication is exactly Algorithm 1 — identical schedule.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  HdltsOptions o;
  o.duplicate_all_sources = true;
  const sim::Schedule a = Hdlts().schedule(p);
  const sim::Schedule b = Hdlts(o).schedule(p);
  EXPECT_DOUBLE_EQ(b.makespan(), 73.0);
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    EXPECT_EQ(a.placement(v).proc, b.placement(v).proc);
    EXPECT_DOUBLE_EQ(a.placement(v).start, b.placement(v).start);
    EXPECT_EQ(a.duplicates(v).size(), b.duplicates(v).size());
  }
}

TEST(Hdlts, MultidupDuplicatesRealSourcesBehindPseudoEntry) {
  // Multi-entry graph: two real sources feeding one consumer with heavy
  // comm. Algorithm 1 verbatim duplicates nothing (pseudo entry is free);
  // the extension duplicates the sources.
  graph::TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task();
  g.add_edge(0, 2, 50);
  g.add_edge(1, 2, 50);
  const auto n = graph::normalize_single_entry_exit(g);
  sim::CostTable costs(n.graph.num_tasks(), 2);
  for (graph::TaskId v = 0; v < 3; ++v) {
    costs.set(v, 0, 10);
    costs.set(v, 1, 12);
  }
  const sim::Workload w{n.graph, std::move(costs), platform::Platform(2)};
  const sim::Problem p(w);

  const sim::Schedule plain = Hdlts().schedule(p);
  std::size_t plain_dups = 0;
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    plain_dups += plain.duplicates(v).size();
  }
  EXPECT_EQ(plain_dups, 0u);

  HdltsOptions o;
  o.duplicate_all_sources = true;
  const sim::Schedule multi = Hdlts(o).schedule(p);
  EXPECT_TRUE(multi.validate(p).empty());
  std::size_t multi_dups = 0;
  for (graph::TaskId v = 0; v < 2; ++v) {
    multi_dups += multi.duplicates(v).size();
  }
  EXPECT_GT(multi_dups, 0u);
  // Here duplication genuinely pays: both inputs become local.
  EXPECT_LT(multi.makespan(), plain.makespan());
}

TEST(Hdlts, MultiEntryGraphSkipsDuplicationButSchedules) {
  graph::TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task();
  g.add_edge(0, 2, 5);
  g.add_edge(1, 2, 5);
  sim::CostTable costs(3, 2);
  for (graph::TaskId v = 0; v < 3; ++v) {
    costs.set(v, 0, 4);
    costs.set(v, 1, 6);
  }
  const sim::Workload w{std::move(g), std::move(costs),
                        platform::Platform(2)};
  const sim::Problem p(w);
  const sim::Schedule s = Hdlts().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_TRUE(s.duplicates(0).empty());
  EXPECT_TRUE(s.duplicates(1).empty());
}

TEST(Hdlts, SingleProcessorNoDuplication) {
  workload::RandomDagParams params;
  params.num_tasks = 30;
  params.costs.num_procs = 1;
  const sim::Workload w = workload::random_workload(params, 3);
  const sim::Problem p(w);
  const sim::Schedule s = Hdlts().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    EXPECT_TRUE(s.duplicates(v).empty());
  }
}

TEST(Hdlts, InsertionVariantNeverWorseOnClassic) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  HdltsOptions o;
  o.insertion = true;
  const sim::Schedule s = Hdlts(o).schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_LE(s.makespan(), 73.0 + 1e-9);
}

TEST(Registry, DefaultRegistryContainsEverything) {
  const sched::Registry r = default_registry();
  for (const char* name :
       {"hdlts", "hdlts-nodup", "hdlts-static", "hdlts-popstddev",
        "hdlts-range", "hdlts-insertion", "hdlts-multidup", "heft", "cpop",
        "pets", "peft", "sdbats", "mct", "random", "dls", "minmin", "maxmin",
        "dheft"}) {
    EXPECT_TRUE(r.contains(name)) << name;
    EXPECT_NE(r.make(name), nullptr) << name;
  }
  EXPECT_THROW(r.make("nope"), InvalidArgument);
}

TEST(Registry, RejectsDuplicateRegistration) {
  sched::Registry r = default_registry();
  EXPECT_THROW(r.add("hdlts", [] { return sched::SchedulerPtr{}; }),
               InvalidArgument);
}

TEST(Registry, PaperSchedulersOrderedAsReported) {
  const auto set = paper_schedulers();
  ASSERT_EQ(set.size(), 6u);
  EXPECT_EQ(set[0]->name(), "hdlts");
  EXPECT_EQ(set[1]->name(), "heft");
  EXPECT_EQ(set[5]->name(), "sdbats");
}

}  // namespace
}  // namespace hdlts::core
