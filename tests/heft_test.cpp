// HEFT regression and behaviour tests.
#include <gtest/gtest.h>

#include "hdlts/sched/heft.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sched {
namespace {

TEST(Heft, ClassicGraphMakespanIs80) {
  // Published result of the HEFT paper on its own example graph; the HDLTS
  // paper reports the same value in §IV.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Heft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 80.0);
}

TEST(Heft, ClassicGraphKeyPlacements) {
  // In the published HEFT schedule the entry task runs on P3 and the exit
  // task finishes at 80 on P2.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Heft().schedule(p);
  EXPECT_EQ(s.placement(0).proc, 2u);
  EXPECT_DOUBLE_EQ(s.placement(0).finish, 9.0);
  EXPECT_DOUBLE_EQ(s.placement(9).finish, 80.0);
  EXPECT_EQ(s.placement(9).proc, 1u);
}

TEST(Heft, InsertionNeverHurtsOnClassicGraph) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const double with = Heft(true).schedule(p).makespan();
  const double without = Heft(false).schedule(p).makespan();
  EXPECT_LE(with, without);
}

TEST(Heft, SingleProcessorSerializesEverything) {
  workload::RandomDagParams params;
  params.num_tasks = 40;
  params.costs.num_procs = 1;
  const sim::Workload w = workload::random_workload(params, 7);
  const sim::Problem p(w);
  const sim::Schedule s = Heft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  // With one processor there is no comm; makespan = total work.
  double total = 0.0;
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    total += p.exec_time(v, 0);
  }
  EXPECT_NEAR(s.makespan(), total, 1e-6);
}

TEST(Heft, SchedulesOnlyAliveProcessors) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_alive(2, false);
  const sim::Problem p(w);
  const sim::Schedule s = Heft().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  for (graph::TaskId v = 0; v < 10; ++v) {
    EXPECT_NE(s.placement(v).proc, 2u);
  }
}

TEST(Heft, NameAndDeterminism) {
  const Heft h;
  EXPECT_EQ(h.name(), "heft");
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  EXPECT_DOUBLE_EQ(h.schedule(p).makespan(), h.schedule(p).makespan());
}

}  // namespace
}  // namespace hdlts::sched
