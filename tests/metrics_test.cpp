// Metrics tests (paper Eqs. 9–12) with hand-computed anchors.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::metrics {
namespace {

TEST(Metrics, MinCostCriticalPathOnClassicGraph) {
  // Per-task minimum costs: T1=9, T2=13, T3=11, T4=8, T5=10, T6=9, T7=7,
  // T8=5, T9=12, T10=7. The heaviest chain under min costs is
  // T1-T2-T9-T10 = 9+13+12+7 = 41.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  EXPECT_DOUBLE_EQ(min_cost_critical_path(p), 41.0);
}

TEST(Metrics, SlrSpeedupEfficiencyOnClassicHdlts) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  EXPECT_DOUBLE_EQ(s.makespan(), 73.0);
  EXPECT_NEAR(slr(p, s), 73.0 / 41.0, 1e-12);
  // Sequential times: P1 = 127, P2 = 130, P3 = 143 -> best 127.
  EXPECT_DOUBLE_EQ(best_sequential_time(p), 127.0);
  EXPECT_NEAR(speedup(p, s), 127.0 / 73.0, 1e-12);
  EXPECT_NEAR(efficiency(p, s), 127.0 / 73.0 / 3.0, 1e-12);
}

TEST(Metrics, SlrIsAtLeastOneForValidSchedules) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  for (auto& scheduler : core::paper_schedulers()) {
    const sim::Schedule s = scheduler->schedule(p);
    EXPECT_GE(slr(p, s), 1.0) << scheduler->name();
  }
}

TEST(Metrics, SlrThrowsOnZeroCostCriticalPath) {
  graph::TaskGraph g;
  g.add_task("free", 0.0);
  sim::CostTable costs(1, 1);  // all-zero costs
  const sim::Workload w{std::move(g), std::move(costs),
                        platform::Platform(1)};
  const sim::Problem p(w);
  sim::Schedule s(1, 1);
  s.place(0, 0, 0.0, 0.0);
  EXPECT_THROW(slr(p, s), InvalidArgument);
  EXPECT_THROW(speedup(p, s), InvalidArgument);
}

TEST(Metrics, EfficiencyUsesAliveProcessorCount) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_alive(0, false);
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  EXPECT_NEAR(efficiency(p, s) * 2.0, speedup(p, s), 1e-12);
}

TEST(Metrics, MakespanLowerBound) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  // CP bound = 41; work bound = sum of min costs / 3 = (9+13+11+8+10+9+7+
  // 5+12+7)/3 = 91/3 = 30.33 -> CP binds.
  EXPECT_DOUBLE_EQ(makespan_lower_bound(p), 41.0);
  // On a wide independent graph the work bound binds instead.
  graph::TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add_task();
  sim::CostTable costs(8, 2);
  for (graph::TaskId v = 0; v < 8; ++v) {
    costs.set(v, 0, 10);
    costs.set(v, 1, 10);
  }
  const sim::Workload wide{std::move(g), std::move(costs),
                           platform::Platform(2)};
  const sim::Problem pw(wide);
  EXPECT_DOUBLE_EQ(min_cost_critical_path(pw), 10.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(pw), 40.0);  // 80 work / 2 procs
}

TEST(Metrics, SequentialTimeExcludesDeadProcessors) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_alive(0, false);  // P1 had the best total (127)
  const sim::Problem p(w);
  EXPECT_DOUBLE_EQ(best_sequential_time(p), 130.0);  // now P2
}

}  // namespace
}  // namespace hdlts::metrics
