// Unit tests for sim::Schedule: placement bookkeeping, insertion slots,
// duplication-aware ready times, validation, and Gantt/CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "hdlts/sim/gantt.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::sim {
namespace {

/// Chain 0 -> 1 -> 2 with unit data, two processors, W(v,p) = 10 everywhere.
Workload chain_workload(double data = 4.0) {
  graph::TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task();
  g.add_edge(0, 1, data);
  g.add_edge(1, 2, data);
  CostTable w(3, 2);
  for (graph::TaskId v = 0; v < 3; ++v) {
    w.set(v, 0, 10);
    w.set(v, 1, 10);
  }
  return Workload{std::move(g), std::move(w), platform::Platform(2)};
}

TEST(Schedule, PlaceAndQuery) {
  Schedule s(3, 2);
  EXPECT_FALSE(s.is_placed(0));
  s.place(0, 1, 0.0, 10.0);
  EXPECT_TRUE(s.is_placed(0));
  EXPECT_EQ(s.placement(0).proc, 1u);
  EXPECT_DOUBLE_EQ(s.finish_time(0), 10.0);
  EXPECT_EQ(s.num_placed(), 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_THROW(s.placement(1), InvalidArgument);
}

TEST(Schedule, RejectsDoublePlacementAndBadIntervals) {
  Schedule s(2, 1);
  s.place(0, 0, 0.0, 5.0);
  EXPECT_THROW(s.place(0, 0, 6.0, 7.0), InvalidArgument);
  EXPECT_THROW(s.place(1, 0, -1.0, 2.0), InvalidArgument);
  EXPECT_THROW(s.place(1, 0, 5.0, 4.0), InvalidArgument);
  EXPECT_THROW(s.place(5, 0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(s.place(1, 9, 0.0, 1.0), InvalidArgument);
}

TEST(Schedule, RejectsOverlaps) {
  Schedule s(3, 1);
  s.place(0, 0, 10.0, 20.0);
  EXPECT_THROW(s.place(1, 0, 15.0, 25.0), InvalidArgument);  // tail overlap
  EXPECT_THROW(s.place(1, 0, 5.0, 15.0), InvalidArgument);   // head overlap
  EXPECT_THROW(s.place(1, 0, 12.0, 18.0), InvalidArgument);  // contained
  s.place(1, 0, 20.0, 30.0);  // back-to-back is fine
  s.place(2, 0, 0.0, 10.0);   // gap before is fine
  EXPECT_EQ(s.timeline(0).size(), 3u);
  EXPECT_EQ(s.timeline(0)[0].task, 2u);
}

TEST(Schedule, ProcAvailableTracksLastFinish) {
  Schedule s(2, 2);
  EXPECT_DOUBLE_EQ(s.proc_available(0), 0.0);
  s.place(0, 0, 0.0, 7.0);
  s.place(1, 0, 9.0, 12.0);
  EXPECT_DOUBLE_EQ(s.proc_available(0), 12.0);
  EXPECT_DOUBLE_EQ(s.proc_available(1), 0.0);
}

TEST(Schedule, MakespanNotUnderReportedByZeroDurationRecordSortingLast) {
  // Regression: a zero-duration pseudo-task record can sort last on a
  // timeline (by start) while sitting inside an earlier positive block's
  // interval. Taking the last record's finish under-reported the makespan;
  // the incrementally tracked max finish must not.
  Schedule s(3, 1);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 0, 5.0, 5.0);  // zero-duration, sorts after [0, 10) by start
  EXPECT_EQ(s.timeline(0).back().finish, 5.0);  // the hazardous ordering
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_DOUBLE_EQ(s.proc_available(0), 10.0);
  // A later zero-duration record past the end must still extend nothing.
  s.place(2, 0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Schedule, StateVersionAndChangeLogTrackMutations) {
  Schedule s(4, 3);
  EXPECT_EQ(s.state_version(), 0u);
  EXPECT_TRUE(s.procs_changed_since(0).empty());
  s.place(0, 2, 0.0, 4.0);
  const std::uint64_t mark = s.state_version();
  EXPECT_EQ(mark, 1u);
  s.place(1, 0, 0.0, 3.0);
  s.place_duplicate(0, 1, 0.0, 5.0);
  const auto changed = s.procs_changed_since(mark);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], 0u);
  EXPECT_EQ(changed[1], 1u);
  // The full log from the beginning, in mutation order.
  const auto all = s.procs_changed_since(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 2u);
  // A future version is a caller bug.
  EXPECT_THROW(s.procs_changed_since(99), InvalidArgument);
  // Rejected placements must not dirty the log or the caches.
  EXPECT_THROW(s.place(2, 0, 1.0, 2.0), InvalidArgument);
  EXPECT_EQ(s.state_version(), 3u);
  EXPECT_DOUBLE_EQ(s.proc_available(0), 3.0);
}

TEST(Schedule, EarliestStartWithoutInsertionIgnoresGaps) {
  Schedule s(3, 1);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 10.0, 12.0);
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 0.0, 3.0, /*insertion=*/false), 12.0);
}

TEST(Schedule, EarliestStartInsertionFindsGap) {
  Schedule s(4, 1);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 10.0, 12.0);
  // A 3-unit block fits in [2, 10).
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 0.0, 3.0, /*insertion=*/true), 2.0);
  // A 9-unit block does not; it goes after the last placement.
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 0.0, 9.0, /*insertion=*/true), 12.0);
  // Ready time inside the gap shrinks it.
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 8.0, 3.0, /*insertion=*/true), 12.0);
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 7.0, 3.0, /*insertion=*/true), 7.0);
}

TEST(Schedule, EarliestStartBeforeFirstPlacement) {
  Schedule s(2, 1);
  s.place(0, 0, 5.0, 9.0);
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 0.0, 5.0, /*insertion=*/true), 0.0);
  EXPECT_DOUBLE_EQ(s.earliest_start(0, 0.0, 6.0, /*insertion=*/true), 9.0);
}

TEST(Schedule, ReadyTimeUsesCommAndPlacementProc) {
  const Workload w = chain_workload(/*data=*/4.0);
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  // Same processor: ready at finish; other: finish + data/bw = 10 + 4.
  EXPECT_DOUBLE_EQ(s.ready_time(p, 1, 0), 10.0);
  EXPECT_DOUBLE_EQ(s.ready_time(p, 1, 1), 14.0);
  // Entry has no parents.
  EXPECT_DOUBLE_EQ(s.ready_time(p, 0, 1), 0.0);
}

TEST(Schedule, ReadyTimeTakesCheapestDuplicate) {
  const Workload w = chain_workload(/*data=*/4.0);
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place_duplicate(0, 1, 0.0, 12.0);
  // On proc 1 the local duplicate (12) beats remote arrival (14).
  EXPECT_DOUBLE_EQ(s.ready_time(p, 1, 1), 12.0);
  // On proc 0 the primary stays better.
  EXPECT_DOUBLE_EQ(s.ready_time(p, 1, 0), 10.0);
  EXPECT_EQ(s.duplicates(0).size(), 1u);
  EXPECT_TRUE(s.duplicates(0)[0].duplicate);
}

TEST(Schedule, DuplicatesShareTimelineConflictChecks) {
  Schedule s(2, 1);
  s.place(0, 0, 0.0, 5.0);
  EXPECT_THROW(s.place_duplicate(1, 0, 3.0, 6.0), InvalidArgument);
  s.place_duplicate(1, 0, 5.0, 8.0);
  EXPECT_DOUBLE_EQ(s.proc_available(0), 8.0);
}

TEST(Schedule, ValidateAcceptsCorrectSchedule) {
  const Workload w = chain_workload(4.0);
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 1, 24.0, 34.0);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 34.0);
}

TEST(Schedule, ValidateCatchesMissingTask) {
  const Workload w = chain_workload();
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  const auto violations = s.validate(p);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("not placed"), std::string::npos);
}

TEST(Schedule, ValidateCatchesWrongDuration) {
  const Workload w = chain_workload();
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 9.0);  // W is 10
  s.place(1, 0, 9.0, 19.0);
  s.place(2, 0, 19.0, 29.0);
  bool found = false;
  for (const auto& v : s.validate(p)) {
    if (v.find("duration") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Schedule, ValidateCatchesPrecedenceViolation) {
  const Workload w = chain_workload(4.0);
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 1, 5.0, 15.0);  // needs input at 14 on proc 1
  s.place(2, 1, 15.0, 25.0);
  bool found = false;
  for (const auto& v : s.validate(p)) {
    if (v.find("before its data is ready") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Schedule, ValidateCatchesDeadProcessorUse) {
  Workload w = chain_workload();
  w.platform.set_alive(1, false);
  const Problem p(w);
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 1, 14.0, 24.0);  // proc 1 is dead
  s.place(2, 0, 28.0, 38.0);
  bool found = false;
  for (const auto& v : s.validate(p)) {
    if (v.find("dead processor") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Gantt, RendersRowsPerProcessor) {
  const Workload w = chain_workload();
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 1, 24.0, 34.0);
  const std::string text = to_gantt(s);
  EXPECT_NE(text.find("makespan = 34"), std::string::npos);
  EXPECT_NE(text.find("P1 |"), std::string::npos);
  EXPECT_NE(text.find("P2 |"), std::string::npos);
}

TEST(Gantt, PlacementsCsvListsDuplicates) {
  const Workload w = chain_workload();
  Schedule s(3, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place_duplicate(0, 1, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 0, 20.0, 30.0);
  std::ostringstream os;
  write_placements_csv(os, s, &w.graph);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("task,name,proc,start,finish,duplicate"),
            std::string::npos);
  EXPECT_NE(csv.find(",1\n"), std::string::npos);  // the duplicate row
}

}  // namespace
}  // namespace hdlts::sim
