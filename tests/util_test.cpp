// Unit tests for hdlts/util: rng, stats, thread pool, table, cli, env.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "hdlts/util/cli.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/error.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const auto x = rng.uniform_int(-5, -1);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, -1);
  }
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(14);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);  // within 10% relative
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitIsIndependentButDeterministic) {
  Rng a(77);
  Rng b(77);
  Rng as = a.split();
  Rng bs = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(as(), bs());
}

TEST(DeriveSeed, OrderSensitive) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
  EXPECT_NE(derive_seed(0, 1), derive_seed(1, 0));
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(42, 7, 9), derive_seed(42, 7, 9));
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev_sample(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 4.0);
  EXPECT_NEAR(s.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance_sample(), all.variance_sample(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Stats, SampleStddevMatchesPaperTrace) {
  // The PV cells of Table I only reproduce with the n-1 denominator: the
  // EFT vector of T6 at step 2 is [27, 32, 18] and the paper prints 7.0.
  const std::vector<double> eft{27, 32, 18};
  EXPECT_NEAR(stddev_sample(eft), 7.09, 0.01);
  EXPECT_NEAR(stddev_population(eft), 5.79, 0.01);
}

TEST(Stats, RangeAndDegenerateInputs) {
  const std::vector<double> xs{4.0, -1.0, 2.5};
  EXPECT_DOUBLE_EQ(range(xs), 5.0);
  EXPECT_DOUBLE_EQ(range({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_sample(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ManySmallSubmissions) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&sum] { sum.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 500);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForChunkedCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  std::atomic<int> chunks{0};
  parallel_for_chunked(pool, hits.size(),
                       [&](std::size_t begin, std::size_t end) {
                         EXPECT_LT(begin, end);
                         chunks.fetch_add(1);
                         for (std::size_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1);
                         }
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Chunking bounds queue churn: no more chunks than 4x the worker count.
  EXPECT_LE(chunks.load(), static_cast<int>(pool.size() * 4));
}

TEST(ThreadPool, ConcurrentSubmittersAreSafe) {
  // Multiple producer threads race pool.submit against the workers — the
  // shape the CI ThreadSanitizer job checks for queue races.
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.submit([&sum] { sum.fetch_add(1); });
      }
    });
  }
  for (auto& p : producers) p.join();
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 400);
}

TEST(ThreadPool, RunTeamCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.run_team(hits.size(), 16, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunTeamZeroCountAndDegenerateChunks) {
  ThreadPool pool(2);
  pool.run_team(0, 4, [](std::size_t, std::size_t) { FAIL(); });
  std::vector<std::atomic<int>> hits(5);
  pool.run_team(hits.size(), 0,  // chunk 0 is clamped to 1
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    hits[i].fetch_add(1);
                  }
                });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Chunk larger than count: the caller runs everything in one piece.
  std::atomic<int> calls{0};
  pool.run_team(3, 100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, RunTeamBackToBackAndInterleavedWithSubmit) {
  // Teams reuse a single broadcast slot; consecutive teams and queued tasks
  // must not interfere (the shape the CI TSan job checks).
  ThreadPool pool(3);
  std::atomic<int> task_sum{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) {
      pool.submit([&task_sum] { task_sum.fetch_add(1); });
    }
    std::vector<std::atomic<int>> hits(97);
    pool.run_team(hits.size(), 8, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
  pool.wait_idle();
  EXPECT_EQ(task_sum.load(), 250);
}

TEST(ThreadPool, RunTeamFromConcurrentLeadersSerializes) {
  // run_team is documented single-leader-at-a-time; concurrent external
  // callers must be serialized, each team still covering its whole range.
  ThreadPool pool(2);
  std::atomic<long> grand{0};
  std::vector<std::thread> leaders;
  for (int t = 0; t < 3; ++t) {
    leaders.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<long> local{0};
        pool.run_team(64, 4, [&](std::size_t begin, std::size_t end) {
          long s = 0;
          for (std::size_t i = begin; i < end; ++i) {
            s += static_cast<long>(i);
          }
          local.fetch_add(s);
        });
        EXPECT_EQ(local.load(), 64L * 63L / 2L);
        grand.fetch_add(local.load());
      }
    });
  }
  for (auto& l : leaders) l.join();
  EXPECT_EQ(grand.load(), 3L * 20L * (64L * 63L / 2L));
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvEscaping) {
  Table t({"x", "y"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "x,y\nplain,\"has,comma\"\n\"has\"\"quote\",\"multi\nline\"\n");
}

TEST(Table, MarkdownAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.write_markdown(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22 |"), std::string::npos);
}

TEST(Table, FmtFixedDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--reps=30", "--verbose",
                        "positional"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0), 1.5);
  EXPECT_EQ(cli.get_int("reps", 0), 30);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.get("k", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("k", 9), 9);
  EXPECT_FALSE(cli.get_bool("k", false));
}

TEST(Cli, RepeatedOptionsKeepEveryValueInOrder) {
  const char* argv[] = {"prog", "--fail=1@0.4", "--mode=a", "--fail=2@0.7",
                        "--fail=0@0.1"};
  Cli cli(5, argv);
  const auto fails = cli.get_all("fail");
  ASSERT_EQ(fails.size(), 3u);
  EXPECT_EQ(fails[0], "1@0.4");
  EXPECT_EQ(fails[1], "2@0.7");
  EXPECT_EQ(fails[2], "0@0.1");
  // Single-value accessors keep last-one-wins behaviour.
  EXPECT_EQ(cli.get("fail", ""), "0@0.1");
  EXPECT_TRUE(cli.get_all("absent").empty());
  ASSERT_EQ(cli.get_all("mode").size(), 1u);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(cli.get_double("n", 0), InvalidArgument);
  EXPECT_THROW(cli.get_bool("n", false), InvalidArgument);
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("HDLTS_TEST_ENV");
  EXPECT_EQ(env_string("HDLTS_TEST_ENV", "d"), "d");
  EXPECT_EQ(env_int("HDLTS_TEST_ENV", 5), 5);
  ::setenv("HDLTS_TEST_ENV", "17", 1);
  EXPECT_EQ(env_int("HDLTS_TEST_ENV", 5), 17);
  ::setenv("HDLTS_TEST_ENV", "junk", 1);
  EXPECT_EQ(env_int("HDLTS_TEST_ENV", 5), 5);
  ::unsetenv("HDLTS_TEST_ENV");
}

TEST(Error, ContractMacrosThrow) {
  EXPECT_THROW(HDLTS_EXPECTS(false), ContractViolation);
  EXPECT_THROW(HDLTS_ENSURES(1 == 2), ContractViolation);
  EXPECT_NO_THROW(HDLTS_EXPECTS(true));
}

}  // namespace
}  // namespace hdlts::util
