// Experiment harness tests: determinism, pool-independence, aggregation.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::metrics {
namespace {

WorkloadFactory small_random_factory() {
  return [](std::uint64_t seed) {
    workload::RandomDagParams params;
    params.num_tasks = 40;
    params.costs.num_procs = 3;
    params.costs.ccr = 2.0;
    return workload::random_workload(params, seed);
  };
}

TEST(Experiment, ProducesOneSummaryPerScheduler) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 5;
  opt.check_schedules = true;
  const auto rows = compare_schedulers(small_random_factory(),
                                       {"hdlts", "heft", "mct"}, reg, opt);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].scheduler, "hdlts");
  for (const auto& r : rows) {
    EXPECT_EQ(r.slr.count(), 5u);
    EXPECT_GE(r.slr.mean(), 1.0);
    EXPECT_GT(r.efficiency.mean(), 0.0);
    EXPECT_LE(r.wins, 5u);
  }
}

TEST(Experiment, WinsSumToAtLeastRepetitions) {
  // Every repetition has at least one winner (ties count for both).
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 8;
  const auto rows = compare_schedulers(small_random_factory(),
                                       {"hdlts", "heft"}, reg, opt);
  EXPECT_GE(rows[0].wins + rows[1].wins, 8u);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 6;
  const auto a = compare_schedulers(small_random_factory(), {"hdlts"}, reg, opt);
  const auto b = compare_schedulers(small_random_factory(), {"hdlts"}, reg, opt);
  EXPECT_DOUBLE_EQ(a[0].slr.mean(), b[0].slr.mean());
  EXPECT_DOUBLE_EQ(a[0].makespan.mean(), b[0].makespan.mean());
}

TEST(Experiment, PoolAndSerialAgreeExactly) {
  const sched::Registry reg = core::default_registry();
  CompareOptions serial;
  serial.repetitions = 6;
  util::ThreadPool pool(4);
  CompareOptions parallel = serial;
  parallel.pool = &pool;
  const auto a =
      compare_schedulers(small_random_factory(), {"hdlts", "heft"}, reg, serial);
  const auto b = compare_schedulers(small_random_factory(), {"hdlts", "heft"},
                                    reg, parallel);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].slr.mean(), b[i].slr.mean());
    EXPECT_DOUBLE_EQ(a[i].speedup.mean(), b[i].speedup.mean());
    EXPECT_EQ(a[i].wins, b[i].wins);
  }
}

TEST(Experiment, BaseSeedChangesResults) {
  const sched::Registry reg = core::default_registry();
  CompareOptions a;
  a.repetitions = 4;
  a.base_seed = 1;
  CompareOptions b = a;
  b.base_seed = 2;
  const auto ra = compare_schedulers(small_random_factory(), {"hdlts"}, reg, a);
  const auto rb = compare_schedulers(small_random_factory(), {"hdlts"}, reg, b);
  EXPECT_NE(ra[0].makespan.mean(), rb[0].makespan.mean());
}

TEST(Experiment, RejectsEmptyInputs) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  EXPECT_THROW(compare_schedulers(small_random_factory(), {}, reg, opt),
               InvalidArgument);
  opt.repetitions = 0;
  EXPECT_THROW(
      compare_schedulers(small_random_factory(), {"hdlts"}, reg, opt),
      InvalidArgument);
}

TEST(Experiment, UnknownSchedulerFailsOnPoolAndSerialPaths) {
  // Scheduler construction is hoisted out of the repetition loop (one
  // Registry::make set per worker chunk); a bad name must still surface as
  // the same Error on both execution paths.
  const sched::Registry reg = core::default_registry();
  CompareOptions serial;
  serial.repetitions = 3;
  EXPECT_THROW(
      compare_schedulers(small_random_factory(), {"no-such"}, reg, serial),
      Error);
  util::ThreadPool pool(2);
  CompareOptions parallel = serial;
  parallel.pool = &pool;
  EXPECT_THROW(
      compare_schedulers(small_random_factory(), {"no-such"}, reg, parallel),
      Error);
}

TEST(Experiment, PropagatesFactoryFailure) {
  const sched::Registry reg = core::default_registry();
  const WorkloadFactory broken = [](std::uint64_t) -> sim::Workload {
    throw Error("factory exploded");
  };
  CompareOptions opt;
  opt.repetitions = 2;
  EXPECT_THROW(compare_schedulers(broken, {"hdlts"}, reg, opt), Error);
}

TEST(Experiment, WinMatrixIsConsistent) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 10;
  const std::vector<std::string> names{"hdlts", "heft", "random"};
  const auto m = win_matrix(small_random_factory(), names, reg, opt);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(m[i].size(), 3u);
    EXPECT_DOUBLE_EQ(m[i][i], 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(m[i][j], 0.0);
      EXPECT_LE(m[i][j], 1.0);
      if (i != j) {
        // wins + losses + exact ties = 1.
        EXPECT_LE(m[i][j] + m[j][i], 1.0 + 1e-12);
      }
    }
  }
}

TEST(Experiment, WinMatrixDeterministic) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 6;
  const std::vector<std::string> names{"hdlts", "heft"};
  const auto a = win_matrix(small_random_factory(), names, reg, opt);
  const auto b = win_matrix(small_random_factory(), names, reg, opt);
  EXPECT_EQ(a, b);
}

TEST(Experiment, UnknownSchedulerNameFails) {
  const sched::Registry reg = core::default_registry();
  CompareOptions opt;
  opt.repetitions = 1;
  EXPECT_THROW(
      compare_schedulers(small_random_factory(), {"not-a-sched"}, reg, opt),
      Error);
}

}  // namespace
}  // namespace hdlts::metrics
