// Parameterized IO round-trip: every workload family (including
// heterogeneous-bandwidth platforms) must survive save -> load with
// bit-identical costs, edges, and bandwidths, and schedule identically
// afterwards.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/io/workload_io.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/laplace.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::io {
namespace {

sim::Workload make(const std::string& family, std::uint64_t seed) {
  workload::CostParams costs;
  costs.num_procs = 3;
  costs.ccr = 2.0;
  if (family == "random") {
    workload::RandomDagParams p;
    p.num_tasks = 40;
    p.costs = costs;
    return workload::random_workload(p, seed);
  }
  if (family == "fft") {
    workload::FftParams p;
    p.points = 8;
    p.costs = costs;
    return workload::fft_workload(p, seed);
  }
  if (family == "montage") {
    workload::MontageParams p;
    p.num_nodes = 30;
    p.costs = costs;
    return workload::montage_workload(p, seed);
  }
  if (family == "md") {
    workload::MdParams p;
    p.costs = costs;
    return workload::md_workload(p, seed);
  }
  if (family == "gauss") {
    workload::GaussParams p;
    p.matrix_size = 6;
    p.costs = costs;
    return workload::gauss_workload(p, seed);
  }
  if (family == "laplace") {
    workload::LaplaceParams p;
    p.size = 5;
    p.costs = costs;
    return workload::laplace_workload(p, seed);
  }
  if (family == "hetnet") {
    workload::RandomDagParams p;
    p.num_tasks = 40;
    p.costs = costs;
    sim::Workload w = workload::random_workload(p, seed);
    util::Rng rng(seed);
    workload::randomize_bandwidths(w, 1.2, 1.0, rng);
    return w;
  }
  workload::ForkJoinParams p;
  p.costs = costs;
  return workload::forkjoin_workload(p, seed);
}

class IoRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(IoRoundTrip, BitExactAndSchedulesIdentically) {
  const sim::Workload original = make(GetParam(), 99);
  std::stringstream ss;
  write_workload(ss, original);
  const sim::Workload restored = read_workload(ss);

  ASSERT_EQ(restored.graph.num_tasks(), original.graph.num_tasks());
  ASSERT_EQ(restored.graph.num_edges(), original.graph.num_edges());
  for (graph::TaskId v = 0; v < original.graph.num_tasks(); ++v) {
    EXPECT_EQ(restored.graph.name(v), original.graph.name(v));
    for (platform::ProcId p = 0; p < 3; ++p) {
      EXPECT_EQ(restored.costs(v, p), original.costs(v, p));
    }
    for (const graph::Adjacent& c : original.graph.children(v)) {
      EXPECT_EQ(restored.graph.edge_data(v, c.task), c.data);
    }
  }
  for (platform::ProcId a = 0; a < 3; ++a) {
    for (platform::ProcId b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_EQ(restored.platform.bandwidth(a, b),
                original.platform.bandwidth(a, b));
    }
  }

  const sim::Problem po(original);
  const sim::Problem pr(restored);
  const sim::Schedule so = core::Hdlts().schedule(po);
  const sim::Schedule sr = core::Hdlts().schedule(pr);
  EXPECT_EQ(so.makespan(), sr.makespan());
  for (graph::TaskId v = 0; v < po.num_tasks(); ++v) {
    EXPECT_EQ(so.placement(v).proc, sr.placement(v).proc);
    EXPECT_EQ(so.placement(v).start, sr.placement(v).start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, IoRoundTrip,
    ::testing::Values("random", "fft", "montage", "md", "gauss", "laplace",
                      "forkjoin", "hetnet"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace hdlts::io
