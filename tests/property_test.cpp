// Property tests: every scheduler × every workload family must produce a
// schedule that (a) passes full validation, (b) replays in the discrete-event
// engine at exactly its analytic times, and (c) respects the SLR lower bound.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/laplace.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

struct Family {
  std::string name;
  std::function<sim::Workload(std::uint64_t seed, double ccr,
                              std::size_t procs)>
      make;
};

std::vector<Family> families() {
  return {
      {"classic",
       [](std::uint64_t, double, std::size_t) {
         return workload::classic_workload();
       }},
      {"random-thin",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::RandomDagParams p;
         p.num_tasks = 60;
         p.alpha = 0.5;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::random_workload(p, seed);
       }},
      {"random-fat",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::RandomDagParams p;
         p.num_tasks = 60;
         p.alpha = 2.0;
         p.density = 4;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::random_workload(p, seed);
       }},
      {"fft",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::FftParams p;
         p.points = 8;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::fft_workload(p, seed);
       }},
      {"montage",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::MontageParams p;
         p.num_nodes = 50;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::montage_workload(p, seed);
       }},
      {"md",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::MdParams p;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::md_workload(p, seed);
       }},
      {"gauss",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::GaussParams p;
         p.matrix_size = 7;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::gauss_workload(p, seed);
       }},
      {"laplace",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::LaplaceParams p;
         p.size = 6;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::laplace_workload(p, seed);
       }},
      {"forkjoin",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::ForkJoinParams p;
         p.chains = 5;
         p.length = 4;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         return workload::forkjoin_workload(p, seed);
       }},
      {"heterogeneous-network",
       [](std::uint64_t seed, double ccr, std::size_t procs) {
         workload::RandomDagParams p;
         p.num_tasks = 50;
         p.costs.ccr = ccr;
         p.costs.num_procs = procs;
         sim::Workload w = workload::random_workload(p, seed);
         util::Rng rng(util::derive_seed(seed, 0xbabdULL));
         workload::randomize_bandwidths(w, 1.5, 1.0, rng);
         return w;
       }},
  };
}

using Case = std::tuple<std::string /*scheduler*/, std::size_t /*family*/,
                        double /*ccr*/, std::size_t /*procs*/>;

class SchedulerProperty : public ::testing::TestWithParam<Case> {};

TEST_P(SchedulerProperty, ValidEngineConsistentAndBounded) {
  const auto& [sched_name, family_idx, ccr, procs] = GetParam();
  const Family family = families()[family_idx];
  const sched::Registry registry = core::default_registry();
  const auto scheduler = registry.make(sched_name);

  for (const std::uint64_t seed : {1ULL, 99ULL}) {
    const sim::Workload w =
        family.make(util::derive_seed(seed, family_idx), ccr, procs);
    const sim::Problem problem(w);
    const sim::Schedule schedule = scheduler->schedule(problem);

    // (a) full validation
    const auto violations = schedule.validate(problem);
    EXPECT_TRUE(violations.empty())
        << family.name << " seed " << seed << ": " << violations.front();

    // (b) discrete-event replay honours the schedule as a contract: no
    // block may finish later than scheduled (duplicates can legitimately
    // let some blocks start early), and the realized makespan never
    // exceeds the analytic one.
    const sim::EngineResult replayed = sim::replay(problem, schedule);
    EXPECT_FALSE(replayed.deadlocked) << family.name;
    EXPECT_TRUE(replayed.matches_schedule) << family.name << " seed " << seed;
    EXPECT_LE(replayed.makespan, schedule.makespan() + 1e-6) << family.name;

    // (c) the makespan respects max(critical-path, total-work/P) — valid
    // even under duplication, which only ever adds executed work.
    EXPECT_GE(schedule.makespan() + 1e-9,
              metrics::makespan_lower_bound(problem))
        << family.name;
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::vector<std::string> scheds = {
      "hdlts", "hdlts-nodup",  "hdlts-static", "hdlts-range",
      "heft",  "cpop",         "pets",         "peft",
      "sdbats", "mct",         "random",       "hdlts-insertion",
      "dls",   "minmin",       "maxmin",       "dheft",
      "hdlts-multidup",        "lookahead",    "genetic"};
  const std::size_t num_families = families().size();
  for (const auto& s : scheds) {
    for (std::size_t f = 0; f < num_families; ++f) {
      for (const double ccr : {0.5, 3.0}) {
        for (const std::size_t procs : {2u, 5u}) {
          cases.emplace_back(s, f, ccr, procs);
        }
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& [sched_name, family_idx, ccr, procs] = info.param;
  std::string name = sched_name + "_" + families()[family_idx].name + "_ccr" +
                     std::to_string(static_cast<int>(ccr * 10)) + "_p" +
                     std::to_string(procs);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulersAllFamilies, SchedulerProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace hdlts
