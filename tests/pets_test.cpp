// PETS regression and behaviour tests.
#include <gtest/gtest.h>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/pets.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/fft.hpp"

namespace hdlts::sched {
namespace {

TEST(Pets, ClassicGraphMakespanRegression) {
  // Our faithful PETS (Ilavarasan et al. 2005) yields 76 on the classic
  // graph; the HDLTS paper reports 77 for its PETS implementation — the
  // 1-unit gap traces to under-specified tie-breaking (see EXPERIMENTS.md).
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Pets().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 76.0);
}

TEST(Pets, LevelOrderIsRespected) {
  // A task is always placed after every task of lower precedence level, so
  // start times within a processor never violate level order for PETS's
  // static list. We verify the schedule is valid and the entry runs first.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Pets().schedule(p);
  for (graph::TaskId v = 1; v < 10; ++v) {
    EXPECT_GE(s.placement(v).start, s.placement(0).finish - 1e-9);
  }
}

TEST(Pets, ValidOnFftWorkflow) {
  workload::FftParams params;
  params.points = 16;
  params.costs.num_procs = 4;
  const sim::Workload w = workload::fft_workload(params, 3);
  const sim::Problem p(w);
  const sim::Schedule s = Pets().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Pets, Name) { EXPECT_EQ(Pets().name(), "pets"); }

}  // namespace
}  // namespace hdlts::sched
