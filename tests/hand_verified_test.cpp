// Fully hand-verified schedules on a tiny diamond graph — every EST/EFT
// computed on paper, every placement asserted. Complements the Table I
// regression with a case small enough to audit by eye.
//
// Diamond: T0 -> {T1, T2} -> T3, every edge carrying 4 units of data.
// W (rows T0..T3, columns P1..P2):
//   T0: [2, 4]   T1: [3, 6]   T2: [6, 3]   T3: [2, 4]
// Bandwidth 1 everywhere, so comm time == 4 across processors.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sched/pets.hpp"
#include "hdlts/sched/ranking.hpp"
#include "hdlts/sim/engine.hpp"

namespace hdlts::sched {
namespace {

sim::Workload diamond() {
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task("T" + std::to_string(i));
  g.add_edge(0, 1, 4);
  g.add_edge(0, 2, 4);
  g.add_edge(1, 3, 4);
  g.add_edge(2, 3, 4);
  sim::CostTable w(4, 2);
  const double costs[4][2] = {{2, 4}, {3, 6}, {6, 3}, {2, 4}};
  for (graph::TaskId v = 0; v < 4; ++v) {
    w.set(v, 0, costs[v][0]);
    w.set(v, 1, costs[v][1]);
  }
  return sim::Workload{std::move(g), std::move(w), platform::Platform(2)};
}

TEST(HandVerified, HeftRanks) {
  // mean W: 3, 4.5, 4.5, 3. rank_u(T3) = 3;
  // rank_u(T1) = 4.5 + (4 + 3) = 11.5 = rank_u(T2);
  // rank_u(T0) = 3 + (4 + 11.5) = 18.5.
  const sim::Workload w = diamond();
  const sim::Problem p(w);
  const auto rank = upward_rank_mean(p);
  EXPECT_DOUBLE_EQ(rank[3], 3.0);
  EXPECT_DOUBLE_EQ(rank[1], 11.5);
  EXPECT_DOUBLE_EQ(rank[2], 11.5);
  EXPECT_DOUBLE_EQ(rank[0], 18.5);
}

TEST(HandVerified, HeftFullSchedule) {
  // List order: T0, then T1 (rank tie with T2 broken by topological
  // position), T2, T3.
  //   T0: EFT P1 = 2, P2 = 4            -> P1 [0, 2]
  //   T1: ready P1 = 2, P2 = 6; EFT P1 = 5, P2 = 12 -> P1 [2, 5]
  //   T2: EFT P1 = max(2, 5) + 6 = 11, P2 = 6 + 3 = 9 -> P2 [6, 9]
  //   T3: ready P1 = max(5, 13) = 13, P2 = max(9, 9) = 9;
  //       EFT P1 = 15, P2 = 13          -> P2 [9, 13]
  const sim::Workload w = diamond();
  const sim::Problem p(w);
  const sim::Schedule s = Heft().schedule(p);
  ASSERT_TRUE(s.validate(p).empty());
  EXPECT_EQ(s.placement(0).proc, 0u);
  EXPECT_DOUBLE_EQ(s.placement(0).start, 0.0);
  EXPECT_DOUBLE_EQ(s.placement(0).finish, 2.0);
  EXPECT_EQ(s.placement(1).proc, 0u);
  EXPECT_DOUBLE_EQ(s.placement(1).start, 2.0);
  EXPECT_DOUBLE_EQ(s.placement(1).finish, 5.0);
  EXPECT_EQ(s.placement(2).proc, 1u);
  EXPECT_DOUBLE_EQ(s.placement(2).start, 6.0);
  EXPECT_DOUBLE_EQ(s.placement(2).finish, 9.0);
  EXPECT_EQ(s.placement(3).proc, 1u);
  EXPECT_DOUBLE_EQ(s.placement(3).start, 9.0);
  EXPECT_DOUBLE_EQ(s.placement(3).finish, 13.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 13.0);
  // The replay engine confirms the hand arithmetic independently.
  const sim::EngineResult r = sim::replay(p, s);
  EXPECT_TRUE(r.exact_times);
}

TEST(HandVerified, PetsRanksOnDiamond) {
  // ACC: 3, 4.5, 4.5, 3. DTC: 8, 4, 4, 0. RPT: 0, 11, 11, 20.
  // rank = round(ACC + DTC + RPT): 11, 20, 20, 23.
  const sim::Workload w = diamond();
  const sim::Problem p(w);
  const PetsRank r = pets_rank(p);
  EXPECT_DOUBLE_EQ(r.rank[0], 11.0);
  EXPECT_DOUBLE_EQ(r.rank[1], 20.0);
  EXPECT_DOUBLE_EQ(r.rank[2], 20.0);
  EXPECT_DOUBLE_EQ(r.rank[3], 23.0);
}

TEST(HandVerified, HdltsEntryDuplicationDecision) {
  // HDLTS places T0 on P1 (EFT 2 vs 4). Algorithm 1 on P2: a duplicate
  // would finish at W(T0, P2) = 4, while the network delivers at
  // AFT + comm = 2 + 4 = 6 > 4 -> duplicate on P2 occupying [0, 4].
  const sim::Workload w = diamond();
  const sim::Problem p(w);
  core::HdltsTrace trace;
  const sim::Schedule s = core::Hdlts().schedule_traced(p, &trace);
  ASSERT_TRUE(s.validate(p).empty());
  EXPECT_EQ(s.placement(0).proc, 0u);
  ASSERT_EQ(s.duplicates(0).size(), 1u);
  EXPECT_EQ(s.duplicates(0)[0].proc, 1u);
  EXPECT_DOUBLE_EQ(s.duplicates(0)[0].finish, 4.0);
  // With the duplicate, T2's ready time on P2 is 4, not 6: step 2 EFTs are
  // T1: [5, 10], T2: [8, 7]; PVs (sample stddev of 2 values =
  // |a-b|/sqrt(2)): T1 ~ 3.54, T2 ~ 0.71 -> T1 selected, to P1.
  ASSERT_GE(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps[1].selected, 1u);
  EXPECT_DOUBLE_EQ(trace.steps[1].eft[0], 5.0);
  EXPECT_DOUBLE_EQ(trace.steps[1].eft[1], 10.0);
}

}  // namespace
}  // namespace hdlts::sched
