// CPOP regression and behaviour tests.
#include <gtest/gtest.h>

#include "hdlts/sched/cpop.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/gauss.hpp"

namespace hdlts::sched {
namespace {

TEST(Cpop, ClassicGraphMakespanIs86) {
  // Published result of the HEFT paper's CPOP on the same example graph.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Cpop().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 86.0);
}

TEST(Cpop, CriticalPathTasksShareOneProcessor) {
  // T1, T2, T9, T10 form the critical path (priority 108); the CP processor
  // minimizing their total cost is P2 (54 vs 66/63).
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Cpop().schedule(p);
  EXPECT_EQ(s.placement(0).proc, 1u);
  EXPECT_EQ(s.placement(1).proc, 1u);
  EXPECT_EQ(s.placement(8).proc, 1u);
  EXPECT_EQ(s.placement(9).proc, 1u);
}

TEST(Cpop, ValidOnStructuredWorkflow) {
  workload::GaussParams params;
  params.matrix_size = 8;
  params.costs.num_procs = 4;
  const sim::Workload w = workload::gauss_workload(params, 11);
  const sim::Problem p(w);
  const sim::Schedule s = Cpop().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Cpop, HonoursDeadProcessors) {
  sim::Workload w = workload::classic_workload();
  w.platform.set_alive(1, false);  // kill the preferred CP processor
  const sim::Problem p(w);
  const sim::Schedule s = Cpop().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  for (graph::TaskId v = 0; v < 10; ++v) {
    EXPECT_NE(s.placement(v).proc, 1u);
  }
}

TEST(Cpop, Name) { EXPECT_EQ(Cpop().name(), "cpop"); }

}  // namespace
}  // namespace hdlts::sched
