// Zero-allocation regression tests for the compiled scheduling path.
//
// The PR contract: with a warmed scratch arena and a recycled Schedule, a
// steady-state schedule_into() call on the compiled path performs ZERO heap
// allocations. Enforced here with the operator-new interposer from
// tests/support/alloc_hook.cpp (linked into this binary only).
//
// Warm-up needs two calls: the first carves overflow blocks from an empty
// arena, the second folds them into a regrown primary buffer (one final
// allocation); from the third call on the arena only rewinds. The recycled
// Schedule's vectors are at capacity after the first call.
#include "support/alloc_hook.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hdlts/core/energy_aware.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/obs/monitor.hpp"
#include "hdlts/sched/registry.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/thread_pool.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts {
namespace {

// sim::Problem is a non-owning view, so the Workload must stay alive.
sim::Workload make_workload(std::size_t tasks, std::size_t procs,
                            std::uint64_t seed) {
  workload::RandomDagParams params;
  params.num_tasks = tasks;
  params.costs.num_procs = procs;
  return workload::random_workload(params, seed);
}

struct AllocDelta {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
};

/// Heap traffic of one schedule_into() call after `warmups` warm-up calls.
AllocDelta steady_state_traffic(const sched::Scheduler& scheduler,
                                const sim::Problem& problem,
                                std::size_t warmups = 2) {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  for (std::size_t i = 0; i < warmups; ++i) {
    scheduler.schedule_into(problem, out);
  }
  const auto before = tests::alloc_counters();
  scheduler.schedule_into(problem, out);
  const auto after = tests::alloc_counters();
  return {after.allocations - before.allocations, after.frees - before.frees};
}

void expect_zero_traffic(const sched::Scheduler& scheduler,
                         const sim::Problem& problem) {
  const AllocDelta delta = steady_state_traffic(scheduler, problem);
  EXPECT_EQ(delta.allocations, 0u) << scheduler.name();
  EXPECT_EQ(delta.frees, 0u) << scheduler.name();
}

TEST(AllocHook, CountsAllocations) {
  // Guard against the interposer silently not linking: a plain vector
  // allocation must move the counter.
  const auto before = tests::alloc_counters();
  auto v = std::make_unique<std::vector<double>>(1024);
  v->back() = 1.0;
  const auto after = tests::alloc_counters();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GE(after.bytes - before.bytes, 1024 * sizeof(double));
}

TEST(ZeroAlloc, HdltsCompiledSteadyState) {
  const sim::Workload w = make_workload(400, 8, 7);
  const sim::Problem problem(w);
  const core::Hdlts hdlts;
  ASSERT_TRUE(hdlts.use_compiled());
  expect_zero_traffic(hdlts, problem);
}

TEST(ZeroAlloc, HdltsCompiledSteadyStateAcrossOptions) {
  const sim::Workload w = make_workload(300, 5, 11);
  const sim::Problem problem(w);
  for (const char* name :
       {"hdlts", "hdlts-nodup", "hdlts-static", "hdlts-popstddev",
        "hdlts-range", "hdlts-insertion", "hdlts-multidup", "hdlts-energy"}) {
    const auto scheduler = core::default_registry().make(name);
    SCOPED_TRACE(name);
    expect_zero_traffic(*scheduler, problem);
  }
}

TEST(ZeroAlloc, EnergyAwareWeightedSteadyState) {
  // The weighted selection rule reads the compiled problem's cached
  // dyn_energy rows — no per-decision buffers — so a weighted,
  // deadline-constrained configuration keeps the zero-allocation contract.
  const sim::Workload w = make_workload(300, 5, 11);
  const sim::Problem problem(w);
  core::HdltsOptions options;
  options.energy_weight = 3.0;
  options.deadline = 1e6;
  const core::EnergyAwareHdlts hdlts(options);
  ASSERT_TRUE(hdlts.use_compiled());
  expect_zero_traffic(hdlts, problem);
}

TEST(ZeroAlloc, PortedListSchedulersSteadyState) {
  const sim::Workload w = make_workload(300, 6, 13);
  const sim::Problem problem(w);
  for (const char* name :
       {"heft", "cpop", "peft", "pets", "sdbats", "dls", "lookahead"}) {
    const auto scheduler = core::default_registry().make(name);
    SCOPED_TRACE(name);
    expect_zero_traffic(*scheduler, problem);
  }
}

TEST(ZeroAlloc, HdltsParallelEftSteadyState) {
  // The intra-problem parallel path must preserve the zero-allocation
  // contract: run_team broadcasts a non-owning FunctionRef (no
  // std::function, no queue nodes), so a steady-state call with the team
  // fanning out on every round still performs no heap allocation on the
  // calling thread. Workers allocate nothing either, but the interposer
  // counters are global — hence a 1-worker pool would hide nothing; use 4.
  const sim::Workload w = make_workload(400, 8, 7);
  const sim::Problem problem(w);
  util::ThreadPool pool(4);
  core::HdltsOptions options;
  options.parallel_min_work = 0;  // team dispatch on every round
  core::Hdlts hdlts(options);
  hdlts.set_thread_pool(&pool);
  ASSERT_TRUE(hdlts.use_compiled());
  expect_zero_traffic(hdlts, problem);
}

TEST(ZeroAlloc, BatchEngineSteadyState) {
  // The engine contract: once the ring slots, the per-worker scheduler
  // caches/arenas, and the recycled Schedules are warm, a direct-problem
  // batch request costs zero heap allocations end to end — submit (slot
  // copy-assign), pop, schedule_into, result callback, completion
  // accounting. Single worker so the counter deltas are exact: the main
  // thread waits idle between submissions, hence never races the worker.
  const sim::Workload w = make_workload(300, 6, 17);
  const sim::Problem problem(w);
  const sched::Registry registry = sched::baseline_registry();
  std::vector<double> makespans(1, 0.0);  // preallocated result slot
  svc::BatchEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  svc::BatchEngine engine(
      registry,
      [&](const svc::BatchResult& r) { makespans[0] = r.makespan; }, options);

  svc::BatchRequest request;
  request.problem = &problem;
  request.schedulers = {"heft", "cpop"};
  // Warm every ring slot (the ring advances one slot per request) plus the
  // worker's scheduler cache and arenas.
  for (std::size_t i = 0; i < 2 * options.queue_capacity + 2; ++i) {
    request.id = i;
    ASSERT_TRUE(engine.submit(request));
    engine.wait_idle();
  }

  const auto before = tests::alloc_counters();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.submit(request));
    engine.wait_idle();
  }
  const auto after = tests::alloc_counters();
  EXPECT_EQ(after.allocations - before.allocations, 0u);
  EXPECT_EQ(after.frees - before.frees, 0u);
  EXPECT_GT(makespans[0], 0.0);
}

TEST(ZeroAlloc, BatchEngineOnlineSteadyState) {
  // Dynamic requests through the service layer: once the worker's
  // OnlineHdlts arena/Schedule/result buffers and the ring slots (including
  // the fault-plan vector) are warm, a kOnline request costs zero heap
  // allocations end to end.
  const sim::Workload w = make_workload(200, 6, 29);
  const sim::Problem problem(w);
  const sched::Registry registry = sched::baseline_registry();
  std::vector<double> makespans(1, 0.0);
  svc::BatchEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  svc::BatchEngine engine(
      registry,
      [&](const svc::BatchResult& r) { makespans[0] = r.makespan; }, options);

  svc::BatchRequest request;
  request.problem = &problem;
  request.job = svc::BatchJob::kOnline;
  request.failures = {{1, 15.0}, {4, 40.0}};
  for (std::size_t i = 0; i < 2 * options.queue_capacity + 2; ++i) {
    request.id = i;
    ASSERT_TRUE(engine.submit(request));
    engine.wait_idle();
  }

  const auto before = tests::alloc_counters();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.submit(request));
    engine.wait_idle();
  }
  const auto after = tests::alloc_counters();
  EXPECT_EQ(after.allocations - before.allocations, 0u);
  EXPECT_EQ(after.frees - before.frees, 0u);
  EXPECT_GT(makespans[0], 0.0);
}

TEST(ZeroAlloc, MonitorIdleKeepsZeroAllocSteadyState) {
  // The runtime monitor's contract: between samples its thread sleeps in a
  // condition-variable wait and touches nothing, so a started (but idle)
  // monitor must not break the schedulers' zero-allocation steady state.
  // The period is far longer than the test, hence no sample can land inside
  // the measured window (the interposer counters are process-global).
  obs::MonitorOptions options;
  options.period = std::chrono::hours(1);
  obs::RuntimeMonitor monitor(std::move(options));
  monitor.start();

  const sim::Workload w = make_workload(400, 8, 7);
  const sim::Problem problem(w);
  const core::Hdlts hdlts;
  ASSERT_TRUE(hdlts.use_compiled());
  expect_zero_traffic(hdlts, problem);
  // sample_once() itself may allocate — it runs on the monitor thread, off
  // the measured path. Just prove the monitor still works after the run.
  monitor.sample_once();
  EXPECT_EQ(monitor.samples(), 1u);
}

TEST(ZeroAlloc, OnlineCompiledSteadyState) {
  // The dynamic-path contract: with a warm arena, a recycled Schedule, and
  // recycled result/committed buffers, a steady-state OnlineHdlts::run_into
  // costs zero heap allocations — including the failure phases (kill /
  // revoke / re-queue all happen in arena spans and capacity-stable
  // vectors).
  const sim::Workload w = make_workload(300, 8, 19);
  const sim::Problem problem(w);
  const std::vector<core::ProcFailure> failures{{1, 25.0}, {5, 60.0}};
  core::OnlineHdlts scheduler;
  ASSERT_TRUE(scheduler.use_compiled());
  core::OnlineResult out;
  for (int i = 0; i < 2; ++i) {
    scheduler.run_into(problem, failures, out);
  }
  ASSERT_TRUE(out.completed);
  const auto before = tests::alloc_counters();
  scheduler.run_into(problem, failures, out);
  const auto after = tests::alloc_counters();
  EXPECT_EQ(after.allocations - before.allocations, 0u);
  EXPECT_EQ(after.frees - before.frees, 0u);
  EXPECT_GT(out.makespan, 0.0);
}

TEST(ZeroAlloc, StreamCompiledSteadyState) {
  // compile() freezes the arrivals once (that step allocates); from the
  // third run_into on, scheduling the frozen stream is allocation-free for
  // both ITQ policies.
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({make_workload(120, 6, 23), 0.0});
  arrivals.push_back({make_workload(120, 6, 24), 30.0});
  arrivals.push_back({make_workload(120, 6, 25), 70.0});
  for (const core::StreamPolicy policy :
       {core::StreamPolicy::kHdltsPv, core::StreamPolicy::kFifoEft}) {
    core::StreamOptions options;
    options.policy = policy;
    core::StreamHdlts scheduler(options);
    scheduler.compile(arrivals);
    core::StreamResult out;
    for (int i = 0; i < 2; ++i) {
      scheduler.run_into(out);
    }
    const auto before = tests::alloc_counters();
    scheduler.run_into(out);
    const auto after = tests::alloc_counters();
    EXPECT_EQ(after.allocations - before.allocations, 0u)
        << (policy == core::StreamPolicy::kHdltsPv ? "pv" : "fifo");
    EXPECT_EQ(after.frees - before.frees, 0u);
    EXPECT_GT(out.makespan, 0.0);
  }
}

TEST(ZeroAlloc, StreamDeadlineBusySteadyState) {
  // Deadlines and pre-occupied busy intervals ride the frozen stream:
  // deadline accounting writes into recycled flag/counter storage and the
  // busy intervals are re-applied from the frozen copy, so the steady-state
  // zero-allocation contract survives the QoS extension.
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({make_workload(120, 6, 23), 0.0, 40.0,
                      core::DeadlineKind::kHard});
  arrivals.push_back({make_workload(120, 6, 24), 30.0, 200.0,
                      core::DeadlineKind::kSoft});
  arrivals.push_back({make_workload(120, 6, 25), 70.0, 90.0,
                      core::DeadlineKind::kSoft});
  const std::vector<core::BusyInterval> busy = {{0, 0.0, 12.0},
                                                {3, 5.0, 20.0}};
  core::StreamHdlts scheduler;
  scheduler.compile(arrivals, busy);
  core::StreamResult out;
  for (int i = 0; i < 2; ++i) {
    scheduler.run_into(out);
  }
  const auto before = tests::alloc_counters();
  scheduler.run_into(out);
  const auto after = tests::alloc_counters();
  EXPECT_EQ(after.allocations - before.allocations, 0u);
  EXPECT_EQ(after.frees - before.frees, 0u);
  EXPECT_GT(out.makespan, 0.0);
  EXPECT_EQ(out.deadline_missed.size(), arrivals.size());
  EXPECT_GT(out.deadline_misses, 0u);  // the 40.0 hard deadline is unmeetable
}

TEST(ZeroAlloc, OnlineLegacyPathStillAllocates) {
  // Negative control for the dynamic measurement: the legacy online path
  // rebuilds a sim::Problem per phase and per-round vectors every call.
  const sim::Workload w = make_workload(300, 8, 19);
  const std::vector<core::ProcFailure> failures{{1, 25.0}};
  (void)core::run_online_legacy(w, failures);  // warm allocator caches
  const auto before = tests::alloc_counters();
  (void)core::run_online_legacy(w, failures);
  const auto after = tests::alloc_counters();
  EXPECT_GT(after.allocations - before.allocations, 0u);
}

TEST(ZeroAlloc, StreamLegacyPathStillAllocates) {
  std::vector<core::StreamArrival> arrivals;
  arrivals.push_back({make_workload(120, 6, 23), 0.0});
  arrivals.push_back({make_workload(120, 6, 24), 30.0});
  (void)core::run_stream_legacy(arrivals);  // warm allocator caches
  const auto before = tests::alloc_counters();
  (void)core::run_stream_legacy(arrivals);
  const auto after = tests::alloc_counters();
  EXPECT_GT(after.allocations - before.allocations, 0u);
}

TEST(ZeroAlloc, LegacyPathStillAllocates) {
  // Negative control: the legacy (pointer-chasing) path allocates its
  // per-entry vectors every call — if this ever reads 0 the measurement
  // itself is broken.
  const sim::Workload w = make_workload(400, 8, 7);
  const sim::Problem problem(w);
  core::Hdlts hdlts;
  hdlts.set_use_compiled(false);
  EXPECT_GT(steady_state_traffic(hdlts, problem).allocations, 0u);
}

TEST(ZeroAlloc, CompiledAndLegacyAgreeWhileCounting) {
  // The two paths must stay bit-identical with the interposer active (the
  // hook must be an observer, not a behaviour change).
  const sim::Workload w = make_workload(250, 7, 21);
  const sim::Problem problem(w);
  core::Hdlts hdlts;
  sim::Schedule compiled(problem.num_tasks(), problem.num_procs());
  sim::Schedule legacy(problem.num_tasks(), problem.num_procs());
  hdlts.schedule_into(problem, compiled);
  hdlts.set_use_compiled(false);
  hdlts.schedule_into(problem, legacy);
  EXPECT_EQ(compiled.makespan(), legacy.makespan());
}

}  // namespace
}  // namespace hdlts
