// Unit tests for the discrete-event replay engine.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sim/engine.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::sim {
namespace {

Workload fork_workload() {
  // 0 -> {1, 2} -> 3 on two processors, data 6, W = 10 everywhere.
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 1, 6);
  g.add_edge(0, 2, 6);
  g.add_edge(1, 3, 6);
  g.add_edge(2, 3, 6);
  CostTable w(4, 2);
  for (graph::TaskId v = 0; v < 4; ++v) {
    w.set(v, 0, 10);
    w.set(v, 1, 10);
  }
  return Workload{std::move(g), std::move(w), platform::Platform(2)};
}

TEST(Engine, ReplayMatchesAnalyticSchedule) {
  const Workload w = fork_workload();
  const Problem p(w);
  Schedule s(4, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 1, 16.0, 26.0);
  s.place(3, 0, 32.0, 42.0);  // waits for 2's data: 26 + 6
  ASSERT_TRUE(s.validate(p).empty());
  const EngineResult r = replay(p, s);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.matches_schedule);
  EXPECT_TRUE(r.exact_times);
  EXPECT_DOUBLE_EQ(r.makespan, 42.0);
}

TEST(Engine, ReplaySlipsWhenScheduleIsOptimistic) {
  const Workload w = fork_workload();
  const Problem p(w);
  Schedule s(4, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 1, 16.0, 26.0);
  s.place(3, 1, 26.0, 36.0);  // claims 3 can start at 26 — really 1's data
                              // lands on proc 1 at 20 + 6 = 26; feasible!
  const EngineResult r = replay(p, s);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.matches_schedule);

  // Now an infeasible claim: 3 on proc 0 at 20 needs 2's data at 32.
  Schedule bad(4, 2);
  bad.place(0, 0, 0.0, 10.0);
  bad.place(1, 0, 10.0, 20.0);
  bad.place(2, 1, 16.0, 26.0);
  bad.place(3, 0, 20.0, 30.0);
  const EngineResult rb = replay(p, bad);
  EXPECT_FALSE(rb.deadlocked);
  EXPECT_FALSE(rb.matches_schedule);  // task 3 finishes later than claimed
  EXPECT_FALSE(rb.exact_times);
  EXPECT_DOUBLE_EQ(rb.makespan, 42.0);  // true completion slips to 32 + 10
}

TEST(Engine, DetectsDeadlock) {
  // Processor order contradicting precedence: child queued before parent on
  // the same processor.
  const Workload w = fork_workload();
  const Problem p(w);
  Schedule s(4, 2);
  s.place(1, 0, 0.0, 10.0);   // child of 0 first on proc 0
  s.place(0, 0, 10.0, 20.0);  // parent after it
  s.place(2, 1, 26.0, 36.0);
  s.place(3, 1, 52.0, 62.0);
  const EngineResult r = replay(p, s);
  EXPECT_TRUE(r.deadlocked);
}

TEST(Engine, RequiresFullyPlacedSchedule) {
  const Workload w = fork_workload();
  const Problem p(w);
  Schedule s(4, 2);
  s.place(0, 0, 0.0, 10.0);
  EXPECT_THROW(replay(p, s), InvalidArgument);
}

TEST(Engine, DuplicateCopiesDeliverDataEarly) {
  const Workload w = fork_workload();
  const Problem p(w);
  Schedule s(4, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place_duplicate(0, 1, 0.0, 10.0);
  s.place(1, 0, 10.0, 20.0);
  s.place(2, 1, 10.0, 20.0);  // local duplicate: no 6-unit comm wait
  s.place(3, 1, 26.0, 36.0);
  ASSERT_TRUE(s.validate(p).empty());
  const EngineResult r = replay(p, s);
  EXPECT_TRUE(r.matches_schedule);
  EXPECT_DOUBLE_EQ(r.makespan, 36.0);
}

TEST(Engine, ReplaysEverySchedulerOnClassicGraph) {
  const Workload w = workload::classic_workload();
  const Problem p(w);
  for (auto& scheduler : core::paper_schedulers()) {
    const Schedule s = scheduler->schedule(p);
    const EngineResult r = replay(p, s);
    EXPECT_FALSE(r.deadlocked) << scheduler->name();
    EXPECT_TRUE(r.matches_schedule) << scheduler->name();
    EXPECT_DOUBLE_EQ(r.makespan, s.makespan()) << scheduler->name();
  }
}

}  // namespace
}  // namespace hdlts::sim
