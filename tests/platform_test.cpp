// Unit tests for hdlts/platform.
#include <gtest/gtest.h>

#include "hdlts/platform/platform.hpp"

namespace hdlts::platform {
namespace {

TEST(Platform, ConstructionValidation) {
  EXPECT_THROW(Platform(0), InvalidArgument);
  EXPECT_THROW(Platform(2, 0.0), InvalidArgument);
  EXPECT_THROW(Platform(2, -1.0), InvalidArgument);
  EXPECT_NO_THROW(Platform(1));
}

TEST(Platform, UniformBandwidthByDefault) {
  const Platform p(3, 2.0);
  for (ProcId a = 0; a < 3; ++a) {
    for (ProcId b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(p.bandwidth(a, b), 2.0);
    }
  }
  EXPECT_DOUBLE_EQ(p.mean_bandwidth(), 2.0);
}

TEST(Platform, ProcNamesAreOneBased) {
  const Platform p(2);
  EXPECT_EQ(p.proc_name(0), "P1");
  EXPECT_EQ(p.proc_name(1), "P2");
  EXPECT_THROW(p.proc_name(2), InvalidArgument);
}

TEST(Platform, SetBandwidthIsSymmetric) {
  Platform p(3);
  p.set_bandwidth(0, 2, 4.0);
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(p.bandwidth(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 1), 1.0);
  // Mean over the 6 ordered distinct pairs: (4+4+1+1+1+1)/6.
  EXPECT_DOUBLE_EQ(p.mean_bandwidth(), 2.0);
}

TEST(Platform, SetBandwidthValidation) {
  Platform p(2);
  EXPECT_THROW(p.set_bandwidth(0, 0, 2.0), InvalidArgument);
  EXPECT_THROW(p.set_bandwidth(0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(p.set_bandwidth(0, 5, 1.0), InvalidArgument);
}

TEST(Platform, SingleProcMeanBandwidth) {
  const Platform p(1, 3.0);
  EXPECT_DOUBLE_EQ(p.mean_bandwidth(), 3.0);
}

TEST(Platform, LivenessTracking) {
  Platform p(4);
  EXPECT_EQ(p.num_alive(), 4u);
  EXPECT_TRUE(p.is_alive(2));
  p.set_alive(2, false);
  EXPECT_FALSE(p.is_alive(2));
  EXPECT_EQ(p.num_alive(), 3u);
  EXPECT_EQ(p.alive_procs(), (std::vector<ProcId>{0, 1, 3}));
  p.set_alive(2, true);
  EXPECT_EQ(p.num_alive(), 4u);
  EXPECT_THROW(p.set_alive(9, false), InvalidArgument);
}

}  // namespace
}  // namespace hdlts::platform
