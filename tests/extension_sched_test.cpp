// Tests for the extension schedulers beyond the paper's comparison set:
// DLS, Min-Min, Max-Min, and duplication-based HEFT.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/batch.hpp"
#include "hdlts/sched/dheft.hpp"
#include "hdlts/sched/dls.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::sched {
namespace {

class ExtensionClassic : public ::testing::Test {
 protected:
  ExtensionClassic() : workload_(workload::classic_workload()),
                       problem_(workload_) {}
  sim::Workload workload_;
  sim::Problem problem_;
};

TEST_F(ExtensionClassic, RegressionMakespans) {
  EXPECT_DOUBLE_EQ(Dls().schedule(problem_).makespan(), 91.0);
  EXPECT_DOUBLE_EQ(MinMin().schedule(problem_).makespan(), 76.0);
  EXPECT_DOUBLE_EQ(MaxMin().schedule(problem_).makespan(), 97.0);
  EXPECT_DOUBLE_EQ(Dheft().schedule(problem_).makespan(), 73.0);
}

TEST_F(ExtensionClassic, AllProduceValidSchedules) {
  for (const char* name : {"dls", "minmin", "maxmin", "dheft"}) {
    const auto s = core::default_registry().make(name)->schedule(problem_);
    EXPECT_TRUE(s.validate(problem_).empty()) << name;
  }
}

TEST_F(ExtensionClassic, DheftDuplicatesCriticalParents) {
  const sim::Schedule s = Dheft().schedule(problem_);
  std::size_t dups = 0;
  for (graph::TaskId v = 0; v < problem_.num_tasks(); ++v) {
    dups += s.duplicates(v).size();
  }
  EXPECT_GT(dups, 0u);
  // On the worked example duplication closes the HEFT -> HDLTS gap exactly.
  EXPECT_LT(s.makespan(), Heft().schedule(problem_).makespan());
}

TEST_F(ExtensionClassic, DheftNeverWorseThanHeftHere) {
  EXPECT_LE(Dheft().schedule(problem_).makespan(),
            Heft().schedule(problem_).makespan());
}

TEST_F(ExtensionClassic, StaticLevelsAreCommFreeUpwardRanks) {
  const auto sl = static_levels(problem_);
  // SL(T10) = meanW(T10); SL decreases along edges by at least the child's
  // weight; entry has the largest SL.
  EXPECT_NEAR(sl[9], problem_.costs().mean(9), 1e-9);
  for (graph::TaskId v = 0; v < 10; ++v) {
    EXPECT_LE(sl[v], sl[0] + 1e-9);
    for (const graph::Adjacent& c : problem_.graph().children(v)) {
      EXPECT_GT(sl[v], sl[c.task]);
    }
  }
  // Hand value: SL(T1) = 13 + max-path mean costs = 13+16.67+16.67+14.67.
  EXPECT_NEAR(sl[0], 61.0, 0.05);
}

TEST_F(ExtensionClassic, MinMinAndMaxMinDiffer) {
  EXPECT_NE(MinMin().schedule(problem_).makespan(),
            MaxMin().schedule(problem_).makespan());
}

TEST(ExtensionSched, NamesMatchRegistry) {
  EXPECT_EQ(Dls().name(), "dls");
  EXPECT_EQ(MinMin().name(), "minmin");
  EXPECT_EQ(MaxMin().name(), "maxmin");
  EXPECT_EQ(Dheft().name(), "dheft");
  const auto reg = core::default_registry();
  for (const char* n : {"dls", "minmin", "maxmin", "dheft"}) {
    EXPECT_TRUE(reg.contains(n)) << n;
  }
}

TEST(ExtensionSched, DheftDuplicationHelpsOnForkJoin) {
  // Fork-join with heavy communication is the best case for duplicating the
  // fork task: every chain wants a local copy.
  workload::ForkJoinParams p;
  p.chains = 6;
  p.length = 3;
  p.costs.num_procs = 3;
  p.costs.ccr = 5.0;
  util::RunningStats wins;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::Workload w = workload::forkjoin_workload(p, seed);
    const sim::Problem problem(w);
    const double dheft = Dheft().schedule(problem).makespan();
    const double heft = Heft().schedule(problem).makespan();
    EXPECT_LE(dheft, heft + 1e-9) << "seed " << seed;
    wins.add(heft - dheft);
  }
  EXPECT_GT(wins.max(), 0.0);  // strictly better at least once
}

TEST(ExtensionSched, ValidOnRandomGraphsWithDeadProcessor) {
  workload::RandomDagParams p;
  p.num_tasks = 60;
  p.costs.num_procs = 4;
  p.costs.ccr = 2.0;
  sim::Workload w = workload::random_workload(p, 31);
  w.platform.set_alive(1, false);
  const sim::Problem problem(w);
  for (const char* name : {"dls", "minmin", "maxmin", "dheft"}) {
    const auto s = core::default_registry().make(name)->schedule(problem);
    EXPECT_TRUE(s.validate(problem).empty()) << name;
  }
}

}  // namespace
}  // namespace hdlts::sched
