// Energy model tests, including the §II-B duplication/energy trade-off.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/energy.hpp"
#include "hdlts/sched/sdbats.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::metrics {
namespace {

TEST(PlatformPower, DefaultsAndValidation) {
  platform::Platform p(2);
  EXPECT_DOUBLE_EQ(p.busy_power(0), 1.0);
  EXPECT_DOUBLE_EQ(p.idle_power(0), 0.1);
  p.set_power(1, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(p.busy_power(1), 3.0);
  EXPECT_DOUBLE_EQ(p.idle_power(1), 0.5);
  EXPECT_THROW(p.set_power(0, -1.0, 0.0), InvalidArgument);
  EXPECT_THROW(p.set_power(0, 1.0, 2.0), InvalidArgument);  // idle > busy
  EXPECT_THROW(p.set_power(9, 1.0, 0.1), InvalidArgument);
}

TEST(Energy, HandComputedOnTinySchedule) {
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0.0);
  sim::CostTable costs(2, 2);
  costs.set(0, 0, 10);
  costs.set(0, 1, 10);
  costs.set(1, 0, 10);
  costs.set(1, 1, 10);
  sim::Workload w{std::move(g), std::move(costs), platform::Platform(2)};
  w.platform.set_power(0, 2.0, 0.5);
  w.platform.set_power(1, 4.0, 1.0);
  const sim::Problem p(w);
  sim::Schedule s(2, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 1, 10.0, 20.0);
  const EnergyBreakdown e = energy(p, s);
  // Busy: 10*2 on P1 + 10*4 on P2 = 60. Idle: P1 idles 10 at 0.5 = 5,
  // P2 idles 10 at 1.0 = 10.
  EXPECT_DOUBLE_EQ(e.busy, 60.0);
  EXPECT_DOUBLE_EQ(e.idle, 15.0);
  EXPECT_DOUBLE_EQ(e.duplicate, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), 75.0);
}

TEST(Energy, DuplicateEnergyIsAttributed) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const EnergyBreakdown e = energy(p, s);
  // HDLTS duplicates the entry on P1 [0,14] and P2 [0,16] at busy power 1.
  EXPECT_DOUBLE_EQ(e.duplicate, 30.0);
  EXPECT_GT(e.busy, e.duplicate);
}

TEST(Energy, DuplicationTradesEnergyForMakespan) {
  // §II-B quantified: on the worked example, HDLTS-with-duplication is
  // faster but burns more busy energy than HDLTS-without.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  core::HdltsOptions nodup;
  nodup.duplication = core::DuplicationRule::kOff;
  const sim::Schedule with = core::Hdlts().schedule(p);
  const sim::Schedule without = core::Hdlts(nodup).schedule(p);
  EXPECT_LT(with.makespan(), without.makespan());
  EXPECT_GT(energy(p, with).busy, energy(p, without).busy);
}

TEST(Energy, SdbatsFullDuplicationCostsMoreThanHdltsSelective) {
  // SDBATS duplicates the entry on every processor unconditionally; HDLTS
  // only where Algorithm 1 pays. On the classic graph both end up with two
  // extra copies, so compare busy energy against plain HEFT instead.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const double sdbats_busy =
      energy(p, sched::Sdbats().schedule(p)).busy;
  const double plain_busy =
      energy(p, sched::Sdbats(true, false).schedule(p)).busy;
  EXPECT_GT(sdbats_busy, plain_busy);
}

TEST(Energy, EmptyScheduleIsFree) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s(p.num_tasks(), p.num_procs());
  const EnergyBreakdown e = energy(p, s);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, CompiledRowsMatchTheDefinition) {
  // The shared cost model caches dyn_energy(v,p) = W(v,p) * (busy - idle)
  // and static_power(p) = idle_power(p) at compile time — bit-identical to
  // recomputing from the platform, which is what keeps the weighted
  // selection rule equal between the legacy and compiled paths.
  sim::Workload w = workload::classic_workload();
  w.platform.set_power(0, 2.0, 0.5);
  w.platform.set_power(2, 4.0, 1.0);
  const sim::Problem p(w);
  const sim::CompiledProblem& c = p.compiled();
  double static_sum = 0.0;
  for (platform::ProcId proc = 0; proc < w.platform.num_procs(); ++proc) {
    EXPECT_EQ(c.static_power(proc), w.platform.idle_power(proc));
    EXPECT_EQ(c.busy_power(proc), w.platform.busy_power(proc));
    static_sum += w.platform.idle_power(proc);
    for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
      EXPECT_EQ(c.dyn_energy(v, proc),
                w.costs(v, proc) * (w.platform.busy_power(proc) -
                                    w.platform.idle_power(proc)));
    }
  }
  EXPECT_EQ(c.total_static_power(), static_sum);
}

TEST(Energy, TotalDecomposesIntoDynamicPlusStatic) {
  // total == sum(dyn over every placed block) + makespan * sum(static):
  // the algebraic identity behind the energy-aware objective, on a schedule
  // that includes duplicates.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const sim::CompiledProblem& c = p.compiled();
  double dyn = 0.0;
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    dyn += c.dyn_energy(v, s.placement(v).proc);
    for (const sim::Placement& d : s.duplicates(v)) {
      dyn += c.dyn_energy(v, d.proc);
    }
  }
  const EnergyBreakdown e = energy(p, s);
  EXPECT_NEAR(e.total(), dyn + s.makespan() * c.total_static_power(), 1e-9);
}

TEST(Energy, CompiledOverloadMatchesProblemOverload) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const EnergyBreakdown a = energy(p, s);
  const EnergyBreakdown b = energy(p.compiled(), s);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.duplicate, b.duplicate);
}

TEST(Energy, BusyIntervalsCarryNoEnergy) {
  // Pre-occupied intervals belong to someone else's accounting: placing one
  // must not change the schedule's energy (and must not stretch the
  // makespan the idle term integrates over).
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  sim::Schedule with = s;
  with.place_busy(0, s.makespan(), s.makespan() + 100.0);
  EXPECT_EQ(with.makespan(), s.makespan());
  const EnergyBreakdown a = energy(p, s);
  const EnergyBreakdown b = energy(p, with);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.total(), b.total());
}

TEST(Energy, WeightedSelectionCompiledMatchesLegacy) {
  // The weighted rule computes the dynamic-energy term as the same
  // W * (busy - idle) product on both paths, so a weighted scheduler must
  // stay bit-identical between schedule() (compiled) and schedule_traced()
  // (legacy) just like the baseline does.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  core::HdltsOptions options;
  options.energy_weight = 2.5;
  options.deadline = 120.0;
  const core::Hdlts scheduler(options);
  const sim::Schedule compiled = scheduler.schedule(p);
  const sim::Schedule legacy = scheduler.schedule_traced(p, nullptr);
  EXPECT_EQ(compiled.makespan(), legacy.makespan());
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    EXPECT_EQ(compiled.placement(v).proc, legacy.placement(v).proc);
    EXPECT_EQ(compiled.placement(v).start, legacy.placement(v).start);
    EXPECT_EQ(compiled.placement(v).finish, legacy.placement(v).finish);
  }
}

}  // namespace
}  // namespace hdlts::metrics
