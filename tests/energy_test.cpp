// Energy model tests, including the §II-B duplication/energy trade-off.
#include <gtest/gtest.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/energy.hpp"
#include "hdlts/sched/sdbats.hpp"
#include "hdlts/workload/classic.hpp"

namespace hdlts::metrics {
namespace {

TEST(PlatformPower, DefaultsAndValidation) {
  platform::Platform p(2);
  EXPECT_DOUBLE_EQ(p.busy_power(0), 1.0);
  EXPECT_DOUBLE_EQ(p.idle_power(0), 0.1);
  p.set_power(1, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(p.busy_power(1), 3.0);
  EXPECT_DOUBLE_EQ(p.idle_power(1), 0.5);
  EXPECT_THROW(p.set_power(0, -1.0, 0.0), InvalidArgument);
  EXPECT_THROW(p.set_power(0, 1.0, 2.0), InvalidArgument);  // idle > busy
  EXPECT_THROW(p.set_power(9, 1.0, 0.1), InvalidArgument);
}

TEST(Energy, HandComputedOnTinySchedule) {
  graph::TaskGraph g;
  g.add_task();
  g.add_task();
  g.add_edge(0, 1, 0.0);
  sim::CostTable costs(2, 2);
  costs.set(0, 0, 10);
  costs.set(0, 1, 10);
  costs.set(1, 0, 10);
  costs.set(1, 1, 10);
  sim::Workload w{std::move(g), std::move(costs), platform::Platform(2)};
  w.platform.set_power(0, 2.0, 0.5);
  w.platform.set_power(1, 4.0, 1.0);
  const sim::Problem p(w);
  sim::Schedule s(2, 2);
  s.place(0, 0, 0.0, 10.0);
  s.place(1, 1, 10.0, 20.0);
  const EnergyBreakdown e = energy(p, s);
  // Busy: 10*2 on P1 + 10*4 on P2 = 60. Idle: P1 idles 10 at 0.5 = 5,
  // P2 idles 10 at 1.0 = 10.
  EXPECT_DOUBLE_EQ(e.busy, 60.0);
  EXPECT_DOUBLE_EQ(e.idle, 15.0);
  EXPECT_DOUBLE_EQ(e.duplicate, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), 75.0);
}

TEST(Energy, DuplicateEnergyIsAttributed) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = core::Hdlts().schedule(p);
  const EnergyBreakdown e = energy(p, s);
  // HDLTS duplicates the entry on P1 [0,14] and P2 [0,16] at busy power 1.
  EXPECT_DOUBLE_EQ(e.duplicate, 30.0);
  EXPECT_GT(e.busy, e.duplicate);
}

TEST(Energy, DuplicationTradesEnergyForMakespan) {
  // §II-B quantified: on the worked example, HDLTS-with-duplication is
  // faster but burns more busy energy than HDLTS-without.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  core::HdltsOptions nodup;
  nodup.duplication = core::DuplicationRule::kOff;
  const sim::Schedule with = core::Hdlts().schedule(p);
  const sim::Schedule without = core::Hdlts(nodup).schedule(p);
  EXPECT_LT(with.makespan(), without.makespan());
  EXPECT_GT(energy(p, with).busy, energy(p, without).busy);
}

TEST(Energy, SdbatsFullDuplicationCostsMoreThanHdltsSelective) {
  // SDBATS duplicates the entry on every processor unconditionally; HDLTS
  // only where Algorithm 1 pays. On the classic graph both end up with two
  // extra copies, so compare busy energy against plain HEFT instead.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const double sdbats_busy =
      energy(p, sched::Sdbats().schedule(p)).busy;
  const double plain_busy =
      energy(p, sched::Sdbats(true, false).schedule(p)).busy;
  EXPECT_GT(sdbats_busy, plain_busy);
}

TEST(Energy, EmptyScheduleIsFree) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s(p.num_tasks(), p.num_procs());
  const EnergyBreakdown e = energy(p, s);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

}  // namespace
}  // namespace hdlts::metrics
