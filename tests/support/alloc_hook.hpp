// Global operator-new/delete interposer that counts heap allocations.
// Linked ONLY into test and benchmark binaries (hdlts_alloc_hook static
// library) — the shipped libraries never pay for the counters.
//
// Usage:
//   const auto before = tests::alloc_counters();
//   <code under test>
//   const auto after = tests::alloc_counters();
//   EXPECT_EQ(after.allocations, before.allocations);
//
// The counters are relaxed atomics: cheap, async-signal-unsafe-free, and
// exact in single-threaded sections (which is how the zero-allocation
// regression test uses them).
#pragma once

#include <cstddef>
#include <cstdint>

namespace hdlts::tests {

struct AllocCounters {
  std::uint64_t allocations = 0;  ///< operator new calls
  std::uint64_t frees = 0;        ///< operator delete calls
  std::uint64_t bytes = 0;        ///< total bytes requested via operator new
};

/// Snapshot of the process-wide counters.
AllocCounters alloc_counters();

}  // namespace hdlts::tests
