#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc/aligned_alloc (not new) so the replacement operators below are
  // self-contained; aligned_alloc wants size to be a multiple of align.
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size == 0 ? 1 : size)
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace hdlts::tests {

AllocCounters alloc_counters() {
  AllocCounters c;
  c.allocations = g_allocs.load(std::memory_order_relaxed);
  c.frees = g_frees.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace hdlts::tests

// Replaceable global allocation functions ([new.delete.single] — defining
// these in any linked TU replaces the library versions program-wide).
void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
