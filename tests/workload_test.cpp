// Generator tests: structure counts, parameter effects, determinism, and the
// paper's cost-model identities (Eqs. 13–14).
#include <gtest/gtest.h>

#include <cmath>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/costs.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/gauss.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::workload {
namespace {

TEST(Classic, MatchesPaperFigure) {
  const sim::Workload w = classic_workload();
  EXPECT_EQ(w.graph.num_tasks(), 10u);
  EXPECT_EQ(w.graph.num_edges(), 15u);
  EXPECT_EQ(w.platform.num_procs(), 3u);
  EXPECT_DOUBLE_EQ(w.costs(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(w.costs(9, 1), 7.0);
  EXPECT_DOUBLE_EQ(w.graph.edge_data(0, 1), 18.0);
  EXPECT_EQ(w.graph.single_entry(), 0u);
  EXPECT_EQ(w.graph.single_exit(), 9u);
}

TEST(CostParams, Validation) {
  CostParams p;
  p.num_procs = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = CostParams{};
  p.beta = 2.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = CostParams{};
  p.ccr = -1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = CostParams{};
  p.wdag = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(MakeWorkload, CostsRespectBetaBand) {
  // Eq. 13: wbar*(1 - beta/2) <= W(i,j) <= wbar*(1 + beta/2).
  graph::TaskGraph g;
  for (int i = 0; i < 30; ++i) g.add_task();
  for (int i = 1; i < 30; ++i) {
    g.add_edge(0, static_cast<graph::TaskId>(i), 0.0);
  }
  CostParams params;
  params.num_procs = 5;
  params.beta = 1.0;
  params.wdag = 40;
  const sim::Workload w = make_workload(std::move(g), params, 99);
  for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
    const double wbar = w.graph.work(v);
    for (platform::ProcId p = 0; p < 5; ++p) {
      EXPECT_GE(w.costs(v, p), wbar * 0.5 - 1e-9);
      EXPECT_LE(w.costs(v, p), wbar * 1.5 + 1e-9);
    }
  }
}

TEST(MakeWorkload, EdgeDataFollowsCcr) {
  // Eq. 14: data(u, v) = wbar_u * CCR (normalization edges stay at 0).
  graph::TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_task();
  g.add_edge(0, 1, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(1, 3, 0);
  g.add_edge(2, 4, 0);
  CostParams params;
  params.ccr = 3.0;
  const sim::Workload w = make_workload(std::move(g), params, 5);
  EXPECT_DOUBLE_EQ(w.graph.edge_data(0, 1), w.graph.work(0) * 3.0);
  EXPECT_DOUBLE_EQ(w.graph.edge_data(1, 3), w.graph.work(1) * 3.0);
}

TEST(MakeWorkload, PseudoTasksStayFree) {
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task();
  g.add_edge(0, 2, 0);
  g.add_edge(1, 3, 0);  // two entries, two exits -> both pseudo tasks
  CostParams params;
  const sim::Workload w = make_workload(std::move(g), params, 1);
  EXPECT_EQ(w.graph.num_tasks(), 6u);
  const graph::TaskId pe = w.graph.single_entry();
  const graph::TaskId px = w.graph.single_exit();
  for (platform::ProcId p = 0; p < params.num_procs; ++p) {
    EXPECT_DOUBLE_EQ(w.costs(pe, p), 0.0);
    EXPECT_DOUBLE_EQ(w.costs(px, p), 0.0);
  }
  for (const graph::Adjacent& c : w.graph.children(pe)) {
    EXPECT_DOUBLE_EQ(c.data, 0.0);
  }
}

TEST(MakeWorkload, DeterministicPerSeed) {
  RandomDagParams params;
  params.num_tasks = 80;
  const sim::Workload a = random_workload(params, 1234);
  const sim::Workload b = random_workload(params, 1234);
  const sim::Workload c = random_workload(params, 1235);
  ASSERT_EQ(a.graph.num_tasks(), b.graph.num_tasks());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  bool all_equal = a.graph.num_edges() == c.graph.num_edges();
  for (graph::TaskId v = 0; v < a.graph.num_tasks(); ++v) {
    for (platform::ProcId p = 0; p < 4; ++p) {
      EXPECT_DOUBLE_EQ(a.costs(v, p), b.costs(v, p));
    }
  }
  if (all_equal && a.graph.num_tasks() == c.graph.num_tasks()) {
    bool any_diff = false;
    for (graph::TaskId v = 0; v < a.graph.num_tasks() && !any_diff; ++v) {
      if (a.costs(v, 0) != c.costs(v, 0)) any_diff = true;
    }
    EXPECT_TRUE(any_diff);  // different seed must actually change something
  }
}

TEST(RandomDag, TaskCountIsExact) {
  for (const std::size_t v : {20u, 100u, 333u}) {
    RandomDagParams params;
    params.num_tasks = v;
    util::Rng rng(v);
    const graph::TaskGraph g = random_structure(params, rng);
    EXPECT_EQ(g.num_tasks(), v);
    EXPECT_TRUE(graph::is_acyclic(g));
  }
}

TEST(RandomDag, AlphaControlsShape) {
  // alpha = 0.5 -> tall/thin; alpha = 2.0 -> short/fat (paper §V-B2).
  RandomDagParams tall;
  tall.num_tasks = 400;
  tall.alpha = 0.5;
  RandomDagParams fat = tall;
  fat.alpha = 2.0;
  util::Rng r1(9);
  util::Rng r2(9);
  const auto g_tall = random_structure(tall, r1);
  const auto g_fat = random_structure(fat, r2);
  EXPECT_GT(graph::num_levels(g_tall), graph::num_levels(g_fat));
  // Expected level counts: sqrt(400)/0.5 = 40 vs sqrt(400)/2 = 10.
  EXPECT_NEAR(static_cast<double>(graph::num_levels(g_tall)), 40.0, 8.0);
  EXPECT_NEAR(static_cast<double>(graph::num_levels(g_fat)), 10.0, 4.0);
}

TEST(RandomDag, DensityControlsEdgeCount) {
  RandomDagParams sparse;
  sparse.num_tasks = 300;
  sparse.density = 1;
  RandomDagParams dense = sparse;
  dense.density = 5;
  util::Rng r1(3);
  util::Rng r2(3);
  const auto g_sparse = random_structure(sparse, r1);
  const auto g_dense = random_structure(dense, r2);
  EXPECT_GT(g_dense.num_edges(), g_sparse.num_edges());
}

TEST(RandomDag, ParameterValidation) {
  RandomDagParams p;
  p.num_tasks = 1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = RandomDagParams{};
  p.alpha = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = RandomDagParams{};
  p.density = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Fft, TaskCountFormula) {
  // Paper §V-C1: m = 4 -> 15 tasks, m = 32 -> 223 tasks.
  EXPECT_EQ(fft_task_count(4), 15u);
  EXPECT_EQ(fft_task_count(8), 39u);
  EXPECT_EQ(fft_task_count(16), 95u);
  EXPECT_EQ(fft_task_count(32), 223u);
}

TEST(Fft, StructureShape) {
  const graph::TaskGraph g = fft_structure(8);
  EXPECT_EQ(g.num_tasks(), fft_task_count(8));
  EXPECT_TRUE(graph::is_acyclic(g));
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);  // m butterfly outputs
  // Butterfly tasks have exactly two parents.
  std::size_t two_parent = 0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (g.in_degree(v) == 2) ++two_parent;
  }
  EXPECT_EQ(two_parent, 8u * 3u);  // m tasks per stage, log2(8) stages
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(fft_structure(6), InvalidArgument);
  EXPECT_THROW(fft_structure(1), InvalidArgument);
  FftParams p;
  p.points = 12;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Fft, WorkloadIsNormalized) {
  FftParams p;
  p.points = 4;
  const sim::Workload w = fft_workload(p, 2);
  // 15 tasks + 1 pseudo exit (multi-exit butterflies).
  EXPECT_EQ(w.graph.num_tasks(), 16u);
  EXPECT_NO_THROW(w.graph.single_exit());
  EXPECT_NO_THROW(w.graph.single_entry());
}

TEST(Montage, HitsExactNodeBudgets) {
  for (const std::size_t n : {20u, 50u, 100u}) {
    MontageParams p;
    p.num_nodes = n;
    util::Rng rng(n);
    const graph::TaskGraph g = montage_structure(p, rng);
    EXPECT_EQ(g.num_tasks(), n);
    EXPECT_TRUE(graph::is_acyclic(g));
  }
}

TEST(Montage, TwentyNodeSampleHasCanonicalStageSizes) {
  MontageParams p;
  p.num_nodes = 20;
  util::Rng rng(1);
  const graph::TaskGraph g = montage_structure(p, rng);
  std::size_t project = 0;
  std::size_t diff = 0;
  std::size_t background = 0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (g.name(v).rfind("mProjectPP", 0) == 0) ++project;
    if (g.name(v).rfind("mDiffFit", 0) == 0) ++diff;
    if (g.name(v).rfind("mBackground", 0) == 0) ++background;
  }
  EXPECT_EQ(project, 4u);
  EXPECT_EQ(diff, 6u);
  EXPECT_EQ(background, 4u);
}

TEST(Montage, SingleExitIsJpeg) {
  MontageParams p;
  p.num_nodes = 50;
  util::Rng rng(4);
  const graph::TaskGraph g = montage_structure(p, rng);
  const auto exits = g.exit_tasks();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(g.name(exits[0]), "mJPEG");
}

TEST(Montage, RejectsTinyBudgets) {
  MontageParams p;
  p.num_nodes = 10;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Md, FixedStructure) {
  const graph::TaskGraph g = md_structure();
  EXPECT_EQ(g.num_tasks(), 41u);
  EXPECT_TRUE(graph::is_acyclic(g));
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(graph::num_levels(g), 10u);
  // Every task lies on a path from entry to exit.
  EXPECT_EQ(graph::descendants(g, 0).size(), 40u);
  EXPECT_EQ(graph::ancestors(g, 40).size(), 40u);
}

TEST(Md, WorkloadRespectsCostParams) {
  MdParams p;
  p.costs.num_procs = 7;
  p.costs.ccr = 2.0;
  const sim::Workload w = md_workload(p, 12);
  EXPECT_EQ(w.platform.num_procs(), 7u);
  EXPECT_EQ(w.graph.num_tasks(), 41u);  // already single entry/exit
}

TEST(Gauss, TaskCountFormula) {
  EXPECT_EQ(gauss_task_count(2), 2u);
  EXPECT_EQ(gauss_task_count(5), 14u);
  EXPECT_EQ(gauss_task_count(10), 54u);
}

TEST(Gauss, StructureShape) {
  const graph::TaskGraph g = gauss_structure(6);
  EXPECT_EQ(g.num_tasks(), gauss_task_count(6));
  EXPECT_TRUE(graph::is_acyclic(g));
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  // 2(m-1)-1 precedence levels: pivot/update alternation.
  EXPECT_EQ(graph::num_levels(g), 2u * 5u);
}

TEST(Gauss, RejectsTooSmall) {
  EXPECT_THROW(gauss_structure(1), InvalidArgument);
  GaussParams p;
  p.matrix_size = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

}  // namespace
}  // namespace hdlts::workload
