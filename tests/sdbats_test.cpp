// SDBATS regression and behaviour tests.
#include <gtest/gtest.h>

#include "hdlts/sched/sdbats.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/md.hpp"

namespace hdlts::sched {
namespace {

TEST(Sdbats, ClassicGraphMakespanIs74) {
  // Matches the value the HDLTS paper reports for SDBATS on this graph.
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Sdbats().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 74.0);
}

TEST(Sdbats, DuplicatesEntryOnAllProcessors) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Sdbats().schedule(p);
  // Primary + duplicates cover all 3 processors, each starting at t = 0.
  EXPECT_EQ(s.duplicates(0).size(), 2u);
  for (const sim::Placement& d : s.duplicates(0)) {
    EXPECT_DOUBLE_EQ(d.start, 0.0);
    EXPECT_NE(d.proc, s.placement(0).proc);
  }
}

TEST(Sdbats, DuplicationCanBeDisabled) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Sdbats(true, false).schedule(p);
  EXPECT_TRUE(s.duplicates(0).empty());
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Sdbats, ValidOnMolecularDynamics) {
  workload::MdParams params;
  params.costs.num_procs = 6;
  const sim::Workload w = workload::md_workload(params, 9);
  const sim::Problem p(w);
  const sim::Schedule s = Sdbats().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
}

TEST(Sdbats, SingleTaskGraphSkipsDuplication) {
  graph::TaskGraph g;
  g.add_task();
  sim::CostTable costs(1, 2);
  costs.set(0, 0, 5);
  costs.set(0, 1, 3);
  const sim::Workload w{std::move(g), std::move(costs),
                        platform::Platform(2)};
  const sim::Problem p(w);
  const sim::Schedule s = Sdbats().schedule(p);
  EXPECT_TRUE(s.validate(p).empty());
  EXPECT_TRUE(s.duplicates(0).empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(Sdbats, Name) { EXPECT_EQ(Sdbats().name(), "sdbats"); }

}  // namespace
}  // namespace hdlts::sched
