// Parameter-grid (paper Table II) tests.
#include <gtest/gtest.h>

#include <set>

#include "hdlts/workload/grid.hpp"

namespace hdlts::workload {
namespace {

TEST(Grid, PaperGridSize) {
  const ParameterGrid g = ParameterGrid::paper();
  // 8 * 5 * 5 * 5 * 5 * 6 * 5 — the paper rounds this to "125K".
  EXPECT_EQ(g.size(), 150000u);
}

TEST(Grid, MixedRadixDecodeCoversAxes) {
  const ParameterGrid g = ParameterGrid::paper();
  // Index 0 is the first value on every axis.
  const RandomDagParams first = g.at(0);
  EXPECT_EQ(first.num_tasks, 100u);
  EXPECT_DOUBLE_EQ(first.alpha, 0.5);
  EXPECT_EQ(first.density, 1u);
  EXPECT_DOUBLE_EQ(first.costs.ccr, 1.0);
  EXPECT_EQ(first.costs.num_procs, 2u);
  EXPECT_DOUBLE_EQ(first.costs.wdag, 50.0);
  EXPECT_DOUBLE_EQ(first.costs.beta, 0.4);
  // The last index is the last value on every axis.
  const RandomDagParams last = g.at(g.size() - 1);
  EXPECT_EQ(last.num_tasks, 10000u);
  EXPECT_DOUBLE_EQ(last.alpha, 2.5);
  EXPECT_EQ(last.density, 5u);
  EXPECT_DOUBLE_EQ(last.costs.ccr, 5.0);
  EXPECT_EQ(last.costs.num_procs, 10u);
  EXPECT_DOUBLE_EQ(last.costs.wdag, 100.0);
  EXPECT_DOUBLE_EQ(last.costs.beta, 2.0);
  // Index 1 only advances the fastest axis (beta).
  const RandomDagParams second = g.at(1);
  EXPECT_DOUBLE_EQ(second.costs.beta, 0.8);
  EXPECT_DOUBLE_EQ(second.costs.wdag, 50.0);
}

TEST(Grid, DistinctIndicesGiveDistinctParams) {
  const ParameterGrid g = ParameterGrid::paper();
  std::set<std::tuple<std::size_t, double, std::size_t, double, std::size_t,
                      double, double>>
      seen;
  for (std::size_t i = 0; i < 500; ++i) {
    const RandomDagParams p = g.at(i * 37);
    seen.insert({p.num_tasks, p.alpha, p.density, p.costs.ccr,
                 p.costs.num_procs, p.costs.wdag, p.costs.beta});
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(Grid, AtValidatesRange) {
  const ParameterGrid g = ParameterGrid::paper();
  EXPECT_THROW(g.at(g.size()), InvalidArgument);
  ParameterGrid empty;
  EXPECT_THROW(empty.at(0), InvalidArgument);
}

TEST(Grid, SampleIsDeterministicAndDistinct) {
  const ParameterGrid g = ParameterGrid::paper();
  const auto a = g.sample(100, 7);
  const auto b = g.sample(100, 7);
  const auto c = g.sample(100, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const std::set<std::size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const std::size_t i : a) EXPECT_LT(i, g.size());
}

TEST(Grid, SampleRejectsOversizedRequests) {
  ParameterGrid g = ParameterGrid::paper();
  g.tasks = {100};
  g.alpha = {1.0};
  g.density = {1};
  g.ccr = {1.0};
  g.procs = {2};
  g.wdag = {50};
  g.beta = {0.4};
  EXPECT_EQ(g.size(), 1u);
  EXPECT_THROW(g.sample(2, 1), InvalidArgument);
  EXPECT_EQ(g.sample(1, 1).size(), 1u);
}

TEST(Grid, SampledParamsValidate) {
  const ParameterGrid g = ParameterGrid::paper();
  for (const std::size_t i : g.sample(20, 3)) {
    EXPECT_NO_THROW(g.at(i).validate());
  }
}

}  // namespace
}  // namespace hdlts::workload
