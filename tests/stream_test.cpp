// Dynamic workflow-stream scheduling tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "hdlts/check/validate.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::core {
namespace {

sim::Workload small_random(std::uint64_t seed, std::size_t procs = 3) {
  workload::RandomDagParams p;
  p.num_tasks = 25;
  p.costs.num_procs = procs;
  p.costs.ccr = 2.0;
  return workload::random_workload(p, seed);
}

TEST(Stream, RejectsBadInputs) {
  EXPECT_THROW(run_stream({}), InvalidArgument);
  std::vector<StreamArrival> s;
  s.push_back({small_random(1, 3), 0.0});
  s.push_back({small_random(2, 4), 5.0});  // different processor count
  EXPECT_THROW(run_stream(s), InvalidArgument);
  s.pop_back();
  s.push_back({small_random(2, 3), -1.0});  // negative arrival
  EXPECT_THROW(run_stream(s), InvalidArgument);
}

TEST(Stream, SingleWorkflowHasPositiveFlowTime) {
  std::vector<StreamArrival> s;
  s.push_back({workload::classic_workload(), 0.0});
  const StreamResult r = run_stream(s);
  ASSERT_EQ(r.finish.size(), 1u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.flow_time[0], r.finish[0]);
  EXPECT_EQ(r.executions.size(), 10u);
}

TEST(Stream, ExecutionsRespectPrecedenceAndArrival) {
  std::vector<StreamArrival> s;
  s.push_back({small_random(1), 0.0});
  s.push_back({small_random(2), 30.0});
  s.push_back({small_random(3), 60.0});
  const StreamResult r = run_stream(s);
  // Completion per (workflow, task).
  std::vector<std::vector<double>> done(3);
  for (std::size_t w = 0; w < 3; ++w) {
    done[w].assign(s[w].workload.graph.num_tasks(),
                   std::numeric_limits<double>::infinity());
  }
  for (const StreamTaskExec& e : r.executions) {
    done[e.workflow][e.task] = e.finish;
    EXPECT_GE(e.start, s[e.workflow].arrival - 1e-9);
  }
  for (std::size_t w = 0; w < 3; ++w) {
    const auto& g = s[w].workload.graph;
    for (const StreamTaskExec& e : r.executions) {
      if (e.workflow != w) continue;
      for (const graph::Adjacent& p : g.parents(e.task)) {
        EXPECT_LE(done[w][p.task], e.start + 1e-6)
            << "workflow " << w << " task " << e.task;
      }
    }
  }
}

TEST(Stream, FarApartArrivalsBehaveIndependently) {
  // When workflow 2 arrives long after workflow 1 finished, each gets its
  // solo flow time.
  std::vector<StreamArrival> solo1;
  solo1.push_back({small_random(7), 0.0});
  const double alone1 = run_stream(solo1).makespan;

  std::vector<StreamArrival> solo2;
  solo2.push_back({small_random(8), 0.0});
  const double alone2 = run_stream(solo2).makespan;

  std::vector<StreamArrival> s;
  s.push_back({small_random(7), 0.0});
  s.push_back({small_random(8), alone1 + 100.0});
  const StreamResult r = run_stream(s);
  EXPECT_NEAR(r.flow_time[0], alone1, 1e-9);
  EXPECT_NEAR(r.flow_time[1], alone2, 1e-9);
}

TEST(Stream, ContentionStretchesFlowTimes) {
  std::vector<StreamArrival> solo;
  solo.push_back({small_random(11), 0.0});
  const double alone = run_stream(solo).makespan;

  // Three identical workflows arriving together must contend.
  std::vector<StreamArrival> s;
  for (int i = 0; i < 3; ++i) s.push_back({small_random(11), 0.0});
  const StreamResult r = run_stream(s);
  const double worst =
      *std::max_element(r.flow_time.begin(), r.flow_time.end());
  EXPECT_GT(worst, alone - 1e-9);
}

TEST(Stream, UnsortedArrivalsAreHandled) {
  std::vector<StreamArrival> s;
  s.push_back({small_random(1), 50.0});
  s.push_back({small_random(2), 0.0});
  const StreamResult r = run_stream(s);
  for (const StreamTaskExec& e : r.executions) {
    EXPECT_GE(e.start, s[e.workflow].arrival - 1e-9);
  }
}

TEST(Stream, FifoPolicyDiffersFromPv) {
  std::vector<StreamArrival> s;
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.push_back({small_random(20 + i), 10.0 * static_cast<double>(i)});
  }
  StreamOptions pv;
  StreamOptions fifo;
  fifo.policy = StreamPolicy::kFifoEft;
  const StreamResult a = run_stream(s, pv);
  const StreamResult b = run_stream(s, fifo);
  // Both complete everything; the policies are genuinely different rules so
  // at least one workflow's finish time should differ on contended input.
  EXPECT_EQ(a.executions.size(), b.executions.size());
  bool any_diff = false;
  for (std::size_t w = 0; w < s.size(); ++w) {
    if (std::abs(a.finish[w] - b.finish[w]) > 1e-9) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Stream, DeterministicAcrossRuns) {
  std::vector<StreamArrival> s;
  s.push_back({small_random(5), 0.0});
  s.push_back({small_random(6), 15.0});
  const StreamResult a = run_stream(s);
  const StreamResult b = run_stream(s);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.executions.size(), b.executions.size());
  for (std::size_t i = 0; i < a.executions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.executions[i].start, b.executions[i].start);
    EXPECT_EQ(a.executions[i].proc, b.executions[i].proc);
  }
}

// --- Seeded properties across every workload family ---

sim::Workload stream_family_workload(int family, std::uint64_t seed) {
  workload::CostParams costs;
  costs.num_procs = 3;
  switch (family) {
    case 0: {
      workload::RandomDagParams p;
      p.num_tasks = 20;
      p.costs = costs;
      return workload::random_workload(p, seed);
    }
    case 1: {
      workload::FftParams p;
      p.points = 8;
      p.costs = costs;
      return workload::fft_workload(p, seed);
    }
    case 2: {
      workload::MontageParams p;
      p.num_nodes = 25;
      p.costs = costs;
      return workload::montage_workload(p, seed);
    }
    case 3: {
      workload::MdParams p;
      p.costs = costs;
      return workload::md_workload(p, seed);
    }
    default: {
      workload::ForkJoinParams p;
      p.costs = costs;
      return workload::forkjoin_workload(p, seed);
    }
  }
}

// --- Compiled-vs-legacy bit identity ---

void expect_stream_identical(const StreamResult& got, const StreamResult& want,
                             const std::string& label) {
  EXPECT_EQ(got.makespan, want.makespan) << label;  // exact, no tolerance
  EXPECT_EQ(got.finish, want.finish) << label;
  EXPECT_EQ(got.flow_time, want.flow_time) << label;
  ASSERT_EQ(got.executions.size(), want.executions.size()) << label;
  for (std::size_t i = 0; i < got.executions.size(); ++i) {
    const StreamTaskExec& a = got.executions[i];
    const StreamTaskExec& b = want.executions[i];
    EXPECT_EQ(a.workflow, b.workflow) << label << " #" << i;
    EXPECT_EQ(a.task, b.task) << label << " #" << i;
    EXPECT_EQ(a.proc, b.proc) << label << " #" << i;
    EXPECT_EQ(a.start, b.start) << label << " #" << i;
    EXPECT_EQ(a.finish, b.finish) << label << " #" << i;
  }
}

TEST(StreamDifferential, CompiledMatchesLegacyAcrossFamiliesAndPolicies) {
  std::size_t pairs = 0;
  for (int family = 0; family < 5; ++family) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      std::vector<StreamArrival> arrivals;
      arrivals.push_back({stream_family_workload(family, seed), 0.0});
      arrivals.push_back({stream_family_workload(family, seed + 100), 12.0});
      arrivals.push_back({stream_family_workload(family, seed + 200), 40.0});
      for (const StreamPolicy policy :
           {StreamPolicy::kHdltsPv, StreamPolicy::kFifoEft}) {
        StreamOptions options;
        options.policy = policy;
        const StreamResult compiled = run_stream(arrivals, options);
        const StreamResult legacy = run_stream_legacy(arrivals, options);
        expect_stream_identical(
            compiled, legacy,
            "family " + std::to_string(family) + " seed " +
                std::to_string(seed) +
                (policy == StreamPolicy::kHdltsPv ? " pv" : " fifo"));
        ++pairs;
      }
    }
  }
  EXPECT_GE(pairs, 30u);
}

TEST(StreamDifferential, CompileOnceRunManyIsBitIdentical) {
  // A frozen StreamHdlts recycled across run_into calls must keep matching
  // the one-shot result (warm arena/schedule state must not leak).
  std::vector<StreamArrival> arrivals;
  arrivals.push_back({stream_family_workload(0, 9), 0.0});
  arrivals.push_back({stream_family_workload(2, 10), 20.0});
  const StreamResult fresh = run_stream(arrivals);
  StreamHdlts scheduler;
  scheduler.compile(arrivals);
  StreamResult out;
  for (int round = 0; round < 3; ++round) {
    scheduler.run_into(out);
    expect_stream_identical(out, fresh,
                            "round " + std::to_string(round));
  }
}

class StreamBackendGuard {
 public:
  StreamBackendGuard() : saved_(simd::active_backend()) {}
  ~StreamBackendGuard() { simd::force_backend(saved_); }

 private:
  std::string saved_;
};

TEST(StreamDifferential, CompiledMatchesLegacyUnderForcedBackends) {
  std::vector<StreamArrival> arrivals;
  for (std::uint64_t i = 0; i < 3; ++i) {
    arrivals.push_back({stream_family_workload(static_cast<int>(i), 30 + i),
                        8.0 * static_cast<double>(i)});
  }
  for (const char* backend : {"scalar", "avx2"}) {
    if (simd::backend(backend) == nullptr) continue;  // CPU/binary lacks it
    StreamBackendGuard guard;
    ASSERT_TRUE(simd::force_backend(backend));
    for (const StreamPolicy policy :
         {StreamPolicy::kHdltsPv, StreamPolicy::kFifoEft}) {
      StreamOptions options;
      options.policy = policy;
      const StreamResult compiled = run_stream(arrivals, options);
      const StreamResult legacy = run_stream_legacy(arrivals, options);
      expect_stream_identical(compiled, legacy, backend);
    }
  }
}

TEST(StreamProperty, EveryFamilyValidatesUnderBothPolicies) {
  for (int family = 0; family < 5; ++family) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      std::vector<StreamArrival> arrivals;
      arrivals.push_back({stream_family_workload(family, seed), 0.0});
      arrivals.push_back({stream_family_workload(family, seed + 100), 12.0});
      arrivals.push_back({stream_family_workload(family, seed + 200), 40.0});
      for (const StreamPolicy policy :
           {StreamPolicy::kHdltsPv, StreamPolicy::kFifoEft}) {
        StreamOptions options;
        options.policy = policy;
        const StreamResult r = run_stream(arrivals, options);
        const check::StreamValidator validator(options);
        const auto violations = validator.validate(arrivals, r);
        EXPECT_TRUE(violations.empty())
            << "family " << family << " seed " << seed << " policy "
            << (policy == StreamPolicy::kHdltsPv ? "pv" : "fifo") << ": "
            << violations.front();
        for (std::size_t i = 0; i < arrivals.size(); ++i) {
          EXPECT_GE(r.flow_time[i], 0.0);
          EXPECT_LE(r.finish[i], r.makespan + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace hdlts::core
