// Online HDLTS with failure injection.
#include <gtest/gtest.h>

#include <algorithm>

#include "hdlts/check/faultplan.hpp"
#include "hdlts/check/validate.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/workload/classic.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::core {
namespace {

TEST(Online, NoFailuresMatchesStaticSchedule) {
  const sim::Workload w = workload::classic_workload();
  const sim::Problem p(w);
  const sim::Schedule s = Hdlts().schedule(p);
  const OnlineResult r = run_online(w, {});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.lost_executions, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, s.makespan());
  // Every primary placement appears with identical timing.
  for (graph::TaskId v = 0; v < p.num_tasks(); ++v) {
    const sim::Placement& pl = s.placement(v);
    const bool found = std::any_of(
        r.executions.begin(), r.executions.end(), [&](const OnlineExec& e) {
          return e.task == v && !e.duplicate && !e.lost &&
                 e.proc == pl.proc && std::abs(e.start - pl.start) < 1e-9;
        });
    EXPECT_TRUE(found) << "task " << v;
  }
}

TEST(Online, FailureAfterCompletionIsHarmless) {
  const sim::Workload w = workload::classic_workload();
  const ProcFailure late{1, 1000.0};
  const OnlineResult r = run_online(w, {&late, 1});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.lost_executions, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 73.0);
}

TEST(Online, MidRunFailureStillCompletes) {
  const sim::Workload w = workload::classic_workload();
  // P2 hosts most of the back half of the static schedule; kill it mid-run.
  const ProcFailure fail{1, 30.0};
  const OnlineResult r = run_online(w, {&fail, 1});
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.makespan, 73.0);  // losing a machine cannot help
  // Nothing (non-lost) runs on P2 after the failure.
  for (const OnlineExec& e : r.executions) {
    if (e.lost) continue;
    if (e.proc == 1) {
      EXPECT_LE(e.start, 30.0 + 1e-9);
    }
  }
}

TEST(Online, LostExecutionIsRecordedAndRetried) {
  const sim::Workload w = workload::classic_workload();
  // Kill P3 at t = 5 while the entry task (on P3, [0,9]) is running.
  const ProcFailure fail{2, 5.0};
  const OnlineResult r = run_online(w, {&fail, 1});
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.lost_executions, 1u);
  bool lost_entry = false;
  bool rerun_entry = false;
  for (const OnlineExec& e : r.executions) {
    if (e.task == 0 && e.lost) lost_entry = true;
    if (e.task == 0 && !e.lost && !e.duplicate && e.proc != 2) {
      rerun_entry = true;
    }
  }
  EXPECT_TRUE(lost_entry);
  // The entry's duplicates on P1/P2 (from the cold phase) may already cover
  // it; either a duplicate survived or it was re-run.
  bool dup_survived = false;
  for (const OnlineExec& e : r.executions) {
    if (e.task == 0 && e.duplicate && !e.lost) dup_survived = true;
  }
  EXPECT_TRUE(rerun_entry || dup_survived);
}

TEST(Online, CommittedExecutionsRespectPrecedencePhysically) {
  workload::RandomDagParams params;
  params.num_tasks = 60;
  params.costs.num_procs = 4;
  params.costs.ccr = 2.0;
  const sim::Workload w = workload::random_workload(params, 17);
  const std::vector<ProcFailure> fails{{0, 40.0}, {2, 90.0}};
  const OnlineResult r = run_online(w, fails);
  ASSERT_TRUE(r.completed);
  // Earliest completed copy per task.
  std::vector<double> done(w.graph.num_tasks(),
                           std::numeric_limits<double>::infinity());
  for (const OnlineExec& e : r.executions) {
    if (!e.lost) done[e.task] = std::min(done[e.task], e.finish);
  }
  const sim::Problem p0(w);
  for (const OnlineExec& e : r.executions) {
    if (e.lost || e.duplicate) continue;
    for (const graph::Adjacent& parent : w.graph.parents(e.task)) {
      // The parent must have a completed copy that finished in time to feed
      // this execution (comm <= data volume since bandwidth is 1).
      EXPECT_LE(done[parent.task], e.start + 1e-6)
          << "task " << e.task << " started before parent " << parent.task
          << " finished anywhere";
    }
  }
}

TEST(Online, AllProcessorsFailingAbortsGracefully) {
  const sim::Workload w = workload::classic_workload();
  const std::vector<ProcFailure> fails{{0, 1.0}, {1, 1.0}, {2, 1.0}};
  const OnlineResult r = run_online(w, fails);
  EXPECT_FALSE(r.completed);
}

TEST(Online, DuplicateFailureOfSameProcIgnored) {
  const sim::Workload w = workload::classic_workload();
  const std::vector<ProcFailure> fails{{1, 30.0}, {1, 40.0}};
  const OnlineResult r = run_online(w, fails);
  EXPECT_TRUE(r.completed);
}

TEST(Online, SurvivesAnEarlyFailureOnRandomGraph) {
  // Note: list-scheduling anomalies mean losing a machine is not *provably*
  // worse, so we only assert completion and a sane makespan here.
  workload::RandomDagParams params;
  params.num_tasks = 50;
  params.costs.num_procs = 4;
  const sim::Workload w = workload::random_workload(params, 23);
  const OnlineResult clean = run_online(w, {});
  const std::vector<ProcFailure> one{{1, 20.0}};
  const OnlineResult failed = run_online(w, one);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(failed.completed);
  EXPECT_GT(failed.makespan, 0.0);
}

// --- Seeded properties across every workload family ---

sim::Workload family_workload(int family, std::uint64_t seed) {
  workload::CostParams costs;
  costs.num_procs = 3;
  switch (family) {
    case 0: {
      workload::RandomDagParams p;
      p.num_tasks = 24;
      p.costs = costs;
      return workload::random_workload(p, seed);
    }
    case 1: {
      workload::FftParams p;
      p.points = 8;
      p.costs = costs;
      return workload::fft_workload(p, seed);
    }
    case 2: {
      workload::MontageParams p;
      p.num_nodes = 30;
      p.costs = costs;
      return workload::montage_workload(p, seed);
    }
    case 3: {
      workload::MdParams p;
      p.costs = costs;
      return workload::md_workload(p, seed);
    }
    default: {
      workload::ForkJoinParams p;
      p.costs = costs;
      return workload::forkjoin_workload(p, seed);
    }
  }
}

TEST(OnlineProperty, EverySeededFaultPlanValidatesAcrossFamilies) {
  const check::OnlineValidator validator;
  for (int family = 0; family < 5; ++family) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const sim::Workload w = family_workload(family, seed);
      const double clean = Hdlts().schedule(sim::Problem(w)).makespan();
      for (const check::FaultPlan& plan :
           check::make_fault_plans(3, clean, seed)) {
        const OnlineResult r = run_online(w, plan.failures);
        const auto violations = validator.validate(w, plan.failures, r);
        EXPECT_TRUE(violations.empty())
            << "family " << family << " seed " << seed << " plan \""
            << plan.description << "\": " << violations.front();
        // lost_executions must equal the number of attempts the replay
        // kills — recounted here independently of the validator.
        std::size_t killed = 0;
        for (const OnlineExec& e : r.executions) {
          if (e.lost) ++killed;
        }
        EXPECT_EQ(r.lost_executions, killed);
        if (plan.expectation == check::PlanExpectation::kMustComplete) {
          EXPECT_TRUE(r.completed) << plan.description;
        }
        if (plan.expectation == check::PlanExpectation::kMustFail) {
          EXPECT_FALSE(r.completed) << plan.description;
        }
      }
    }
  }
}

// --- Compiled-vs-legacy bit identity ---

void expect_online_identical(const OnlineResult& got, const OnlineResult& want,
                             const std::string& label) {
  EXPECT_EQ(got.completed, want.completed) << label;
  EXPECT_EQ(got.makespan, want.makespan) << label;  // exact, no tolerance
  EXPECT_EQ(got.lost_executions, want.lost_executions) << label;
  ASSERT_EQ(got.executions.size(), want.executions.size()) << label;
  for (std::size_t i = 0; i < got.executions.size(); ++i) {
    const OnlineExec& a = got.executions[i];
    const OnlineExec& b = want.executions[i];
    EXPECT_EQ(a.task, b.task) << label << " #" << i;
    EXPECT_EQ(a.proc, b.proc) << label << " #" << i;
    EXPECT_EQ(a.start, b.start) << label << " #" << i;
    EXPECT_EQ(a.finish, b.finish) << label << " #" << i;
    EXPECT_EQ(a.duplicate, b.duplicate) << label << " #" << i;
    EXPECT_EQ(a.lost, b.lost) << label << " #" << i;
  }
}

TEST(OnlineDifferential, CompiledMatchesLegacyOnEverySeededFaultPlan) {
  // Every family x seed x seeded fault plan, with the options grid rotated
  // the same way the DST sweep rotates it — compiled (the run_online
  // default) must be bit-identical to the legacy reference.
  std::size_t pairs = 0;
  for (int family = 0; family < 5; ++family) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const sim::Workload w = family_workload(family, seed);
      const double clean = Hdlts().schedule(sim::Problem(w)).makespan();
      std::size_t cell = 0;
      for (const check::FaultPlan& plan :
           check::make_fault_plans(3, clean, seed)) {
        HdltsOptions options;
        options.duplication = (cell % 3 == 2)
                                  ? DuplicationRule::kOff
                                  : DuplicationRule::kAnyChildBenefits;
        options.dynamic_priorities = cell % 2 == 0;
        options.insertion = cell % 4 == 1;
        ++cell;
        const OnlineResult compiled =
            run_online(w, plan.failures, options);
        const OnlineResult legacy =
            run_online_legacy(w, plan.failures, options);
        expect_online_identical(
            compiled, legacy,
            "family " + std::to_string(family) + " seed " +
                std::to_string(seed) + " plan \"" + plan.description + "\"");
        ++pairs;
      }
    }
  }
  EXPECT_GE(pairs, 100u);
}

TEST(OnlineDifferential, SchedulerObjectReuseIsBitIdentical) {
  // One OnlineHdlts recycled across workloads and plans must match fresh
  // one-shot runs (warm arena/schedule state must not leak between runs).
  OnlineHdlts scheduler;
  OnlineResult out;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const sim::Workload w = family_workload(static_cast<int>(seed % 5), seed);
    const double clean = Hdlts().schedule(sim::Problem(w)).makespan();
    const sim::Problem problem(w);
    for (const check::FaultPlan& plan :
         check::make_fault_plans(3, clean, seed)) {
      scheduler.run_into(problem, plan.failures, out);
      const OnlineResult fresh = run_online(w, plan.failures);
      expect_online_identical(out, fresh,
                              "reuse seed " + std::to_string(seed));
    }
  }
}

class OnlineBackendGuard {
 public:
  OnlineBackendGuard() : saved_(simd::active_backend()) {}
  ~OnlineBackendGuard() { simd::force_backend(saved_); }

 private:
  std::string saved_;
};

TEST(OnlineDifferential, CompiledMatchesLegacyUnderForcedBackends) {
  for (const char* backend : {"scalar", "avx2"}) {
    if (simd::backend(backend) == nullptr) continue;  // CPU/binary lacks it
    OnlineBackendGuard guard;
    ASSERT_TRUE(simd::force_backend(backend));
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const sim::Workload w =
          family_workload(static_cast<int>(seed % 5), seed);
      const double clean = Hdlts().schedule(sim::Problem(w)).makespan();
      for (const check::FaultPlan& plan :
           check::make_fault_plans(3, clean, seed)) {
        const OnlineResult compiled = run_online(w, plan.failures);
        const OnlineResult legacy = run_online_legacy(w, plan.failures);
        expect_online_identical(compiled, legacy,
                                std::string(backend) + " seed " +
                                    std::to_string(seed) + " plan \"" +
                                    plan.description + "\"");
      }
    }
  }
}

TEST(OnlineProperty, FailuresAlmostNeverImproveTheMakespan) {
  // Greedy list scheduling admits Graham-type anomalies: removing a machine
  // *can* shorten the schedule, so strict per-run monotonicity is false
  // (empirically ~3% of completed degraded runs). The property that does
  // hold — and that this test pins — is that anomalies stay rare and every
  // other completed run is no faster than the clean schedule.
  std::size_t completed = 0;
  std::size_t anomalies = 0;
  for (int family = 0; family < 5; ++family) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const sim::Workload w = family_workload(family, seed);
      const double clean = Hdlts().schedule(sim::Problem(w)).makespan();
      for (const check::FaultPlan& plan :
           check::make_fault_plans(3, clean, seed)) {
        if (plan.failures.empty()) continue;
        const OnlineResult r = run_online(w, plan.failures);
        if (!r.completed) continue;
        ++completed;
        if (r.makespan < clean - 1e-6) ++anomalies;
      }
    }
  }
  ASSERT_GT(completed, 100u);
  EXPECT_LE(anomalies * 20, completed)  // anomaly rate bounded at 5%
      << anomalies << " of " << completed
      << " degraded runs beat the clean makespan";
}

}  // namespace
}  // namespace hdlts::core
