// Compiled-layout benchmark: what did the CSR/flat-W CompiledProblem and the
// scratch-arena port buy over the legacy TaskGraph/CostTable reads? Every
// ported scheduler runs the same problem twice — compiled path (default) and
// legacy path (set_use_compiled(false)) — in the steady-state regime (two
// warm-up schedule_into() calls, recycled Schedule, best-of-n), and the
// operator-new interposer (tests/support/alloc_hook.cpp, linked into this
// binary only) counts the heap allocations of one steady-state call on each
// path. The compiled path must report ZERO. Also measures the telemetry
// overhead of hdlts: the null-sink (default, compile-time-erased) path vs a
// full RecordingTrace decision stream. Writes BENCH_layout.json so
// scripts/bench.sh has a layout trajectory to diff against and can gate the
// null-sink cost (HDLTS_NULL_SINK_FACTOR).
//
// Environment knobs:
//   HDLTS_LAYOUT_TASKS  task count           (default 2000)
//   HDLTS_LAYOUT_PROCS  processor count      (default 16)
//   HDLTS_LAYOUT_REPS   timed reps per path  (default 5)
//   HDLTS_LAYOUT_JSON   output path          (default BENCH_layout.json)
//   HDLTS_SEED          workload seed        (default 42)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/alloc_hook.hpp"

#include "hdlts/core/hdlts.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

/// Everything ported to the template-over-view dual path.
std::vector<std::string> ported_schedulers() {
  return {"hdlts", "hdlts-static", "hdlts-insertion", "heft", "cpop",
          "peft",  "pets",         "sdbats",          "dls",  "lookahead"};
}

struct PathResult {
  double ms = 0.0;
  double makespan = 0.0;
  std::uint64_t steady_allocs = 0;
};

/// Steady-state timing + heap traffic of one schedule_into() call.
PathResult measure(const sched::Scheduler& scheduler,
                   const sim::Problem& problem, std::size_t reps) {
  PathResult r;
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  scheduler.schedule_into(problem, out);
  scheduler.schedule_into(problem, out);
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_into(problem, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < r.ms) r.ms = ms;
  }
  const auto before = tests::alloc_counters();
  scheduler.schedule_into(problem, out);
  const auto after = tests::alloc_counters();
  r.steady_allocs = after.allocations - before.allocations;
  r.makespan = out.makespan();
  return r;
}

/// Steady-state timing of hdlts with a RecordingTrace sink attached. The
/// trace is cleared (capacity kept) before every call, so each timed call
/// records one full decision stream into warm buffers — the realistic
/// enabled-telemetry regime.
double measure_recording(const sim::Problem& problem, std::size_t reps) {
  core::Hdlts scheduler;
  obs::RecordingTrace trace;
  scheduler.set_trace_sink(&trace);
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  trace.clear();
  scheduler.schedule_into(problem, out);
  trace.clear();
  scheduler.schedule_into(problem, out);
  double best = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    trace.clear();
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_into(problem, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const auto seed = static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const auto tasks =
      static_cast<std::size_t>(util::env_int("HDLTS_LAYOUT_TASKS", 2000));
  const auto procs =
      static_cast<std::size_t>(util::env_int("HDLTS_LAYOUT_PROCS", 16));
  const auto reps =
      static_cast<std::size_t>(util::env_int("HDLTS_LAYOUT_REPS", 5));
  const std::string json_path =
      util::env_string("HDLTS_LAYOUT_JSON", "BENCH_layout.json");

  workload::RandomDagParams params;
  params.num_tasks = tasks;
  params.costs.num_procs = procs;
  const sim::Workload workload = workload::random_workload(params, seed);
  const sim::Problem problem(workload);

  const sched::Registry registry = core::default_registry();
  util::Table table({"scheduler", "compiled ms", "legacy ms", "speedup",
                     "allocs/call compiled", "allocs/call legacy"});
  std::ostringstream rows_json;
  const auto names = ported_schedulers();
  double hdlts_speedup = 0.0;
  double hdlts_null_sink_ms = 0.0;
  bool failed = false;

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const auto compiled_sched = registry.make(name);
    const auto legacy_sched = registry.make(name);
    legacy_sched->set_use_compiled(false);
    const PathResult compiled = measure(*compiled_sched, problem, reps);
    const PathResult legacy = measure(*legacy_sched, problem, reps);

    if (compiled.makespan != legacy.makespan) {
      std::cerr << "FATAL: " << name << " compiled (" << compiled.makespan
                << ") and legacy (" << legacy.makespan << ") disagree\n";
      failed = true;
    }
    if (compiled.steady_allocs != 0) {
      std::cerr << "FATAL: " << name << " compiled path made "
                << compiled.steady_allocs
                << " heap allocations in steady state (contract: 0)\n";
      failed = true;
    }

    const double speedup = legacy.ms / compiled.ms;
    if (name == "hdlts") {
      hdlts_speedup = speedup;
      hdlts_null_sink_ms = compiled.ms;
    }
    table.add_row({name, util::fmt(compiled.ms, 3), util::fmt(legacy.ms, 3),
                   util::fmt(speedup, 2),
                   std::to_string(compiled.steady_allocs),
                   std::to_string(legacy.steady_allocs)});
    rows_json << "    {\"scheduler\": \"" << name << "\", \"tasks\": " << tasks
              << ", \"procs\": " << procs
              << ", \"compiled_ms\": " << compiled.ms
              << ", \"legacy_ms\": " << legacy.ms
              << ", \"layout_speedup\": " << speedup
              << ", \"compiled_steady_allocs\": " << compiled.steady_allocs
              << ", \"legacy_steady_allocs\": " << legacy.steady_allocs << "}"
              << (i + 1 < names.size() ? ",\n" : "\n");
  }

  // Telemetry overhead: the default path IS the null-sink path (the sink
  // policy is erased at compile time), so its cost is the hdlts compiled
  // cell above; the recording sink is the full-fidelity decision trace.
  const double hdlts_recording_ms = measure_recording(problem, reps);
  const double hdlts_recording_overhead =
      hdlts_null_sink_ms > 0.0 ? hdlts_recording_ms / hdlts_null_sink_ms : 0.0;

  std::cout << "# micro_layout — compiled CSR view vs legacy reads ("
            << tasks << " tasks, " << procs << " procs, steady state)\n";
  table.write_markdown(std::cout);
  std::cout << "\nhdlts layout speedup: " << util::fmt(hdlts_speedup, 2)
            << "x\n"
            << "hdlts telemetry: null sink "
            << util::fmt(hdlts_null_sink_ms, 3) << " ms, recording sink "
            << util::fmt(hdlts_recording_ms, 3) << " ms ("
            << util::fmt(hdlts_recording_overhead, 2) << "x)\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"micro_layout\",\n  \"seed\": " << seed
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n"
       << rows_json.str() << "  ],\n  \"hdlts_layout_speedup\": "
       << hdlts_speedup
       << ",\n  \"hdlts_null_sink_ms\": " << hdlts_null_sink_ms
       << ",\n  \"hdlts_recording_ms\": " << hdlts_recording_ms
       << ",\n  \"hdlts_recording_overhead\": " << hdlts_recording_overhead
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return failed ? 1 : 0;
}
