// Fig. 7: average SLR of the FFT application workflow vs CCR.
// Paper finding: HDLTS has the lowest SLR across all CCR values.
#include "bench_common.hpp"
#include "hdlts/workload/fft.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig7_fft_slr_vs_ccr";
  config.title = "average SLR of FFT workflows vs CCR";
  config.x_label = "CCR";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    cells.push_back({util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::FftParams p;
                       p.points = 16;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::fft_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
