// Shared harness for the figure/table benches: runs the paper's comparison
// set over a sweep of workload cells and prints the same rows the paper's
// plots report (mean SLR or mean efficiency per scheduler), as an aligned
// markdown table plus a machine-readable CSV block.
//
// Environment knobs:
//   HDLTS_REPS     repetitions per cell (default 10; the paper used 1000)
//   HDLTS_SEED     base seed (default 42)
//   HDLTS_THREADS  worker threads for repetitions (default: hardware)
//   HDLTS_CSV_DIR  if set, each bench also writes <name>.csv there
//   HDLTS_SVG_DIR  if set, each bench also renders <name>.svg (a line chart
//                  shaped like the paper's figure)
#pragma once

#include <string>
#include <vector>

#include "hdlts/metrics/experiment.hpp"
#include "hdlts/util/table.hpp"

namespace hdlts::bench {

enum class Metric { kSlr, kEfficiency, kSpeedup, kMakespan };

struct SweepCell {
  std::string x;  ///< x-axis value label (e.g. "ccr=2.0")
  metrics::WorkloadFactory factory;
};

struct SweepConfig {
  std::string name;        ///< bench id, e.g. "fig2_random_slr_vs_ccr"
  std::string title;       ///< human title printed above the table
  std::string x_label;     ///< x-axis column header
  Metric metric = Metric::kSlr;
  std::vector<std::string> schedulers;  ///< default: the paper's six
  std::size_t default_reps = 100;
};

/// Number of repetitions after applying HDLTS_REPS.
std::size_t bench_reps(std::size_t fallback);

/// Runs the sweep and prints the table; returns 0 (main()-compatible).
int run_sweep(const SweepConfig& config, const std::vector<SweepCell>& cells);

/// The paper's comparison set in reporting order.
std::vector<std::string> paper_scheduler_names();

}  // namespace hdlts::bench
