// Wall-clock scaling benchmark for the scheduler hot loops: layered random
// DAGs of 1k/5k/10k tasks on 8/32 processors, every list scheduler that is
// expected to scale, the legacy (pointer-chasing) HDLTS path, HDLTS with a
// recording decision-trace sink (telemetry overhead), plus the brute-force
// reference HDLTS (the pre-incremental implementation) so the
// incremental-state speedup, the compiled-layout speedup, and the tracing
// overhead are all measured in the same binary. Prints an aligned table and writes
// BENCH_sched_scale.json (ms, tasks/sec, ns/decision per cell and the
// headline hdlts speedup on the 5k/32 cell) so future PRs have a perf
// trajectory to diff against (scripts/bench.sh).
//
// Methodology: steady state. Each cell is best-of-n schedule_into() calls
// into a recycled Schedule after two untimed warm-up calls, so the scratch
// arena is at capacity and the numbers measure the hot loop, not first-call
// allocation and page faults — the regime metrics::run_repetitions runs in.
// The brute-force reference is timed cold (it has no reusable state).
//
// Environment knobs:
//   HDLTS_SCALE_TASKS    comma list of task counts   (default 1000,5000,10000)
//   HDLTS_SCALE_PROCS    comma list of proc counts   (default 8,32)
//   HDLTS_SCALE_REF_MAX  largest task count the O(V^2*P*V) reference runs on
//                        (default 5000; it exists to measure the speedup, not
//                        to wait on)
//   HDLTS_SCALE_JSON     output path (default BENCH_sched_scale.json)
//   HDLTS_SEED           workload seed (default 42)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/core/reference.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

struct Row {
  std::size_t tasks = 0;
  std::size_t procs = 0;
  std::string scheduler;
  double ms = 0.0;
  double makespan = 0.0;
};

std::vector<std::size_t> env_sizes(const char* name,
                                   std::vector<std::size_t> fallback) {
  const std::string raw = util::env_string(name, "");
  if (raw.empty()) return fallback;
  std::vector<std::size_t> out;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Same policy as util::env_int: ignore unparseable values.
    char* end = nullptr;
    const long v = std::strtol(item.c_str(), &end, 10);
    if (end != item.c_str() && *end == '\0' && v > 0) {
      out.push_back(static_cast<std::size_t>(v));
    }
  }
  return out.empty() ? fallback : out;
}

/// Schedulers with near-linear hot loops; the quadratic-in-V batch/search
/// baselines (dls, minmin, genetic, ...) are out of scope for a 10k sweep.
std::vector<std::string> scale_schedulers() {
  return {"hdlts",  "hdlts-static", "hdlts-insertion", "heft",
          "peft",   "cpop",         "sdbats",          "pets"};
}

/// One cold schedule() call — used for the stateless brute-force reference.
double time_one(const sched::Scheduler& scheduler, const sim::Problem& problem,
                double* makespan) {
  const auto t0 = std::chrono::steady_clock::now();
  const sim::Schedule schedule = scheduler.schedule(problem);
  const auto t1 = std::chrono::steady_clock::now();
  *makespan = schedule.makespan();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Steady-state best-of-n: two untimed warm-ups fill the scratch arena and
/// the recycled Schedule's capacities, then n timed schedule_into() calls;
/// n shrinks with problem size so the sweep stays short. When `trace` is
/// set it is cleared (capacity kept) before every call so each timed call
/// records one full decision stream into warm buffers.
double time_scheduler(const sched::Scheduler& scheduler,
                      const sim::Problem& problem, std::size_t tasks,
                      double* makespan, obs::RecordingTrace* trace = nullptr) {
  const std::size_t reps = tasks <= 1000 ? 5 : (tasks <= 5000 ? 3 : 2);
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  if (trace != nullptr) trace->clear();
  scheduler.schedule_into(problem, out);
  if (trace != nullptr) trace->clear();
  scheduler.schedule_into(problem, out);
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    if (trace != nullptr) trace->clear();
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_into(problem, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  *makespan = out.makespan();
  return best;
}

std::string json_row(const Row& row) {
  std::ostringstream os;
  const double secs = row.ms / 1000.0;
  const double tasks_per_sec = static_cast<double>(row.tasks) / secs;
  const double ns_per_decision =
      row.ms * 1e6 / static_cast<double>(row.tasks);
  os << "    {\"tasks\": " << row.tasks << ", \"procs\": " << row.procs
     << ", \"scheduler\": \"" << row.scheduler << "\", \"ms\": " << row.ms
     << ", \"tasks_per_sec\": " << tasks_per_sec
     << ", \"ns_per_decision\": " << ns_per_decision << "}";
  return os.str();
}

}  // namespace

int main() {
  const auto seed = static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const auto sizes = env_sizes("HDLTS_SCALE_TASKS", {1000, 5000, 10000});
  const auto procs = env_sizes("HDLTS_SCALE_PROCS", {8, 32});
  const auto ref_max = static_cast<std::size_t>(
      util::env_int("HDLTS_SCALE_REF_MAX", 5000));
  const std::string json_path =
      util::env_string("HDLTS_SCALE_JSON", "BENCH_sched_scale.json");

  const sched::Registry registry = core::default_registry();
  const core::ReferenceHdlts reference;

  util::Table table({"tasks", "procs", "scheduler", "ms", "tasks/sec",
                     "ns/decision"});
  std::vector<Row> rows;
  // ms of ("hdlts" | "hdlts-reference" | "hdlts-recording") on the headline
  // 5k/32 cell.
  double headline_opt = 0.0;
  double headline_ref = 0.0;
  double headline_recording = 0.0;

  for (const std::size_t nt : sizes) {
    for (const std::size_t np : procs) {
      workload::RandomDagParams params;
      params.num_tasks = nt;
      params.costs.num_procs = np;
      const sim::Workload workload = workload::random_workload(params, seed);
      const sim::Problem problem(workload);

      auto record = [&](const std::string& name, double ms, double makespan) {
        rows.push_back({nt, np, name, ms, makespan});
        const Row& row = rows.back();
        table.add_row({std::to_string(nt), std::to_string(np), name,
                       util::fmt(ms, 2),
                       util::fmt(static_cast<double>(nt) / (ms / 1000.0), 0),
                       util::fmt(ms * 1e6 / static_cast<double>(nt), 0)});
        return row.ms;
      };

      double opt_makespan = 0.0;
      for (const std::string& name : scale_schedulers()) {
        const auto scheduler = registry.make(name);
        double makespan = 0.0;
        const double ms = time_scheduler(*scheduler, problem, nt, &makespan);
        record(name, ms, makespan);
        if (name == "hdlts") {
          opt_makespan = makespan;
          if (nt == 5000 && np == 32) headline_opt = ms;
        }
      }
      {
        // Telemetry enabled: the same compiled hot loop with a
        // RecordingTrace sink capturing every decision. The gap to the
        // "hdlts" (null sink) row is the full-fidelity tracing overhead.
        core::Hdlts recording_hdlts;
        obs::RecordingTrace trace;
        recording_hdlts.set_trace_sink(&trace);
        double recording_makespan = 0.0;
        const double ms = time_scheduler(recording_hdlts, problem, nt,
                                         &recording_makespan, &trace);
        record("hdlts-recording", ms, recording_makespan);
        if (nt == 5000 && np == 32) headline_recording = ms;
        if (recording_makespan != opt_makespan) {
          std::cerr << "FATAL: hdlts with a recording sink (" << recording_makespan
                    << ") and the null-sink path (" << opt_makespan
                    << ") disagree on " << nt << " tasks / " << np
                    << " procs\n";
          return 1;
        }
      }
      {
        // Same incremental algorithm on the legacy TaskGraph/CostTable reads:
        // the gap to the "hdlts" row is what the compiled CSR layout buys.
        core::Hdlts legacy;
        legacy.set_use_compiled(false);
        double legacy_makespan = 0.0;
        const double ms =
            time_scheduler(legacy, problem, nt, &legacy_makespan);
        record("hdlts-legacy", ms, legacy_makespan);
        if (legacy_makespan != opt_makespan) {
          std::cerr << "FATAL: compiled hdlts (" << opt_makespan
                    << ") and legacy path (" << legacy_makespan
                    << ") disagree on " << nt << " tasks / " << np
                    << " procs\n";
          return 1;
        }
      }
      if (nt <= ref_max) {
        double ref_makespan = 0.0;
        const double ms = time_one(reference, problem, &ref_makespan);
        record("hdlts-reference", ms, ref_makespan);
        if (nt == 5000 && np == 32) headline_ref = ms;
        if (ref_makespan != opt_makespan) {
          std::cerr << "FATAL: incremental hdlts (" << opt_makespan
                    << ") and reference (" << ref_makespan
                    << ") disagree on " << nt << " tasks / " << np
                    << " procs\n";
          return 1;
        }
      }
    }
  }

  std::cout << "# micro_scale — scheduler wall clock on layered random DAGs\n";
  table.write_markdown(std::cout);
  if (headline_ref > 0.0 && headline_opt > 0.0) {
    std::cout << "\nhdlts incremental speedup (5k tasks, 32 procs): "
              << util::fmt(headline_ref / headline_opt, 1) << "x\n";
  }
  if (headline_recording > 0.0 && headline_opt > 0.0) {
    std::cout << "hdlts recording-sink overhead (5k tasks, 32 procs): "
              << util::fmt(headline_recording / headline_opt, 2) << "x\n";
  }

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"micro_scale\",\n  \"seed\": " << seed
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << json_row(rows[i]) << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]";
  if (headline_ref > 0.0 && headline_opt > 0.0) {
    json << ",\n  \"hdlts_speedup_5k_32\": " << headline_ref / headline_opt;
  }
  if (headline_recording > 0.0 && headline_opt > 0.0) {
    json << ",\n  \"hdlts_recording_overhead_5k_32\": "
         << headline_recording / headline_opt;
  }
  json << "\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
