// Batch-throughput benchmark: how many independent scheduling requests per
// second does svc::BatchEngine sustain as the worker count grows? Runs the
// same request set (distinct random 1k-task/16-proc problems × a scheduler
// list) through one engine per thread count, best-of-n passes, and checks
// every pass against a serially computed reference — the engine's
// determinism contract means the makespans must match bit-for-bit at every
// thread count. The engine is constructed once per thread count and an
// untimed warm-up pass runs through it first, so the timed region measures
// steady-state submit->drain throughput only — no thread spawn/join, no
// cold scheduler caches or arena growth. Writes BENCH_batch.json so
// scripts/bench.sh can diff the throughput trajectory and gate the scaling
// bar (>=3x at the widest thread count vs 1) on hosts that actually have
// the cores; `hardware_concurrency` is recorded so the gate can tell. On a
// 1-core container the widest row still runs (the determinism check is as
// strong) but the speedup is meaningless and the gate skips it.
//
// Environment knobs:
//   HDLTS_BATCH_TASKS       tasks per problem            (default 1000)
//   HDLTS_BATCH_PROCS      processors per problem        (default 16)
//   HDLTS_BATCH_REQUESTS   requests per pass             (default 48)
//   HDLTS_BATCH_THREADS    comma list of worker counts   (default 1,2,4,8)
//   HDLTS_BATCH_SCHEDULERS comma list per request        (default hdlts)
//   HDLTS_BATCH_REPS       timed passes per thread count (default 3)
//   HDLTS_BATCH_QUEUE      submission queue capacity     (default 64)
//   HDLTS_BATCH_JSON       output path                   (default BENCH_batch.json)
//   HDLTS_SEED             base workload seed            (default 42)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/svc/batch_engine.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

std::vector<std::string> env_names(const char* name,
                                   std::vector<std::string> fallback) {
  const std::string raw = util::env_string(name, "");
  if (raw.empty()) return fallback;
  std::vector<std::string> out;
  std::istringstream stream(raw);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out.empty() ? fallback : out;
}

std::vector<std::size_t> env_sizes(const char* name,
                                   std::vector<std::size_t> fallback) {
  std::vector<std::size_t> out;
  for (const std::string& token : env_names(name, {})) {
    // Same policy as util::env_int: ignore unparseable values.
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0' && value > 0) {
      out.push_back(static_cast<std::size_t>(value));
    }
  }
  return out.empty() ? fallback : out;
}

/// One timed pass through an already-running engine: submit every request,
/// wait for the queue to drain, return wall milliseconds. Engine
/// construction/shutdown (thread spawn and join) stays outside the timing.
/// `makespans` (id-major, scheduler-minor) is overwritten with the results
/// so the caller can compare passes bit-for-bit.
double run_pass(svc::BatchEngine& engine,
                const std::vector<sim::Problem>& problems,
                const std::vector<std::string>& schedulers,
                std::vector<double>& makespans) {
  makespans.assign(problems.size() * schedulers.size(), -1.0);
  const auto t0 = std::chrono::steady_clock::now();
  svc::BatchRequest request;
  request.schedulers = schedulers;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    request.id = i;
    request.problem = &problems[i];
    engine.submit(request);
  }
  engine.wait_idle();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto seed = static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const auto tasks =
      static_cast<std::size_t>(util::env_int("HDLTS_BATCH_TASKS", 1000));
  const auto procs =
      static_cast<std::size_t>(util::env_int("HDLTS_BATCH_PROCS", 16));
  const auto requests =
      static_cast<std::size_t>(util::env_int("HDLTS_BATCH_REQUESTS", 48));
  const auto reps =
      static_cast<std::size_t>(util::env_int("HDLTS_BATCH_REPS", 3));
  const auto queue_capacity =
      static_cast<std::size_t>(util::env_int("HDLTS_BATCH_QUEUE", 64));
  const auto thread_counts = env_sizes("HDLTS_BATCH_THREADS", {1, 2, 4, 8});
  const auto schedulers = env_names("HDLTS_BATCH_SCHEDULERS", {"hdlts"});
  const std::string json_path =
      util::env_string("HDLTS_BATCH_JSON", "BENCH_batch.json");
  const unsigned hardware = std::thread::hardware_concurrency();

  // Distinct problems so the batch exercises real per-request variety.
  // sim::Problem is a non-owning view — the workloads vector must outlive
  // every engine below and must not reallocate once problems point into it.
  std::vector<sim::Workload> workloads;
  workloads.reserve(requests);
  std::vector<sim::Problem> problems;
  problems.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    workload::RandomDagParams params;
    params.num_tasks = tasks;
    params.costs.num_procs = procs;
    workloads.push_back(
        workload::random_workload(params, util::derive_seed(seed, 0xbabcULL, i)));
    problems.emplace_back(workloads.back());
  }

  // Serial reference: the ground truth every engine pass must reproduce.
  const sched::Registry registry = core::default_registry();
  const std::size_t ns = schedulers.size();
  std::vector<double> reference(requests * ns, -1.0);
  for (std::size_t s = 0; s < ns; ++s) {
    const auto scheduler = registry.make(schedulers[s]);
    sim::Schedule out(tasks, procs);
    for (std::size_t i = 0; i < requests; ++i) {
      scheduler->schedule_into(problems[i], out);
      reference[i * ns + s] = out.makespan();
    }
  }

  util::Table table({"threads", "wall ms", "req/s", "speedup vs 1"});
  std::ostringstream rows_json;
  std::vector<double> makespans;
  double rps_at_one = 0.0;
  double rps_at_hi = 0.0;
  bool failed = false;

  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const std::size_t threads = thread_counts[t];
    double best_ms = 0.0;
    svc::BatchEngineOptions options;
    options.threads = threads;
    options.queue_capacity = queue_capacity;
    svc::BatchEngine engine(
        registry,
        [&](const svc::BatchResult& r) {
          // Workers write disjoint slots; the engine publishes them at drain.
          if (r.ok) {
            makespans[r.id * schedulers.size() + r.scheduler_index] =
                r.makespan;
          }
        },
        options);
    // Warm-up through the same engine the timed passes use: worker threads
    // running, scheduler caches and arenas at high water, ring slots lapped.
    run_pass(engine, problems, schedulers, makespans);
    for (std::size_t r = 0; r < reps; ++r) {
      const double ms = run_pass(engine, problems, schedulers, makespans);
      if (r == 0 || ms < best_ms) best_ms = ms;
      if (makespans != reference) {
        std::cerr << "FATAL: engine results at " << threads
                  << " threads differ from the serial reference (determinism "
                     "contract broken)\n";
        failed = true;
      }
    }
    engine.shutdown(svc::BatchEngine::Drain::kDrain);
    const double rps = 1000.0 * static_cast<double>(requests) / best_ms;
    if (threads == thread_counts.front()) rps_at_one = rps;
    if (threads == thread_counts.back()) rps_at_hi = rps;
    const double speedup = rps_at_one > 0.0 ? rps / rps_at_one : 0.0;
    table.add_row({std::to_string(threads), util::fmt(best_ms, 2),
                   util::fmt(rps, 1), util::fmt(speedup, 2)});
    rows_json << "    {\"threads\": " << threads << ", \"wall_ms\": " << best_ms
              << ", \"rps\": " << rps << "}"
              << (t + 1 < thread_counts.size() ? ",\n" : "\n");
  }

  const double batch_speedup = rps_at_one > 0.0 ? rps_at_hi / rps_at_one : 0.0;
  std::ostringstream sched_json;
  for (std::size_t s = 0; s < ns; ++s) {
    sched_json << (s ? ", " : "") << "\"" << schedulers[s] << "\"";
  }

  std::cout << "# micro_batch — svc::BatchEngine throughput (" << requests
            << " requests, " << tasks << " tasks, " << procs << " procs, "
            << "schedulers [" << sched_json.str() << "], host has " << hardware
            << " cores)\n";
  table.write_markdown(std::cout);
  std::cout << "\nbatch throughput speedup " << thread_counts.back() << " vs "
            << thread_counts.front() << " threads: "
            << util::fmt(batch_speedup, 2) << "x\n";
  if (hardware < thread_counts.back()) {
    std::cout << "note: host has only " << hardware << " cores — the "
              << thread_counts.back()
              << "-thread row oversubscribes and the speedup is not "
                 "meaningful here\n";
  }

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"micro_batch\",\n  \"seed\": " << seed
       << ",\n  \"tasks\": " << tasks << ",\n  \"procs\": " << procs
       << ",\n  \"requests\": " << requests << ",\n  \"schedulers\": ["
       << sched_json.str() << "],\n  \"hardware_concurrency\": " << hardware
       << ",\n  \"threads_lo\": " << thread_counts.front()
       << ",\n  \"threads_hi\": " << thread_counts.back()
       << ",\n  \"rows\": [\n" << rows_json.str()
       << "  ],\n  \"batch_speedup\": " << batch_speedup << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return failed ? 1 : 0;
}
