// Extension comparison: HDLTS against the classic dynamic heuristics the
// paper does not evaluate — DLS (joint task×processor dynamic levels),
// Min-Min / Max-Min (batch-mode), and duplication-based HEFT. Isolates how
// much of HDLTS's behaviour comes from the dynamic ready set (shared by all
// of these) versus the PV priority and entry duplication specifically.
#include "bench_common.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "extra_baselines";
  config.title = "HDLTS vs classic dynamic heuristics: avg SLR vs CCR";
  config.x_label = "workload/CCR";
  config.metric = bench::Metric::kSlr;
  config.schedulers = {"hdlts", "dls", "minmin", "maxmin", "dheft", "heft"};

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"random/" + util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::random_workload(p, seed);
                     }});
  }
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"fft16/" + util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::FftParams p;
                       p.points = 16;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::fft_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
