#include "bench_common.hpp"

#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/report/chart.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::bench {

namespace {

double pick_metric(const metrics::SchedulerSummary& s, Metric metric) {
  switch (metric) {
    case Metric::kSlr:
      return s.slr.mean();
    case Metric::kEfficiency:
      return s.efficiency.mean();
    case Metric::kSpeedup:
      return s.speedup.mean();
    case Metric::kMakespan:
      return s.makespan.mean();
  }
  throw ContractViolation("unhandled Metric");
}

const char* metric_name(Metric metric) {
  switch (metric) {
    case Metric::kSlr:
      return "avg SLR";
    case Metric::kEfficiency:
      return "efficiency";
    case Metric::kSpeedup:
      return "speedup";
    case Metric::kMakespan:
      return "makespan";
  }
  return "?";
}

}  // namespace

std::size_t bench_reps(std::size_t fallback) {
  const auto reps = util::env_int("HDLTS_REPS", 0);
  return reps > 0 ? static_cast<std::size_t>(reps) : fallback;
}

std::vector<std::string> paper_scheduler_names() {
  return {"hdlts", "heft", "pets", "cpop", "peft", "sdbats"};
}

int run_sweep(const SweepConfig& config, const std::vector<SweepCell>& cells) {
  const std::vector<std::string> scheds =
      config.schedulers.empty() ? paper_scheduler_names() : config.schedulers;
  const std::size_t reps = bench_reps(config.default_reps);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const auto threads = util::env_int("HDLTS_THREADS", 0);
  util::ThreadPool pool(threads > 0 ? static_cast<std::size_t>(threads) : 0);
  const sched::Registry registry = core::default_registry();

  std::vector<std::string> header{config.x_label};
  for (const auto& s : scheds) header.push_back(s);
  util::Table table(std::move(header));

  report::LineChartSpec chart;
  chart.title = config.title;
  chart.x_label = config.x_label;
  chart.y_label = metric_name(config.metric);
  chart.y_from_zero = config.metric == Metric::kEfficiency;
  for (const auto& s : scheds) chart.series.push_back({s, {}});

  for (const SweepCell& cell : cells) {
    metrics::CompareOptions options;
    options.repetitions = reps;
    options.base_seed = base_seed;
    options.pool = &pool;
    const auto rows =
        metrics::compare_schedulers(cell.factory, scheds, registry, options);
    std::vector<std::string> out{cell.x};
    chart.x_categories.push_back(cell.x);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double value = pick_metric(rows[i], config.metric);
      out.push_back(util::fmt(value, 3));
      chart.series[i].values.push_back(value);
    }
    table.add_row(std::move(out));
  }

  std::cout << "== " << config.name << ": " << config.title << " ==\n"
            << "metric: mean " << metric_name(config.metric) << " over "
            << reps << " repetitions (HDLTS_REPS to change; paper used 1000)"
            << "\n\n";
  table.write_markdown(std::cout);
  std::cout << "\ncsv:\n";
  table.write_csv(std::cout);
  std::cout << std::endl;

  const std::string csv_dir = util::env_string("HDLTS_CSV_DIR", "");
  if (!csv_dir.empty()) {
    table.save_csv(csv_dir + "/" + config.name + ".csv");
  }
  const std::string svg_dir = util::env_string("HDLTS_SVG_DIR", "");
  if (!svg_dir.empty()) {
    report::save_line_chart(svg_dir + "/" + config.name + ".svg", chart);
  }
  return 0;
}

}  // namespace hdlts::bench
