// Ablation X6 (paper §VI "uncertain network conditions"): heterogeneous
// link bandwidths. gamma controls per-link bandwidth spread around 1.0;
// rank computations only see the mean, so higher gamma degrades every
// static-rank scheduler — the question is who degrades gracefully.
#include "bench_common.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "ablation_network";
  config.title = "heterogeneous link bandwidths: avg SLR vs gamma (CCR = 3)";
  config.x_label = "gamma";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const double gamma : {0.0, 0.5, 1.0, 1.5}) {
    cells.push_back({util::fmt(gamma, 1), [gamma](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.costs.num_procs = 4;
                       p.costs.ccr = 3.0;
                       sim::Workload w = workload::random_workload(p, seed);
                       util::Rng rng(util::derive_seed(seed, 0xbebdULL));
                       workload::randomize_bandwidths(w, gamma, 1.0, rng);
                       return w;
                     }});
  }
  return bench::run_sweep(config, cells);
}
