// Fig. 8: efficiency of the FFT application workflow (16 input points) vs
// number of CPUs. Paper finding: HDLTS leads at every machine count.
#include "bench_common.hpp"
#include "hdlts/workload/fft.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig8_fft_efficiency_vs_cpus";
  config.title = "efficiency of FFT workflows (m = 16) vs number of CPUs";
  config.x_label = "CPUs";
  config.metric = bench::Metric::kEfficiency;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t cpus : {2u, 4u, 6u, 8u, 10u}) {
    cells.push_back({std::to_string(cpus), [cpus](std::uint64_t seed) {
                       workload::FftParams p;
                       p.points = 16;
                       p.costs.num_procs = cpus;
                       p.costs.ccr = 3.0;
                       return workload::fft_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
