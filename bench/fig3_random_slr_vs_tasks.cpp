// Fig. 3: average SLR of random application workflows vs task count.
// Paper finding: HDLTS's advantage grows with workflow size.
// V = 5000/10000 rows (the paper's upper range) run when HDLTS_FULL=1;
// the default stops at 1000 to keep CI time sane on one core.
#include "bench_common.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig3_random_slr_vs_tasks";
  config.title = "average SLR of random workflows vs task count";
  config.x_label = "V";
  config.metric = bench::Metric::kSlr;
  config.default_reps = 20;

  std::vector<std::size_t> sizes{100, 200, 300, 400, 500, 1000};
  if (util::env_int("HDLTS_FULL", 0) != 0) {
    sizes.push_back(5000);
    sizes.push_back(10000);
  }
  std::vector<bench::SweepCell> cells;
  for (const std::size_t v : sizes) {
    cells.push_back({std::to_string(v), [v](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = v;
                       p.alpha = 1.0;
                       p.density = 3;
                       p.costs.num_procs = 4;
                       p.costs.ccr = 2.0;
                       return workload::random_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
