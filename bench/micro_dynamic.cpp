// Dynamic-path benchmark: what did the compiled zero-alloc online/stream
// port (CompiledProblem + arena SoA rows + incremental refresh + SIMD
// selection) buy over the legacy per-phase-rebuild implementations?
//
// Two scenarios, each measured on both paths in the steady-state regime
// (two warm-up runs, recycled scheduler state, best-of-n):
//   * online — one random DAG under a two-failure fault plan, compiled
//     OnlineHdlts::run_into over a prebuilt sim::Problem vs
//     run_online_legacy (which rebuilds a Problem every phase);
//   * stream — several workflows arriving over time, compiled StreamHdlts
//     (combined problem frozen once by compile()) vs run_stream_legacy
//     (which recombines and recomputes every row per round).
// The headline number is ns per dynamic decision (one execution placed,
// lost, or duplicated counts as one decision); the acceptance bar is the
// compiled path >= 3x faster per decision on the online scenario at
// 1k tasks / 8 procs (scripts/bench.sh, HDLTS_MIN_DYNAMIC_SPEEDUP).
//
// The operator-new interposer (tests/support/alloc_hook.cpp, linked into
// this binary only) counts heap allocations of one steady-state call per
// path; the compiled paths must report ZERO. Bit-identity compiled-vs-legacy
// is asserted on every cell before anything is reported.
//
// Environment knobs:
//   HDLTS_DYNAMIC_TASKS            online DAG size          (default 1000)
//   HDLTS_DYNAMIC_PROCS            processor count          (default 8)
//   HDLTS_DYNAMIC_REPS             timed reps per path      (default 5)
//   HDLTS_DYNAMIC_STREAM_WORKFLOWS stream arrival count     (default 4)
//   HDLTS_DYNAMIC_STREAM_TASKS     tasks per stream arrival (default 250)
//   HDLTS_DYNAMIC_JSON             output path   (default BENCH_dynamic.json)
//   HDLTS_SEED                     workload seed            (default 42)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/alloc_hook.hpp"

#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

struct PathResult {
  double ms = 0.0;
  double makespan = 0.0;
  std::size_t decisions = 0;
  std::uint64_t steady_allocs = 0;
};

double elapsed_ms(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-`reps` steady-state timing + heap traffic of `run`, which must
/// leave its result readable via `decisions`/`makespan` afterwards.
template <typename Run>
PathResult measure(Run&& run, std::size_t reps) {
  PathResult r;
  run();  // warm-up 1: carve arena overflow blocks / grow buffers
  run();  // warm-up 2: fold overflow into the regrown primary buffer
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = elapsed_ms(t0, t1);
    if (i == 0 || ms < r.ms) r.ms = ms;
  }
  const auto before = tests::alloc_counters();
  run();
  const auto after = tests::alloc_counters();
  r.steady_allocs = after.allocations - before.allocations;
  return r;
}

bool identical(const core::OnlineResult& a, const core::OnlineResult& b) {
  if (a.completed != b.completed || a.makespan != b.makespan ||
      a.lost_executions != b.lost_executions ||
      a.executions.size() != b.executions.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.executions.size(); ++i) {
    const core::OnlineExec& x = a.executions[i];
    const core::OnlineExec& y = b.executions[i];
    if (x.task != y.task || x.proc != y.proc || x.start != y.start ||
        x.finish != y.finish || x.duplicate != y.duplicate ||
        x.lost != y.lost) {
      return false;
    }
  }
  return true;
}

bool identical(const core::StreamResult& a, const core::StreamResult& b) {
  if (a.makespan != b.makespan || a.finish != b.finish ||
      a.flow_time != b.flow_time ||
      a.executions.size() != b.executions.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.executions.size(); ++i) {
    const core::StreamTaskExec& x = a.executions[i];
    const core::StreamTaskExec& y = b.executions[i];
    if (x.workflow != y.workflow || x.task != y.task || x.proc != y.proc ||
        x.start != y.start || x.finish != y.finish) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const auto seed = static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const auto tasks =
      static_cast<std::size_t>(util::env_int("HDLTS_DYNAMIC_TASKS", 1000));
  const auto procs =
      static_cast<std::size_t>(util::env_int("HDLTS_DYNAMIC_PROCS", 8));
  const auto reps =
      static_cast<std::size_t>(util::env_int("HDLTS_DYNAMIC_REPS", 5));
  const auto stream_workflows = static_cast<std::size_t>(
      util::env_int("HDLTS_DYNAMIC_STREAM_WORKFLOWS", 4));
  const auto stream_tasks = static_cast<std::size_t>(
      util::env_int("HDLTS_DYNAMIC_STREAM_TASKS", 250));
  const std::string json_path =
      util::env_string("HDLTS_DYNAMIC_JSON", "BENCH_dynamic.json");

  bool failed = false;
  util::Table table({"path", "compiled ms", "legacy ms", "speedup",
                     "decisions", "ns/decision compiled",
                     "ns/decision legacy", "allocs/call compiled",
                     "allocs/call legacy"});
  std::ostringstream rows_json;

  // --- Online scenario: 1k-task DAG, two mid-run failures ---
  workload::RandomDagParams params;
  params.num_tasks = tasks;
  params.costs.num_procs = procs;
  const sim::Workload workload = workload::random_workload(params, seed);
  const sim::Problem problem(workload);
  // A clean run sizes the fault plan: kill one processor near the first
  // third and a second near the halfway point, so both the cold phase and
  // two non-trivial re-planning phases land in the timed region.
  const double clean = core::run_online(workload, {}).makespan;
  const std::vector<core::ProcFailure> plan = {
      {static_cast<platform::ProcId>(1), clean / 3.0},
      {static_cast<platform::ProcId>(procs - 1), clean / 2.0}};

  core::OnlineHdlts online;
  core::OnlineResult online_out;
  const PathResult online_compiled = measure(
      [&] { online.run_into(problem, plan, online_out); }, reps);
  core::OnlineResult online_legacy_out;
  const PathResult online_legacy = measure(
      [&] { online_legacy_out = core::run_online_legacy(workload, plan); },
      reps);
  if (!identical(online_out, online_legacy_out)) {
    std::cerr << "FATAL: online compiled and legacy runs disagree\n";
    failed = true;
  }
  if (online_compiled.steady_allocs != 0) {
    std::cerr << "FATAL: online compiled path made "
              << online_compiled.steady_allocs
              << " heap allocations in steady state (contract: 0)\n";
    failed = true;
  }
  const std::size_t online_decisions = online_out.executions.size();
  const double online_speedup = online_legacy.ms / online_compiled.ms;

  // --- Stream scenario: arrivals spread across the first workflow's run ---
  std::vector<sim::Workload> stream_workloads;
  std::vector<core::StreamArrival> arrivals;
  workload::RandomDagParams sparams;
  sparams.num_tasks = stream_tasks;
  sparams.costs.num_procs = procs;
  for (std::size_t w = 0; w < stream_workflows; ++w) {
    stream_workloads.push_back(
        workload::random_workload(sparams, seed + w + 1));
  }
  std::vector<core::StreamArrival> probe;
  probe.push_back({stream_workloads[0], 0.0});
  const double solo = core::run_stream(probe).makespan;
  for (std::size_t w = 0; w < stream_workflows; ++w) {
    arrivals.push_back({stream_workloads[w],
                        solo * static_cast<double>(w) /
                            static_cast<double>(stream_workflows)});
  }

  core::StreamHdlts stream;
  stream.compile(arrivals);
  core::StreamResult stream_out;
  const PathResult stream_compiled =
      measure([&] { stream.run_into(stream_out); }, reps);
  core::StreamResult stream_legacy_out;
  const PathResult stream_legacy = measure(
      [&] { stream_legacy_out = core::run_stream_legacy(arrivals); }, reps);
  if (!identical(stream_out, stream_legacy_out)) {
    std::cerr << "FATAL: stream compiled and legacy runs disagree\n";
    failed = true;
  }
  if (stream_compiled.steady_allocs != 0) {
    std::cerr << "FATAL: stream compiled path made "
              << stream_compiled.steady_allocs
              << " heap allocations in steady state (contract: 0)\n";
    failed = true;
  }
  const std::size_t stream_decisions = stream_out.executions.size();
  const double stream_speedup = stream_legacy.ms / stream_compiled.ms;

  const auto ns_per_decision = [](double ms, std::size_t decisions) {
    return decisions == 0 ? 0.0
                          : ms * 1e6 / static_cast<double>(decisions);
  };
  const auto add = [&](const char* name, const PathResult& compiled,
                       const PathResult& legacy, std::size_t decisions,
                       double speedup, bool last) {
    table.add_row({name, util::fmt(compiled.ms, 3), util::fmt(legacy.ms, 3),
                   util::fmt(speedup, 2), std::to_string(decisions),
                   util::fmt(ns_per_decision(compiled.ms, decisions), 1),
                   util::fmt(ns_per_decision(legacy.ms, decisions), 1),
                   std::to_string(compiled.steady_allocs),
                   std::to_string(legacy.steady_allocs)});
    rows_json << "    {\"path\": \"" << name << "\", \"tasks\": "
              << (std::string(name) == "online" ? tasks
                                                : stream_workflows * stream_tasks)
              << ", \"procs\": " << procs
              << ", \"compiled_ms\": " << compiled.ms
              << ", \"legacy_ms\": " << legacy.ms
              << ", \"speedup\": " << speedup
              << ", \"decisions\": " << decisions
              << ", \"ns_per_decision_compiled\": "
              << ns_per_decision(compiled.ms, decisions)
              << ", \"ns_per_decision_legacy\": "
              << ns_per_decision(legacy.ms, decisions)
              << ", \"compiled_steady_allocs\": " << compiled.steady_allocs
              << ", \"legacy_steady_allocs\": " << legacy.steady_allocs
              << "}" << (last ? "\n" : ",\n");
  };
  add("online", online_compiled, online_legacy, online_decisions,
      online_speedup, false);
  add("stream", stream_compiled, stream_legacy, stream_decisions,
      stream_speedup, true);

  std::cout << "# micro_dynamic — compiled vs legacy dynamic paths (online: "
            << tasks << " tasks / " << procs << " procs / "
            << plan.size() << " failures; stream: " << stream_workflows
            << " x " << stream_tasks << " tasks)\n";
  table.write_markdown(std::cout);
  std::cout << "\nonline dynamic speedup: " << util::fmt(online_speedup, 2)
            << "x  (" << util::fmt(ns_per_decision(online_compiled.ms,
                                                   online_decisions),
                                   1)
            << " ns/decision compiled)\n"
            << "stream dynamic speedup: " << util::fmt(stream_speedup, 2)
            << "x\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"micro_dynamic\",\n  \"seed\": " << seed
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n"
       << rows_json.str() << "  ],\n  \"online_dynamic_speedup\": "
       << online_speedup
       << ",\n  \"stream_dynamic_speedup\": " << stream_speedup << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return failed ? 1 : 0;
}
