// Ablation X3: the design choices behind the penalty value.
//   * dynamic re-prioritization (the paper's claim) vs a frozen static list
//   * sample stddev (paper) vs population stddev vs range as the PV
//   * end-of-queue EST (paper) vs insertion-based EST
#include "bench_common.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "ablation_priority";
  config.title = "HDLTS priority-rule ablation: avg SLR vs CCR (random, V=100)";
  config.x_label = "CCR";
  config.metric = bench::Metric::kSlr;
  config.schedulers = {"hdlts", "hdlts-static", "hdlts-popstddev",
                       "hdlts-range", "hdlts-insertion"};

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    cells.push_back({util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::random_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
