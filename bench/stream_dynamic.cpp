// Extension X7 (paper §VI, "dynamic application workflows"): a stream of
// random workflows arriving over time on a shared 4-CPU platform. Compares
// the HDLTS penalty-value policy against FIFO/min-EFT on mean flow time
// (finish - arrival) as the arrival rate — i.e. contention — grows.
#include <iostream>

#include "bench_common.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  const std::size_t reps = bench::bench_reps(30);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const std::size_t workflows = 6;

  util::Table table({"inter-arrival", "hdlts-pv flow", "fifo-eft flow",
                     "pv/fifo"});
  for (const double gap : {400.0, 150.0, 50.0, 0.0}) {
    util::RunningStats pv_flow;
    util::RunningStats fifo_flow;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::vector<core::StreamArrival> stream;
      for (std::size_t w = 0; w < workflows; ++w) {
        workload::RandomDagParams p;
        p.num_tasks = 40;
        p.costs.num_procs = 4;
        p.costs.ccr = 2.0;
        stream.push_back(
            {workload::random_workload(p, util::derive_seed(base_seed, rep, w)),
             gap * static_cast<double>(w)});
      }
      core::StreamOptions pv;
      core::StreamOptions fifo;
      fifo.policy = core::StreamPolicy::kFifoEft;
      const core::StreamResult a = core::run_stream(stream, pv);
      const core::StreamResult b = core::run_stream(stream, fifo);
      for (std::size_t w = 0; w < workflows; ++w) {
        pv_flow.add(a.flow_time[w]);
        fifo_flow.add(b.flow_time[w]);
      }
    }
    table.add_row({util::fmt(gap, 0), util::fmt(pv_flow.mean(), 1),
                   util::fmt(fifo_flow.mean(), 1),
                   util::fmt(pv_flow.mean() / fifo_flow.mean(), 3)});
  }

  std::cout << "== stream_dynamic: workflow streams on a shared HCE ==\n"
            << workflows << " random workflows (V=40, 4 CPUs, CCR=2), " << reps
            << " repetitions; flow time = finish - arrival\n\n";
  table.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
