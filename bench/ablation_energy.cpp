// Ablation X9: the §II-B duplication/energy trade-off, quantified. For each
// scheduler: makespan AND total energy on communication-heavy FFT workflows
// — duplication buys schedule length with redundant joules.
//
// Energy comes off the shared sim::CompiledProblem cost model (cached
// per-task dynamic rows + per-processor static power), and the table also
// reports the dynamic component total - makespan * sum(static_power), the
// decomposition the energy-aware selection rule minimizes.
#include <iostream>

#include "bench_common.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/energy.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/fft.hpp"

int main() {
  using namespace hdlts;
  const std::size_t reps = bench::bench_reps(100);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const sched::Registry reg = core::default_registry();
  const std::vector<std::string> names = {"hdlts",  "hdlts-energy",
                                          "hdlts-nodup", "sdbats",
                                          "dheft",  "heft"};

  struct Row {
    util::RunningStats makespan;
    util::RunningStats total_energy;
    util::RunningStats dyn_energy;
    util::RunningStats dup_energy;
  };
  std::vector<Row> rows(names.size());

  for (std::size_t rep = 0; rep < reps; ++rep) {
    workload::FftParams p;
    p.points = 16;
    p.costs.num_procs = 4;
    p.costs.ccr = 4.0;
    const sim::Workload w =
        workload::fft_workload(p, util::derive_seed(base_seed, rep));
    const sim::Problem problem(w);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const sim::Schedule s = reg.make(names[i])->schedule(problem);
      const metrics::EnergyBreakdown e = metrics::energy(problem, s);
      rows[i].makespan.add(s.makespan());
      rows[i].total_energy.add(e.total());
      rows[i].dyn_energy.add(
          e.total() - s.makespan() * problem.compiled().total_static_power());
      rows[i].dup_energy.add(e.duplicate);
    }
  }

  util::Table table({"scheduler", "makespan", "energy", "dyn energy",
                     "dup energy", "energy/makespan tradeoff"});
  const std::size_t ref = names.size() - 1;  // heft
  const double ref_mk = rows[ref].makespan.mean();
  const double ref_en = rows[ref].total_energy.mean();
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], util::fmt(rows[i].makespan.mean(), 1),
                   util::fmt(rows[i].total_energy.mean(), 1),
                   util::fmt(rows[i].dyn_energy.mean(), 1),
                   util::fmt(rows[i].dup_energy.mean(), 1),
                   util::fmt(rows[i].makespan.mean() / ref_mk, 3) + "x mk, " +
                       util::fmt(rows[i].total_energy.mean() / ref_en, 3) +
                       "x J"});
  }
  std::cout << "== ablation_energy: duplication buys makespan with joules ==\n"
            << "FFT m=16, 4 CPUs, CCR=4, " << reps
            << " repetitions (busy power 1.0, idle 0.1; ratios vs heft)\n\n";
  table.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
