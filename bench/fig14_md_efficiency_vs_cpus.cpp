// Fig. 14: efficiency of the molecular-dynamics workflow (CCR = 3) vs
// number of CPUs. Paper finding: HDLTS leads at every machine count.
#include "bench_common.hpp"
#include "hdlts/workload/md.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig14_md_efficiency_vs_cpus";
  config.title =
      "efficiency of molecular-dynamics workflows (CCR = 3) vs CPUs";
  config.x_label = "CPUs";
  config.metric = bench::Metric::kEfficiency;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t cpus : {2u, 4u, 6u, 8u, 10u}) {
    cells.push_back({std::to_string(cpus), [cpus](std::uint64_t seed) {
                       workload::MdParams p;
                       p.costs.num_procs = cpus;
                       p.costs.ccr = 3.0;
                       return workload::md_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
