// Table II: the random-task-graph parameter grid, plus a deterministic
// sample of the full combination space (the paper runs all combinations ×
// 1000 reps on a cluster; we reproduce the grid itself exactly and report
// aggregate HDLTS-vs-baselines behaviour over a seeded sample of it —
// HDLTS_GRID_CELLS cells × HDLTS_REPS reps each).
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/grid.hpp"

int main() {
  using namespace hdlts;
  const workload::ParameterGrid grid = workload::ParameterGrid::paper();

  std::cout << "== table2_grid: random task-graph generator parameters ==\n\n";
  util::Table params({"Parameter", "Values"});
  auto join = [](const auto& xs) {
    std::string out;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) out += ", ";
      std::ostringstream os;
      os << xs[i];
      out += os.str();
    }
    return out;
  };
  params.add_row({"Tasks (V)", join(grid.tasks)});
  params.add_row({"Alpha", join(grid.alpha)});
  params.add_row({"Density", join(grid.density)});
  params.add_row({"CCR", join(grid.ccr)});
  params.add_row({"Number of CPUs", join(grid.procs)});
  params.add_row({"W_dag", join(grid.wdag)});
  params.add_row({"Beta", join(grid.beta)});
  params.write_markdown(std::cout);
  std::cout << "\ncombinations: " << grid.size()
            << " (the paper rounds this to \"125K unique graphs\")\n\n";

  // Sampled sweep. Large-V cells are excluded by default to keep the
  // default run CI-sized; HDLTS_FULL=1 lifts the cap.
  const std::size_t cells = static_cast<std::size_t>(
      util::env_int("HDLTS_GRID_CELLS", 40));
  const std::size_t reps = bench::bench_reps(5);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const std::size_t v_cap =
      util::env_int("HDLTS_FULL", 0) != 0 ? 10000 : 1000;

  const sched::Registry registry = core::default_registry();
  const auto names = bench::paper_scheduler_names();
  std::vector<util::RunningStats> slr(names.size());
  std::vector<std::size_t> wins(names.size(), 0);
  std::size_t used = 0;

  for (const std::size_t index : grid.sample(cells * 3, base_seed)) {
    if (used >= cells) break;
    const workload::RandomDagParams p = grid.at(index);
    if (p.num_tasks > v_cap) continue;
    ++used;
    metrics::CompareOptions options;
    options.repetitions = reps;
    options.base_seed = util::derive_seed(base_seed, index);
    const auto rows = metrics::compare_schedulers(
        [&p](std::uint64_t seed) { return workload::random_workload(p, seed); },
        names, registry, options);
    for (std::size_t i = 0; i < names.size(); ++i) {
      slr[i].add(rows[i].slr.mean());
      wins[i] += rows[i].wins;
    }
  }

  util::Table agg({"scheduler", "mean SLR over sampled grid", "cell wins"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    agg.add_row({names[i], util::fmt(slr[i].mean(), 3),
                 std::to_string(wins[i]) + "/" + std::to_string(used * reps)});
  }
  std::cout << "sampled " << used << " grid cells (V <= " << v_cap << "), "
            << reps << " repetitions each:\n\n";
  agg.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
