// Fig. 13: average SLR of the molecular-dynamics workflow vs CCR.
#include "bench_common.hpp"
#include "hdlts/workload/md.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig13_md_slr_vs_ccr";
  config.title = "average SLR of molecular-dynamics workflows vs CCR";
  config.x_label = "CCR";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    cells.push_back({util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::MdParams p;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::md_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
