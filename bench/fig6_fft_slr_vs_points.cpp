// Fig. 6: average SLR of the FFT application workflow vs input points
// (m = 4..32, i.e. 15..223 tasks).
#include "bench_common.hpp"
#include "hdlts/workload/fft.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig6_fft_slr_vs_points";
  config.title = "average SLR of FFT workflows vs input points";
  config.x_label = "points";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t m : {4u, 8u, 16u, 32u}) {
    cells.push_back(
        {std::to_string(m) + " (" + std::to_string(workload::fft_task_count(m)) +
             " tasks)",
         [m](std::uint64_t seed) {
           workload::FftParams p;
           p.points = m;
           p.costs.num_procs = 4;
           p.costs.ccr = 2.0;
           return workload::fft_workload(p, seed);
         }});
  }
  return bench::run_sweep(config, cells);
}
