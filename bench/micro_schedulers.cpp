// Micro-benchmark X1 (google-benchmark): scheduler running time vs workflow
// size, exercising the paper's §IV complexity claim
// O(v^2 * (v/k) * p) for HDLTS against the O(v^2 * p) HEFT family.
#include <benchmark/benchmark.h>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace {

using namespace hdlts;

sim::Workload make_random(std::size_t tasks, std::size_t procs) {
  workload::RandomDagParams p;
  p.num_tasks = tasks;
  p.costs.num_procs = procs;
  p.costs.ccr = 2.0;
  return workload::random_workload(p, util::derive_seed(7, tasks, procs));
}

void run_scheduler(benchmark::State& state, const std::string& name) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::size_t>(state.range(1));
  const sim::Workload w = make_random(tasks, procs);
  const sim::Problem problem(w);
  const auto scheduler = core::default_registry().make(name);
  double makespan = 0.0;
  for (auto _ : state) {
    const sim::Schedule s = scheduler->schedule(problem);
    makespan = s.makespan();
    benchmark::DoNotOptimize(makespan);
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["procs"] = static_cast<double>(procs);
  state.counters["makespan"] = makespan;
}

void args(benchmark::internal::Benchmark* b) {
  for (const auto tasks : {100, 400, 1000}) {
    for (const auto procs : {4, 10}) {
      b->Args({tasks, procs});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

void BM_Hdlts(benchmark::State& s) { run_scheduler(s, "hdlts"); }
void BM_Heft(benchmark::State& s) { run_scheduler(s, "heft"); }
void BM_Cpop(benchmark::State& s) { run_scheduler(s, "cpop"); }
void BM_Pets(benchmark::State& s) { run_scheduler(s, "pets"); }
void BM_Peft(benchmark::State& s) { run_scheduler(s, "peft"); }
void BM_Sdbats(benchmark::State& s) { run_scheduler(s, "sdbats"); }

BENCHMARK(BM_Hdlts)->Apply(args);
BENCHMARK(BM_Heft)->Apply(args);
BENCHMARK(BM_Cpop)->Apply(args);
BENCHMARK(BM_Pets)->Apply(args);
BENCHMARK(BM_Peft)->Apply(args);
BENCHMARK(BM_Sdbats)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
