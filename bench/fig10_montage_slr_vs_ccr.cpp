// Fig. 10: average SLR of Montage workflows (50 and 100 nodes, 5 CPUs) vs
// CCR. Paper finding: HDLTS has the lowest SLR at every CCR.
#include "bench_common.hpp"
#include "hdlts/workload/montage.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig10_montage_slr_vs_ccr";
  config.title = "average SLR of Montage workflows (5 CPUs) vs CCR";
  config.x_label = "nodes/CCR";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t nodes : {50u, 100u}) {
    for (const double ccr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
      cells.push_back({std::to_string(nodes) + "/" + util::fmt(ccr, 1),
                       [nodes, ccr](std::uint64_t seed) {
                         workload::MontageParams p;
                         p.num_nodes = nodes;
                         p.costs.num_procs = 5;
                         p.costs.ccr = ccr;
                         return workload::montage_workload(p, seed);
                       }});
    }
  }
  return bench::run_sweep(config, cells);
}
