// Table I: the HDLTS schedule trace on the paper's worked example (the
// classic 10-task / 3-CPU graph) and the makespans of every compared
// algorithm (paper §IV: HDLTS 73, HEFT 80, PETS 77, PEFT 86, SDBATS 74).
#include <iostream>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/metrics.hpp"
#include "hdlts/sim/gantt.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/classic.hpp"

int main() {
  using namespace hdlts;
  const sim::Workload w = workload::classic_workload();
  const sim::Problem problem(w);

  core::HdltsTrace trace;
  const sim::Schedule schedule =
      core::Hdlts().schedule_traced(problem, &trace);

  std::cout << "== table1_example: HDLTS schedule produced at each step ==\n";
  std::cout << "entry task duplicated on:";
  for (const auto p : trace.duplicated_on) {
    std::cout << " " << w.platform.proc_name(p);
  }
  std::cout << "\n\n";

  util::Table steps({"Step", "Ready Task", "Penalty Values", "Selected",
                     "EFT P1", "EFT P2", "EFT P3", "CPU"});
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const core::HdltsStep& s = trace.steps[i];
    std::string ready;
    std::string pv;
    for (std::size_t j = 0; j < s.ready.size(); ++j) {
      if (j > 0) {
        ready += ", ";
        pv += ", ";
      }
      ready += "T" + std::to_string(s.ready[j] + 1);
      pv += util::fmt(s.pv[j], 1);
    }
    steps.add_row({std::to_string(i + 1), ready, pv,
                   "T" + std::to_string(s.selected + 1), util::fmt(s.eft[0], 0),
                   util::fmt(s.eft[1], 0), util::fmt(s.eft[2], 0),
                   w.platform.proc_name(s.chosen)});
  }
  steps.write_markdown(std::cout);

  std::cout << "\nGantt chart (entry duplicates marked '*'):\n"
            << sim::to_gantt(schedule) << "\n";

  util::Table summary({"algorithm", "makespan", "SLR", "speedup",
                       "paper reports"});
  const char* paper[] = {"73", "80", "77", "n/a (HEFT paper: 86)", "86",
                         "74"};
  int i = 0;
  for (auto& s : core::paper_schedulers()) {
    const sim::Schedule sc = s->schedule(problem);
    summary.add_row({s->name(), util::fmt(sc.makespan(), 0),
                     util::fmt(metrics::slr(problem, sc), 3),
                     util::fmt(metrics::speedup(problem, sc), 3), paper[i++]});
  }
  std::cout << "== makespans on the worked example ==\n";
  summary.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
