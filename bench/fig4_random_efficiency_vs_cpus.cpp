// Fig. 4: efficiency of random application workflows vs number of CPUs.
// Paper finding: HDLTS leads at small machine counts; HEFT/SDBATS catch up
// and pass it as CPUs grow (HDLTS only looks at independent tasks, not the
// whole graph).
#include "bench_common.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig4_random_efficiency_vs_cpus";
  config.title = "efficiency of random workflows vs number of CPUs";
  config.x_label = "CPUs";
  config.metric = bench::Metric::kEfficiency;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t cpus : {2u, 4u, 6u, 8u, 10u}) {
    cells.push_back({std::to_string(cpus), [cpus](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.alpha = 1.0;
                       p.density = 3;
                       p.costs.num_procs = cpus;
                       p.costs.ccr = 1.0;
                       return workload::random_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
