// Ablation X4 (the paper's §VI future-work direction): online HDLTS under
// processor failures. Reports mean makespan inflation and lost executions as
// 0, 1, or 2 of 4 processors die mid-run.
#include <iostream>

#include "bench_common.hpp"
#include "hdlts/core/online.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  const std::size_t reps = bench::bench_reps(100);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));

  util::Table table({"failures", "mean makespan", "vs clean", "lost execs",
                     "completed"});
  util::RunningStats clean_stats;

  for (const std::size_t failures : {0u, 1u, 2u}) {
    util::RunningStats makespan;
    util::RunningStats lost;
    std::size_t completed = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      workload::RandomDagParams p;
      p.num_tasks = 100;
      p.costs.num_procs = 4;
      p.costs.ccr = 2.0;
      const std::uint64_t seed = util::derive_seed(base_seed, rep);
      const sim::Workload w = workload::random_workload(p, seed);

      // Failures strike distinct processors at mid-execution times drawn
      // from the clean run's horizon.
      const core::OnlineResult clean = core::run_online(w, {});
      std::vector<core::ProcFailure> fails;
      util::Rng rng(util::derive_seed(seed, 0xfa11ULL));
      for (std::size_t f = 0; f < failures; ++f) {
        fails.push_back({static_cast<platform::ProcId>(f),
                         clean.makespan * rng.uniform(0.2, 0.8)});
      }
      const core::OnlineResult r = core::run_online(w, fails);
      if (r.completed) {
        ++completed;
        makespan.add(r.makespan);
        lost.add(static_cast<double>(r.lost_executions));
      }
      if (failures == 0) clean_stats.add(r.makespan);
    }
    const double vs_clean =
        clean_stats.mean() > 0 ? makespan.mean() / clean_stats.mean() : 1.0;
    table.add_row({std::to_string(failures), util::fmt(makespan.mean(), 1),
                   util::fmt(vs_clean, 3) + "x", util::fmt(lost.mean(), 2),
                   std::to_string(completed) + "/" + std::to_string(reps)});
  }

  std::cout << "== ablation_failures: online HDLTS under CPU failures ==\n"
            << "random workflows, V=100, 4 CPUs, CCR=2, " << reps
            << " repetitions\n\n";
  table.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
