// Fig. 11: efficiency of Montage workflows (CCR = 3) vs number of CPUs.
#include "bench_common.hpp"
#include "hdlts/workload/montage.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig11_montage_efficiency_vs_cpus";
  config.title = "efficiency of Montage workflows (CCR = 3) vs number of CPUs";
  config.x_label = "CPUs";
  config.metric = bench::Metric::kEfficiency;

  std::vector<bench::SweepCell> cells;
  for (const std::size_t cpus : {2u, 4u, 6u, 8u, 10u}) {
    cells.push_back({std::to_string(cpus), [cpus](std::uint64_t seed) {
                       workload::MontageParams p;
                       p.num_nodes = 50;
                       p.costs.num_procs = cpus;
                       p.costs.ccr = 3.0;
                       return workload::montage_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
