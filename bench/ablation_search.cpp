// Ablation X8: heuristics vs search (the paper's §I taxonomy — list
// heuristics are fast, genetic search is "good quality but high time
// complexity", and tiny instances admit exact optima). Reports makespan
// relative to the branch-and-bound optimum on 9-task instances, plus
// wall-clock per schedule, substantiating the taxonomy quantitatively.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/optimal.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/stats.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  const std::size_t reps = bench::bench_reps(30);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const sched::Registry reg = core::default_registry();
  const std::vector<std::string> names = {"hdlts", "heft",   "peft",
                                          "dheft", "genetic"};

  struct Row {
    util::RunningStats ratio;  // makespan / optimum
    util::RunningStats micros;
    std::size_t optimal_hits = 0;
  };
  std::vector<Row> rows(names.size());

  for (std::size_t rep = 0; rep < reps; ++rep) {
    workload::RandomDagParams p;
    p.num_tasks = 9;
    p.costs.num_procs = 3;
    p.costs.ccr = 2.0;
    const sim::Workload w =
        workload::random_workload(p, util::derive_seed(base_seed, rep));
    const sim::Problem problem(w);
    const double optimum =
        sched::BranchAndBound(12).schedule(problem).makespan();
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto scheduler = reg.make(names[i]);
      const auto t0 = std::chrono::steady_clock::now();
      const double makespan = scheduler->schedule(problem).makespan();
      const auto t1 = std::chrono::steady_clock::now();
      rows[i].ratio.add(makespan / optimum);
      rows[i].micros.add(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      // Duplication-capable schedulers can beat the duplication-free
      // optimum, hence <= with tolerance counts as a hit.
      if (makespan <= optimum + 1e-6) ++rows[i].optimal_hits;
    }
  }

  util::Table table({"scheduler", "makespan/optimum", "hit optimum",
                     "time (us)"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], util::fmt(rows[i].ratio.mean(), 4),
                   std::to_string(rows[i].optimal_hits) + "/" +
                       std::to_string(reps),
                   util::fmt(rows[i].micros.mean(), 1)});
  }
  std::cout << "== ablation_search: heuristics vs exact/GA search ==\n"
            << "random 9-task / 3-CPU instances, optimum via branch-and-bound"
            << ", " << reps << " repetitions\n\n";
  table.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
