// Ablation X2: how much does effective entry-task duplication buy? Sweeps
// CCR on random and FFT workflows; higher CCR should make duplication
// matter more (the duplicate saves a network hop).
//
// Expected reading: the FFT rows separate (single real entry, Algorithm 1
// fires); the random rows are *identical* by construction — the paper's own
// generator emits multi-entry graphs whose normalized pseudo entry costs
// zero, so entry duplication is a no-op there (see EXPERIMENTS.md).
#include "bench_common.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "ablation_duplication";
  config.title = "HDLTS entry-duplication ablation: avg SLR vs CCR";
  config.x_label = "workload/CCR";
  config.metric = bench::Metric::kSlr;
  config.schedulers = {"hdlts", "hdlts-nodup"};

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"random/" + util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::random_workload(p, seed);
                     }});
  }
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"fft16/" + util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::FftParams p;
                       p.points = 16;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::fft_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
