// Ablation X5 (paper §VI generalization): what should "entry duplication"
// mean on multi-entry workflows like Montage, where the normalized entry is
// a zero-cost pseudo task and Algorithm 1 is a no-op?
//   * hdlts           — Algorithm 1 verbatim (duplicates nothing here)
//   * hdlts-multidup  — eager generalization: duplicate every real source
//                       task wherever a child could benefit
//   * dheft           — lazy generalization: duplicate a critical parent on
//                       the consumer's processor only when it pays
// Finding (EXPERIMENTS.md): eager flooding *hurts* (redundant copies eat
// machine capacity); lazy consumer-side duplication wins decisively.
#include "bench_common.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "ablation_multidup";
  config.title = "duplication generalizations on multi-entry workflows";
  config.x_label = "workload/CCR";
  config.metric = bench::Metric::kSlr;
  config.schedulers = {"hdlts", "hdlts-multidup", "dheft", "heft"};

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"montage50/" + util::fmt(ccr, 1),
                     [ccr](std::uint64_t seed) {
                       workload::MontageParams p;
                       p.num_nodes = 50;
                       p.costs.num_procs = 5;
                       p.costs.ccr = ccr;
                       return workload::montage_workload(p, seed);
                     }});
  }
  for (const double ccr : {1.0, 3.0, 5.0}) {
    cells.push_back({"random/" + util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.costs.num_procs = 4;
                       p.costs.ccr = ccr;
                       return workload::random_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
