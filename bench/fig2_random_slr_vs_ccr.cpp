// Fig. 2: average SLR of random application workflows vs CCR.
// Paper finding: HDLTS ties HEFT/SDBATS at low CCR and wins as the graphs
// become communication-intensive.
#include "bench_common.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  bench::SweepConfig config;
  config.name = "fig2_random_slr_vs_ccr";
  config.title = "average SLR of random workflows vs CCR";
  config.x_label = "CCR";
  config.metric = bench::Metric::kSlr;

  std::vector<bench::SweepCell> cells;
  for (const double ccr : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    cells.push_back({util::fmt(ccr, 1), [ccr](std::uint64_t seed) {
                       workload::RandomDagParams p;
                       p.num_tasks = 100;
                       p.alpha = 1.0;
                       p.density = 3;
                       p.costs.num_procs = 4;
                       p.costs.wdag = 50.0;
                       p.costs.beta = 0.8;
                       p.costs.ccr = ccr;
                       return workload::random_workload(p, seed);
                     }});
  }
  return bench::run_sweep(config, cells);
}
