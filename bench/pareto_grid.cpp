// Pareto grid: the multi-objective view of the comparison set. For each CCR
// cell of the random-DAG family, metrics::compare_schedulers aggregates
// makespan x energy x deadline-miss-rate per scheduler (deadline = factor *
// makespan_lower_bound per repetition), and metrics::pareto_frontier picks
// the non-dominated set. The frontier column shows which schedulers survive
// when joules and deadlines count, not just schedule length — the
// energy-aware HDLTS variant typically joins the frontier at high CCR where
// the baseline burns duplicates.
#include <iostream>

#include "bench_common.hpp"
#include "hdlts/core/hdlts.hpp"
#include "hdlts/metrics/experiment.hpp"
#include "hdlts/util/env.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/util/table.hpp"
#include "hdlts/workload/random_dag.hpp"

int main() {
  using namespace hdlts;
  const std::size_t reps = bench::bench_reps(30);
  const auto base_seed =
      static_cast<std::uint64_t>(util::env_int("HDLTS_SEED", 42));
  const sched::Registry reg = core::default_registry();
  const std::vector<std::string> names = {"hdlts", "hdlts-energy",
                                          "hdlts-nodup", "heft", "cpop"};
  const double ccrs[] = {0.5, 1.0, 2.0, 4.0};

  std::cout << "== pareto_grid: makespan x energy x deadline miss rate ==\n"
            << "random DAGs, 40 tasks, 4 CPUs, deadline = 1.5 * lower bound, "
            << reps << " repetitions per cell\n\n";

  util::Table table({"ccr", "scheduler", "makespan", "energy", "miss rate",
                     "frontier"});
  for (const double ccr : ccrs) {
    metrics::WorkloadFactory factory = [ccr](std::uint64_t seed) {
      workload::RandomDagParams p;
      p.num_tasks = 40;
      p.costs.num_procs = 4;
      p.costs.ccr = ccr;
      return workload::random_workload(p, seed);
    };
    metrics::CompareOptions options;
    options.repetitions = reps;
    options.base_seed = util::derive_seed(
        base_seed, static_cast<std::uint64_t>(ccr * 1000.0));
    options.deadline_factor = 1.5;
    const std::vector<metrics::SchedulerSummary> summaries =
        metrics::compare_schedulers(factory, names, reg, options);
    const std::vector<metrics::ParetoPoint> frontier =
        metrics::pareto_frontier(summaries);
    for (const metrics::ParetoPoint& p : metrics::pareto_points(summaries)) {
      bool on_frontier = false;
      for (const metrics::ParetoPoint& f : frontier) {
        if (f.scheduler == p.scheduler) on_frontier = true;
      }
      table.add_row({"ccr=" + util::fmt(ccr, 1), p.scheduler,
                     util::fmt(p.makespan, 1), util::fmt(p.energy, 1),
                     util::fmt(p.miss_rate, 2), on_frontier ? "*" : ""});
    }
  }
  table.write_markdown(std::cout);
  std::cout << std::endl;
  return 0;
}
