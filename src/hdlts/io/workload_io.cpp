#include "hdlts/io/workload_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "hdlts/graph/serialize.hpp"

namespace hdlts::io {

void write_workload(std::ostream& os, const sim::Workload& w) {
  w.validate();
  os.precision(17);
  graph::write_text(os, w.graph);
  const std::size_t np = w.platform.num_procs();
  os << "platform " << np << "\n";
  for (platform::ProcId a = 0; a < np; ++a) {
    for (platform::ProcId b = a + 1; b < np; ++b) {
      const double bw = w.platform.bandwidth(a, b);
      if (bw != 1.0) os << "bandwidth " << a << " " << b << " " << bw << "\n";
    }
  }
  for (graph::TaskId v = 0; v < w.graph.num_tasks(); ++v) {
    os << "cost " << v;
    for (platform::ProcId p = 0; p < np; ++p) os << " " << w.costs(v, p);
    os << "\n";
  }
}

sim::Workload read_workload(std::istream& is) {
  // The graph section comes first; buffer the remaining directives because
  // graph::read_text consumes the stream to the end. We therefore split by
  // record kind ourselves.
  std::ostringstream graph_part;
  std::vector<std::string> rest;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream probe(line);
    std::string kind;
    probe >> kind;
    if (kind == "platform" || kind == "bandwidth" || kind == "cost") {
      rest.push_back(line);
    } else {
      graph_part << line << "\n";
    }
  }
  std::istringstream graph_is(graph_part.str());
  graph::TaskGraph g = graph::read_text(graph_is);

  std::optional<std::size_t> num_procs;
  std::vector<std::string> cost_lines;
  std::vector<std::string> bw_lines;
  for (const std::string& l : rest) {
    std::istringstream ls(l);
    std::string kind;
    ls >> kind;
    if (kind == "platform") {
      std::size_t np = 0;
      if (!(ls >> np) || np == 0) {
        throw InvalidArgument("malformed platform line: " + l);
      }
      num_procs = np;
    } else if (kind == "bandwidth") {
      bw_lines.push_back(l);
    } else {
      cost_lines.push_back(l);
    }
  }
  if (!num_procs) throw InvalidArgument("workload file lacks platform line");

  platform::Platform platform(*num_procs);
  for (const std::string& l : bw_lines) {
    std::istringstream ls(l);
    std::string kind;
    platform::ProcId a = 0;
    platform::ProcId b = 0;
    double bw = 0.0;
    if (!(ls >> kind >> a >> b >> bw)) {
      throw InvalidArgument("malformed bandwidth line: " + l);
    }
    platform.set_bandwidth(a, b, bw);
  }

  sim::CostTable costs(g.num_tasks(), *num_procs);
  std::vector<bool> seen(g.num_tasks(), false);
  for (const std::string& l : cost_lines) {
    std::istringstream ls(l);
    std::string kind;
    graph::TaskId v = 0;
    if (!(ls >> kind >> v) || v >= g.num_tasks()) {
      throw InvalidArgument("malformed cost line: " + l);
    }
    for (platform::ProcId p = 0; p < *num_procs; ++p) {
      double c = 0.0;
      if (!(ls >> c)) throw InvalidArgument("short cost row: " + l);
      costs.set(v, p, c);
    }
    seen[v] = true;
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!seen[v]) {
      throw InvalidArgument("missing cost row for task " + std::to_string(v));
    }
  }

  sim::Workload w{std::move(g), std::move(costs), std::move(platform)};
  w.validate();
  return w;
}

void save_workload(const std::string& path, const sim::Workload& w) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  write_workload(out, w);
  if (!out) throw Error("write failed: " + path);
}

sim::Workload load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  return read_workload(in);
}

}  // namespace hdlts::io
