// Full-workload serialization (graph + W matrix + platform bandwidth), so a
// generated problem instance can be archived and re-run bit-identically.
//
// Format extends the graph text format (hdlts/graph/serialize.hpp) with:
//   platform <num_procs>
//   bandwidth <src> <dst> <value>     (only non-default links)
//   cost <task> <w_p1> <w_p2> ... <w_pp>
#pragma once

#include <iosfwd>
#include <string>

#include "hdlts/sim/problem.hpp"

namespace hdlts::io {

void write_workload(std::ostream& os, const sim::Workload& w);
sim::Workload read_workload(std::istream& is);

void save_workload(const std::string& path, const sim::Workload& w);
sim::Workload load_workload(const std::string& path);

}  // namespace hdlts::io
