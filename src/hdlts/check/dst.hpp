// Deterministic simulation testing (DST) for the dynamic schedulers.
//
// run_dst() sweeps seed × workload family (random / FFT / Montage / MD /
// fork-join) × fault plan, replays every run through the check validators,
// and — when a run violates an invariant or a plan's forced outcome — emits
// a *minimized* reproducer: failures are greedily dropped, then the task
// graph is bisected down a topological prefix, and the derived seed is
// printed so the exact cell can be replayed (docs/TESTING.md shows how).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hdlts::check {

struct DstOptions {
  /// Seeds per workload family. The default (5) yields > 200 validated
  /// fault-injection runs across the five families; scale it up for soaks
  /// (tests read HDLTS_DST_ROUNDS).
  std::size_t rounds = 5;
  std::uint64_t base_seed = 0x9d57u;
  /// Also run and validate the stream scheduler (both ITQ policies).
  bool include_stream = true;
  /// Also run a periodic-arrival stream round per cell: jittered arrivals
  /// with soft/hard deadlines and pre-occupied busy intervals, validated
  /// through the deadline-aware StreamValidator and diffed against the
  /// legacy stream path (requires include_stream).
  bool include_periodic = true;
  /// Shrink counterexamples before reporting (drop failures, bisect tasks).
  bool minimize = true;
  /// Replay every cell through the legacy reference schedulers and require
  /// the compiled results to be bit-identical (executions, makespan, lost
  /// counts). Doubles the sweep cost; divergence is reported as a violation.
  bool compare_legacy = true;
};

struct DstCounterexample {
  /// The derived per-cell seed — feeding it back through the documented
  /// recipe reproduces the failing run exactly.
  std::uint64_t seed = 0;
  std::string family;
  std::string scenario;
  std::vector<std::string> violations;
  /// One-line minimized reproducer (seed, family, surviving failures,
  /// task-prefix size, first violation).
  std::string reproducer;
};

struct DstReport {
  std::size_t online_runs = 0;
  std::size_t stream_runs = 0;
  std::vector<DstCounterexample> counterexamples;

  std::size_t runs() const { return online_runs + stream_runs; }
  bool ok() const { return counterexamples.empty(); }
};

/// Runs the sweep. Deterministic: same options ⇒ same report.
DstReport run_dst(const DstOptions& options = {});

}  // namespace hdlts::check
