// Seeded fault-plan generation for deterministic simulation testing.
//
// A FaultPlan is a processor-failure scenario plus the outcome it forces:
// plans that leave at least one processor alive must complete, plans that
// kill every processor at t = 0 must not, and plans that kill everything
// later may or may not finish first. make_fault_plans() draws a seeded
// family of such scenarios around a run's clean makespan so failures land
// where they matter (while work is in flight, not after everything is done).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdlts/core/online.hpp"

namespace hdlts::check {

/// What a plan forces run_online's `completed` flag to be.
enum class PlanExpectation {
  kMustComplete,  ///< at least one processor never fails
  kMustFail,      ///< every processor dies at t = 0: nothing can run
  kEither,        ///< every processor dies eventually; the race decides
};

struct FaultPlan {
  std::vector<core::ProcFailure> failures;
  PlanExpectation expectation = PlanExpectation::kEither;
  /// Human-readable scenario label for reproducer messages.
  std::string description;
};

/// Draws a deterministic family of fault plans for `num_procs` processors.
/// `clean_makespan` anchors the failure times: single failures at makespan
/// quantiles, correlated multi-processor failures at one instant, staggered
/// multi-failures, a duplicate-failure plan (exercising the ignore path),
/// the empty plan, and all-processors-die plans at t = 0 (kMustFail) and at
/// a later instant (kEither). Same (num_procs, clean_makespan, seed) ⇒ same
/// plans. Requires num_procs >= 2 and clean_makespan > 0.
std::vector<FaultPlan> make_fault_plans(std::size_t num_procs,
                                        double clean_makespan,
                                        std::uint64_t seed);

}  // namespace hdlts::check
