#include "hdlts/check/dst.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "hdlts/check/faultplan.hpp"
#include "hdlts/check/validate.hpp"
#include "hdlts/core/periodic.hpp"
#include "hdlts/graph/algorithms.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/fft.hpp"
#include "hdlts/workload/forkjoin.hpp"
#include "hdlts/workload/md.hpp"
#include "hdlts/workload/montage.hpp"
#include "hdlts/workload/random_dag.hpp"

namespace hdlts::check {

namespace {

constexpr const char* kFamilies[] = {"random", "fft", "montage", "md",
                                     "forkjoin"};

/// Builds one family member. `rng` perturbs the shape parameters so rounds
/// exercise different graph sizes; `sub` distinguishes the workflows of a
/// stream cell.
sim::Workload build_workload(std::size_t family, std::size_t num_procs,
                             std::uint64_t seed, std::uint64_t sub,
                             util::Rng& rng) {
  workload::CostParams costs;
  costs.num_procs = num_procs;
  costs.ccr = rng.uniform(0.5, 2.0);
  const std::uint64_t wseed = util::derive_seed(seed, sub);
  switch (family) {
    case 0: {
      workload::RandomDagParams p;
      p.num_tasks = static_cast<std::size_t>(rng.uniform_int(16, 36));
      p.alpha = rng.chance(0.5) ? 1.0 : 2.0;
      p.costs = costs;
      return workload::random_workload(p, wseed);
    }
    case 1: {
      workload::FftParams p;
      p.points = 8;
      p.costs = costs;
      return workload::fft_workload(p, wseed);
    }
    case 2: {
      workload::MontageParams p;
      p.num_nodes = static_cast<std::size_t>(rng.uniform_int(20, 40));
      p.costs = costs;
      return workload::montage_workload(p, wseed);
    }
    case 3: {
      workload::MdParams p;
      p.costs = costs;
      return workload::md_workload(p, wseed);
    }
    default: {
      workload::ForkJoinParams p;
      p.chains = static_cast<std::size_t>(rng.uniform_int(3, 5));
      p.length = static_cast<std::size_t>(rng.uniform_int(3, 5));
      p.costs = costs;
      return workload::forkjoin_workload(p, wseed);
    }
  }
}

/// The workload induced by the first `m` tasks of `topo` (a topological
/// prefix is always a DAG, so the result is a valid workload).
sim::Workload induced_prefix(const sim::Workload& w,
                             const std::vector<graph::TaskId>& topo,
                             std::size_t m) {
  const std::size_t np = w.platform.num_procs();
  std::vector<graph::TaskId> map(w.graph.num_tasks(), graph::kInvalidTask);
  graph::TaskGraph g;
  for (std::size_t i = 0; i < m; ++i) {
    map[topo[i]] = g.add_task(w.graph.name(topo[i]), w.graph.work(topo[i]));
  }
  sim::CostTable costs(m, np);
  for (std::size_t i = 0; i < m; ++i) {
    const graph::TaskId u = topo[i];
    for (const graph::Adjacent& c : w.graph.children(u)) {
      if (map[c.task] != graph::kInvalidTask) {
        g.add_edge(map[u], map[c.task], c.data);
      }
    }
    for (std::size_t p = 0; p < np; ++p) {
      costs.set(map[u], static_cast<platform::ProcId>(p),
                w.costs(u, static_cast<platform::ProcId>(p)));
    }
  }
  return {std::move(g), std::move(costs), w.platform};
}

/// Appends a violation for the first field where the compiled online result
/// diverges from the legacy reference (exact ==, no tolerance).
void diff_online(const core::OnlineResult& compiled,
                 const core::OnlineResult& legacy,
                 std::vector<std::string>* out) {
  if (compiled.completed != legacy.completed) {
    out->push_back("compiled/legacy divergence: completed flag");
    return;
  }
  if (compiled.makespan != legacy.makespan) {
    out->push_back("compiled/legacy divergence: makespan " +
                   std::to_string(compiled.makespan) + " vs " +
                   std::to_string(legacy.makespan));
    return;
  }
  if (compiled.lost_executions != legacy.lost_executions) {
    out->push_back("compiled/legacy divergence: lost_executions " +
                   std::to_string(compiled.lost_executions) + " vs " +
                   std::to_string(legacy.lost_executions));
    return;
  }
  if (compiled.executions.size() != legacy.executions.size()) {
    out->push_back("compiled/legacy divergence: execution count " +
                   std::to_string(compiled.executions.size()) + " vs " +
                   std::to_string(legacy.executions.size()));
    return;
  }
  for (std::size_t i = 0; i < compiled.executions.size(); ++i) {
    const core::OnlineExec& a = compiled.executions[i];
    const core::OnlineExec& b = legacy.executions[i];
    if (a.task != b.task || a.proc != b.proc || a.start != b.start ||
        a.finish != b.finish || a.duplicate != b.duplicate ||
        a.lost != b.lost) {
      out->push_back("compiled/legacy divergence: execution #" +
                     std::to_string(i) + " (task " + std::to_string(a.task) +
                     " vs " + std::to_string(b.task) + ")");
      return;
    }
  }
}

/// Same for the stream scheduler.
void diff_stream(const core::StreamResult& compiled,
                 const core::StreamResult& legacy,
                 std::vector<std::string>* out) {
  if (compiled.makespan != legacy.makespan) {
    out->push_back("compiled/legacy stream divergence: makespan " +
                   std::to_string(compiled.makespan) + " vs " +
                   std::to_string(legacy.makespan));
    return;
  }
  if (compiled.finish != legacy.finish ||
      compiled.flow_time != legacy.flow_time) {
    out->push_back("compiled/legacy stream divergence: per-workflow times");
    return;
  }
  if (compiled.executions.size() != legacy.executions.size()) {
    out->push_back("compiled/legacy stream divergence: execution count " +
                   std::to_string(compiled.executions.size()) + " vs " +
                   std::to_string(legacy.executions.size()));
    return;
  }
  for (std::size_t i = 0; i < compiled.executions.size(); ++i) {
    const core::StreamTaskExec& a = compiled.executions[i];
    const core::StreamTaskExec& b = legacy.executions[i];
    if (a.workflow != b.workflow || a.task != b.task || a.proc != b.proc ||
        a.start != b.start || a.finish != b.finish) {
      out->push_back("compiled/legacy stream divergence: execution #" +
                     std::to_string(i));
      return;
    }
  }
  if (compiled.deadline_missed != legacy.deadline_missed ||
      compiled.deadline_misses != legacy.deadline_misses ||
      compiled.hard_deadline_misses != legacy.hard_deadline_misses) {
    out->push_back("compiled/legacy stream divergence: deadline accounting");
  }
}

/// Runs one online scenario and returns every complaint, including the
/// plan's forced-outcome check and (optionally) the compiled-vs-legacy
/// differential.
std::vector<std::string> run_and_validate(
    const sim::Workload& workload, const std::vector<core::ProcFailure>& plan,
    PlanExpectation expect, const core::HdltsOptions& options,
    bool compare_legacy) {
  const core::OnlineResult result = core::run_online(workload, plan, options);
  const OnlineValidator validator(options);
  std::vector<std::string> violations =
      validator.validate(workload, plan, result);
  if (expect == PlanExpectation::kMustComplete && !result.completed) {
    violations.push_back(
        "plan leaves a processor alive but the run did not complete");
  }
  if (expect == PlanExpectation::kMustFail && result.completed) {
    violations.push_back(
        "every processor fails at t = 0 but the run completed");
  }
  if (compare_legacy) {
    const core::OnlineResult reference =
        core::run_online_legacy(workload, plan, options);
    diff_online(result, reference, &violations);
  }
  return violations;
}

std::string describe_plan(const std::vector<core::ProcFailure>& plan) {
  std::string out = "[";
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(plan[i].proc) + "@" + std::to_string(plan[i].time);
  }
  return out + "]";
}

/// Shrinks a failing scenario: greedily drop fault-plan entries, then
/// bisect the task graph down a topological prefix. Both passes only keep a
/// reduction when the reduced scenario still fails, so the result is always
/// a genuine counterexample.
std::string minimize(const sim::Workload& workload,
                     std::vector<core::ProcFailure> plan,
                     PlanExpectation expect,
                     const core::HdltsOptions& options, std::uint64_t seed,
                     const std::string& family, bool compare_legacy) {
  // Dropping a failure can change the forced outcome (e.g. removing one of
  // the all-die-at-zero entries may allow completion), so the minimizer
  // only chases *validator* complaints once it starts mutating: a scenario
  // "fails" when the invariant replay complains, with the original
  // expectation kept only while the plan is intact.
  auto fails = [&](const sim::Workload& w,
                   const std::vector<core::ProcFailure>& p,
                   PlanExpectation e) {
    return !run_and_validate(w, p, e, options, compare_legacy).empty();
  };

  for (std::size_t i = 0; i < plan.size();) {
    std::vector<core::ProcFailure> reduced = plan;
    reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails(workload, reduced, PlanExpectation::kEither)) {
      plan = std::move(reduced);
    } else {
      ++i;
    }
  }
  PlanExpectation expect_now = expect;
  if (!fails(workload, plan, expect_now)) {
    expect_now = PlanExpectation::kEither;
  }

  const auto topo = graph::topological_order(workload.graph);
  sim::Workload best = workload;
  std::size_t best_m = topo.size();
  std::size_t lo = 1;
  std::size_t hi = topo.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const sim::Workload candidate = induced_prefix(workload, topo, mid);
    if (fails(candidate, plan, expect_now)) {
      best = candidate;
      best_m = mid;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  const auto violations =
      run_and_validate(best, plan, expect_now, options, compare_legacy);
  std::string repro = "seed=" + std::to_string(seed) + " family=" + family +
                      " tasks=" + std::to_string(best_m) + "/" +
                      std::to_string(topo.size()) +
                      " failures=" + describe_plan(plan);
  if (!violations.empty()) repro += " violation: " + violations.front();
  return repro;
}

}  // namespace

DstReport run_dst(const DstOptions& options) {
  DstReport report;
  const std::size_t num_families = std::size(kFamilies);

  for (std::size_t family = 0; family < num_families; ++family) {
    for (std::size_t round = 0; round < options.rounds; ++round) {
      const std::uint64_t seed =
          util::derive_seed(options.base_seed, family, round);
      util::Rng rng(seed);
      const std::size_t num_procs =
          static_cast<std::size_t>(rng.uniform_int(3, 4));

      core::HdltsOptions hdlts;
      hdlts.duplication = (round % 3 == 2) ? core::DuplicationRule::kOff
                                           : core::DuplicationRule::kAnyChildBenefits;
      hdlts.dynamic_priorities = round % 2 == 0;

      const sim::Workload workload =
          build_workload(family, num_procs, seed, 0, rng);
      const double clean_makespan =
          core::Hdlts(hdlts).schedule(sim::Problem(workload)).makespan();

      for (const FaultPlan& plan :
           make_fault_plans(num_procs, clean_makespan, seed)) {
        ++report.online_runs;
        auto violations = run_and_validate(workload, plan.failures,
                                           plan.expectation, hdlts,
                                           options.compare_legacy);
        if (violations.empty()) continue;
        DstCounterexample cx;
        cx.seed = seed;
        cx.family = kFamilies[family];
        cx.scenario = plan.description;
        cx.violations = std::move(violations);
        cx.reproducer =
            options.minimize
                ? minimize(workload, plan.failures, plan.expectation, hdlts,
                           seed, kFamilies[family], options.compare_legacy)
                : "seed=" + std::to_string(seed) + " family=" +
                      kFamilies[family] +
                      " failures=" + describe_plan(plan.failures);
        report.counterexamples.push_back(std::move(cx));
      }

      if (!options.include_stream) continue;
      std::vector<core::StreamArrival> arrivals;
      arrivals.push_back({workload, 0.0});
      arrivals.push_back(
          {build_workload(family, num_procs, seed, 1, rng),
           0.4 * clean_makespan});
      arrivals.push_back(
          {build_workload(family, num_procs, seed, 2, rng),
           0.9 * clean_makespan});
      for (const core::StreamPolicy policy :
           {core::StreamPolicy::kHdltsPv, core::StreamPolicy::kFifoEft}) {
        ++report.stream_runs;
        core::StreamOptions sopt;
        sopt.policy = policy;
        const core::StreamResult sres = core::run_stream(arrivals, sopt);
        const StreamValidator svalidator(sopt);
        auto violations = svalidator.validate(arrivals, sres);
        if (options.compare_legacy) {
          const core::StreamResult sref =
              core::run_stream_legacy(arrivals, sopt);
          diff_stream(sres, sref, &violations);
        }
        if (violations.empty()) continue;
        DstCounterexample cx;
        cx.seed = seed;
        cx.family = kFamilies[family];
        cx.scenario = policy == core::StreamPolicy::kHdltsPv
                          ? "stream (hdlts-pv policy)"
                          : "stream (fifo-eft policy)";
        cx.violations = std::move(violations);
        cx.reproducer = "seed=" + std::to_string(seed) + " family=" +
                        kFamilies[family] + " scenario=" + cx.scenario +
                        " violation: " + cx.violations.front();
        report.counterexamples.push_back(std::move(cx));
      }

      if (!options.include_periodic) continue;
      // Periodic round: jittered arrivals with soft/hard deadlines on a
      // pre-occupied platform, replayed through the deadline-aware
      // validator and the legacy differential.
      const core::PeriodicStreamParams pparams;
      const core::PeriodicStream periodic = core::make_periodic_stream(
          pparams,
          [&](std::size_t index, std::uint64_t wseed) {
            util::Rng wf_rng(wseed);
            return build_workload(family, num_procs, seed, 100 + index,
                                  wf_rng);
          },
          seed);
      ++report.stream_runs;
      core::StreamOptions sopt;
      sopt.policy = core::StreamPolicy::kHdltsPv;
      const core::StreamResult pres =
          core::run_stream(periodic.arrivals, sopt, nullptr, periodic.busy);
      const StreamValidator pvalidator(sopt);
      auto violations =
          pvalidator.validate(periodic.arrivals, periodic.busy, pres);
      if (options.compare_legacy) {
        const core::StreamResult pref = core::run_stream_legacy(
            periodic.arrivals, sopt, nullptr, periodic.busy);
        diff_stream(pres, pref, &violations);
      }
      if (!violations.empty()) {
        DstCounterexample cx;
        cx.seed = seed;
        cx.family = kFamilies[family];
        cx.scenario = "stream (periodic deadlines + busy intervals)";
        cx.violations = std::move(violations);
        cx.reproducer = "seed=" + std::to_string(seed) + " family=" +
                        kFamilies[family] + " scenario=" + cx.scenario +
                        " violation: " + cx.violations.front();
        report.counterexamples.push_back(std::move(cx));
      }
    }
  }
  return report;
}

}  // namespace hdlts::check
