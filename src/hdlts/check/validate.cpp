#include "hdlts/check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace hdlts::check {

namespace {

constexpr double kEps = 1e-6;
// Finishes are never negative, so -1 marks "not scheduled yet".
constexpr double kNeverFinish = -1.0;

std::string fmt(double x) { return std::to_string(x); }

/// Positive-length blocks on one lane must not overlap; zero-length records
/// (pseudo tasks, instantly-killed attempts) occupy no time. Same rule as
/// sim::Schedule::validate, applied to a flat attempt list.
struct LaneBlock {
  double start = 0.0;
  double finish = 0.0;
  std::string label;
};

void check_lane_exclusivity(std::vector<std::vector<LaneBlock>>& lanes,
                            std::vector<std::string>& violations) {
  for (std::size_t p = 0; p < lanes.size(); ++p) {
    auto& lane = lanes[p];
    std::sort(lane.begin(), lane.end(),
              [](const LaneBlock& a, const LaneBlock& b) {
                return a.start < b.start;
              });
    const LaneBlock* prev = nullptr;
    for (const LaneBlock& b : lane) {
      if (b.finish - b.start <= kEps) continue;
      if (prev != nullptr && prev->finish > b.start + kEps) {
        violations.push_back("attempts overlap on processor " +
                             std::to_string(p) + ": " + prev->label +
                             " and " + b.label);
      }
      prev = &b;
    }
  }
}

}  // namespace

std::vector<std::string> OnlineValidator::validate(
    const sim::Workload& workload,
    std::span<const core::ProcFailure> failures,
    const core::OnlineResult& result) const {
  std::vector<std::string> violations;
  auto complain = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };

  const auto& g = workload.graph;
  const std::size_t n = g.num_tasks();
  const std::size_t np = workload.platform.num_procs();

  // Effective failure time per processor: failures are applied in time
  // order and repeats of a dead processor are ignored, so only the earliest
  // entry per processor takes effect.
  constexpr double kNever = std::numeric_limits<double>::infinity();
  std::vector<double> fail_time(np, kNever);
  for (const core::ProcFailure& f : failures) {
    if (f.proc >= np) {
      complain("fault plan names unknown processor " + std::to_string(f.proc));
      return violations;
    }
    fail_time[f.proc] = std::min(fail_time[f.proc], f.time);
  }

  // --- Structural sanity + failure isolation, one pass over the attempts.
  std::size_t lost_seen = 0;
  std::vector<std::size_t> primaries(n, 0);
  std::vector<bool> covered(n, false);  // has a surviving copy
  std::vector<std::vector<LaneBlock>> lanes(np);
  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  for (const core::OnlineExec& e : result.executions) {
    if (e.task >= n) {
      complain("execution names unknown task " + std::to_string(e.task));
      return violations;
    }
    if (e.proc >= np) {
      complain("execution of task " + std::to_string(e.task) +
               " names unknown processor " + std::to_string(e.proc));
      return violations;
    }
    const std::string label =
        "task " + std::to_string(e.task) + (e.duplicate ? " (duplicate)" : "") +
        (e.lost ? " (lost)" : "");
    if (e.start < -kEps || e.finish + kEps < e.start) {
      complain(label + " has a malformed interval [" + fmt(e.start) + ", " +
               fmt(e.finish) + ")");
      continue;
    }
    lanes[e.proc].push_back({e.start, e.finish, label});

    const double w = workload.costs(e.task, e.proc);
    if (e.lost) {
      ++lost_seen;
      const double ft = fail_time[e.proc];
      if (ft == kNever) {
        complain(label + " was lost on processor " + std::to_string(e.proc) +
                 " which never fails");
        continue;
      }
      if (std::abs(e.finish - ft) > kEps) {
        complain(label + " was truncated at " + fmt(e.finish) +
                 " but its processor fails at " + fmt(ft));
      }
      // Strict, no tolerance: the runtime kills exactly the attempts with
      // start < fail.time as doubles, and a re-queued task can legitimately
      // restart within any epsilon below the next failure instant.
      if (e.start >= ft) {
        complain(label + " started at " + fmt(e.start) +
                 ", at or after its processor's failure at " + fmt(ft));
      }
      if (e.start + w <= ft - kEps) {
        complain(label + " would have finished at " + fmt(e.start + w) +
                 " before the failure at " + fmt(ft) +
                 " — it was not actually running when killed");
      }
      continue;
    }

    // Surviving attempt.
    if (std::abs((e.finish - e.start) - w) > kEps) {
      complain(label + " has duration " + fmt(e.finish - e.start) +
               " but W(v,p) = " + fmt(w));
    }
    if (e.finish > fail_time[e.proc] + kEps) {
      complain(label + " runs until " + fmt(e.finish) +
               " on processor " + std::to_string(e.proc) +
               " after its failure at " + fmt(fail_time[e.proc]));
    }
    covered[e.task] = true;
    if (!e.duplicate) ++primaries[e.task];
    if (e.duplicate) {
      if (!unique_entry || e.task != entries.front() ||
          options_.duplication == core::DuplicationRule::kOff) {
        complain(label + " is a duplicate of a task that is not the unique "
                 "entry (Algorithm 1 only duplicates the entry)");
      } else if (std::abs(e.start) > kEps) {
        complain(label + " is an entry duplicate starting at " + fmt(e.start) +
                 ", not at t = 0");
      }
    }
  }

  for (graph::TaskId v = 0; v < n; ++v) {
    if (primaries[v] > 1) {
      complain("task " + std::to_string(v) + " has " +
               std::to_string(primaries[v]) +
               " surviving primary executions (expected at most one)");
    }
  }

  check_lane_exclusivity(lanes, violations);

  // --- Precedence with communication delays. Commit/revoke semantics
  // guarantee every recorded attempt (even one later killed) started at or
  // after the cheapest *surviving* copy of each parent could deliver.
  for (const core::OnlineExec& e : result.executions) {
    if (e.task >= n || e.proc >= np) continue;  // complained above
    for (const graph::Adjacent& parent : g.parents(e.task)) {
      double arrival = kNever;
      for (const core::OnlineExec& c : result.executions) {
        if (c.task != parent.task || c.lost) continue;
        const double comm =
            c.proc == e.proc
                ? 0.0
                : parent.data / workload.platform.bandwidth(c.proc, e.proc);
        arrival = std::min(arrival, c.finish + comm);
      }
      if (arrival == kNever) {
        complain("task " + std::to_string(e.task) + " ran but parent " +
                 std::to_string(parent.task) + " has no surviving copy");
      } else if (e.start + kEps < arrival) {
        complain("task " + std::to_string(e.task) + " starts at " +
                 fmt(e.start) + " before its data from parent " +
                 std::to_string(parent.task) + " arrives at " + fmt(arrival));
      }
    }
  }

  // --- Bookkeeping.
  double max_finish = 0.0;
  for (const core::OnlineExec& e : result.executions) {
    if (!e.lost) max_finish = std::max(max_finish, e.finish);
  }
  if (std::abs(result.makespan - max_finish) > kEps) {
    complain("makespan " + fmt(result.makespan) +
             " does not equal the max surviving finish " + fmt(max_finish));
  }
  if (result.lost_executions != lost_seen) {
    complain("lost_executions = " + std::to_string(result.lost_executions) +
             " but the replay kills " + std::to_string(lost_seen) +
             " attempts");
  }
  const bool all_covered =
      std::all_of(covered.begin(), covered.end(), [](bool c) { return c; });
  if (result.completed && !all_covered) {
    for (graph::TaskId v = 0; v < n; ++v) {
      if (!covered[v]) {
        complain("completed run leaves task " + std::to_string(v) +
                 " with no surviving execution");
      }
    }
  }
  if (!result.completed) {
    if (all_covered && n > 0) {
      complain("run reports completed == false but every task has a "
               "surviving execution");
    }
    for (platform::ProcId p = 0; p < np; ++p) {
      if (fail_time[p] == kNever) {
        complain("run reports completed == false but processor " +
                 std::to_string(p) + " never fails");
        break;
      }
    }
  }

  // --- Empty fault plan: the online path must reproduce the static HDLTS
  // schedule bit for bit (same primaries, same duplicates, same makespan;
  // exact floating-point equality).
  if (failures.empty() && violations.empty()) {
    const sim::Problem problem(workload);
    const sim::Schedule reference = core::Hdlts(options_).schedule(problem);
    if (!result.completed) {
      complain("failure-free run did not complete");
    }
    std::size_t survivors = 0;
    for (const core::OnlineExec& e : result.executions) {
      if (e.lost) {
        complain("failure-free run recorded a lost attempt of task " +
                 std::to_string(e.task));
        continue;
      }
      ++survivors;
      if (e.duplicate) {
        const auto dups = reference.duplicates(e.task);
        const bool match = std::any_of(
            dups.begin(), dups.end(), [&](const sim::Placement& d) {
              return d.proc == e.proc && d.start == e.start &&
                     d.finish == e.finish;
            });
        if (!match) {
          complain("duplicate of task " + std::to_string(e.task) +
                   " on processor " + std::to_string(e.proc) +
                   " does not appear in the static schedule");
        }
      } else {
        const sim::Placement& pl = reference.placement(e.task);
        if (pl.proc != e.proc || pl.start != e.start ||
            pl.finish != e.finish) {
          complain("task " + std::to_string(e.task) + " diverges from the "
                   "static schedule: online (" + std::to_string(e.proc) +
                   ", " + fmt(e.start) + ", " + fmt(e.finish) +
                   ") vs static (" + std::to_string(pl.proc) + ", " +
                   fmt(pl.start) + ", " + fmt(pl.finish) + ")");
        }
      }
    }
    std::size_t reference_records = reference.num_placed();
    for (graph::TaskId v = 0; v < n; ++v) {
      reference_records += reference.duplicates(v).size();
    }
    if (survivors != reference_records) {
      complain("failure-free run has " + std::to_string(survivors) +
               " executions but the static schedule has " +
               std::to_string(reference_records));
    }
    if (result.makespan != reference.makespan()) {
      complain("failure-free makespan " + fmt(result.makespan) +
               " is not bit-identical to the static makespan " +
               fmt(reference.makespan()));
    }
  }

  return violations;
}

std::vector<std::string> StreamValidator::validate(
    std::span<const core::StreamArrival> arrivals,
    const core::StreamResult& result) const {
  return validate(arrivals, std::span<const core::BusyInterval>{}, result);
}

std::vector<std::string> StreamValidator::validate(
    std::span<const core::StreamArrival> arrivals,
    std::span<const core::BusyInterval> busy,
    const core::StreamResult& result) const {
  std::vector<std::string> violations;
  auto complain = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };
  if (arrivals.empty()) {
    complain("stream has no arrivals");
    return violations;
  }
  const platform::Platform& platform = arrivals.front().workload.platform;
  const std::size_t np = platform.num_procs();

  std::size_t total = 0;
  for (const core::StreamArrival& a : arrivals) {
    total += a.workload.graph.num_tasks();
    if (a.workload.platform.num_procs() != np) {
      complain("stream workflows disagree on processor count");
      return violations;
    }
  }
  if (result.executions.size() != total) {
    complain("stream scheduled " + std::to_string(result.executions.size()) +
             " executions for " + std::to_string(total) + " tasks");
  }
  if (result.finish.size() != arrivals.size() ||
      result.flow_time.size() != arrivals.size()) {
    complain("per-workflow finish/flow_time arrays do not match the "
             "arrival count");
    return violations;
  }

  // Finish time per (workflow, task); doubles as the seen-once check.
  std::vector<std::vector<double>> finish_of(arrivals.size());
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    finish_of[w].assign(arrivals[w].workload.graph.num_tasks(), kNeverFinish);
  }

  std::vector<std::vector<LaneBlock>> lanes(np);
  for (const core::StreamTaskExec& e : result.executions) {
    if (e.workflow >= arrivals.size()) {
      complain("execution names unknown workflow " +
               std::to_string(e.workflow));
      return violations;
    }
    const sim::Workload& w = arrivals[e.workflow].workload;
    const std::string label = "workflow " + std::to_string(e.workflow) +
                              " task " + std::to_string(e.task);
    if (e.task >= w.graph.num_tasks()) {
      complain(label + " is unknown in its workflow");
      return violations;
    }
    if (e.proc >= np) {
      complain(label + " names unknown processor " + std::to_string(e.proc));
      return violations;
    }
    if (finish_of[e.workflow][e.task] != kNeverFinish) {
      complain(label + " is scheduled more than once");
      continue;
    }
    finish_of[e.workflow][e.task] = e.finish;
    if (e.start < -kEps || e.finish + kEps < e.start) {
      complain(label + " has a malformed interval [" + fmt(e.start) + ", " +
               fmt(e.finish) + ")");
      continue;
    }
    if (e.start + kEps < arrivals[e.workflow].arrival) {
      complain(label + " starts at " + fmt(e.start) +
               " before its workflow arrives at " +
               fmt(arrivals[e.workflow].arrival));
    }
    const double exec = w.costs(e.task, e.proc);
    if (std::abs((e.finish - e.start) - exec) > kEps) {
      complain(label + " has duration " + fmt(e.finish - e.start) +
               " but W(v,p) = " + fmt(exec));
    }
    lanes[e.proc].push_back({e.start, e.finish, label});
  }

  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    for (graph::TaskId v = 0;
         v < arrivals[w].workload.graph.num_tasks(); ++v) {
      if (finish_of[w][v] == kNeverFinish) {
        complain("workflow " + std::to_string(w) + " task " +
                 std::to_string(v) + " was never scheduled");
      }
    }
  }

  check_lane_exclusivity(lanes, violations);

  // Pre-occupied busy intervals: the stream promised to schedule around
  // them, so no execution may overlap one (positive-length overlap only,
  // shared endpoints are fine).
  for (const core::BusyInterval& b : busy) {
    if (b.proc >= np) {
      complain("busy interval names unknown processor " +
               std::to_string(b.proc));
      continue;
    }
    for (const core::StreamTaskExec& e : result.executions) {
      if (e.proc != b.proc || e.workflow >= arrivals.size()) continue;
      if (e.start + kEps < b.finish && b.start + kEps < e.finish) {
        complain("workflow " + std::to_string(e.workflow) + " task " +
                 std::to_string(e.task) + " [" + fmt(e.start) + ", " +
                 fmt(e.finish) + ") overlaps a pre-occupied interval [" +
                 fmt(b.start) + ", " + fmt(b.finish) + ") on processor " +
                 std::to_string(b.proc));
      }
    }
  }

  // Precedence inside each workflow (assignments are never revoked in the
  // stream model, so every parent has exactly one copy).
  for (const core::StreamTaskExec& e : result.executions) {
    if (e.workflow >= arrivals.size()) continue;
    const sim::Workload& w = arrivals[e.workflow].workload;
    if (e.task >= w.graph.num_tasks() || e.proc >= np) continue;
    for (const graph::Adjacent& parent : w.graph.parents(e.task)) {
      const core::StreamTaskExec* src = nullptr;
      for (const core::StreamTaskExec& c : result.executions) {
        if (c.workflow == e.workflow && c.task == parent.task) {
          src = &c;
          break;
        }
      }
      if (src == nullptr) continue;  // missing-task complaint already filed
      const double comm =
          src->proc == e.proc
              ? 0.0
              : parent.data / platform.bandwidth(src->proc, e.proc);
      const double arrival = src->finish + comm;
      if (e.start + kEps < arrival) {
        complain("workflow " + std::to_string(e.workflow) + " task " +
                 std::to_string(e.task) + " starts at " + fmt(e.start) +
                 " before its data from parent " +
                 std::to_string(parent.task) + " arrives at " + fmt(arrival));
      }
    }
  }

  // Bookkeeping.
  double makespan = 0.0;
  std::vector<double> wf_finish(arrivals.size(), 0.0);
  for (const core::StreamTaskExec& e : result.executions) {
    if (e.workflow >= arrivals.size()) continue;
    wf_finish[e.workflow] = std::max(wf_finish[e.workflow], e.finish);
    makespan = std::max(makespan, e.finish);
  }
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    if (std::abs(result.finish[w] - wf_finish[w]) > kEps) {
      complain("workflow " + std::to_string(w) + " finish " +
               fmt(result.finish[w]) + " does not equal its max execution "
               "finish " + fmt(wf_finish[w]));
    }
    const double flow = result.finish[w] - arrivals[w].arrival;
    if (std::abs(result.flow_time[w] - flow) > kEps) {
      complain("workflow " + std::to_string(w) + " flow time " +
               fmt(result.flow_time[w]) + " does not equal finish - arrival "
               "= " + fmt(flow));
    }
  }
  if (std::abs(result.makespan - makespan) > kEps) {
    complain("stream makespan " + fmt(result.makespan) +
             " does not equal the max execution finish " + fmt(makespan));
  }

  // Deadline bookkeeping: the missed flags and the soft/hard counters must
  // match a recomputation from the reported finishes. The comparison is the
  // producer's own strict `finish > deadline` (an infinite default deadline
  // is never missed), so no tolerance is involved.
  if (result.deadline_missed.size() != arrivals.size()) {
    complain("per-workflow deadline_missed array does not match the "
             "arrival count");
  } else {
    std::size_t misses = 0;
    std::size_t hard_misses = 0;
    for (std::size_t w = 0; w < arrivals.size(); ++w) {
      const bool expected = result.finish[w] > arrivals[w].deadline;
      if (expected) {
        ++misses;
        if (arrivals[w].deadline_kind == core::DeadlineKind::kHard) {
          ++hard_misses;
        }
      }
      if ((result.deadline_missed[w] != 0) != expected) {
        complain("workflow " + std::to_string(w) + " deadline flag says " +
                 (result.deadline_missed[w] != 0 ? "missed" : "met") +
                 " but finish " + fmt(result.finish[w]) +
                 (expected ? " overruns" : " meets") + " its deadline " +
                 fmt(arrivals[w].deadline));
      }
    }
    if (result.deadline_misses != misses) {
      complain("deadline miss count " + std::to_string(result.deadline_misses) +
               " does not equal the " + std::to_string(misses) +
               " missed deadlines");
    }
    if (result.hard_deadline_misses != hard_misses) {
      complain("hard deadline miss count " +
               std::to_string(result.hard_deadline_misses) +
               " does not equal the " + std::to_string(hard_misses) +
               " missed hard deadlines");
    }
  }

  return violations;
}

}  // namespace hdlts::check
