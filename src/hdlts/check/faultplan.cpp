#include "hdlts/check/faultplan.hpp"

#include <algorithm>

#include "hdlts/util/rng.hpp"

namespace hdlts::check {

namespace {

/// A uniformly drawn set of `count` distinct processors.
std::vector<platform::ProcId> draw_procs(std::size_t num_procs,
                                         std::size_t count, util::Rng& rng) {
  std::vector<platform::ProcId> all(num_procs);
  for (std::size_t p = 0; p < num_procs; ++p) {
    all[p] = static_cast<platform::ProcId>(p);
  }
  // Partial Fisher-Yates: the first `count` entries are the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(num_procs - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace

std::vector<FaultPlan> make_fault_plans(std::size_t num_procs,
                                        double clean_makespan,
                                        std::uint64_t seed) {
  HDLTS_EXPECTS(num_procs >= 2 && clean_makespan > 0.0);
  util::Rng rng(util::derive_seed(seed, 0xfa017a9ULL));
  std::vector<FaultPlan> plans;

  // 1. Empty plan: the online path must reproduce the static schedule.
  plans.push_back({{}, PlanExpectation::kMustComplete, "no failures"});

  // 2. Single failures at makespan quantiles (jittered so the instant does
  // not sit exactly on a task boundary every time).
  for (const double q : {0.1, 0.5, 0.9}) {
    FaultPlan plan;
    const auto proc = static_cast<platform::ProcId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_procs) - 1));
    const double t =
        clean_makespan * (q + rng.uniform(-0.05, 0.05));
    plan.failures.push_back({proc, std::max(0.0, t)});
    plan.expectation = PlanExpectation::kMustComplete;
    plan.description = "single failure of processor " + std::to_string(proc) +
                       " near the " + std::to_string(q) +
                       " makespan quantile";
    plans.push_back(std::move(plan));
  }

  // 3. Staggered multi-failures leaving at least one processor alive.
  {
    FaultPlan plan;
    const std::size_t count = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(num_procs) - 1));
    for (const platform::ProcId p : draw_procs(num_procs, count, rng)) {
      plan.failures.push_back({p, rng.uniform(0.0, 1.2 * clean_makespan)});
    }
    plan.expectation = PlanExpectation::kMustComplete;
    plan.description = "staggered failures of " + std::to_string(count) +
                       " processors";
    plans.push_back(std::move(plan));
  }

  // 4. Correlated failure: several processors die at the same instant
  // (shared rack / power domain).
  if (num_procs >= 3) {
    FaultPlan plan;
    const std::size_t count = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(num_procs) - 1));
    const double t = rng.uniform(0.05, 0.95) * clean_makespan;
    for (const platform::ProcId p : draw_procs(num_procs, count, rng)) {
      plan.failures.push_back({p, t});
    }
    plan.expectation = PlanExpectation::kMustComplete;
    plan.description = "correlated failure of " + std::to_string(count) +
                       " processors at t = " + std::to_string(t);
    plans.push_back(std::move(plan));
  }

  // 5. Duplicate entries for one processor: only the earliest may count.
  {
    FaultPlan plan;
    const auto proc = static_cast<platform::ProcId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_procs) - 1));
    const double t = rng.uniform(0.1, 0.6) * clean_makespan;
    plan.failures.push_back({proc, t});
    plan.failures.push_back({proc, t + 0.2 * clean_makespan});
    plan.expectation = PlanExpectation::kMustComplete;
    plan.description = "duplicate failure entries for processor " +
                       std::to_string(proc);
    plans.push_back(std::move(plan));
  }

  // 6. Every processor dies at t = 0: nothing can start, so the run must
  // report completed == false (pseudo tasks with zero work may still
  // commit, but no real work can).
  {
    FaultPlan plan;
    for (std::size_t p = 0; p < num_procs; ++p) {
      plan.failures.push_back({static_cast<platform::ProcId>(p), 0.0});
    }
    plan.expectation = PlanExpectation::kMustFail;
    plan.description = "all processors fail at t = 0";
    plans.push_back(std::move(plan));
  }

  // 7. Every processor dies eventually, at staggered positive times; the
  // workflow may or may not beat the failures.
  {
    FaultPlan plan;
    for (std::size_t p = 0; p < num_procs; ++p) {
      plan.failures.push_back({static_cast<platform::ProcId>(p),
                               rng.uniform(0.2, 2.0) * clean_makespan});
    }
    plan.expectation = PlanExpectation::kEither;
    plan.description = "all processors fail at staggered times";
    plans.push_back(std::move(plan));
  }

  return plans;
}

}  // namespace hdlts::check
