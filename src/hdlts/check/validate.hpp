// Machine-checkable correctness oracles for the *dynamic* HDLTS paths.
//
// sim::Schedule::validate guards every static scheduler, but run_online /
// run_stream return flat execution logs, not Schedules — until now their
// behaviour under perturbation rested on spot checks. These validators
// replay a result event-by-event against the workload, the fault plan, and
// the commit/revoke semantics documented in core/online.hpp, and return
// human-readable violations (empty == valid), mirroring the static oracle's
// contract. docs/TESTING.md places them in the oracle hierarchy.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"

namespace hdlts::check {

/// Replays an OnlineResult and enforces the full invariant set:
///  * structural sanity — known task/processor ids, ordered non-negative
///    intervals, surviving durations equal to W(v, p);
///  * per-processor exclusivity across every attempt, including lost
///    attempts and entry duplicates (positive-length blocks never overlap);
///  * at most one surviving primary per task; duplicates only of the unique
///    entry task, starting at t = 0;
///  * precedence with communication delays: every attempt starts at or
///    after the cheapest surviving copy of each parent can deliver its data
///    (commit/revoke semantics guarantee lost attempts obey this too);
///  * failure isolation — no surviving execution overlaps its processor's
///    failure time, lost attempts lie exactly on their processor's failure
///    instant and were genuinely still running;
///  * bookkeeping — makespan equals the max surviving finish,
///    lost_executions equals the number of lost attempts the replay kills,
///    and completed matches coverage (every task has a surviving copy);
///  * with an empty fault plan, bit-identity with the static HDLTS
///    schedule (same primaries, same duplicates, same makespan — exact
///    floating-point equality, no tolerance).
class OnlineValidator {
 public:
  explicit OnlineValidator(core::HdltsOptions options = {})
      : options_(options) {}

  /// Returns every violation found (empty means the result is valid).
  /// `workload` and `failures` must be the exact run_online inputs.
  std::vector<std::string> validate(const sim::Workload& workload,
                                    std::span<const core::ProcFailure> failures,
                                    const core::OnlineResult& result) const;

 private:
  core::HdltsOptions options_;
};

/// Replays a StreamResult and enforces:
///  * exactly one execution per (workflow, task), known ids;
///  * EST floored at the workflow's arrival time;
///  * durations equal to the owning workload's W(v, p);
///  * per-processor exclusivity across workflows;
///  * pre-occupied busy-interval exclusivity — no execution overlaps a
///    pre-occupied lane interval (when `busy` is passed);
///  * precedence with communication delays inside each workflow (stream
///    assignments are never revoked, so plain parent-feeds-child);
///  * per-workflow finish / flow-time / global makespan bookkeeping;
///  * deadline bookkeeping — the per-workflow missed flags and the
///    soft/hard miss counters match a recomputation against the arrivals'
///    deadlines.
class StreamValidator {
 public:
  explicit StreamValidator(core::StreamOptions options = {})
      : options_(options) {}

  /// `arrivals` must be the exact run_stream input.
  std::vector<std::string> validate(
      std::span<const core::StreamArrival> arrivals,
      const core::StreamResult& result) const;

  /// Same, for a stream run over a pre-occupied platform: `busy` must be
  /// the exact busy-interval set passed to run_stream.
  std::vector<std::string> validate(
      std::span<const core::StreamArrival> arrivals,
      std::span<const core::BusyInterval> busy,
      const core::StreamResult& result) const;

 private:
  core::StreamOptions options_;
};

}  // namespace hdlts::check
