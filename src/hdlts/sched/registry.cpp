#include "hdlts/sched/registry.hpp"

#include "hdlts/sched/baselines.hpp"
#include "hdlts/sched/batch.hpp"
#include "hdlts/sched/cpop.hpp"
#include "hdlts/sched/dheft.hpp"
#include "hdlts/sched/dls.hpp"
#include "hdlts/sched/genetic.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sched/lookahead.hpp"
#include "hdlts/sched/peft.hpp"
#include "hdlts/sched/pets.hpp"
#include "hdlts/sched/sdbats.hpp"

namespace hdlts::sched {

void Registry::add(const std::string& name, Factory factory) {
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw InvalidArgument("scheduler '" + name + "' is already registered");
  }
}

bool Registry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

SchedulerPtr Registry::make(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw InvalidArgument("unknown scheduler '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

Registry baseline_registry() {
  Registry r;
  r.add("heft", [] { return std::make_unique<Heft>(); });
  r.add("cpop", [] { return std::make_unique<Cpop>(); });
  r.add("pets", [] { return std::make_unique<Pets>(); });
  r.add("peft", [] { return std::make_unique<Peft>(); });
  r.add("sdbats", [] { return std::make_unique<Sdbats>(); });
  r.add("mct", [] { return std::make_unique<Mct>(); });
  r.add("random", [] { return std::make_unique<RandomOrder>(); });
  // Extension baselines beyond the paper's comparison set.
  r.add("dls", [] { return std::make_unique<Dls>(); });
  r.add("minmin", [] { return std::make_unique<MinMin>(); });
  r.add("maxmin", [] { return std::make_unique<MaxMin>(); });
  r.add("dheft", [] { return std::make_unique<Dheft>(); });
  r.add("genetic", [] { return std::make_unique<Genetic>(); });
  r.add("lookahead", [] { return std::make_unique<LookaheadHeft>(); });
  return r;
}

}  // namespace hdlts::sched
