// Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu, TPDS 2002).
//
// Phase 1 ranks tasks by upward rank computed from mean execution and mean
// communication costs; phase 2 walks the static list in decreasing rank and
// places each task on the processor minimizing its EFT, using the
// insertion-based policy. O(V^2 * P).
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Heft final : public Scheduler {
 public:
  /// `insertion` toggles the idle-slot insertion policy (on in the paper).
  explicit Heft(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "heft"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
