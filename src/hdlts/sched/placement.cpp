#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

PlacementChoice eft_on(const sim::Problem& problem,
                       const sim::Schedule& schedule, graph::TaskId task,
                       platform::ProcId proc, bool insertion) {
  return eft_on(sim::LegacyView(problem), schedule, task, proc, insertion);
}

std::vector<double> eft_vector(const sim::Problem& problem,
                               const sim::Schedule& schedule,
                               graph::TaskId task, bool insertion) {
  const auto& procs = problem.procs();
  std::vector<double> out;
  out.reserve(procs.size());
  for (const platform::ProcId p : procs) {
    out.push_back(eft_on(problem, schedule, task, p, insertion).eft);
  }
  return out;
}

PlacementChoice best_eft(const sim::Problem& problem,
                         const sim::Schedule& schedule, graph::TaskId task,
                         bool insertion) {
  return best_eft(sim::LegacyView(problem), schedule, task, insertion);
}

void commit(sim::Schedule& schedule, graph::TaskId task,
            const PlacementChoice& choice) {
  schedule.place(task, choice.proc, choice.est, choice.eft);
}

}  // namespace hdlts::sched
