#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

PlacementChoice eft_on(const sim::Problem& problem,
                       const sim::Schedule& schedule, graph::TaskId task,
                       platform::ProcId proc, bool insertion) {
  const double ready = schedule.ready_time(problem, task, proc);
  const double duration = problem.exec_time(task, proc);
  const double est = schedule.earliest_start(proc, ready, duration, insertion);
  return {proc, est, est + duration};
}

std::vector<double> eft_vector(const sim::Problem& problem,
                               const sim::Schedule& schedule,
                               graph::TaskId task, bool insertion) {
  const auto& procs = problem.procs();
  std::vector<double> out;
  out.reserve(procs.size());
  for (const platform::ProcId p : procs) {
    out.push_back(eft_on(problem, schedule, task, p, insertion).eft);
  }
  return out;
}

PlacementChoice best_eft(const sim::Problem& problem,
                         const sim::Schedule& schedule, graph::TaskId task,
                         bool insertion) {
  PlacementChoice best;
  for (const platform::ProcId p : problem.procs()) {
    const PlacementChoice c = eft_on(problem, schedule, task, p, insertion);
    if (best.proc == platform::kInvalidProc || c.eft < best.eft) best = c;
  }
  HDLTS_ENSURES(best.proc != platform::kInvalidProc);
  return best;
}

void commit(sim::Schedule& schedule, graph::TaskId task,
            const PlacementChoice& choice) {
  schedule.place(task, choice.proc, choice.est, choice.eft);
}

}  // namespace hdlts::sched
