// Min-Min and Max-Min, the classic batch-mode heuristics, lifted to DAGs:
// at every step each ready task is scored by its best (min over processors)
// EFT; Min-Min schedules the task with the *smallest* best-EFT first (keep
// machines busy with quick work), Max-Min the *largest* (push long poles
// early). Extension baselines — like HDLTS they work from a dynamic ready
// set, so they isolate the value of the PV priority itself.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class MinMin final : public Scheduler {
 public:
  explicit MinMin(bool insertion = true) : insertion_(insertion) {}
  std::string name() const override { return "minmin"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  bool insertion_;
};

class MaxMin final : public Scheduler {
 public:
  explicit MaxMin(bool insertion = true) : insertion_(insertion) {}
  std::string name() const override { return "maxmin"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
