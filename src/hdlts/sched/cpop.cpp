#include "hdlts/sched/cpop.hpp"

#include <algorithm>
#include <cmath>

#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

constexpr double kTieEps = 1e-9;

template <typename View>
void run_cpop(const View& view, util::ScratchArena& arena, bool insertion,
              sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto up = arena.alloc<double>(n);
  const auto down = arena.alloc<double>(n);
  upward_rank_mean(view, up);
  downward_rank_mean(view, down);
  const auto priority = arena.alloc<double>(n);
  for (graph::TaskId v = 0; v < n; ++v) priority[v] = up[v] + down[v];

  // Walk the critical path from the highest-priority entry task, always
  // following a child of (numerically) equal priority.
  const auto on_cp = arena.alloc<unsigned char>(n);
  std::fill(on_cp.begin(), on_cp.end(), 0);
  const auto entries = view.entry_tasks();
  graph::TaskId cursor = graph::kInvalidTask;
  double cp_len = -1.0;
  for (const graph::TaskId e : entries) {
    if (priority[e] > cp_len) {
      cp_len = priority[e];
      cursor = e;
    }
  }
  while (cursor != graph::kInvalidTask) {
    on_cp[cursor] = 1;
    graph::TaskId next = graph::kInvalidTask;
    double best = -1.0;
    for (const graph::Adjacent& c : view.children(cursor)) {
      if (std::abs(priority[c.task] - cp_len) <= kTieEps * (1.0 + cp_len) &&
          priority[c.task] > best) {
        best = priority[c.task];
        next = c.task;
      }
    }
    cursor = next;
  }

  // The critical-path processor minimizes the path's total execution time.
  platform::ProcId cp_proc = platform::kInvalidProc;
  double cp_cost = 0.0;
  for (const platform::ProcId p : view.procs()) {
    double total = 0.0;
    for (graph::TaskId v = 0; v < n; ++v) {
      if (on_cp[v] != 0) total += view.exec_time(v, p);
    }
    if (cp_proc == platform::kInvalidProc || total < cp_cost) {
      cp_cost = total;
      cp_proc = p;
    }
  }

  // Ready heap ordered by priority (ties: lower id for determinism). Arena-
  // backed push_heap/pop_heap — the same algorithm std::priority_queue runs,
  // so the service order is unchanged.
  auto cmp = [&priority](graph::TaskId a, graph::TaskId b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  };
  const auto heap = arena.alloc<graph::TaskId>(n);
  std::size_t heap_size = 0;
  auto push = [&](graph::TaskId v) {
    heap[heap_size++] = v;
    std::push_heap(heap.begin(), heap.begin() + heap_size, cmp);
  };
  auto pop = [&]() {
    std::pop_heap(heap.begin(), heap.begin() + heap_size, cmp);
    return heap[--heap_size];
  };

  const auto pending = arena.alloc<std::size_t>(n);
  for (graph::TaskId v = 0; v < n; ++v) {
    pending[v] = view.in_degree(v);
    if (pending[v] == 0) push(v);
  }

  while (heap_size > 0) {
    const graph::TaskId v = pop();
    const PlacementChoice choice =
        on_cp[v] != 0 ? eft_on(view, schedule, v, cp_proc, insertion)
                      : best_eft(view, schedule, v, insertion);
    commit(schedule, v, choice);
    for (const graph::Adjacent& c : view.children(v)) {
      if (--pending[c.task] == 0) push(c.task);
    }
  }
}

}  // namespace

sim::Schedule Cpop::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Cpop::schedule_into(const sim::Problem& problem,
                         sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_cpop(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_cpop(sim::LegacyView(problem), scratch(), insertion_, out);
  }
  obs::emit_schedule(trace_sink(), name(), out);
}

}  // namespace hdlts::sched
