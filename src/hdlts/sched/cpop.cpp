#include "hdlts/sched/cpop.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {
constexpr double kTieEps = 1e-9;
}

sim::Schedule Cpop::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto up = upward_rank_mean(problem);
  const auto down = downward_rank_mean(problem);
  std::vector<double> priority(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    priority[v] = up[v] + down[v];
  }

  // Walk the critical path from the highest-priority entry task, always
  // following a child of (numerically) equal priority.
  std::vector<bool> on_cp(g.num_tasks(), false);
  graph::TaskId cursor = graph::kInvalidTask;
  double cp_len = -1.0;
  for (const graph::TaskId e : g.entry_tasks()) {
    if (priority[e] > cp_len) {
      cp_len = priority[e];
      cursor = e;
    }
  }
  while (cursor != graph::kInvalidTask) {
    on_cp[cursor] = true;
    graph::TaskId next = graph::kInvalidTask;
    double best = -1.0;
    for (const graph::Adjacent& c : g.children(cursor)) {
      if (std::abs(priority[c.task] - cp_len) <= kTieEps * (1.0 + cp_len) &&
          priority[c.task] > best) {
        best = priority[c.task];
        next = c.task;
      }
    }
    cursor = next;
  }

  // The critical-path processor minimizes the path's total execution time.
  platform::ProcId cp_proc = platform::kInvalidProc;
  double cp_cost = 0.0;
  for (const platform::ProcId p : problem.procs()) {
    double total = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      if (on_cp[v]) total += problem.exec_time(v, p);
    }
    if (cp_proc == platform::kInvalidProc || total < cp_cost) {
      cp_cost = total;
      cp_proc = p;
    }
  }

  // Ready queue ordered by priority (ties: lower id for determinism).
  auto cmp = [&priority](graph::TaskId a, graph::TaskId b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  };
  std::priority_queue<graph::TaskId, std::vector<graph::TaskId>,
                      decltype(cmp)>
      ready(cmp);
  std::vector<std::size_t> pending(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push(v);
  }

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    const graph::TaskId v = ready.top();
    ready.pop();
    const PlacementChoice choice =
        on_cp[v] ? eft_on(problem, schedule, v, cp_proc, insertion_)
                 : best_eft(problem, schedule, v, insertion_);
    commit(schedule, v, choice);
    for (const graph::Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push(c.task);
    }
  }
  return schedule;
}

}  // namespace hdlts::sched
