#include "hdlts/sched/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_lookahead(const View& view, util::ScratchArena& arena, bool insertion,
                   sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto rank = arena.alloc<double>(n);
  upward_rank_mean(view, rank);
  const auto order = view.topo_order();
  const auto topo_pos = arena.alloc<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[order[i]] = i;

  const auto list = arena.alloc<graph::TaskId>(n);
  std::iota(list.begin(), list.end(), graph::TaskId{0});
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  for (const graph::TaskId v : list) {
    // Most critical child: the one with the highest upward rank.
    graph::TaskId crit = graph::kInvalidTask;
    for (const graph::Adjacent& c : view.children(v)) {
      if (crit == graph::kInvalidTask || rank[c.task] > rank[crit]) {
        crit = c.task;
      }
    }

    PlacementChoice best;
    double best_score = std::numeric_limits<double>::infinity();
    for (const platform::ProcId p : view.procs()) {
      const PlacementChoice cand = eft_on(view, schedule, v, p, insertion);
      double score = cand.eft;
      if (crit != graph::kInvalidTask) {
        // Rollout: if v ran on p, how early could the critical child finish?
        // Its other parents may be unplaced (they come later in rank order),
        // so this is an optimistic estimate — exactly the flavour of the
        // published lookahead.
        const double crit_data = view.edge_data(v, crit);
        double child_best = std::numeric_limits<double>::infinity();
        for (const platform::ProcId q : view.procs()) {
          double ready = cand.eft + view.comm_time_data(crit_data, p, q);
          for (const graph::Adjacent& parent : view.parents(crit)) {
            if (parent.task == v || !schedule.is_placed(parent.task)) {
              continue;
            }
            const sim::Placement& pl = schedule.placement(parent.task);
            ready = std::max(ready, pl.finish + view.comm_time_data(
                                                    parent.data, pl.proc, q));
          }
          // The child also needs q free; v occupying p is the only change
          // we can see — approximate with the current timeline plus v.
          double avail = schedule.proc_available(q);
          if (q == p) avail = std::max(avail, cand.eft);
          const double est = std::max(ready, avail);
          child_best = std::min(est + view.exec_time(crit, q), child_best);
        }
        score = child_best;
      }
      if (score < best_score || (score == best_score && cand.eft < best.eft)) {
        best_score = score;
        best = cand;
      }
    }
    commit(schedule, v, best);
  }
}

}  // namespace

sim::Schedule LookaheadHeft::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void LookaheadHeft::schedule_into(const sim::Problem& problem,
                                  sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_lookahead(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_lookahead(sim::LegacyView(problem), scratch(), insertion_, out);
  }
}

}  // namespace hdlts::sched
