#include "hdlts/sched/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

sim::Schedule LookaheadHeft::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto rank = upward_rank_mean(problem);
  const auto order = graph::topological_order(g);
  std::vector<std::size_t> topo_pos(problem.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;

  std::vector<graph::TaskId> list(problem.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : list) {
    // Most critical child: the one with the highest upward rank.
    graph::TaskId crit = graph::kInvalidTask;
    for (const graph::Adjacent& c : g.children(v)) {
      if (crit == graph::kInvalidTask || rank[c.task] > rank[crit]) {
        crit = c.task;
      }
    }

    PlacementChoice best;
    double best_score = std::numeric_limits<double>::infinity();
    for (const platform::ProcId p : problem.procs()) {
      const PlacementChoice cand =
          eft_on(problem, schedule, v, p, insertion_);
      double score = cand.eft;
      if (crit != graph::kInvalidTask) {
        // Rollout: if v ran on p, how early could the critical child finish?
        // Its other parents may be unplaced (they come later in rank order),
        // so this is an optimistic estimate — exactly the flavour of the
        // published lookahead.
        const double crit_data = g.edge_data(v, crit);
        double child_best = std::numeric_limits<double>::infinity();
        for (const platform::ProcId q : problem.procs()) {
          double ready =
              cand.eft + problem.comm_time_data(crit_data, p, q);
          for (const graph::Adjacent& parent : g.parents(crit)) {
            if (parent.task == v || !schedule.is_placed(parent.task)) {
              continue;
            }
            const sim::Placement& pl = schedule.placement(parent.task);
            ready = std::max(ready, pl.finish + problem.comm_time_data(
                                                    parent.data, pl.proc, q));
          }
          // The child also needs q free; v occupying p is the only change
          // we can see — approximate with the current timeline plus v.
          double avail = schedule.proc_available(q);
          if (q == p) avail = std::max(avail, cand.eft);
          const double est = std::max(ready, avail);
          child_best = std::min(est + problem.exec_time(crit, q), child_best);
        }
        score = child_best;
      }
      if (score < best_score ||
          (score == best_score && cand.eft < best.eft)) {
        best_score = score;
        best = cand;
      }
    }
    commit(schedule, v, best);
  }
  return schedule;
}

}  // namespace hdlts::sched
