#include "hdlts/sched/dls.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

namespace {

/// Static levels: SL(v) = meanW(v) + max over children SL(c) (no comm).
template <typename View>
void static_levels_view(const View& view, std::span<double> sl) {
  const auto order = view.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best = 0.0;
    for (const graph::Adjacent& c : view.children(v)) {
      best = std::max(best, sl[c.task]);
    }
    sl[v] = view.mean_cost(v) + best;
  }
}

template <typename View>
void run_dls(const View& view, util::ScratchArena& arena, bool insertion,
             sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto sl = arena.alloc<double>(n);
  static_levels_view(view, sl);

  const auto pending = arena.alloc<std::size_t>(n);
  const auto ready = arena.alloc<graph::TaskId>(n);
  std::size_t ready_size = 0;
  for (graph::TaskId v = 0; v < n; ++v) {
    pending[v] = view.in_degree(v);
    if (pending[v] == 0) ready[ready_size++] = v;
  }

  while (ready_size > 0) {
    // Exhaustive (ready task, processor) scan; ties go to the lower task id
    // then lower processor id for determinism.
    std::size_t best_idx = 0;
    PlacementChoice best_choice;
    double best_dl = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ready_size; ++i) {
      const graph::TaskId v = ready[i];
      const double mean_cost = view.mean_cost(v);
      for (const platform::ProcId p : view.procs()) {
        const PlacementChoice c = eft_on(view, schedule, v, p, insertion);
        const double delta = mean_cost - view.exec_time(v, p);
        const double dl = sl[v] - c.est + delta;
        if (dl > best_dl) {
          best_dl = dl;
          best_idx = i;
          best_choice = c;
        }
      }
    }
    const graph::TaskId v = ready[best_idx];
    // Order-preserving removal, like vector::erase in the original.
    std::copy(ready.begin() + best_idx + 1, ready.begin() + ready_size,
              ready.begin() + best_idx);
    --ready_size;
    commit(schedule, v, best_choice);
    for (const graph::Adjacent& c : view.children(v)) {
      if (--pending[c.task] == 0) ready[ready_size++] = c.task;
    }
  }
}

}  // namespace

std::vector<double> static_levels(const sim::Problem& problem) {
  std::vector<double> sl(problem.num_tasks(), 0.0);
  static_levels_view(sim::LegacyView(problem), sl);
  return sl;
}

sim::Schedule Dls::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Dls::schedule_into(const sim::Problem& problem, sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_dls(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_dls(sim::LegacyView(problem), scratch(), insertion_, out);
  }
}

}  // namespace hdlts::sched
