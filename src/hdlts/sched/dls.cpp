#include "hdlts/sched/dls.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

std::vector<double> static_levels(const sim::Problem& problem) {
  const auto& g = problem.graph();
  const auto order = graph::topological_order(g);
  std::vector<double> sl(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best = 0.0;
    for (const graph::Adjacent& c : g.children(v)) {
      best = std::max(best, sl[c.task]);
    }
    sl[v] = problem.costs().mean(v) + best;
  }
  return sl;
}

sim::Schedule Dls::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto sl = static_levels(problem);

  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push_back(v);
  }

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    // Exhaustive (ready task, processor) scan; ties go to the lower task id
    // then lower processor id for determinism.
    std::size_t best_idx = 0;
    PlacementChoice best_choice;
    double best_dl = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const graph::TaskId v = ready[i];
      const double mean_cost = problem.costs().mean(v);
      for (const platform::ProcId p : problem.procs()) {
        const PlacementChoice c = eft_on(problem, schedule, v, p, insertion_);
        const double delta = mean_cost - problem.exec_time(v, p);
        const double dl = sl[v] - c.est + delta;
        if (dl > best_dl) {
          best_dl = dl;
          best_idx = i;
          best_choice = c;
        }
      }
    }
    const graph::TaskId v = ready[best_idx];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_idx));
    commit(schedule, v, best_choice);
    for (const graph::Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push_back(c.task);
    }
  }
  return schedule;
}

}  // namespace hdlts::sched
