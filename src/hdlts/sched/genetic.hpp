// Genetic-algorithm scheduler (the paper's §I/§II "genetic-based scheduling
// heuristics" category: intensive search, good schedules, high cost).
//
// Chromosome = (per-task priority vector, per-task processor assignment).
// Decoding is a list schedule: among ready tasks pick the highest priority,
// place it on its assigned processor with insertion-based EST — so every
// chromosome decodes to a *valid* schedule and the search space covers all
// (topological order × assignment) combinations. Tournament selection,
// uniform crossover, Gaussian priority mutation + random processor
// reassignment, elitism. Deterministic for a given seed.
#pragma once

#include <cstdint>

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

struct GeneticOptions {
  std::size_t population = 40;
  std::size_t generations = 60;
  std::size_t tournament = 3;
  std::size_t elites = 2;
  double crossover_rate = 0.9;
  double priority_mutation_rate = 0.15;
  double proc_mutation_rate = 0.10;
  std::uint64_t seed = 1;

  void validate() const;
};

class Genetic final : public Scheduler {
 public:
  explicit Genetic(GeneticOptions options = {}) : options_(options) {
    options_.validate();
  }

  std::string name() const override { return "genetic"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  GeneticOptions options_;
};

}  // namespace hdlts::sched
