// Predict Earliest Finish Time (Arabnejad & Barbosa, TPDS 2014).
//
// Builds the Optimistic Cost Table (OCT); task priority is the mean OCT row,
// and processor selection minimizes the *optimistic* EFT, i.e.
// EFT(v,p) + OCT(v,p) — a one-step lookahead toward the exit task. Ready
// tasks are served highest rank first with insertion-based placement.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Peft final : public Scheduler {
 public:
  explicit Peft(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "peft"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
