#include "hdlts/sched/peft.hpp"

#include <algorithm>

#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_peft(const View& view, util::ScratchArena& arena, bool insertion,
              sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto& procs = view.procs();
  const std::size_t np = procs.size();
  const auto oct = arena.alloc<double>(n * np);
  oct_table(view, oct);
  const auto rank = arena.alloc<double>(n);
  oct_rank(view, oct, rank);

  // Ready heap: highest rank first, ties to the lower id (same service order
  // as the std::priority_queue this replaces — identical heap algorithm).
  auto cmp = [&rank](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];
    return a > b;
  };
  const auto heap = arena.alloc<graph::TaskId>(n);
  std::size_t heap_size = 0;
  auto push = [&](graph::TaskId v) {
    heap[heap_size++] = v;
    std::push_heap(heap.begin(), heap.begin() + heap_size, cmp);
  };
  auto pop = [&]() {
    std::pop_heap(heap.begin(), heap.begin() + heap_size, cmp);
    return heap[--heap_size];
  };

  const auto pending = arena.alloc<std::size_t>(n);
  for (graph::TaskId v = 0; v < n; ++v) {
    pending[v] = view.in_degree(v);
    if (pending[v] == 0) push(v);
  }

  while (heap_size > 0) {
    const graph::TaskId v = pop();
    // Minimize O_EFT(v,p) = EFT(v,p) + OCT(v,p).
    PlacementChoice best;
    double best_oeft = 0.0;
    for (std::size_t pi = 0; pi < np; ++pi) {
      const PlacementChoice c = eft_on(view, schedule, v, procs[pi], insertion);
      const double oeft = c.eft + oct[v * np + pi];
      if (best.proc == platform::kInvalidProc || oeft < best_oeft) {
        best = c;
        best_oeft = oeft;
      }
    }
    commit(schedule, v, best);
    for (const graph::Adjacent& c : view.children(v)) {
      if (--pending[c.task] == 0) push(c.task);
    }
  }
}

}  // namespace

sim::Schedule Peft::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Peft::schedule_into(const sim::Problem& problem,
                         sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_peft(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_peft(sim::LegacyView(problem), scratch(), insertion_, out);
  }
  obs::emit_schedule(trace_sink(), name(), out);
}

}  // namespace hdlts::sched
