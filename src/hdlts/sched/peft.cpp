#include "hdlts/sched/peft.hpp"

#include <queue>

#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

sim::Schedule Peft::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();
  const auto oct = oct_table(problem);
  const auto rank = oct_rank(problem, oct);

  auto cmp = [&rank](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];
    return a > b;
  };
  std::priority_queue<graph::TaskId, std::vector<graph::TaskId>,
                      decltype(cmp)>
      ready(cmp);
  std::vector<std::size_t> pending(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push(v);
  }

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    const graph::TaskId v = ready.top();
    ready.pop();
    // Minimize O_EFT(v,p) = EFT(v,p) + OCT(v,p).
    PlacementChoice best;
    double best_oeft = 0.0;
    for (std::size_t pi = 0; pi < np; ++pi) {
      const PlacementChoice c =
          eft_on(problem, schedule, v, procs[pi], insertion_);
      const double oeft = c.eft + oct[v * np + pi];
      if (best.proc == platform::kInvalidProc || oeft < best_oeft) {
        best = c;
        best_oeft = oeft;
      }
    }
    commit(schedule, v, best);
    for (const graph::Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push(c.task);
    }
  }
  return schedule;
}

}  // namespace hdlts::sched
