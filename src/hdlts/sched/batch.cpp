#include "hdlts/sched/batch.hpp"

#include <vector>

#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

namespace {

/// Shared loop; `take_max` = false for Min-Min, true for Max-Min.
sim::Schedule batch_schedule(const sim::Problem& problem, bool insertion,
                             bool take_max) {
  const auto& g = problem.graph();
  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push_back(v);
  }

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    std::size_t best_idx = 0;
    PlacementChoice best_choice;
    bool first = true;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const PlacementChoice c =
          best_eft(problem, schedule, ready[i], insertion);
      const bool better =
          take_max ? c.eft > best_choice.eft : c.eft < best_choice.eft;
      if (first || better) {
        first = false;
        best_idx = i;
        best_choice = c;
      }
    }
    const graph::TaskId v = ready[best_idx];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_idx));
    commit(schedule, v, best_choice);
    for (const graph::Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push_back(c.task);
    }
  }
  return schedule;
}

}  // namespace

sim::Schedule MinMin::schedule(const sim::Problem& problem) const {
  return batch_schedule(problem, insertion_, /*take_max=*/false);
}

sim::Schedule MaxMin::schedule(const sim::Problem& problem) const {
  return batch_schedule(problem, insertion_, /*take_max=*/true);
}

}  // namespace hdlts::sched
