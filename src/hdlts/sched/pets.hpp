// Performance Effective Task Scheduling (Ilavarasan, Thambidurai &
// Mahilmannan, ISPDC 2005).
//
// Tasks are grouped into precedence levels; within a level the priority is
// rank(v) = round(ACC + DTC + RPT) where ACC is the mean execution cost, DTC
// the total outbound communication cost, and RPT the highest rank among
// immediate predecessors. Tasks are placed level by level in decreasing rank
// on their min-EFT processor with the insertion policy.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Pets final : public Scheduler {
 public:
  explicit Pets(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "pets"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
