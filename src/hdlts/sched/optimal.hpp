// Exact branch-and-bound scheduler for small instances.
//
// Branches over every (ready task, processor) decision with insertion-based
// EST, which subsumes the schedules reachable by every list heuristic in
// this library (any topological processing order × any processor choice).
// Prunes with the min-cost critical-path lower bound. Exponential — guarded
// by a task-count limit — but invaluable for testing: on small graphs every
// heuristic's makespan must be >= the B&B optimum, and the optimum must be
// >= the critical-path bound.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class BranchAndBound final : public Scheduler {
 public:
  /// Refuses problems with more than `max_tasks` tasks (search is
  /// exponential; 12-14 is practical on one core).
  explicit BranchAndBound(std::size_t max_tasks = 13, bool insertion = true)
      : max_tasks_(max_tasks), insertion_(insertion) {}

  std::string name() const override { return "bnb"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

  /// Number of search nodes explored by the last schedule() call.
  std::size_t nodes_explored() const { return nodes_; }

 private:
  std::size_t max_tasks_;
  bool insertion_;
  mutable std::size_t nodes_ = 0;
};

}  // namespace hdlts::sched
