#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

std::vector<double> upward_rank_mean(const sim::Problem& problem) {
  std::vector<double> rank(problem.num_tasks(), 0.0);
  upward_rank_mean(sim::LegacyView(problem), rank);
  return rank;
}

std::vector<double> upward_rank_stddev(const sim::Problem& problem) {
  std::vector<double> rank(problem.num_tasks(), 0.0);
  upward_rank_stddev(sim::LegacyView(problem), rank);
  return rank;
}

std::vector<double> downward_rank_mean(const sim::Problem& problem) {
  std::vector<double> rank(problem.num_tasks(), 0.0);
  downward_rank_mean(sim::LegacyView(problem), rank);
  return rank;
}

std::vector<double> oct_table(const sim::Problem& problem) {
  std::vector<double> oct(problem.num_tasks() * problem.procs().size(), 0.0);
  oct_table(sim::LegacyView(problem), oct);
  return oct;
}

std::vector<double> oct_rank(const sim::Problem& problem,
                             const std::vector<double>& oct) {
  std::vector<double> rank(problem.num_tasks(), 0.0);
  oct_rank(sim::LegacyView(problem), oct, rank);
  return rank;
}

PetsRank pets_rank(const sim::Problem& problem) {
  const std::size_t n = problem.num_tasks();
  PetsRank out;
  out.acc.resize(n);
  out.dtc.resize(n);
  out.rpt.resize(n);
  out.rank.resize(n);
  pets_rank(sim::LegacyView(problem),
            PetsRankSpans{out.acc, out.dtc, out.rpt, out.rank});
  return out;
}

}  // namespace hdlts::sched
