#include "hdlts/sched/ranking.hpp"

#include <algorithm>
#include <limits>
#include <cmath>

#include "hdlts/graph/algorithms.hpp"

namespace hdlts::sched {

namespace {

/// Generic upward rank with a per-task weight vector.
std::vector<double> upward_rank(const sim::Problem& problem,
                                const std::vector<double>& weight) {
  const auto& g = problem.graph();
  const auto order = graph::topological_order(g);
  std::vector<double> rank(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best = 0.0;
    for (const graph::Adjacent& c : g.children(v)) {
      best = std::max(best, problem.mean_comm_data(c.data) + rank[c.task]);
    }
    rank[v] = weight[v] + best;
  }
  return rank;
}

}  // namespace

std::vector<double> upward_rank_mean(const sim::Problem& problem) {
  std::vector<double> weight(problem.num_tasks());
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    weight[v] = problem.costs().mean(v);
  }
  return upward_rank(problem, weight);
}

std::vector<double> upward_rank_stddev(const sim::Problem& problem) {
  std::vector<double> weight(problem.num_tasks());
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    weight[v] = problem.costs().stddev_sample(v);
  }
  return upward_rank(problem, weight);
}

std::vector<double> downward_rank_mean(const sim::Problem& problem) {
  const auto& g = problem.graph();
  const auto order = graph::topological_order(g);
  std::vector<double> rank(g.num_tasks(), 0.0);
  for (const graph::TaskId v : order) {
    for (const graph::Adjacent& p : g.parents(v)) {
      rank[v] = std::max(rank[v], rank[p.task] + problem.costs().mean(p.task) +
                                      problem.mean_comm_data(p.data));
    }
  }
  return rank;
}

std::vector<double> oct_table(const sim::Problem& problem) {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();
  const auto order = graph::topological_order(g);
  std::vector<double> oct(g.num_tasks() * np, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    for (std::size_t pi = 0; pi < np; ++pi) {
      double worst = 0.0;
      for (const graph::Adjacent& c : g.children(v)) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t qi = 0; qi < np; ++qi) {
          const double comm =
              pi == qi ? 0.0 : problem.mean_comm_data(c.data);
          best = std::min(best, oct[c.task * np + qi] +
                                    problem.exec_time(c.task, procs[qi]) +
                                    comm);
        }
        worst = std::max(worst, best);
      }
      oct[v * np + pi] = worst;
    }
  }
  return oct;
}

std::vector<double> oct_rank(const sim::Problem& problem,
                             const std::vector<double>& oct) {
  const std::size_t np = problem.procs().size();
  HDLTS_EXPECTS(oct.size() == problem.num_tasks() * np);
  std::vector<double> rank(problem.num_tasks(), 0.0);
  for (graph::TaskId v = 0; v < problem.num_tasks(); ++v) {
    double sum = 0.0;
    for (std::size_t pi = 0; pi < np; ++pi) sum += oct[v * np + pi];
    rank[v] = sum / static_cast<double>(np);
  }
  return rank;
}

PetsRank pets_rank(const sim::Problem& problem) {
  const auto& g = problem.graph();
  const std::size_t n = g.num_tasks();
  PetsRank out;
  out.acc.resize(n);
  out.dtc.resize(n);
  out.rpt.assign(n, 0.0);
  out.rank.resize(n);
  for (graph::TaskId v = 0; v < n; ++v) {
    out.acc[v] = problem.costs().mean(v);
    double dtc = 0.0;
    for (const graph::Adjacent& c : g.children(v)) {
      dtc += problem.mean_comm_data(c.data);
    }
    out.dtc[v] = dtc;
  }
  // RPT needs parent ranks, so ranks are computed in topological order.
  for (const graph::TaskId v : graph::topological_order(g)) {
    for (const graph::Adjacent& p : g.parents(v)) {
      out.rpt[v] = std::max(out.rpt[v], out.rank[p.task]);
    }
    out.rank[v] = std::round(out.acc[v] + out.dtc[v] + out.rpt[v]);
  }
  return out;
}

}  // namespace hdlts::sched
