// Simple reference schedulers used by the test suite and as sanity baselines:
// they bound the quality spectrum (a good heuristic must beat RandomOrder and
// should rarely lose to Mct by much).
#pragma once

#include <cstdint>

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

/// Minimum Completion Time: tasks in topological (id-stable) order, each on
/// its min-EFT processor with insertion.
class Mct final : public Scheduler {
 public:
  std::string name() const override { return "mct"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
};

/// Random ready-task order, min-EFT placement; deterministic per seed.
class RandomOrder final : public Scheduler {
 public:
  explicit RandomOrder(std::uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "random"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace hdlts::sched
