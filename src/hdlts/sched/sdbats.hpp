// Standard-Deviation-Based Algorithm for Task Scheduling (Munir et al.,
// IPDPSW 2013).
//
// Upward ranks are computed with the *standard deviation* of each task's
// execution-time row as the task weight (instead of HEFT's mean), so tasks
// whose cost varies most across the heterogeneous machines are prioritized.
// The entry task is duplicated on every processor at time zero (SDBATS's
// entry-duplication optimization), and the remaining tasks are placed in
// decreasing rank order on their min-EFT processor with insertion.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Sdbats final : public Scheduler {
 public:
  explicit Sdbats(bool insertion = true, bool entry_duplication = true)
      : insertion_(insertion), entry_duplication_(entry_duplication) {}

  std::string name() const override { return "sdbats"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
  bool entry_duplication_;
};

}  // namespace hdlts::sched
