// Scheduler interface shared by the HDLTS core and all baselines.
#pragma once

#include <memory>
#include <string>

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/arena.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::util {
class ThreadPool;
}

namespace hdlts::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short lower-case identifier ("heft", "hdlts", ...).
  virtual std::string name() const = 0;

  /// Produces a complete schedule for the problem. Implementations must only
  /// place work on problem.procs() (alive processors) and must return a
  /// schedule that passes sim::Schedule::validate.
  virtual sim::Schedule schedule(const sim::Problem& problem) const = 0;

  /// Like schedule() but reuses the caller's Schedule (reset, capacities
  /// kept). Ported schedulers override this as the real entry point — with a
  /// warmed scratch() and a recycled `out`, core::Hdlts reaches a
  /// zero-allocation steady state on the compiled path
  /// (tests/alloc_test.cpp). Default: delegates to schedule().
  virtual void schedule_into(const sim::Problem& problem,
                             sim::Schedule& out) const {
    out = schedule(problem);
  }

  /// Selects the problem view the ported schedulers read: the compiled flat
  /// CSR/W layout (default) or the legacy TaskGraph/CostTable reads. Both
  /// produce bit-identical schedules; the legacy path exists so
  /// bench/micro_layout can measure what the layout buys. Unported
  /// schedulers ignore the flag.
  bool use_compiled() const { return use_compiled_; }
  void set_use_compiled(bool use_compiled) { use_compiled_ = use_compiled; }

  /// Optional per-decision trace sink (obs::DecisionTrace). Null by default;
  /// instrumented schedulers emit structured events into it, the rest fall
  /// back to obs::emit_schedule's begin/placement/end replay. Attaching a
  /// sink never changes the produced schedule; with the sink null the
  /// compiled HDLTS path runs the exact uninstrumented instruction stream
  /// (the hot loop is templated on a compile-time sink policy).
  obs::DecisionTrace* trace_sink() const { return trace_sink_; }
  void set_trace_sink(obs::DecisionTrace* sink) { trace_sink_ = sink; }

  /// Optional borrowed worker pool for intra-problem parallelism (null by
  /// default: fully serial). Schedulers that support it (core::Hdlts) fan
  /// data-parallel phases out via util::ThreadPool::run_team above a size
  /// threshold; the schedule stays bit-identical to the serial path.
  /// The pool is borrowed — the caller keeps ownership and must keep it
  /// alive across schedule calls — and one pool must not be shared by
  /// schedulers running concurrently with each other.
  util::ThreadPool* thread_pool() const { return thread_pool_; }
  void set_thread_pool(util::ThreadPool* pool) { thread_pool_ = pool; }

 protected:
  /// Per-scheduler scratch memory, rewound at the top of every
  /// schedule()/schedule_into() call. Mutable for the same reason a memo
  /// cache would be; consequently a Scheduler instance must not be shared
  /// across threads mid-call (metrics::run_repetitions builds one per
  /// worker).
  util::ScratchArena& scratch() const { return scratch_; }

 private:
  bool use_compiled_ = true;
  obs::DecisionTrace* trace_sink_ = nullptr;
  util::ThreadPool* thread_pool_ = nullptr;
  mutable util::ScratchArena scratch_;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace hdlts::sched
