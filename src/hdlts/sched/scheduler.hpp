// Scheduler interface shared by the HDLTS core and all baselines.
#pragma once

#include <memory>
#include <string>

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short lower-case identifier ("heft", "hdlts", ...).
  virtual std::string name() const = 0;

  /// Produces a complete schedule for the problem. Implementations must only
  /// place work on problem.procs() (alive processors) and must return a
  /// schedule that passes sim::Schedule::validate.
  virtual sim::Schedule schedule(const sim::Problem& problem) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace hdlts::sched
