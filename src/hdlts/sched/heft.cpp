#include "hdlts/sched/heft.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_heft(const View& view, util::ScratchArena& arena, bool insertion,
              sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto rank = arena.alloc<double>(n);
  upward_rank_mean(view, rank);
  const auto order = view.topo_order();

  // Position of each task in topological order; used to break rank ties in a
  // precedence-safe way (zero-weight pseudo tasks can tie with a parent).
  const auto topo_pos = arena.alloc<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[order[i]] = i;

  const auto list = arena.alloc<graph::TaskId>(n);
  std::iota(list.begin(), list.end(), graph::TaskId{0});
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  for (const graph::TaskId v : list) {
    commit(schedule, v, best_eft(view, schedule, v, insertion));
  }
}

}  // namespace

sim::Schedule Heft::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Heft::schedule_into(const sim::Problem& problem,
                         sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_heft(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_heft(sim::LegacyView(problem), scratch(), insertion_, out);
  }
}

}  // namespace hdlts::sched
