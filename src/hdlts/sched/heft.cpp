#include "hdlts/sched/heft.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"
#include "hdlts/simd/kernels.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_heft(const View& view, util::ScratchArena& arena, bool insertion,
              sim::Schedule& schedule, obs::DecisionTrace* sink) {
  const std::size_t n = view.num_tasks();
  const auto rank = arena.alloc<double>(n);
  upward_rank_mean(view, rank);
  const auto order = view.topo_order();

  // Position of each task in topological order; used to break rank ties in a
  // precedence-safe way (zero-weight pseudo tasks can tie with a parent).
  const auto topo_pos = arena.alloc<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[order[i]] = i;

  const auto list = arena.alloc<graph::TaskId>(n);
  std::iota(list.begin(), list.end(), graph::TaskId{0});
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  if (sink != nullptr) {
    sink->on_begin({"heft", n, view.procs().size()});
  }
  // Processor selection goes through the SIMD argmin kernel: fill the EST/EFT
  // row for the alive processors, then take the first minimum — the same
  // index the strict-less scan in best_eft produces (EFTs are finite).
  const simd::Dispatch& simd_k = simd::active();
  const auto procs = view.procs();
  const std::size_t np = procs.size();
  const auto est_row = arena.alloc<double>(np);
  const auto eft_row = arena.alloc<double>(np);
  std::size_t step = 0;
  for (const graph::TaskId v : list) {
    for (std::size_t pi = 0; pi < np; ++pi) {
      const PlacementChoice c = eft_on(view, schedule, v, procs[pi], insertion);
      est_row[pi] = c.est;
      eft_row[pi] = c.eft;
    }
    const std::size_t bi = simd_k.argmin(eft_row.data(), np);
    const PlacementChoice choice{procs[bi], est_row[bi], eft_row[bi]};
    if (sink != nullptr) {
      obs::StepEvent ev;
      ev.step = step;
      ev.selected = v;
      ev.eft = eft_row;
      ev.chosen = choice.proc;
      ev.start = choice.est;
      ev.finish = choice.eft;
      sink->on_step(ev);
    }
    ++step;
    commit(schedule, v, choice);
    if (sink != nullptr) {
      sink->on_placement({v, choice.proc, choice.est, choice.eft, false});
    }
  }
  if (sink != nullptr) {
    obs::ScheduleEndEvent end;
    end.makespan = schedule.makespan();
    end.steps = step;
    sink->on_end(end);
  }
}

}  // namespace

sim::Schedule Heft::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Heft::schedule_into(const sim::Problem& problem,
                         sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_heft(problem.compiled(), scratch(), insertion_, out, trace_sink());
  } else {
    run_heft(sim::LegacyView(problem), scratch(), insertion_, out,
             trace_sink());
  }
}

}  // namespace hdlts::sched
