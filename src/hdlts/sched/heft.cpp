#include "hdlts/sched/heft.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

sim::Schedule Heft::schedule(const sim::Problem& problem) const {
  const auto rank = upward_rank_mean(problem);
  const auto order = graph::topological_order(problem.graph());

  // Position of each task in topological order; used to break rank ties in a
  // precedence-safe way (zero-weight pseudo tasks can tie with a parent).
  std::vector<std::size_t> topo_pos(problem.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;

  std::vector<graph::TaskId> list(problem.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(),
            [&](graph::TaskId a, graph::TaskId b) {
              if (rank[a] != rank[b]) return rank[a] > rank[b];
              return topo_pos[a] < topo_pos[b];
            });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : list) {
    commit(schedule, v, best_eft(problem, schedule, v, insertion_));
  }
  return schedule;
}

}  // namespace hdlts::sched
