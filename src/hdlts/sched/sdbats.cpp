#include "hdlts/sched/sdbats.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_sdbats(const View& view, util::ScratchArena& arena, bool insertion,
                bool entry_duplication, sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto rank = arena.alloc<double>(n);
  upward_rank_stddev(view, rank);
  const auto order = view.topo_order();
  const auto topo_pos = arena.alloc<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[order[i]] = i;

  const auto list = arena.alloc<graph::TaskId>(n);
  std::iota(list.begin(), list.end(), graph::TaskId{0});
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  // Entry duplication: run the entry task on every processor from t = 0, so
  // each child sees its input locally. Only applies to single-entry graphs
  // (generators normalize multi-entry workflows with a pseudo task).
  const auto entries = view.entry_tasks();
  if (entry_duplication && entries.size() == 1 && n > 1) {
    const graph::TaskId entry = entries[0];
    const PlacementChoice primary = best_eft(view, schedule, entry, false);
    commit(schedule, entry, primary);
    for (const platform::ProcId p : view.procs()) {
      if (p == primary.proc) continue;
      schedule.place_duplicate(entry, p, 0.0, view.exec_time(entry, p));
    }
  }

  for (const graph::TaskId v : list) {
    if (schedule.is_placed(v)) continue;  // entry already handled
    commit(schedule, v, best_eft(view, schedule, v, insertion));
  }
}

}  // namespace

sim::Schedule Sdbats::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Sdbats::schedule_into(const sim::Problem& problem,
                           sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_sdbats(problem.compiled(), scratch(), insertion_, entry_duplication_,
               out);
  } else {
    run_sdbats(sim::LegacyView(problem), scratch(), insertion_,
               entry_duplication_, out);
  }
  obs::emit_schedule(trace_sink(), name(), out);
}

}  // namespace hdlts::sched
