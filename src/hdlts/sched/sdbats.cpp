#include "hdlts/sched/sdbats.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

sim::Schedule Sdbats::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto rank = upward_rank_stddev(problem);
  const auto order = graph::topological_order(g);
  std::vector<std::size_t> topo_pos(problem.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;

  std::vector<graph::TaskId> list(problem.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());

  // Entry duplication: run the entry task on every processor from t = 0, so
  // each child sees its input locally. Only applies to single-entry graphs
  // (generators normalize multi-entry workflows with a pseudo task).
  const auto entries = g.entry_tasks();
  if (entry_duplication_ && entries.size() == 1 && problem.num_tasks() > 1) {
    const graph::TaskId entry = entries.front();
    const PlacementChoice primary = best_eft(problem, schedule, entry, false);
    commit(schedule, entry, primary);
    for (const platform::ProcId p : problem.procs()) {
      if (p == primary.proc) continue;
      schedule.place_duplicate(entry, p, 0.0, problem.exec_time(entry, p));
    }
  }

  for (const graph::TaskId v : list) {
    if (schedule.is_placed(v)) continue;  // entry already handled
    commit(schedule, v, best_eft(problem, schedule, v, insertion_));
  }
  return schedule;
}

}  // namespace hdlts::sched
