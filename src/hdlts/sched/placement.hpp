// Processor-selection helpers shared by all EFT-based schedulers.
//
// The templates take any problem view satisfying the sim/views.hpp
// interface (sim::CompiledProblem or sim::LegacyView); the sim::Problem
// overloads below wrap LegacyView for the schedulers that have not been
// ported to the dual-path layout.
#pragma once

#include <vector>

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/sim/views.hpp"

namespace hdlts::sched {

struct PlacementChoice {
  platform::ProcId proc = platform::kInvalidProc;
  double est = 0.0;
  double eft = 0.0;
};

/// EST/EFT of `task` on processor `proc` given the current partial schedule
/// (Definitions 6 and 7). All parents must be placed.
template <typename View>
PlacementChoice eft_on(const View& view, const sim::Schedule& schedule,
                       graph::TaskId task, platform::ProcId proc,
                       bool insertion) {
  const double ready = schedule.ready_time(view.ready_base(), task, proc);
  const double duration = view.exec_time(task, proc);
  const double est = schedule.earliest_start(proc, ready, duration, insertion);
  return {proc, est, est + duration};
}

/// The processor minimizing EFT (ties broken toward the lower processor id).
template <typename View>
PlacementChoice best_eft(const View& view, const sim::Schedule& schedule,
                         graph::TaskId task, bool insertion) {
  PlacementChoice best;
  for (const platform::ProcId p : view.procs()) {
    const PlacementChoice c = eft_on(view, schedule, task, p, insertion);
    if (best.proc == platform::kInvalidProc || c.eft < best.eft) best = c;
  }
  HDLTS_ENSURES(best.proc != platform::kInvalidProc);
  return best;
}

PlacementChoice eft_on(const sim::Problem& problem,
                       const sim::Schedule& schedule, graph::TaskId task,
                       platform::ProcId proc, bool insertion);

/// EFT of `task` on every alive processor, in problem.procs() order. This is
/// the vector whose sample standard deviation is the HDLTS penalty value.
std::vector<double> eft_vector(const sim::Problem& problem,
                               const sim::Schedule& schedule,
                               graph::TaskId task, bool insertion);

PlacementChoice best_eft(const sim::Problem& problem,
                         const sim::Schedule& schedule, graph::TaskId task,
                         bool insertion);

/// Places `task` at `choice` (primary placement).
void commit(sim::Schedule& schedule, graph::TaskId task,
            const PlacementChoice& choice);

}  // namespace hdlts::sched
