// Processor-selection helpers shared by all EFT-based schedulers.
#pragma once

#include <vector>

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::sched {

struct PlacementChoice {
  platform::ProcId proc = platform::kInvalidProc;
  double est = 0.0;
  double eft = 0.0;
};

/// EST/EFT of `task` on processor `proc` given the current partial schedule
/// (Definitions 6 and 7). All parents must be placed.
PlacementChoice eft_on(const sim::Problem& problem,
                       const sim::Schedule& schedule, graph::TaskId task,
                       platform::ProcId proc, bool insertion);

/// EFT of `task` on every alive processor, in problem.procs() order. This is
/// the vector whose sample standard deviation is the HDLTS penalty value.
std::vector<double> eft_vector(const sim::Problem& problem,
                               const sim::Schedule& schedule,
                               graph::TaskId task, bool insertion);

/// The processor minimizing EFT (ties broken toward the lower processor id).
PlacementChoice best_eft(const sim::Problem& problem,
                         const sim::Schedule& schedule, graph::TaskId task,
                         bool insertion);

/// Places `task` at `choice` (primary placement).
void commit(sim::Schedule& schedule, graph::TaskId task,
            const PlacementChoice& choice);

}  // namespace hdlts::sched
