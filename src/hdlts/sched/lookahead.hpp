// Lookahead HEFT (after Bittencourt, Sakellariou & Madeira, PDP 2010):
// HEFT's ranking, but processor selection minimizes not the task's own EFT
// but the estimated EFT of its *most critical child* (highest upward rank)
// if that child were scheduled next — a one-step rollout. Falls back to
// plain EFT for tasks with no children. Quadratically more expensive than
// HEFT per decision; included as an extension baseline for the micro
// benchmark's cost/quality spectrum.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class LookaheadHeft final : public Scheduler {
 public:
  explicit LookaheadHeft(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "lookahead"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
