#include "hdlts/sched/optimal.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/heft.hpp"
#include "hdlts/sched/placement.hpp"

namespace hdlts::sched {

namespace {

struct SearchState {
  const sim::Problem* problem = nullptr;
  bool insertion = true;
  std::vector<double> cp_below;  ///< min-cost critical path from each task
  std::vector<std::size_t> pending;
  std::vector<graph::TaskId> ready;
  sim::Schedule schedule;
  double best = std::numeric_limits<double>::infinity();
  sim::Schedule best_schedule;
  std::size_t nodes = 0;

  SearchState(const sim::Problem& p, bool ins)
      : problem(&p),
        insertion(ins),
        schedule(p.num_tasks(), p.num_procs()),
        best_schedule(p.num_tasks(), p.num_procs()) {}

  /// Lower bound on the completion time of any extension of the current
  /// partial schedule: every unplaced task still needs its min-cost path to
  /// an exit, starting no earlier than its placed parents finish.
  double lower_bound() const {
    const auto& g = problem->graph();
    double bound = schedule.makespan();
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      if (schedule.is_placed(v)) continue;
      double start_lb = 0.0;
      for (const graph::Adjacent& p : g.parents(v)) {
        if (schedule.is_placed(p.task)) {
          start_lb = std::max(start_lb, schedule.finish_time(p.task));
        }
      }
      bound = std::max(bound, start_lb + cp_below[v]);
    }
    return bound;
  }

  void dfs() {
    ++nodes;
    if (ready.empty()) {
      const double makespan = schedule.makespan();
      if (makespan < best) {
        best = makespan;
        best_schedule = schedule;
      }
      return;
    }
    if (lower_bound() >= best) return;  // prune

    const auto& g = problem->graph();
    // Copy the ready set: we mutate it per branch.
    const std::vector<graph::TaskId> snapshot = ready;
    for (const graph::TaskId v : snapshot) {
      ready.erase(std::find(ready.begin(), ready.end(), v));
      std::vector<graph::TaskId> unlocked;
      for (const graph::Adjacent& c : g.children(v)) {
        if (--pending[c.task] == 0) {
          unlocked.push_back(c.task);
          ready.push_back(c.task);
        }
      }
      for (const platform::ProcId p : problem->procs()) {
        const PlacementChoice choice =
            eft_on(*problem, schedule, v, p, insertion);
        // Placing v here already reaches the incumbent; extensions only grow.
        if (choice.eft >= best) continue;
        sim::Schedule saved = schedule;
        schedule.place(v, choice.proc, choice.est, choice.eft);
        dfs();
        schedule = std::move(saved);
      }
      for (const graph::TaskId u : unlocked) {
        ready.erase(std::find(ready.begin(), ready.end(), u));
      }
      for (const graph::Adjacent& c : g.children(v)) ++pending[c.task];
      ready.push_back(v);
    }
    // Restore the original ordering is unnecessary: ready is a set.
  }
};

}  // namespace

sim::Schedule BranchAndBound::schedule(const sim::Problem& problem) const {
  if (problem.num_tasks() > max_tasks_) {
    throw InvalidArgument(
        "branch-and-bound refuses " + std::to_string(problem.num_tasks()) +
        " tasks (limit " + std::to_string(max_tasks_) +
        "); it is exponential by design");
  }
  SearchState state(problem, insertion_);
  const auto& g = problem.graph();

  // cp_below via reverse topological order (min execution costs, no comm).
  state.cp_below.assign(g.num_tasks(), 0.0);
  const auto order = graph::topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best_child = 0.0;
    for (const graph::Adjacent& c : g.children(v)) {
      best_child = std::max(best_child, state.cp_below[c.task]);
    }
    state.cp_below[v] = problem.costs().min(v) + best_child;
  }

  state.pending.resize(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    state.pending[v] = g.in_degree(v);
    if (state.pending[v] == 0) state.ready.push_back(v);
  }

  // Seed the incumbent with HEFT so pruning bites immediately.
  const sim::Schedule seed = Heft(insertion_).schedule(problem);
  state.best = seed.makespan();
  state.best_schedule = seed;

  state.dfs();
  nodes_ = state.nodes;
  HDLTS_ENSURES(state.best_schedule.num_placed() == problem.num_tasks());
  return state.best_schedule;
}

}  // namespace hdlts::sched
