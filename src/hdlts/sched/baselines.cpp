#include "hdlts/sched/baselines.hpp"

#include <vector>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/util/rng.hpp"

namespace hdlts::sched {

sim::Schedule Mct::schedule(const sim::Problem& problem) const {
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : graph::topological_order(problem.graph())) {
    commit(schedule, v, best_eft(problem, schedule, v, /*insertion=*/true));
  }
  return schedule;
}

sim::Schedule RandomOrder::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  util::Rng rng(seed_);
  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push_back(v);
  }
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1));
    const graph::TaskId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    commit(schedule, v, best_eft(problem, schedule, v, /*insertion=*/true));
    for (const graph::Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push_back(c.task);
    }
  }
  return schedule;
}

}  // namespace hdlts::sched
