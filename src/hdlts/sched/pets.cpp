#include "hdlts/sched/pets.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

sim::Schedule Pets::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto level = graph::precedence_levels(g);
  const auto ranks = pets_rank(problem);

  // Level-major order; inside a level sort by decreasing rank, then by
  // increasing mean cost (favouring the cheaper task, per the PETS paper's
  // tie rule), then by id for determinism. Level-major order is
  // precedence-safe because every parent sits on a strictly lower level.
  std::vector<graph::TaskId> list(g.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (level[a] != level[b]) return level[a] < level[b];
    if (ranks.rank[a] != ranks.rank[b]) return ranks.rank[a] > ranks.rank[b];
    if (ranks.acc[a] != ranks.acc[b]) return ranks.acc[a] < ranks.acc[b];
    return a < b;
  });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : list) {
    commit(schedule, v, best_eft(problem, schedule, v, insertion_));
  }
  return schedule;
}

}  // namespace hdlts::sched
