#include "hdlts/sched/pets.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

template <typename View>
void run_pets(const View& view, util::ScratchArena& arena, bool insertion,
              sim::Schedule& schedule) {
  const std::size_t n = view.num_tasks();
  const auto level = view.levels();
  const auto acc = arena.alloc<double>(n);
  const auto dtc = arena.alloc<double>(n);
  const auto rpt = arena.alloc<double>(n);
  const auto rank = arena.alloc<double>(n);
  pets_rank(view, PetsRankSpans{acc, dtc, rpt, rank});

  // Level-major order; inside a level sort by decreasing rank, then by
  // increasing mean cost (favouring the cheaper task, per the PETS paper's
  // tie rule), then by id for determinism. Level-major order is
  // precedence-safe because every parent sits on a strictly lower level.
  const auto list = arena.alloc<graph::TaskId>(n);
  std::iota(list.begin(), list.end(), graph::TaskId{0});
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (level[a] != level[b]) return level[a] < level[b];
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    if (acc[a] != acc[b]) return acc[a] < acc[b];
    return a < b;
  });

  for (const graph::TaskId v : list) {
    commit(schedule, v, best_eft(view, schedule, v, insertion));
  }
}

}  // namespace

sim::Schedule Pets::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Pets::schedule_into(const sim::Problem& problem,
                         sim::Schedule& out) const {
  out.reset(problem.num_tasks(), problem.num_procs());
  scratch().reset();
  if (use_compiled()) {
    run_pets(problem.compiled(), scratch(), insertion_, out);
  } else {
    run_pets(sim::LegacyView(problem), scratch(), insertion_, out);
  }
  obs::emit_schedule(trace_sink(), name(), out);
}

}  // namespace hdlts::sched
