// Task-ranking computations shared by the list schedulers.
//
// All ranks use processor-independent mean values (mean execution time and
// data volume / mean bandwidth), following the conventions of the original
// publications (HEFT/CPOP: Topcuoglu et al. 2002, PEFT: Arabnejad & Barbosa
// 2014, PETS: Ilavarasan et al. 2005, SDBATS: Munir et al. 2013).
#pragma once

#include <vector>

#include "hdlts/sim/problem.hpp"

namespace hdlts::sched {

/// HEFT upward rank: rank_u(v) = mean_W(v) + max over children c of
/// (mean_comm(v,c) + rank_u(c)); exit tasks have rank_u = mean_W.
std::vector<double> upward_rank_mean(const sim::Problem& problem);

/// CPOP downward rank: rank_d(v) = max over parents u of
/// (rank_d(u) + mean_W(u) + mean_comm(u,v)); entry tasks have rank_d = 0.
std::vector<double> downward_rank_mean(const sim::Problem& problem);

/// SDBATS upward rank: like upward_rank_mean but the task weight is the
/// sample standard deviation of its execution-time row instead of the mean.
std::vector<double> upward_rank_stddev(const sim::Problem& problem);

/// PEFT Optimistic Cost Table: OCT(v,p) = max over children c of
/// min over q of (OCT(c,q) + W(c,q) + [p != q] * mean_comm(v,c));
/// exit rows are zero. Returned row-major: oct[v * P + p] with P the number
/// of *alive* processors, indexed by position in problem.procs().
std::vector<double> oct_table(const sim::Problem& problem);

/// Mean of the OCT row of each task — the PEFT priority (rank_oct).
std::vector<double> oct_rank(const sim::Problem& problem,
                             const std::vector<double>& oct);

/// PETS attributes per task.
struct PetsRank {
  std::vector<double> acc;   ///< Average computation cost (mean W row).
  std::vector<double> dtc;   ///< Data transfer cost: sum of out-edge comm.
  std::vector<double> rpt;   ///< Highest rank among immediate predecessors.
  std::vector<double> rank;  ///< round(acc + dtc + rpt).
};
PetsRank pets_rank(const sim::Problem& problem);

}  // namespace hdlts::sched
