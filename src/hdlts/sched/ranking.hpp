// Task-ranking computations shared by the list schedulers.
//
// All ranks use processor-independent mean values (mean execution time and
// data volume / mean bandwidth), following the conventions of the original
// publications (HEFT/CPOP: Topcuoglu et al. 2002, PEFT: Arabnejad & Barbosa
// 2014, PETS: Ilavarasan et al. 2005, SDBATS: Munir et al. 2013).
//
// Each rank is a template over the sim/views.hpp problem-view interface
// writing into caller-provided storage (the ported schedulers carve it from
// their ScratchArena), instantiated for both sim::CompiledProblem and
// sim::LegacyView; the vector-returning sim::Problem overloads wrap the
// legacy view for unported callers and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/views.hpp"

namespace hdlts::sched {

/// HEFT upward rank: rank_u(v) = weight(v) + max over children c of
/// (mean_comm(v,c) + rank_u(c)); exit tasks have rank_u = weight.
/// `weight(v)` is the task's mean cost for HEFT, its cost stddev for SDBATS.
template <typename View, typename WeightFn>
void upward_rank(const View& view, WeightFn weight, std::span<double> rank) {
  const auto order = view.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    double best = 0.0;
    for (const graph::Adjacent& c : view.children(v)) {
      best = std::max(best, view.mean_comm_data(c.data) + rank[c.task]);
    }
    rank[v] = weight(v) + best;
  }
}

template <typename View>
void upward_rank_mean(const View& view, std::span<double> rank) {
  upward_rank(view, [&](graph::TaskId v) { return view.mean_cost(v); }, rank);
}

template <typename View>
void upward_rank_stddev(const View& view, std::span<double> rank) {
  upward_rank(view, [&](graph::TaskId v) { return view.stddev_cost(v); },
              rank);
}

/// CPOP downward rank: rank_d(v) = max over parents u of
/// (rank_d(u) + mean_W(u) + mean_comm(u,v)); entry tasks have rank_d = 0.
template <typename View>
void downward_rank_mean(const View& view, std::span<double> rank) {
  const auto order = view.topo_order();
  std::fill(rank.begin(), rank.end(), 0.0);
  for (const graph::TaskId v : order) {
    for (const graph::Adjacent& p : view.parents(v)) {
      rank[v] = std::max(rank[v], rank[p.task] + view.mean_cost(p.task) +
                                      view.mean_comm_data(p.data));
    }
  }
}

/// PEFT Optimistic Cost Table: OCT(v,p) = max over children c of
/// min over q of (OCT(c,q) + W(c,q) + [p != q] * mean_comm(v,c));
/// exit rows are zero. Row-major: oct[v * np + pi] with np the number of
/// *alive* processors, indexed by position in view.procs().
template <typename View>
void oct_table(const View& view, std::span<double> oct) {
  const auto& procs = view.procs();
  const std::size_t np = procs.size();
  const auto order = view.topo_order();
  std::fill(oct.begin(), oct.end(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::TaskId v = *it;
    for (std::size_t pi = 0; pi < np; ++pi) {
      double worst = 0.0;
      for (const graph::Adjacent& c : view.children(v)) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t qi = 0; qi < np; ++qi) {
          const double comm = pi == qi ? 0.0 : view.mean_comm_data(c.data);
          best = std::min(best, oct[c.task * np + qi] +
                                    view.exec_time(c.task, procs[qi]) + comm);
        }
        worst = std::max(worst, best);
      }
      oct[v * np + pi] = worst;
    }
  }
}

/// Mean of the OCT row of each task — the PEFT priority (rank_oct).
template <typename View>
void oct_rank(const View& view, std::span<const double> oct,
              std::span<double> rank) {
  const std::size_t np = view.procs().size();
  HDLTS_EXPECTS(oct.size() == view.num_tasks() * np);
  for (graph::TaskId v = 0; v < view.num_tasks(); ++v) {
    double sum = 0.0;
    for (std::size_t pi = 0; pi < np; ++pi) sum += oct[v * np + pi];
    rank[v] = sum / static_cast<double>(np);
  }
}

/// PETS attributes per task, written into caller storage.
struct PetsRankSpans {
  std::span<double> acc;   ///< Average computation cost (mean W row).
  std::span<double> dtc;   ///< Data transfer cost: sum of out-edge comm.
  std::span<double> rpt;   ///< Highest rank among immediate predecessors.
  std::span<double> rank;  ///< round(acc + dtc + rpt).
};

template <typename View>
void pets_rank(const View& view, PetsRankSpans out) {
  const std::size_t n = view.num_tasks();
  std::fill(out.rpt.begin(), out.rpt.end(), 0.0);
  for (graph::TaskId v = 0; v < n; ++v) {
    out.acc[v] = view.mean_cost(v);
    double dtc = 0.0;
    for (const graph::Adjacent& c : view.children(v)) {
      dtc += view.mean_comm_data(c.data);
    }
    out.dtc[v] = dtc;
  }
  // RPT needs parent ranks, so ranks are computed in topological order.
  const auto order = view.topo_order();
  for (const graph::TaskId v : order) {
    for (const graph::Adjacent& p : view.parents(v)) {
      out.rpt[v] = std::max(out.rpt[v], out.rank[p.task]);
    }
    out.rank[v] = std::round(out.acc[v] + out.dtc[v] + out.rpt[v]);
  }
}

// --- sim::Problem wrappers (legacy view, vector-returning) ---

std::vector<double> upward_rank_mean(const sim::Problem& problem);
std::vector<double> downward_rank_mean(const sim::Problem& problem);
std::vector<double> upward_rank_stddev(const sim::Problem& problem);
std::vector<double> oct_table(const sim::Problem& problem);
std::vector<double> oct_rank(const sim::Problem& problem,
                             const std::vector<double>& oct);

/// PETS attributes per task (owning form).
struct PetsRank {
  std::vector<double> acc;
  std::vector<double> dtc;
  std::vector<double> rpt;
  std::vector<double> rank;
};
PetsRank pets_rank(const sim::Problem& problem);

}  // namespace hdlts::sched
