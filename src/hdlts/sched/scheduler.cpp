#include "hdlts/sched/scheduler.hpp"

// Interface-only translation unit; anchors the vtable.

namespace hdlts::sched {}  // namespace hdlts::sched
