// Name-indexed scheduler factory. The baseline set registers itself here;
// hdlts::core::default_registry() adds the HDLTS variants on top.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Registry {
 public:
  using Factory = std::function<SchedulerPtr()>;

  /// Registers a factory; throws InvalidArgument on duplicate names.
  void add(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// Creates a scheduler; throws InvalidArgument for unknown names.
  SchedulerPtr make(const std::string& name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// A registry containing the baseline list schedulers evaluated by the paper
/// (heft, cpop, pets, peft, sdbats) plus the mct/random sanity baselines.
Registry baseline_registry();

}  // namespace hdlts::sched
