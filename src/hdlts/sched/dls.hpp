// Dynamic Level Scheduling (Sih & Lee, TPDS 1993) — the classic *dynamic*
// list scheduler: at every step pick the (ready task, processor) pair with
// the highest dynamic level
//     DL(v, p) = SL(v) - EST(v, p) + Delta(v, p),
// where SL is the static level (longest mean-execution path to an exit,
// communication excluded) and Delta(v, p) = meanW(v) - W(v, p) rewards
// placing a task on a processor that is fast *for it*. Included as an
// extension baseline: like HDLTS it re-evaluates priorities dynamically,
// unlike HDLTS it scores (task, processor) pairs jointly.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Dls final : public Scheduler {
 public:
  explicit Dls(bool insertion = false) : insertion_(insertion) {}

  std::string name() const override { return "dls"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

/// Static levels: SL(v) = meanW(v) + max over children SL(c) (no comm).
std::vector<double> static_levels(const sim::Problem& problem);

}  // namespace hdlts::sched
