#include "hdlts/sched/genetic.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/sched/heft.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"
#include "hdlts/util/rng.hpp"

namespace hdlts::sched {

void GeneticOptions::validate() const {
  if (population < 2) throw InvalidArgument("GA population must be >= 2");
  if (generations == 0) throw InvalidArgument("GA needs >= 1 generation");
  if (tournament == 0 || tournament > population) {
    throw InvalidArgument("GA tournament size must be in [1, population]");
  }
  if (elites >= population) {
    throw InvalidArgument("GA elites must be < population");
  }
  for (const double rate :
       {crossover_rate, priority_mutation_rate, proc_mutation_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      throw InvalidArgument("GA rates must be in [0, 1]");
    }
  }
}

namespace {

struct Chromosome {
  std::vector<double> priority;          // per task
  std::vector<platform::ProcId> assign;  // per task
  double makespan = std::numeric_limits<double>::infinity();
};

/// Decodes a chromosome into a schedule: ready-list by priority, pinned
/// processor per task, insertion EST.
sim::Schedule decode(const sim::Problem& problem, const Chromosome& c) {
  const auto& g = problem.graph();
  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<graph::TaskId> ready;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push_back(v);
  }
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  while (!ready.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (c.priority[ready[i]] > c.priority[ready[pick]] ||
          (c.priority[ready[i]] == c.priority[ready[pick]] &&
           ready[i] < ready[pick])) {
        pick = i;
      }
    }
    const graph::TaskId v = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    commit(schedule, v,
           eft_on(problem, schedule, v, c.assign[v], /*insertion=*/true));
    for (const graph::Adjacent& child : g.children(v)) {
      if (--pending[child.task] == 0) ready.push_back(child.task);
    }
  }
  return schedule;
}

}  // namespace

sim::Schedule Genetic::schedule(const sim::Problem& problem) const {
  const std::size_t n = problem.num_tasks();
  const auto& procs = problem.procs();
  util::Rng rng(options_.seed);

  auto random_proc = [&]() {
    return procs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(procs.size()) - 1))];
  };
  auto evaluate = [&](Chromosome& c) {
    c.makespan = decode(problem, c).makespan();
  };

  // Initial population: random chromosomes plus one greedy individual
  // (every task on its min-mean-cost processor) to anchor quality.
  std::vector<Chromosome> population(options_.population);
  for (Chromosome& c : population) {
    c.priority.resize(n);
    c.assign.resize(n);
    for (graph::TaskId v = 0; v < n; ++v) {
      c.priority[v] = rng.uniform();
      c.assign[v] = random_proc();
    }
    evaluate(c);
  }
  {
    // Greedy individual: every task on its min-cost processor.
    Chromosome& greedy = population.front();
    for (graph::TaskId v = 0; v < n; ++v) {
      platform::ProcId best = procs.front();
      for (const platform::ProcId p : procs) {
        if (problem.exec_time(v, p) < problem.exec_time(v, best)) best = p;
      }
      greedy.assign[v] = best;
    }
    evaluate(greedy);
  }
  if (population.size() > 1) {
    // Memetic seed: HEFT's schedule encoded as a chromosome (priorities from
    // upward rank, assignments from HEFT's choices). With elitism the GA can
    // only improve on it.
    Chromosome& seeded = population[1];
    const sim::Schedule heft = Heft().schedule(problem);
    const auto rank = upward_rank_mean(problem);
    const double top = *std::max_element(rank.begin(), rank.end());
    for (graph::TaskId v = 0; v < n; ++v) {
      seeded.priority[v] = top > 0.0 ? rank[v] / top : 0.5;
      seeded.assign[v] = heft.placement(v).proc;
    }
    evaluate(seeded);
  }

  auto by_fitness = [](const Chromosome& a, const Chromosome& b) {
    return a.makespan < b.makespan;
  };

  auto tournament_pick = [&]() -> const Chromosome& {
    const Chromosome* best = nullptr;
    for (std::size_t i = 0; i < options_.tournament; ++i) {
      const Chromosome& c = population[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(population.size()) - 1))];
      if (best == nullptr || c.makespan < best->makespan) best = &c;
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < options_.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);
    std::vector<Chromosome> next(population.begin(),
                                 population.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         options_.elites));
    while (next.size() < options_.population) {
      Chromosome child = tournament_pick();
      if (rng.chance(options_.crossover_rate)) {
        const Chromosome& other = tournament_pick();
        for (graph::TaskId v = 0; v < n; ++v) {
          if (rng.chance(0.5)) {
            child.priority[v] = other.priority[v];
            child.assign[v] = other.assign[v];
          }
        }
      }
      for (graph::TaskId v = 0; v < n; ++v) {
        if (rng.chance(options_.priority_mutation_rate)) {
          child.priority[v] =
              std::clamp(child.priority[v] + rng.uniform(-0.25, 0.25), 0.0,
                         1.0);
        }
        if (rng.chance(options_.proc_mutation_rate)) {
          child.assign[v] = random_proc();
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  const Chromosome& winner =
      *std::min_element(population.begin(), population.end(), by_fitness);
  return decode(problem, winner);
}

}  // namespace hdlts::sched
