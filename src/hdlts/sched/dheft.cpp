#include "hdlts/sched/dheft.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::sched {

namespace {

struct DupChoice {
  PlacementChoice task;                        ///< placement for the task
  graph::TaskId parent = graph::kInvalidTask;  ///< duplicated parent, if any
  double dup_start = 0.0;
  double dup_finish = 0.0;
};

}  // namespace

sim::Schedule Dheft::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto rank = upward_rank_mean(problem);
  const auto order = graph::topological_order(g);
  std::vector<std::size_t> topo_pos(problem.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;

  std::vector<graph::TaskId> list(problem.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : list) {
    DupChoice best;
    bool first = true;
    for (const platform::ProcId p : problem.procs()) {
      // Plain HEFT candidate.
      DupChoice cand;
      cand.task = eft_on(problem, schedule, v, p, insertion_);
      // Critical-parent duplication candidate: find the parent whose data
      // arrival on p dominates the ready time, and see whether running a
      // local copy of it (in an idle slot) beats the network delivery.
      graph::TaskId crit = graph::kInvalidTask;
      double crit_arrival = 0.0;
      for (const graph::Adjacent& parent : g.parents(v)) {
        const sim::Placement& pl = schedule.placement(parent.task);
        double arrival =
            pl.finish + problem.comm_time_data(parent.data, pl.proc, p);
        for (const sim::Placement& d : schedule.duplicates(parent.task)) {
          arrival = std::min(
              arrival, d.finish + problem.comm_time_data(parent.data, d.proc, p));
        }
        if (arrival > crit_arrival) {
          crit_arrival = arrival;
          crit = parent.task;
        }
      }
      if (crit != graph::kInvalidTask &&
          schedule.placement(crit).proc != p) {
        const double dup_ready = schedule.ready_time(problem, crit, p);
        const double dup_dur = problem.exec_time(crit, p);
        const double dup_start =
            schedule.earliest_start(p, dup_ready, dup_dur, insertion_);
        const double dup_finish = dup_start + dup_dur;
        if (dup_finish < crit_arrival) {
          // Ready time of v on p with the duplicate present: the critical
          // parent now delivers locally at dup_finish; other parents are
          // unchanged. v can only use slots at or after dup_finish, so the
          // pre-duplication timeline gives the exact EST.
          double ready = dup_finish;
          for (const graph::Adjacent& parent : g.parents(v)) {
            if (parent.task == crit) continue;
            const sim::Placement& pl = schedule.placement(parent.task);
            double arrival =
                pl.finish + problem.comm_time_data(parent.data, pl.proc, p);
            for (const sim::Placement& d :
                 schedule.duplicates(parent.task)) {
              arrival = std::min(arrival,
                                 d.finish + problem.comm_time_data(
                                                parent.data, d.proc, p));
            }
            ready = std::max(ready, arrival);
          }
          const double dur = problem.exec_time(v, p);
          const double est =
              schedule.earliest_start(p, ready, dur, insertion_);
          if (est + dur < cand.task.eft) {
            cand.task = {p, est, est + dur};
            cand.parent = crit;
            cand.dup_start = dup_start;
            cand.dup_finish = dup_finish;
          }
        }
      }
      if (first || cand.task.eft < best.task.eft) {
        first = false;
        best = cand;
      }
    }
    if (best.parent != graph::kInvalidTask) {
      schedule.place_duplicate(best.parent, best.task.proc, best.dup_start,
                               best.dup_finish);
      // The duplicate may consume the very slot the task was quoted, when
      // both target the same gap; recompute the task's EST against the
      // updated timeline (it can only stay equal or move later within the
      // same gap family, preserving correctness).
      const double dur = problem.exec_time(v, best.task.proc);
      const double ready =
          std::max(schedule.ready_time(problem, v, best.task.proc),
                   best.dup_finish);
      const double est = schedule.earliest_start(best.task.proc, ready, dur,
                                                 insertion_);
      best.task.est = est;
      best.task.eft = est + dur;
    }
    commit(schedule, v, best.task);
  }
  return schedule;
}

}  // namespace hdlts::sched
