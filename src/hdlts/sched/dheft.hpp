// Duplication-based HEFT (after Zhang, Inoguchi & Shen 2004, cited by the
// HDLTS paper's §II-B): HEFT's ranking and processor scan, extended so that
// when a task's start on a candidate processor is dominated by one parent's
// data arrival, the scheduler tries to *duplicate that critical parent* into
// an idle slot of the candidate processor; if the duplicate finishes before
// the network delivery would, the task starts earlier. Duplicates are
// first-class copies (children of the parent may consume whichever copy is
// cheapest), matching the paper's general duplication discussion.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Dheft final : public Scheduler {
 public:
  explicit Dheft(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "dheft"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
