// Critical-Path-on-a-Processor (Topcuoglu, Hariri & Wu, TPDS 2002).
//
// Task priority is upward + downward rank; the tasks whose priority equals
// the critical-path length form the critical path, which is pinned to the
// single processor minimizing its total execution time. Non-critical tasks
// go to their min-EFT processor. Ready tasks are served highest priority
// first, with insertion-based placement.
#pragma once

#include "hdlts/sched/scheduler.hpp"

namespace hdlts::sched {

class Cpop final : public Scheduler {
 public:
  explicit Cpop(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "cpop"; }
  sim::Schedule schedule(const sim::Problem& problem) const override;
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::sched
