// Workload characterization: the structural quantities the paper's
// generator parameters control (height/width via alpha, edge density,
// degree profile) measured on an actual graph, plus a parallelism profile.
// Used by tests to verify generator fidelity and by examples/tools to
// describe a workflow before scheduling it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hdlts/graph/task_graph.hpp"

namespace hdlts::graph {

struct GraphProfile {
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  std::size_t num_entries = 0;
  std::size_t num_exits = 0;
  std::size_t height = 0;           ///< number of precedence levels
  std::size_t max_width = 0;        ///< widest level
  double mean_width = 0.0;          ///< num_tasks / height
  double mean_out_degree = 0.0;     ///< edges / non-exit tasks
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
  /// Width of each precedence level (the parallelism profile).
  std::vector<std::size_t> level_widths;
  /// Edges on the longest (by hop count) entry->exit path.
  std::size_t critical_path_hops = 0;
  /// 2*E / (V*(V-1)): how close the DAG is to a tournament.
  double density = 0.0;
};

/// Computes the profile; throws InvalidArgument on cyclic graphs.
GraphProfile profile(const TaskGraph& g);

/// Human-readable multi-line rendering of the profile.
void write_profile(std::ostream& os, const GraphProfile& p);
std::string to_string(const GraphProfile& p);

}  // namespace hdlts::graph
