#include "hdlts/graph/dot.hpp"

#include <ostream>
#include <sstream>

namespace hdlts::graph {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& g,
               const DotOptions& options) {
  os << "digraph \"" << dot_escape(options.name) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  " << v << " [label=\"" << dot_escape(g.name(v));
    if (options.work_labels) os << "\\nwork=" << g.work(v);
    os << "\"];\n";
  }
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const Adjacent& c : g.children(v)) {
      os << "  " << v << " -> " << c.task;
      if (options.edge_labels) os << " [label=\"" << c.data << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const TaskGraph& g, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, g, options);
  return os.str();
}

}  // namespace hdlts::graph
