// Plain-text workflow serialization.
//
// Format (one record per line, '#' starts a comment):
//   workflow <num_tasks>
//   task <id> <name> <work>
//   edge <src> <dst> <data>
// Task lines must precede edge lines that reference them; ids are dense and
// must appear in order (this keeps round-trips exact).
#pragma once

#include <iosfwd>
#include <string>

#include "hdlts/graph/task_graph.hpp"

namespace hdlts::graph {

void write_text(std::ostream& os, const TaskGraph& g);
TaskGraph read_text(std::istream& is);

/// File helpers; throw hdlts::Error on I/O failure.
void save_text(const std::string& path, const TaskGraph& g);
TaskGraph load_text(const std::string& path);

}  // namespace hdlts::graph
