// Graphviz DOT export for debugging and documentation figures.
#pragma once

#include <iosfwd>
#include <string>

#include "hdlts/graph/task_graph.hpp"

namespace hdlts::graph {

struct DotOptions {
  /// Graph name emitted in the `digraph <name>` header.
  std::string name = "workflow";
  /// Include edge data volumes as edge labels.
  bool edge_labels = true;
  /// Include task work as part of node labels.
  bool work_labels = false;
};

/// Writes the graph in Graphviz DOT syntax.
void write_dot(std::ostream& os, const TaskGraph& g, const DotOptions& options = {});

/// Convenience overload returning the DOT text.
std::string to_dot(const TaskGraph& g, const DotOptions& options = {});

}  // namespace hdlts::graph
