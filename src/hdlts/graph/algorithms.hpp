// Structural graph algorithms: acyclicity, topological order, precedence
// levels, reachability. Cost-aware analyses (critical path with a W matrix)
// live in hdlts/metrics.
#pragma once

#include <vector>

#include "hdlts/graph/task_graph.hpp"

namespace hdlts::graph {

/// True when the graph has no directed cycle.
bool is_acyclic(const TaskGraph& g);

/// Kahn topological order (stable: ready tasks are taken in id order).
/// Throws InvalidArgument when the graph is cyclic.
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Precedence level of each task: entries are level 0; otherwise
/// 1 + max(level of parents). This is the `k` in the paper's complexity bound
/// O(v^2 * (v/k) * p). Throws on cyclic graphs.
std::vector<std::size_t> precedence_levels(const TaskGraph& g);

/// Number of distinct precedence levels (height of the DAG + 1).
std::size_t num_levels(const TaskGraph& g);

/// Width per level: tasks that share a level are mutually independent
/// (paper §III: "tasks on the same level ... can be executed in parallel").
std::vector<std::size_t> level_widths(const TaskGraph& g);

/// All tasks reachable from v by directed edges (excluding v itself).
std::vector<TaskId> descendants(const TaskGraph& g, TaskId v);

/// All tasks that reach v by directed edges (excluding v itself).
std::vector<TaskId> ancestors(const TaskGraph& g, TaskId v);

}  // namespace hdlts::graph
