#include "hdlts/graph/task_graph.hpp"

#include <algorithm>

namespace hdlts::graph {

TaskId TaskGraph::add_task(std::string name, double work) {
  if (work < 0.0) throw InvalidArgument("task work must be non-negative");
  const auto id = static_cast<TaskId>(names_.size());
  if (name.empty()) {
    name = "t";
    name += std::to_string(id);
  }
  names_.push_back(std::move(name));
  work_.push_back(work);
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId src, TaskId dst, double data) {
  check_task(src);
  check_task(dst);
  if (src == dst) {
    throw InvalidArgument("self-loop on task " + std::to_string(src));
  }
  if (data < 0.0) throw InvalidArgument("edge data must be non-negative");
  if (!edge_keys_.insert(edge_key(src, dst)).second) {
    throw InvalidArgument("duplicate edge " + std::to_string(src) + " -> " +
                          std::to_string(dst));
  }
  children_[src].push_back({dst, data});
  parents_[dst].push_back({src, data});
  ++num_edges_;
}

void TaskGraph::reserve(std::size_t num_tasks, std::size_t num_edges) {
  names_.reserve(num_tasks);
  work_.reserve(num_tasks);
  children_.reserve(num_tasks);
  parents_.reserve(num_tasks);
  edge_keys_.reserve(num_edges);
}

void TaskGraph::set_work(TaskId v, double work) {
  check_task(v);
  if (work < 0.0) throw InvalidArgument("task work must be non-negative");
  work_[v] = work;
}

std::span<const Adjacent> TaskGraph::children(TaskId v) const {
  check_task(v);
  return children_[v];
}

std::span<const Adjacent> TaskGraph::parents(TaskId v) const {
  check_task(v);
  return parents_[v];
}

bool TaskGraph::has_edge(TaskId src, TaskId dst) const {
  check_task(src);
  check_task(dst);
  return edge_keys_.contains(edge_key(src, dst));
}

double TaskGraph::edge_data(TaskId src, TaskId dst) const {
  check_task(src);
  check_task(dst);
  for (const Adjacent& a : children_[src]) {
    if (a.task == dst) return a.data;
  }
  throw InvalidArgument("no edge " + std::to_string(src) + " -> " +
                        std::to_string(dst));
}

void TaskGraph::set_edge_data(TaskId src, TaskId dst, double data) {
  check_task(src);
  check_task(dst);
  if (data < 0.0) throw InvalidArgument("edge data must be non-negative");
  for (Adjacent& a : children_[src]) {
    if (a.task == dst) {
      a.data = data;
      for (Adjacent& b : parents_[dst]) {
        if (b.task == src) b.data = data;
      }
      return;
    }
  }
  throw InvalidArgument("no edge " + std::to_string(src) + " -> " +
                        std::to_string(dst));
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> out;
  for (TaskId v = 0; v < num_tasks(); ++v) {
    if (parents_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> out;
  for (TaskId v = 0; v < num_tasks(); ++v) {
    if (children_[v].empty()) out.push_back(v);
  }
  return out;
}

TaskId TaskGraph::single_entry() const {
  const auto entries = entry_tasks();
  if (entries.size() != 1) {
    throw InvalidArgument("graph has " + std::to_string(entries.size()) +
                          " entry tasks; expected exactly 1");
  }
  return entries.front();
}

TaskId TaskGraph::single_exit() const {
  const auto exits = exit_tasks();
  if (exits.size() != 1) {
    throw InvalidArgument("graph has " + std::to_string(exits.size()) +
                          " exit tasks; expected exactly 1");
  }
  return exits.front();
}

Normalized normalize_single_entry_exit(const TaskGraph& g) {
  Normalized out;
  out.graph = g;
  const auto entries = g.entry_tasks();
  const auto exits = g.exit_tasks();
  if (entries.empty() || exits.empty()) {
    throw InvalidArgument("graph has no entry or no exit task (cyclic?)");
  }
  if (entries.size() > 1) {
    const TaskId pseudo = out.graph.add_task("pseudo_entry", 0.0);
    for (TaskId e : entries) out.graph.add_edge(pseudo, e, 0.0);
    out.pseudo_entry = pseudo;
  }
  if (exits.size() > 1) {
    const TaskId pseudo = out.graph.add_task("pseudo_exit", 0.0);
    for (TaskId x : exits) out.graph.add_edge(x, pseudo, 0.0);
    out.pseudo_exit = pseudo;
  }
  return out;
}

}  // namespace hdlts::graph
