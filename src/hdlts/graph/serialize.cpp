#include "hdlts/graph/serialize.hpp"

#include <fstream>
#include <sstream>

namespace hdlts::graph {

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "# hdlts workflow, " << g.num_tasks() << " tasks, " << g.num_edges()
     << " edges\n";
  os << "workflow " << g.num_tasks() << "\n";
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "task " << v << " " << g.name(v) << " " << g.work(v) << "\n";
  }
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const Adjacent& c : g.children(v)) {
      os << "edge " << v << " " << c.task << " " << c.data << "\n";
    }
  }
}

TaskGraph read_text(std::istream& is) {
  TaskGraph g;
  std::string line;
  bool saw_header = false;
  std::size_t declared_tasks = 0;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    auto fail = [&](const std::string& why) -> void {
      throw InvalidArgument("workflow text line " + std::to_string(line_no) +
                            ": " + why);
    };
    if (kind == "workflow") {
      if (saw_header) fail("duplicate workflow header");
      if (!(ls >> declared_tasks)) fail("malformed workflow header");
      saw_header = true;
    } else if (kind == "task") {
      TaskId id = 0;
      std::string name;
      double work = 0.0;
      if (!(ls >> id >> name >> work)) fail("malformed task line");
      if (id != g.num_tasks()) fail("task ids must be dense and in order");
      g.add_task(name, work);
    } else if (kind == "edge") {
      TaskId src = 0;
      TaskId dst = 0;
      double data = 0.0;
      if (!(ls >> src >> dst >> data)) fail("malformed edge line");
      g.add_edge(src, dst, data);
    } else {
      fail("unknown record kind '" + kind + "'");
    }
  }
  if (!saw_header) throw InvalidArgument("missing 'workflow' header");
  if (g.num_tasks() != declared_tasks) {
    throw InvalidArgument("workflow header declares " +
                          std::to_string(declared_tasks) + " tasks but " +
                          std::to_string(g.num_tasks()) + " were defined");
  }
  return g;
}

void save_text(const std::string& path, const TaskGraph& g) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  write_text(out, g);
  if (!out) throw Error("write failed: " + path);
}

TaskGraph load_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  return read_text(in);
}

}  // namespace hdlts::graph
