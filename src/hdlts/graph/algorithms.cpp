#include "hdlts/graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace hdlts::graph {

namespace {

/// Kahn's algorithm; returns an order of size < num_tasks when cyclic.
std::vector<TaskId> kahn_order(const TaskGraph& g) {
  const std::size_t n = g.num_tasks();
  std::vector<std::size_t> pending(n);
  // Min-heap on task id keeps the order deterministic and stable.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId v = 0; v < n; ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push(v);
  }
  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const Adjacent& c : g.children(v)) {
      if (--pending[c.task] == 0) ready.push(c.task);
    }
  }
  return order;
}

}  // namespace

bool is_acyclic(const TaskGraph& g) {
  return kahn_order(g).size() == g.num_tasks();
}

std::vector<TaskId> topological_order(const TaskGraph& g) {
  auto order = kahn_order(g);
  if (order.size() != g.num_tasks()) {
    throw InvalidArgument("task graph contains a cycle");
  }
  return order;
}

std::vector<std::size_t> precedence_levels(const TaskGraph& g) {
  const auto order = topological_order(g);
  std::vector<std::size_t> level(g.num_tasks(), 0);
  for (const TaskId v : order) {
    for (const Adjacent& p : g.parents(v)) {
      level[v] = std::max(level[v], level[p.task] + 1);
    }
  }
  return level;
}

std::size_t num_levels(const TaskGraph& g) {
  if (g.empty()) return 0;
  const auto level = precedence_levels(g);
  return 1 + *std::max_element(level.begin(), level.end());
}

std::vector<std::size_t> level_widths(const TaskGraph& g) {
  const auto level = precedence_levels(g);
  std::vector<std::size_t> width(num_levels(g), 0);
  for (const std::size_t l : level) ++width[l];
  return width;
}

namespace {

std::vector<TaskId> reach(const TaskGraph& g, TaskId v, bool forward) {
  std::vector<bool> seen(g.num_tasks(), false);
  std::vector<TaskId> stack{v};
  seen[v] = true;
  std::vector<TaskId> out;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    const auto next = forward ? g.children(u) : g.parents(u);
    for (const Adjacent& a : next) {
      if (!seen[a.task]) {
        seen[a.task] = true;
        out.push_back(a.task);
        stack.push_back(a.task);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<TaskId> descendants(const TaskGraph& g, TaskId v) {
  return reach(g, v, /*forward=*/true);
}

std::vector<TaskId> ancestors(const TaskGraph& g, TaskId v) {
  return reach(g, v, /*forward=*/false);
}

}  // namespace hdlts::graph
