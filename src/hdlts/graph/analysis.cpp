#include "hdlts/graph/analysis.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "hdlts/graph/algorithms.hpp"

namespace hdlts::graph {

GraphProfile profile(const TaskGraph& g) {
  GraphProfile p;
  p.num_tasks = g.num_tasks();
  p.num_edges = g.num_edges();
  if (g.empty()) return p;
  p.num_entries = g.entry_tasks().size();
  p.num_exits = g.exit_tasks().size();
  p.level_widths = level_widths(g);
  p.height = p.level_widths.size();
  p.max_width = *std::max_element(p.level_widths.begin(),
                                  p.level_widths.end());
  p.mean_width =
      static_cast<double>(p.num_tasks) / static_cast<double>(p.height);
  std::size_t non_exit = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    p.max_out_degree = std::max(p.max_out_degree, g.out_degree(v));
    p.max_in_degree = std::max(p.max_in_degree, g.in_degree(v));
    if (g.out_degree(v) > 0) ++non_exit;
  }
  p.mean_out_degree =
      non_exit > 0 ? static_cast<double>(p.num_edges) /
                         static_cast<double>(non_exit)
                   : 0.0;
  p.critical_path_hops = p.height - 1;
  p.density = p.num_tasks > 1
                  ? 2.0 * static_cast<double>(p.num_edges) /
                        (static_cast<double>(p.num_tasks) *
                         static_cast<double>(p.num_tasks - 1))
                  : 0.0;
  return p;
}

void write_profile(std::ostream& os, const GraphProfile& p) {
  os << "tasks            " << p.num_tasks << "\n"
     << "edges            " << p.num_edges << "\n"
     << "entries/exits    " << p.num_entries << "/" << p.num_exits << "\n"
     << "height (levels)  " << p.height << "\n"
     << "width mean/max   " << p.mean_width << "/" << p.max_width << "\n"
     << "out-degree mean  " << p.mean_out_degree << " (max "
     << p.max_out_degree << ")\n"
     << "in-degree max    " << p.max_in_degree << "\n"
     << "cp hops          " << p.critical_path_hops << "\n"
     << "density          " << p.density << "\n"
     << "profile          ";
  for (std::size_t i = 0; i < p.level_widths.size(); ++i) {
    if (i > 0) os << ' ';
    os << p.level_widths[i];
  }
  os << "\n";
}

std::string to_string(const GraphProfile& p) {
  std::ostringstream os;
  write_profile(os, p);
  return os.str();
}

}  // namespace hdlts::graph
