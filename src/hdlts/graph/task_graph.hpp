// Directed acyclic task graph (application workflow), paper §III.
//
// Nodes are tasks identified by dense TaskIds; edges carry the volume of data
// transferred from parent to child (paper Definition 2). Execution costs are
// *not* stored here — they live in sim::CostTable so the same structure can be
// re-costed (e.g. one Montage graph swept over many CCR values).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::graph {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// One endpoint of an adjacency: the task on the other side plus the data
/// volume on the connecting edge.
struct Adjacent {
  TaskId task = kInvalidTask;
  double data = 0.0;
};

class TaskGraph {
 public:
  TaskGraph() = default;

  /// Adds a task and returns its id (ids are dense, starting at 0).
  /// `work` is an abstract computation amount used when deriving cost tables
  /// from processor speeds; generators that set W directly may leave it 1.
  TaskId add_task(std::string name = {}, double work = 1.0);

  /// Adds a dependency edge src -> dst carrying `data` units.
  /// Throws InvalidArgument on self-loops, unknown ids, or duplicate edges.
  /// Duplicate detection is O(1) via a hash set of packed (src, dst) keys,
  /// so bulk graph construction is linear in the number of edges.
  void add_edge(TaskId src, TaskId dst, double data = 0.0);

  /// Pre-sizes the internal containers for a known build. Purely an
  /// optimization for generators that know their shape up front; the graph
  /// grows past the hint transparently.
  void reserve(std::size_t num_tasks, std::size_t num_edges);

  std::size_t num_tasks() const { return names_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  bool empty() const { return names_.empty(); }

  const std::string& name(TaskId v) const { return names_.at(v); }
  double work(TaskId v) const { return work_.at(v); }
  void set_work(TaskId v, double work);

  /// Children of v with per-edge data volumes.
  std::span<const Adjacent> children(TaskId v) const;
  /// Parents of v with per-edge data volumes.
  std::span<const Adjacent> parents(TaskId v) const;

  std::size_t out_degree(TaskId v) const { return children(v).size(); }
  std::size_t in_degree(TaskId v) const { return parents(v).size(); }

  bool has_edge(TaskId src, TaskId dst) const;
  /// Data volume on edge src -> dst; throws InvalidArgument if absent.
  double edge_data(TaskId src, TaskId dst) const;
  /// Replaces the data volume on an existing edge.
  void set_edge_data(TaskId src, TaskId dst, double data);

  /// Tasks with no parents, in id order.
  std::vector<TaskId> entry_tasks() const;
  /// Tasks with no children, in id order.
  std::vector<TaskId> exit_tasks() const;

  /// The unique entry task; throws if the graph has zero or multiple entries.
  TaskId single_entry() const;
  /// The unique exit task; throws if the graph has zero or multiple exits.
  TaskId single_exit() const;

  bool contains(TaskId v) const { return v < names_.size(); }

 private:
  void check_task(TaskId v) const {
    if (!contains(v)) {
      throw InvalidArgument("unknown task id " + std::to_string(v));
    }
  }

  static std::uint64_t edge_key(TaskId src, TaskId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  std::vector<std::string> names_;
  std::vector<double> work_;
  std::vector<std::vector<Adjacent>> children_;
  std::vector<std::vector<Adjacent>> parents_;
  /// Packed (src, dst) of every edge — O(1) has_edge/duplicate checks.
  std::unordered_set<std::uint64_t> edge_keys_;
  std::size_t num_edges_ = 0;
};

/// Result of normalize_single_entry_exit(). Original task ids are preserved;
/// pseudo tasks (zero work, zero data edges, paper §III) are appended.
struct Normalized {
  TaskGraph graph;
  std::optional<TaskId> pseudo_entry;
  std::optional<TaskId> pseudo_exit;
};

/// Ensures the graph has a single entry and a single exit by appending pseudo
/// tasks where needed. A graph that is already single-entry/exit is copied
/// unchanged (both optionals empty).
Normalized normalize_single_entry_exit(const TaskGraph& g);

}  // namespace hdlts::graph
