#include "hdlts/platform/platform.hpp"

#include <algorithm>

namespace hdlts::platform {

Platform::Platform(std::size_t num_procs, double bandwidth)
    : bandwidth_(num_procs * num_procs, bandwidth),
      alive_(num_procs, true),
      busy_power_(num_procs, 1.0),
      idle_power_(num_procs, 0.1) {
  if (num_procs == 0) throw InvalidArgument("platform needs >= 1 processor");
  if (bandwidth <= 0.0) throw InvalidArgument("bandwidth must be positive");
}

std::string Platform::proc_name(ProcId p) const {
  check_proc(p);
  return "P" + std::to_string(p + 1);
}

double Platform::bandwidth(ProcId src, ProcId dst) const {
  check_proc(src);
  check_proc(dst);
  return bandwidth_[src * num_procs() + dst];
}

void Platform::set_bandwidth(ProcId a, ProcId b, double bandwidth) {
  check_proc(a);
  check_proc(b);
  if (a == b) throw InvalidArgument("cannot set same-processor bandwidth");
  if (bandwidth <= 0.0) throw InvalidArgument("bandwidth must be positive");
  bandwidth_[a * num_procs() + b] = bandwidth;
  bandwidth_[b * num_procs() + a] = bandwidth;
}

double Platform::mean_bandwidth() const {
  const std::size_t p = num_procs();
  if (p < 2) return bandwidth_.empty() ? 1.0 : bandwidth_.front();
  double sum = 0.0;
  std::size_t pairs = 0;
  for (ProcId i = 0; i < p; ++i) {
    for (ProcId j = 0; j < p; ++j) {
      if (i == j) continue;
      sum += bandwidth_[i * p + j];
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

bool Platform::is_alive(ProcId p) const {
  check_proc(p);
  return alive_[p];
}

void Platform::set_alive(ProcId p, bool alive) {
  check_proc(p);
  alive_[p] = alive;
}

std::size_t Platform::num_alive() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

double Platform::busy_power(ProcId p) const {
  check_proc(p);
  return busy_power_[p];
}

double Platform::idle_power(ProcId p) const {
  check_proc(p);
  return idle_power_[p];
}

void Platform::set_power(ProcId p, double busy, double idle) {
  check_proc(p);
  if (busy < 0.0 || idle < 0.0) {
    throw InvalidArgument("power draws must be non-negative");
  }
  if (idle > busy) {
    throw InvalidArgument("idle power cannot exceed busy power");
  }
  busy_power_[p] = busy;
  idle_power_[p] = idle;
}

std::vector<ProcId> Platform::alive_procs() const {
  std::vector<ProcId> out;
  out.reserve(num_procs());
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (alive_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace hdlts::platform
