// Heterogeneous computing environment (HCE) model, paper §III.
//
// The paper assumes p fully connected processors with no network contention.
// Heterogeneity of *computation* is expressed through the W cost table
// (sim::CostTable); the platform models the communication fabric (per-link
// bandwidth, default uniform 1.0 so communication time == data volume) and
// processor liveness for the failure-injection extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::platform {

using ProcId = std::uint32_t;
inline constexpr ProcId kInvalidProc = static_cast<ProcId>(-1);

class Platform {
 public:
  /// A platform with `num_procs` processors and uniform link bandwidth.
  explicit Platform(std::size_t num_procs, double bandwidth = 1.0);

  std::size_t num_procs() const { return alive_.size(); }

  /// Human-readable processor name ("P1".."Pp", 1-based like the paper).
  std::string proc_name(ProcId p) const;

  /// Bandwidth of the directed link src -> dst. Same-processor bandwidth is
  /// conceptually infinite; callers must special-case pu == pv (the library's
  /// comm_time helpers do). Throws on unknown processors.
  double bandwidth(ProcId src, ProcId dst) const;

  /// Sets the bandwidth of the link in both directions.
  void set_bandwidth(ProcId a, ProcId b, double bandwidth);

  /// Mean bandwidth over all ordered pairs of distinct processors; used by
  /// rank computations that need processor-independent mean communication.
  double mean_bandwidth() const;

  /// Liveness (failure-injection extension; all processors start alive).
  bool is_alive(ProcId p) const;
  void set_alive(ProcId p, bool alive);
  std::size_t num_alive() const;
  /// Alive processor ids in increasing order.
  std::vector<ProcId> alive_procs() const;

  /// Power model (energy extension; §II-B notes duplication buys makespan
  /// at the cost of energy). Busy power is drawn while executing a block,
  /// idle power for the rest of the schedule horizon. Defaults: 1.0 / 0.1.
  double busy_power(ProcId p) const;
  double idle_power(ProcId p) const;
  void set_power(ProcId p, double busy, double idle);

 private:
  void check_proc(ProcId p) const {
    if (p >= num_procs()) {
      throw InvalidArgument("unknown processor id " + std::to_string(p));
    }
  }

  // Row-major p×p matrix; diagonal unused.
  std::vector<double> bandwidth_;
  std::vector<bool> alive_;
  std::vector<double> busy_power_;
  std::vector<double> idle_power_;
};

}  // namespace hdlts::platform
