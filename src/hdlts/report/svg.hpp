// Minimal SVG document builder — enough to render Gantt charts and the
// paper-style line charts without external dependencies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdlts::report {

/// Accumulates SVG elements and serializes a standalone document.
class Svg {
 public:
  Svg(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  void rect(double x, double y, double w, double h, const std::string& fill,
            const std::string& stroke = "none", double stroke_width = 1.0,
            double opacity = 1.0);
  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double stroke_width = 1.0,
            bool dashed = false);
  /// Polyline through the given (x, y) points.
  void polyline(const std::vector<std::pair<double, double>>& points,
                const std::string& stroke, double stroke_width = 2.0);
  void circle(double cx, double cy, double r, const std::string& fill);
  /// anchor: "start", "middle", or "end".
  void text(double x, double y, const std::string& content,
            double font_size = 12.0, const std::string& anchor = "start",
            const std::string& fill = "#222222");

  void write(std::ostream& os) const;
  std::string str() const;

  /// Escapes &, <, > for text content.
  static std::string escape(const std::string& s);

 private:
  double width_;
  double height_;
  std::vector<std::string> elements_;
};

/// A categorical palette (10 colors) used for tasks and series.
const std::string& palette(std::size_t index);

}  // namespace hdlts::report
