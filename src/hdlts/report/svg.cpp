#include "hdlts/report/svg.hpp"

#include <array>
#include <ostream>
#include <sstream>

#include "hdlts/util/error.hpp"

namespace hdlts::report {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

Svg::Svg(double width, double height) : width_(width), height_(height) {
  if (width <= 0.0 || height <= 0.0) {
    throw InvalidArgument("SVG dimensions must be positive");
  }
}

void Svg::rect(double x, double y, double w, double h, const std::string& fill,
               const std::string& stroke, double stroke_width,
               double opacity) {
  std::ostringstream os;
  os << "<rect x=\"" << num(x) << "\" y=\"" << num(y) << "\" width=\""
     << num(w) << "\" height=\"" << num(h) << "\" fill=\"" << fill
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << num(stroke_width)
     << "\"";
  if (opacity != 1.0) os << " fill-opacity=\"" << num(opacity) << "\"";
  os << "/>";
  elements_.push_back(os.str());
}

void Svg::line(double x1, double y1, double x2, double y2,
               const std::string& stroke, double stroke_width, bool dashed) {
  std::ostringstream os;
  os << "<line x1=\"" << num(x1) << "\" y1=\"" << num(y1) << "\" x2=\""
     << num(x2) << "\" y2=\"" << num(y2) << "\" stroke=\"" << stroke
     << "\" stroke-width=\"" << num(stroke_width) << "\"";
  if (dashed) os << " stroke-dasharray=\"4 3\"";
  os << "/>";
  elements_.push_back(os.str());
}

void Svg::polyline(const std::vector<std::pair<double, double>>& points,
                   const std::string& stroke, double stroke_width) {
  std::ostringstream os;
  os << "<polyline fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\""
     << num(stroke_width) << "\" points=\"";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) os << ' ';
    os << num(points[i].first) << ',' << num(points[i].second);
  }
  os << "\"/>";
  elements_.push_back(os.str());
}

void Svg::circle(double cx, double cy, double r, const std::string& fill) {
  std::ostringstream os;
  os << "<circle cx=\"" << num(cx) << "\" cy=\"" << num(cy) << "\" r=\""
     << num(r) << "\" fill=\"" << fill << "\"/>";
  elements_.push_back(os.str());
}

void Svg::text(double x, double y, const std::string& content,
               double font_size, const std::string& anchor,
               const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << num(x) << "\" y=\"" << num(y) << "\" font-size=\""
     << num(font_size) << "\" text-anchor=\"" << anchor << "\" fill=\""
     << fill << "\" font-family=\"sans-serif\">" << escape(content)
     << "</text>";
  elements_.push_back(os.str());
}

void Svg::write(std::ostream& os) const {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << num(width_)
     << "\" height=\"" << num(height_) << "\" viewBox=\"0 0 " << num(width_)
     << " " << num(height_) << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << num(width_) << "\" height=\""
     << num(height_) << "\" fill=\"#ffffff\"/>\n";
  for (const std::string& e : elements_) os << e << "\n";
  os << "</svg>\n";
}

std::string Svg::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::string Svg::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const std::string& palette(std::size_t index) {
  static const std::array<std::string, 10> kColors = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
      "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"};
  return kColors[index % kColors.size()];
}

}  // namespace hdlts::report
