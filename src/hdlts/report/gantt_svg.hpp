// SVG Gantt rendering of a schedule: one lane per processor, one block per
// placement (duplicates hatched by reduced opacity and a dashed border),
// colored per task, with a time axis.
#pragma once

#include <string>

#include "hdlts/report/svg.hpp"
#include "hdlts/sim/schedule.hpp"

namespace hdlts::report {

struct GanttSvgOptions {
  double width = 960.0;
  double lane_height = 36.0;
  /// Label blocks with task names when the graph is supplied (ids otherwise).
  const graph::TaskGraph* graph = nullptr;
  std::string title;
};

Svg render_gantt(const sim::Schedule& schedule,
                 const GanttSvgOptions& options = {});

/// Renders and writes to a file; throws hdlts::Error on I/O failure.
void save_gantt_svg(const std::string& path, const sim::Schedule& schedule,
                    const GanttSvgOptions& options = {});

}  // namespace hdlts::report
