// Paper-style line charts: one series per scheduler over a categorical
// x-axis (CCR values, task counts, CPU counts), with axes, ticks, markers,
// and a legend. Used by the bench harness to emit each figure as an SVG.
#pragma once

#include <string>
#include <vector>

#include "hdlts/report/svg.hpp"

namespace hdlts::report {

struct Series {
  std::string name;
  std::vector<double> values;  ///< one per x-axis category
};

struct LineChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_categories;
  std::vector<Series> series;
  double width = 720.0;
  double height = 440.0;
  /// Force the y-axis to start at zero (efficiency plots); otherwise the
  /// range is padded around the data (SLR plots).
  bool y_from_zero = false;
};

/// Renders the chart; throws InvalidArgument on inconsistent sizes.
Svg render_line_chart(const LineChartSpec& spec);

/// Renders and writes to a file; throws hdlts::Error on I/O failure.
void save_line_chart(const std::string& path, const LineChartSpec& spec);

}  // namespace hdlts::report
