#include "hdlts/report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "hdlts/util/error.hpp"
#include "hdlts/util/table.hpp"

namespace hdlts::report {

namespace {

double nice_step(double span) {
  if (span <= 0.0) return 1.0;
  const double raw = span / 6.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (const double mult : {1.0, 2.0, 2.5, 5.0}) {
    if (raw <= mult * mag) return mult * mag;
  }
  return 10.0 * mag;
}

}  // namespace

Svg render_line_chart(const LineChartSpec& spec) {
  if (spec.x_categories.empty()) {
    throw InvalidArgument("line chart needs >= 1 x category");
  }
  if (spec.series.empty()) {
    throw InvalidArgument("line chart needs >= 1 series");
  }
  for (const Series& s : spec.series) {
    if (s.values.size() != spec.x_categories.size()) {
      throw InvalidArgument("series '" + s.name + "' has " +
                            std::to_string(s.values.size()) +
                            " values for " +
                            std::to_string(spec.x_categories.size()) +
                            " categories");
    }
  }

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Series& s : spec.series) {
    for (const double v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (spec.y_from_zero) lo = 0.0;
  if (hi <= lo) hi = lo + 1.0;
  const double pad = (hi - lo) * 0.08;
  const double y_lo = spec.y_from_zero ? 0.0 : lo - pad;
  const double y_hi = hi + pad;

  const double ml = 64.0;
  const double mr = 150.0;  // legend gutter
  const double mt = spec.title.empty() ? 20.0 : 44.0;
  const double mb = 52.0;
  const double pw = spec.width - ml - mr;
  const double ph = spec.height - mt - mb;

  Svg svg(spec.width, spec.height);
  if (!spec.title.empty()) {
    svg.text(ml + pw / 2.0, 24.0, spec.title, 15.0, "middle");
  }

  auto x_of = [&](std::size_t i) {
    const std::size_t n = spec.x_categories.size();
    if (n == 1) return ml + pw / 2.0;
    return ml + static_cast<double>(i) / static_cast<double>(n - 1) * pw;
  };
  auto y_of = [&](double v) {
    return mt + ph - (v - y_lo) / (y_hi - y_lo) * ph;
  };

  // Gridlines + y ticks.
  const double step = nice_step(y_hi - y_lo);
  const double first_tick = std::ceil(y_lo / step) * step;
  for (double t = first_tick; t <= y_hi + 1e-9; t += step) {
    svg.line(ml, y_of(t), ml + pw, y_of(t), "#e5e5e5");
    svg.text(ml - 6.0, y_of(t) + 4.0, util::fmt(t, step < 1.0 ? 2 : 0), 10.0,
             "end", "#555555");
  }
  // Axes.
  svg.line(ml, mt, ml, mt + ph, "#333333", 1.5);
  svg.line(ml, mt + ph, ml + pw, mt + ph, "#333333", 1.5);
  // X ticks + labels.
  for (std::size_t i = 0; i < spec.x_categories.size(); ++i) {
    svg.line(x_of(i), mt + ph, x_of(i), mt + ph + 4.0, "#333333");
    svg.text(x_of(i), mt + ph + 18.0, spec.x_categories[i], 10.0, "middle",
             "#333333");
  }
  svg.text(ml + pw / 2.0, spec.height - 10.0, spec.x_label, 12.0, "middle");
  svg.text(16.0, mt - 6.0, spec.y_label, 12.0, "start");

  // Series.
  for (std::size_t si = 0; si < spec.series.size(); ++si) {
    const Series& s = spec.series[si];
    const std::string& color = palette(si);
    std::vector<std::pair<double, double>> pts;
    pts.reserve(s.values.size());
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      pts.emplace_back(x_of(i), y_of(s.values[i]));
    }
    svg.polyline(pts, color);
    for (const auto& [x, y] : pts) svg.circle(x, y, 3.0, color);
    // Legend entry.
    const double ly = mt + 10.0 + static_cast<double>(si) * 18.0;
    svg.line(ml + pw + 12.0, ly, ml + pw + 34.0, ly, color, 2.5);
    svg.text(ml + pw + 40.0, ly + 4.0, s.name, 11.0);
  }
  return svg;
}

void save_line_chart(const std::string& path, const LineChartSpec& spec) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  render_line_chart(spec).write(out);
  if (!out) throw Error("write failed: " + path);
}

}  // namespace hdlts::report
