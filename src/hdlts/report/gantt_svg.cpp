#include "hdlts/report/gantt_svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "hdlts/util/table.hpp"

namespace hdlts::report {

namespace {

/// A "nice" tick step targeting ~8 ticks across `span`.
double tick_step(double span) {
  if (span <= 0.0) return 1.0;
  const double raw = span / 8.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (const double mult : {1.0, 2.0, 5.0}) {
    if (raw <= mult * mag) return mult * mag;
  }
  return 10.0 * mag;
}

}  // namespace

Svg render_gantt(const sim::Schedule& schedule,
                 const GanttSvgOptions& options) {
  const double span = std::max(schedule.makespan(), 1e-9);
  const double margin_left = 64.0;
  const double margin_top = options.title.empty() ? 16.0 : 40.0;
  const double margin_bottom = 32.0;
  const double lane_gap = 6.0;
  const double plot_w = options.width - margin_left - 16.0;
  const auto procs = schedule.num_procs();
  const double height = margin_top + margin_bottom +
                        static_cast<double>(procs) *
                            (options.lane_height + lane_gap);

  Svg svg(options.width, height);
  if (!options.title.empty()) {
    svg.text(options.width / 2.0, 22.0, options.title, 15.0, "middle");
  }
  auto x_of = [&](double t) { return margin_left + t / span * plot_w; };
  auto y_of = [&](platform::ProcId p) {
    return margin_top + static_cast<double>(p) *
                            (options.lane_height + lane_gap);
  };

  // Lanes and labels.
  for (platform::ProcId p = 0; p < procs; ++p) {
    svg.rect(margin_left, y_of(p), plot_w, options.lane_height, "#f4f4f4");
    svg.text(margin_left - 8.0, y_of(p) + options.lane_height * 0.65,
             "P" + std::to_string(p + 1), 12.0, "end");
  }

  // Time axis.
  const double axis_y = margin_top + static_cast<double>(procs) *
                                         (options.lane_height + lane_gap);
  const double step = tick_step(span);
  for (double t = 0.0; t <= span + 1e-9; t += step) {
    svg.line(x_of(t), margin_top, x_of(t), axis_y, "#dddddd");
    svg.text(x_of(t), axis_y + 16.0, util::fmt(t, step < 1.0 ? 1 : 0), 10.0,
             "middle", "#555555");
  }

  // Blocks.
  for (platform::ProcId p = 0; p < procs; ++p) {
    for (const sim::Placement& pl : schedule.timeline(p)) {
      const double x = x_of(pl.start);
      const double w = std::max(x_of(pl.finish) - x, 1.0);
      const std::string color = palette(pl.task);
      svg.rect(x, y_of(p) + 2.0, w, options.lane_height - 4.0, color,
               pl.duplicate ? "#333333" : "none", 1.0,
               pl.duplicate ? 0.45 : 0.9);
      std::string label =
          options.graph != nullptr && options.graph->contains(pl.task)
              ? options.graph->name(pl.task)
              : "t" + std::to_string(pl.task);
      if (pl.duplicate) label += "*";
      if (w > 18.0) {
        svg.text(x + w / 2.0, y_of(p) + options.lane_height * 0.65, label,
                 10.0, "middle", "#ffffff");
      }
    }
  }
  return svg;
}

void save_gantt_svg(const std::string& path, const sim::Schedule& schedule,
                    const GanttSvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  render_gantt(schedule, options).write(out);
  if (!out) throw Error("write failed: " + path);
}

}  // namespace hdlts::report
