// Concurrent batch-scheduling engine: many independent scheduling requests
// drained across a fixed worker pool (docs/CONCURRENCY.md).
//
// The per-decision kernels (PR 1/2) are fast but serial — one workflow at a
// time on one thread. BatchEngine is the service layer on top: callers
// submit (problem, scheduler names, seed) requests and a util::ThreadPool of
// drain loops executes them, each worker owning a recycled sim::Schedule, a
// per-scheduler instance cache (whose ScratchArena warms once), and a
// reusable error buffer — so the steady state stays zero-allocation per
// request on the compiled path (tests/alloc_test.cpp::BatchEngineSteadyState).
//
// Queueing is sharded: each worker owns a bounded ring (its shard) and
// submissions are dealt round-robin across shards, so in the balanced case a
// worker only ever touches its own shard's lock. When a worker's shard runs
// dry it steals the younger half of another shard's queue (oldest stolen
// request runs first, the rest move to the thief's ring), which keeps every
// worker busy under skewed arrival or uneven request cost. Steals are
// counted (stats().steals, "svc.batch.steals"). Total queued size is bounded
// by queue_capacity across all shards, so backpressure behaves exactly like
// the old single-ring engine (docs/CONCURRENCY.md).
//
// Determinism: a request's result depends only on the request's content,
// never on worker interleaving — every scheduler in the registry is a pure
// function of the Problem. tests/batch_test.cpp enforces bit-identical
// schedules between the engine (any thread count) and a serial loop.
//
// Backpressure: the submission queue is bounded. try_submit() fails
// immediately when full; submit() blocks until space frees, optionally with
// a timeout. Both count rejected requests in the stats and in
// obs::MetricRegistry ("svc.batch.rejected").
//
// Shutdown: shutdown(Drain::kDrain) closes the queue and finishes every
// queued request; shutdown(Drain::kCancel) drops queued requests (counted
// as cancelled, no callback) but still lets in-flight work finish — threads
// cannot be interrupted mid-schedule. The destructor drains.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hdlts/core/online.hpp"
#include "hdlts/core/stream.hpp"
#include "hdlts/sched/registry.hpp"
#include "hdlts/sim/problem.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::svc {

/// Produces a fresh workload for a request seed (same shape as
/// metrics::WorkloadFactory, so experiment factories plug in directly).
using WorkloadFn = std::function<sim::Workload(std::uint64_t seed)>;

/// What a request asks the worker to run.
enum class BatchJob {
  kStatic,  ///< each named scheduler once over the problem (the default)
  kOnline,  ///< the compiled dynamic scheduler (core::OnlineHdlts) under the
            ///< request's fault plan; delivers a single "hdlts-online" result
  kStream,  ///< a workflow stream (core::StreamHdlts) over the request's
            ///< arrival list; delivers a single "hdlts-stream" result
};

/// One unit of work: a problem (given directly, or generated on the worker
/// from `generator` + `seed`), either scheduled by each named algorithm in
/// turn (kStatic) or run through the failure-injection path (kOnline).
/// Exactly one of `problem` / `generator` must be set; both are non-owning
/// and must outlive the request's completion.
struct BatchRequest {
  /// Caller-chosen key; results are correlated by it (ids need not be
  /// unique or dense, the engine only echoes them).
  std::uint64_t id = 0;
  const sim::Problem* problem = nullptr;
  const WorkloadFn* generator = nullptr;
  /// Passed to `generator` when set; echoed into the result either way
  /// (workload provenance for JSONL outputs).
  std::uint64_t seed = 0;
  /// Registry names, run in order; one result per entry. kStatic only (must
  /// be empty for kOnline jobs, which always run the HDLTS online path).
  std::vector<std::string> schedulers;
  BatchJob job = BatchJob::kStatic;
  /// Fault plan for kOnline jobs (by value: ring slots recycle the vector's
  /// capacity the same way they recycle the scheduler-name strings).
  std::vector<core::ProcFailure> failures;
  /// kStream jobs only: the arrival list (non-owning, must outlive the
  /// request's completion; problem/generator must both be null). Stream
  /// requests re-freeze the combined problem per run, so unlike
  /// kStatic/kOnline they are not zero-allocation in steady state.
  const std::vector<core::StreamArrival>* arrivals = nullptr;
  /// kStream jobs only: ITQ policy + PV kind for the stream run.
  core::StreamOptions stream_options;
};

/// Delivered to the result callback once per (request, scheduler), on the
/// worker thread that ran it. The pointers and views are valid ONLY for the
/// duration of the callback — the schedule is the worker's recycled buffer.
struct BatchResult {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::string_view scheduler;
  std::size_t scheduler_index = 0;
  bool ok = false;
  /// Failure description when !ok (unknown scheduler, generator throw,
  /// validation violation); empty on success.
  std::string_view error;
  double makespan = 0.0;
  /// Null when the request carried a generator that failed.
  const sim::Problem* problem = nullptr;
  /// Null when !ok or for kOnline jobs.
  const sim::Schedule* schedule = nullptr;
  /// kOnline jobs only: the dynamic run (the worker's recycled buffer, valid
  /// only for the duration of the callback). ok stays true even when the
  /// fault plan killed every processor — inspect online->completed.
  const core::OnlineResult* online = nullptr;
  /// kStream jobs only: the stream run (the worker's recycled buffer, valid
  /// only for the duration of the callback).
  const core::StreamResult* stream = nullptr;
};

/// Must be thread-safe: workers invoke it concurrently.
using ResultFn = std::function<void(const BatchResult&)>;

struct BatchEngineOptions {
  /// Worker count when the engine owns its pool (0 = hardware concurrency).
  /// Ignored when `pool` is set.
  std::size_t threads = 0;
  /// Submission ring capacity (>= 1). Submissions beyond it block/reject.
  std::size_t queue_capacity = 256;
  /// Run sim::Schedule::validate on every produced schedule; all violations
  /// surface joined in the failed result's error and are counted by the
  /// svc.batch.check_violations counter (costs time, on in tests). This is
  /// the static-oracle rung of the hierarchy in docs/TESTING.md; the
  /// dynamic paths have their own validators in check/.
  bool check_schedules = false;
  /// Forwarded to every scheduler instance (sched::Scheduler::set_use_compiled).
  bool use_compiled = true;
  /// Optional decision-trace sink attached to every scheduler instance;
  /// must be thread-safe (obs::RecordingTrace is).
  obs::DecisionTrace* trace_sink = nullptr;
  /// External pool to run the drain loops on. The engine occupies EVERY
  /// worker of the pool until shutdown, so the pool must not have other
  /// concurrent users (metrics::run_repetitions lends its otherwise-idle
  /// pool this way). Null: the engine owns a pool of `threads` workers.
  util::ThreadPool* pool = nullptr;
};

/// Monotone totals since construction. After shutdown:
///   submitted == completed + cancelled,  attempts == submitted + rejected.
struct BatchEngineStats {
  std::uint64_t submitted = 0;  ///< requests accepted into the queue
  std::uint64_t completed = 0;  ///< requests fully processed (incl. failures)
  std::uint64_t rejected = 0;   ///< submissions refused (full/timeout/closed)
  std::uint64_t cancelled = 0;  ///< queued requests dropped by kCancel
  std::uint64_t sched_failures = 0;  ///< per-scheduler failed results
  std::uint64_t steals = 0;  ///< requests taken from another worker's shard
  std::size_t queue_high_water = 0;  ///< max total queue depth ever observed
};

class BatchEngine {
 public:
  /// `registry` and `on_result` are used from worker threads for the
  /// engine's whole lifetime; the registry must outlive the engine and its
  /// factories must be callable concurrently (stateless factories are).
  BatchEngine(const sched::Registry& registry, ResultFn on_result,
              BatchEngineOptions options = {});
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  std::size_t threads() const { return drain_loops_; }
  std::size_t queue_capacity() const { return capacity_; }

  /// Enqueues without blocking; false (and ++rejected) when the queue is
  /// full or the engine is shut down. Throws InvalidArgument for malformed
  /// requests (no problem/generator, empty scheduler list) — caller bugs,
  /// not backpressure.
  bool try_submit(const BatchRequest& request);

  /// Blocks until space frees; false (and ++rejected) only after shutdown.
  bool submit(const BatchRequest& request);

  /// Blocks up to `timeout`; false (and ++rejected) on timeout or shutdown.
  bool submit(const BatchRequest& request, std::chrono::nanoseconds timeout);

  /// Blocks until the queue is empty and no request is in flight. Does not
  /// close the queue — callers may keep submitting afterwards.
  void wait_idle();

  enum class Drain {
    kDrain,   ///< finish every queued request, then stop
    kCancel,  ///< drop queued requests (counted, no callback); in-flight
              ///< work still finishes
  };

  /// Closes the queue (subsequent submissions are rejected) and blocks
  /// until every worker has exited its drain loop. Idempotent; the second
  /// call's mode is ignored.
  void shutdown(Drain mode = Drain::kDrain);

  BatchEngineStats stats() const;

 private:
  struct Worker;
  struct Shard;

  void worker_loop(Worker& worker);
  /// Blocks until a request lands in `worker.request` (own shard first,
  /// then stealing); false once the engine is closed and drained.
  bool pop(Worker& worker);
  bool pop_own(Worker& worker);
  bool steal_into(Worker& worker);
  void process(Worker& worker, const BatchRequest& request);
  bool enqueue_locked(const BatchRequest& request);
  void note_request_done();
  void note_sched_failure();

  const sched::Registry& registry_;
  ResultFn on_result_;
  BatchEngineOptions options_;

  // Locking: mu_ serializes submissions and guards closed_ / the condition
  // variables; each shard's own mutex guards its ring. Lock order is
  // mu_ -> shard.mu (submit) or shard.mu alone (workers); a thief never
  // holds two shard locks at once (stolen requests go through the worker's
  // staging buffer), so the order cannot cycle. Counters are atomics so the
  // hot worker paths and stats() never touch mu_.
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::condition_variable exited_;
  std::size_t capacity_ = 0;  // total bound across all shards
  std::size_t rr_next_ = 0;   // round-robin submit cursor; guarded by mu_
  bool closed_ = false;       // guarded by mu_
  std::atomic<std::size_t> total_size_{0};  // queued across all shards
  std::atomic<std::size_t> in_flight_{0};   // popped, not yet completed
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> sched_failures_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> high_water_{0};
  std::chrono::steady_clock::time_point first_submit_{};  // guarded by mu_
  bool saw_submit_ = false;                               // guarded by mu_

  std::vector<std::unique_ptr<Shard>> shards_;  // one per drain loop
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t drain_loops_ = 0;
  std::size_t loops_running_ = 0;  // guarded by mu_
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

}  // namespace hdlts::svc
