#include "hdlts/svc/batch_engine.hpp"

#include <array>
#include <map>
#include <optional>
#include <utility>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::svc {

namespace {

/// Latency buckets in milliseconds: a 1k-task compiled schedule call sits
/// around a few ms, the fig-bench cells well under 1 ms.
constexpr std::array<double, 13> kLatencyBoundsMs = {
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    1000.0};

double elapsed_ms(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

/// Per-worker recycled state. Everything here reaches its high-water mark
/// during warm-up and is only rewound/overwritten afterwards, which is what
/// keeps the steady state allocation-free for direct-problem requests.
struct BatchEngine::Worker {
  struct CacheEntry {
    sched::SchedulerPtr scheduler;
    obs::Histogram* latency = nullptr;
  };

  BatchRequest request;          // pop target; strings keep their capacity
  sim::Schedule schedule{0, 1};  // recycled via Schedule::reset
  std::string error;             // failure-path message buffer
  std::optional<sim::Workload> workload;  // generated-request storage
  std::optional<sim::Problem> problem;
  std::map<std::string, CacheEntry, std::less<>> cache;  // by scheduler name
};

BatchEngine::BatchEngine(const sched::Registry& registry, ResultFn on_result,
                         BatchEngineOptions options)
    : registry_(registry),
      on_result_(std::move(on_result)),
      options_(options) {
  if (options_.queue_capacity == 0) {
    throw InvalidArgument("BatchEngine queue_capacity must be >= 1");
  }
  if (!on_result_) {
    throw InvalidArgument("BatchEngine needs a result callback");
  }
  slots_.resize(options_.queue_capacity);

  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    pool = owned_pool_.get();
  }
  drain_loops_ = pool->size();
  workers_.reserve(drain_loops_);
  for (std::size_t i = 0; i < drain_loops_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  loops_running_ = drain_loops_;
  for (std::size_t i = 0; i < drain_loops_; ++i) {
    Worker* worker = workers_[i].get();
    pool->submit([this, worker] { worker_loop(*worker); });
  }
}

BatchEngine::~BatchEngine() {
  shutdown(Drain::kDrain);
  // Own pool: joining its threads here (after every drain loop exited) is
  // immediate. External pool: the loops have already returned its workers.
  owned_pool_.reset();
}

bool BatchEngine::enqueue_locked(const BatchRequest& request) {
  // Copy-assign into the recycled ring slot: after one lap around the ring
  // the slot's strings/vector are at capacity and the copy allocates
  // nothing (same-shape steady state).
  slots_[(head_ + size_) % slots_.size()] = request;
  ++size_;
  ++stats_.submitted;
  if (!saw_submit_) {
    saw_submit_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
  if (size_ > stats_.queue_high_water) {
    stats_.queue_high_water = size_;
    static obs::Gauge& high_water =
        obs::MetricRegistry::global().gauge("svc.batch.queue_high_water");
    high_water.record_max(static_cast<double>(size_));
  }
  static obs::Counter& submitted =
      obs::MetricRegistry::global().counter("svc.batch.submitted");
  submitted.add(1);
  not_empty_.notify_one();
  return true;
}

namespace {

void check_request(const BatchRequest& request) {
  if ((request.problem == nullptr) == (request.generator == nullptr)) {
    throw InvalidArgument(
        "BatchRequest needs exactly one of problem/generator");
  }
  if (request.schedulers.empty()) {
    throw InvalidArgument("BatchRequest needs >= 1 scheduler name");
  }
}

}  // namespace

bool BatchEngine::try_submit(const BatchRequest& request) {
  check_request(request);
  std::lock_guard lock(mu_);
  if (closed_ || size_ == slots_.size()) {
    ++stats_.rejected;
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

bool BatchEngine::submit(const BatchRequest& request) {
  check_request(request);
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || size_ < slots_.size(); });
  if (closed_) {
    ++stats_.rejected;
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

bool BatchEngine::submit(const BatchRequest& request,
                         std::chrono::nanoseconds timeout) {
  check_request(request);
  std::unique_lock lock(mu_);
  const bool space = not_full_.wait_for(
      lock, timeout, [this] { return closed_ || size_ < slots_.size(); });
  if (!space || closed_) {
    ++stats_.rejected;
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

void BatchEngine::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return size_ == 0 && in_flight_ == 0; });
  if (saw_submit_ && stats_.completed > 0) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      first_submit_)
            .count();
    if (secs > 0.0) {
      static obs::Gauge& rps =
          obs::MetricRegistry::global().gauge("svc.batch.throughput_rps");
      rps.set(static_cast<double>(stats_.completed) / secs);
    }
  }
}

void BatchEngine::shutdown(Drain mode) {
  {
    std::unique_lock lock(mu_);
    if (!closed_) {
      closed_ = true;
      if (mode == Drain::kCancel && size_ > 0) {
        stats_.cancelled += size_;
        static obs::Counter& cancelled =
            obs::MetricRegistry::global().counter("svc.batch.cancelled");
        cancelled.add(size_);
        size_ = 0;  // slots keep their capacity for nothing — engine is done
      }
      not_empty_.notify_all();
      not_full_.notify_all();
    }
    exited_.wait(lock, [this] { return loops_running_ == 0; });
  }
  wait_idle();  // no-op by now; refreshes the throughput gauge
}

BatchEngineStats BatchEngine::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

bool BatchEngine::pop(BatchRequest& out) {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
  if (size_ == 0) return false;  // closed and drained (or cancelled)
  out = slots_[head_];
  head_ = (head_ + 1) % slots_.size();
  --size_;
  ++in_flight_;
  not_full_.notify_one();
  return true;
}

void BatchEngine::note_request_done() {
  std::lock_guard lock(mu_);
  --in_flight_;
  ++stats_.completed;
  static obs::Counter& completed =
      obs::MetricRegistry::global().counter("svc.batch.completed");
  completed.add(1);
  if (size_ == 0 && in_flight_ == 0) idle_.notify_all();
}

void BatchEngine::worker_loop(Worker& worker) {
  for (;;) {
    if (!pop(worker.request)) break;
    process(worker, worker.request);
    note_request_done();
  }
  std::lock_guard lock(mu_);
  --loops_running_;
  if (loops_running_ == 0) exited_.notify_all();
}

void BatchEngine::process(Worker& worker, const BatchRequest& request) {
  const obs::TimingSpan span("svc.batch.request");

  const sim::Problem* problem = request.problem;
  if (request.generator != nullptr) {
    try {
      worker.problem.reset();  // points into the workload being replaced
      worker.workload.emplace((*request.generator)(request.seed));
      worker.problem.emplace(*worker.workload);
      problem = &*worker.problem;
    } catch (const std::exception& e) {
      worker.error = e.what();
      for (std::size_t i = 0; i < request.schedulers.size(); ++i) {
        BatchResult result;
        result.id = request.id;
        result.seed = request.seed;
        result.scheduler = request.schedulers[i];
        result.scheduler_index = i;
        result.error = worker.error;
        note_sched_failure();
        on_result_(result);
      }
      return;
    }
  }

  for (std::size_t i = 0; i < request.schedulers.size(); ++i) {
    const std::string& name = request.schedulers[i];
    BatchResult result;
    result.id = request.id;
    result.seed = request.seed;
    result.scheduler = name;
    result.scheduler_index = i;
    result.problem = problem;
    try {
      auto it = worker.cache.find(name);
      if (it == worker.cache.end()) {
        // Once per (worker, scheduler name): instantiate and configure the
        // scheduler and register its latency histogram. Steady-state
        // requests only hit the map lookup above.
        Worker::CacheEntry entry;
        entry.scheduler = registry_.make(name);
        entry.scheduler->set_use_compiled(options_.use_compiled);
        entry.scheduler->set_trace_sink(options_.trace_sink);
        entry.latency = &obs::MetricRegistry::global().histogram(
            "svc.batch.latency_ms." + name, kLatencyBoundsMs);
        it = worker.cache.emplace(name, std::move(entry)).first;
      }
      const auto t0 = std::chrono::steady_clock::now();
      it->second.scheduler->schedule_into(*problem, worker.schedule);
      const auto t1 = std::chrono::steady_clock::now();
      it->second.latency->observe(elapsed_ms(t0, t1));
      if (options_.check_schedules) {
        const auto violations = worker.schedule.validate(*problem);
        if (!violations.empty()) {
          // Report every violation, not just the first — a corrupted
          // schedule usually trips several invariants and the full list is
          // what identifies the bug.
          worker.error = violations.front();
          for (std::size_t v = 1; v < violations.size(); ++v) {
            worker.error += "; " + violations[v];
          }
          result.error = worker.error;
          static obs::Counter& check_violations =
              obs::MetricRegistry::global().counter(
                  "svc.batch.check_violations");
          check_violations.add(violations.size());
          note_sched_failure();
          on_result_(result);
          continue;
        }
      }
      result.ok = true;
      result.makespan = worker.schedule.makespan();
      result.schedule = &worker.schedule;
    } catch (const std::exception& e) {
      worker.error = e.what();
      result.error = worker.error;
      note_sched_failure();
    }
    on_result_(result);
  }
}

void BatchEngine::note_sched_failure() {
  {
    std::lock_guard lock(mu_);
    ++stats_.sched_failures;
  }
  static obs::Counter& failures =
      obs::MetricRegistry::global().counter("svc.batch.sched_failures");
  failures.add(1);
}

}  // namespace hdlts::svc
