#include "hdlts/svc/batch_engine.hpp"

#include <array>
#include <map>
#include <optional>
#include <utility>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/util/error.hpp"

namespace hdlts::svc {

namespace {

/// Latency buckets in milliseconds: a 1k-task compiled schedule call sits
/// around a few ms, the fig-bench cells well under 1 ms.
constexpr std::array<double, 13> kLatencyBoundsMs = {
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    1000.0};

double elapsed_ms(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

/// Per-worker recycled state. Everything here reaches its high-water mark
/// during warm-up and is only rewound/overwritten afterwards, which is what
/// keeps the steady state allocation-free for direct-problem requests.
struct BatchEngine::Worker {
  struct CacheEntry {
    sched::SchedulerPtr scheduler;
    obs::Histogram* latency = nullptr;
  };

  std::size_t index = 0;         // this worker's shard
  BatchRequest request;          // pop target; strings keep their capacity
  /// Dynamic-request state: the compiled online scheduler owns its arena /
  /// recycled Schedule / committed buffers, and the result is a recycled
  /// buffer too, so steady-state kOnline requests allocate nothing
  /// (tests/alloc_test.cpp::BatchEngineOnlineSteadyState).
  core::OnlineHdlts online;
  core::OnlineResult online_result;
  obs::Histogram* online_latency = nullptr;
  /// Stream-request state, one scheduler per (policy, pv) combination seen
  /// by this worker. compile() re-freezes the combined problem per request,
  /// so stream jobs allocate; the instances are still recycled for their
  /// warm arenas and the result buffer.
  std::map<std::pair<int, int>, core::StreamHdlts> stream;
  core::StreamResult stream_result;
  obs::Histogram* stream_latency = nullptr;
  /// Steal transfer buffer (sized up front to the worst-case half-queue):
  /// stolen requests are copied here under the victim's lock, then moved on
  /// without ever holding two shard locks. Slots recycle their capacity the
  /// same way the ring slots do.
  std::vector<BatchRequest> staging;
  sim::Schedule schedule{0, 1};  // recycled via Schedule::reset
  std::string error;             // failure-path message buffer
  std::optional<sim::Workload> workload;  // generated-request storage
  std::optional<sim::Problem> problem;
  std::map<std::string, CacheEntry, std::less<>> cache;  // by scheduler name
};

/// One worker's bounded request ring. Slots are recycled (copy-assigned), so
/// after one lap every slot's strings/vector hold their high-water capacity
/// and steady-state traffic allocates nothing. Sized to the full engine
/// capacity: round-robin submission plus stealing can concentrate every
/// queued request into one shard in the worst case.
struct BatchEngine::Shard {
  std::mutex mu;
  std::vector<BatchRequest> ring;
  std::size_t head = 0;   // next slot to pop
  std::size_t count = 0;  // queued requests in this shard
};

BatchEngine::BatchEngine(const sched::Registry& registry, ResultFn on_result,
                         BatchEngineOptions options)
    : registry_(registry),
      on_result_(std::move(on_result)),
      options_(options) {
  if (options_.queue_capacity == 0) {
    throw InvalidArgument("BatchEngine queue_capacity must be >= 1");
  }
  if (!on_result_) {
    throw InvalidArgument("BatchEngine needs a result callback");
  }
  capacity_ = options_.queue_capacity;

  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    pool = owned_pool_.get();
  }
  drain_loops_ = pool->size();
  shards_.reserve(drain_loops_);
  workers_.reserve(drain_loops_);
  for (std::size_t i = 0; i < drain_loops_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->ring.resize(capacity_);
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = i;
    // Worst-case steal is half of a full victim queue (rounded up).
    workers_.back()->staging.resize(capacity_ / 2 + 1);
  }
  loops_running_ = drain_loops_;
  for (std::size_t i = 0; i < drain_loops_; ++i) {
    Worker* worker = workers_[i].get();
    pool->submit([this, worker] { worker_loop(*worker); });
  }
}

BatchEngine::~BatchEngine() {
  shutdown(Drain::kDrain);
  // Own pool: joining its threads here (after every drain loop exited) is
  // immediate. External pool: the loops have already returned its workers.
  owned_pool_.reset();
}

namespace {

// Live-depth gauges for the runtime monitor (svc.batch.queue_high_water only
// records the max). Function-local statics register once, during warm-up;
// set() is a relaxed store, keeping the steady state allocation-free.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricRegistry::global().gauge("svc.batch.queue_depth");
  return g;
}

obs::Gauge& in_flight_gauge() {
  static obs::Gauge& g =
      obs::MetricRegistry::global().gauge("svc.batch.in_flight");
  return g;
}

}  // namespace

bool BatchEngine::enqueue_locked(const BatchRequest& request) {
  // Deal round-robin across shards; copy-assign into the recycled ring slot
  // (after one lap the slot's strings/vector are at capacity and the copy
  // allocates nothing — same-shape steady state).
  Shard& shard = *shards_[rr_next_];
  rr_next_ = (rr_next_ + 1) % shards_.size();
  {
    std::lock_guard slock(shard.mu);
    shard.ring[(shard.head + shard.count) % capacity_] = request;
    ++shard.count;
  }
  const std::size_t total =
      total_size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!saw_submit_) {
    saw_submit_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (total > hw && !high_water_.compare_exchange_weak(
                           hw, total, std::memory_order_relaxed)) {
  }
  if (total > hw) {
    static obs::Gauge& high_water =
        obs::MetricRegistry::global().gauge("svc.batch.queue_high_water");
    high_water.record_max(static_cast<double>(total));
  }
  static obs::Counter& submitted =
      obs::MetricRegistry::global().counter("svc.batch.submitted");
  submitted.add(1);
  queue_depth_gauge().set(static_cast<double>(total));
  not_empty_.notify_one();
  return true;
}

namespace {

void check_request(const BatchRequest& request) {
  if (request.job == BatchJob::kStream) {
    if (request.problem != nullptr || request.generator != nullptr) {
      throw InvalidArgument(
          "kStream BatchRequest must leave problem/generator unset");
    }
    if (request.arrivals == nullptr || request.arrivals->empty()) {
      throw InvalidArgument("kStream BatchRequest needs >= 1 arrival");
    }
    if (!request.schedulers.empty()) {
      throw InvalidArgument(
          "kStream BatchRequest must leave schedulers empty");
    }
    return;
  }
  if (request.arrivals != nullptr) {
    throw InvalidArgument("arrivals are only valid on kStream requests");
  }
  if ((request.problem == nullptr) == (request.generator == nullptr)) {
    throw InvalidArgument(
        "BatchRequest needs exactly one of problem/generator");
  }
  if (request.job == BatchJob::kOnline) {
    if (!request.schedulers.empty()) {
      throw InvalidArgument(
          "kOnline BatchRequest must leave schedulers empty");
    }
  } else if (request.schedulers.empty()) {
    throw InvalidArgument("BatchRequest needs >= 1 scheduler name");
  }
}

}  // namespace

bool BatchEngine::try_submit(const BatchRequest& request) {
  check_request(request);
  std::lock_guard lock(mu_);
  if (closed_ ||
      total_size_.load(std::memory_order_acquire) >= capacity_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

bool BatchEngine::submit(const BatchRequest& request) {
  check_request(request);
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [this] {
    return closed_ || total_size_.load(std::memory_order_acquire) < capacity_;
  });
  if (closed_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

bool BatchEngine::submit(const BatchRequest& request,
                         std::chrono::nanoseconds timeout) {
  check_request(request);
  std::unique_lock lock(mu_);
  const bool space = not_full_.wait_for(lock, timeout, [this] {
    return closed_ || total_size_.load(std::memory_order_acquire) < capacity_;
  });
  if (!space || closed_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::MetricRegistry::global().counter("svc.batch.rejected");
    rejected.add(1);
    return false;
  }
  return enqueue_locked(request);
}

void BatchEngine::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] {
    return total_size_.load(std::memory_order_acquire) == 0 &&
           in_flight_.load(std::memory_order_acquire) == 0;
  });
  const std::uint64_t completed =
      completed_.load(std::memory_order_relaxed);
  if (saw_submit_ && completed > 0) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      first_submit_)
            .count();
    if (secs > 0.0) {
      static obs::Gauge& rps =
          obs::MetricRegistry::global().gauge("svc.batch.throughput_rps");
      rps.set(static_cast<double>(completed) / secs);
    }
  }
}

void BatchEngine::shutdown(Drain mode) {
  {
    std::unique_lock lock(mu_);
    if (!closed_) {
      closed_ = true;
      if (mode == Drain::kCancel) {
        // Sweep every shard. A batch a thief has already copied out of a
        // victim ring is in flight from the engine's point of view and
        // still finishes (threads cannot be interrupted mid-transfer any
        // more than mid-schedule).
        std::size_t removed = 0;
        for (auto& shard : shards_) {
          std::lock_guard slock(shard->mu);
          removed += shard->count;
          shard->count = 0;
          shard->head = 0;
        }
        if (removed > 0) {
          cancelled_.fetch_add(removed, std::memory_order_relaxed);
          static obs::Counter& cancelled =
              obs::MetricRegistry::global().counter("svc.batch.cancelled");
          cancelled.add(removed);
          const std::size_t queued =
              total_size_.fetch_sub(removed, std::memory_order_acq_rel) -
              removed;
          queue_depth_gauge().set(static_cast<double>(queued));
        }
      }
      not_empty_.notify_all();
      not_full_.notify_all();
      if (total_size_.load(std::memory_order_acquire) == 0 &&
          in_flight_.load(std::memory_order_acquire) == 0) {
        idle_.notify_all();
      }
    }
    exited_.wait(lock, [this] { return loops_running_ == 0; });
  }
  wait_idle();  // no-op by now; refreshes the throughput gauge
}

BatchEngineStats BatchEngine::stats() const {
  BatchEngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.sched_failures = sched_failures_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.queue_high_water = high_water_.load(std::memory_order_relaxed);
  return s;
}

bool BatchEngine::pop(Worker& worker) {
  for (;;) {
    if (pop_own(worker) || steal_into(worker)) return true;
    std::unique_lock lock(mu_);
    // total_size_ > 0 with every shard empty is possible for the instants a
    // stolen batch sits in a thief's staging buffer; the wait predicate then
    // passes immediately and the scan retries, which is a bounded busy loop
    // because the thief re-queues its surplus before processing anything.
    not_empty_.wait(lock, [this] {
      return closed_ || total_size_.load(std::memory_order_acquire) > 0;
    });
    if (closed_ && total_size_.load(std::memory_order_acquire) == 0) {
      return false;  // closed and drained (or cancelled)
    }
  }
}

bool BatchEngine::pop_own(Worker& worker) {
  Shard& shard = *shards_[worker.index];
  {
    std::lock_guard slock(shard.mu);
    if (shard.count == 0) return false;
    // Copy-assign keeps worker.request's strings/vector at capacity.
    worker.request = shard.ring[shard.head];
    shard.head = (shard.head + 1) % capacity_;
    --shard.count;
  }
  // Claim before releasing the queue slot so wait_idle can never observe
  // total == 0 && in_flight == 0 while a request is between the two.
  const std::size_t flying =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const std::size_t queued =
      total_size_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  in_flight_gauge().set(static_cast<double>(flying));
  queue_depth_gauge().set(static_cast<double>(queued));
  { std::lock_guard lock(mu_); }  // pairs with the not_full_ wait predicate
  not_full_.notify_one();
  return true;
}

bool BatchEngine::steal_into(Worker& worker) {
  const std::size_t nshards = shards_.size();
  for (std::size_t d = 1; d < nshards; ++d) {
    Shard& victim = *shards_[(worker.index + d) % nshards];
    std::size_t k = 0;
    {
      std::lock_guard vlock(victim.mu);
      if (victim.count == 0) continue;
      // Steal the younger half (rounded up), leaving the victim the front
      // half it is about to pop anyway. staging[0] gets the oldest stolen
      // request so steals preserve rough FIFO order.
      k = (victim.count + 1) / 2;
      const std::size_t first = victim.count - k;
      for (std::size_t j = 0; j < k; ++j) {
        worker.staging[j] =
            victim.ring[(victim.head + first + j) % capacity_];
      }
      victim.count -= k;
    }
    if (k > 1) {
      // Re-queue the surplus before processing anything so other idle
      // workers (and wait predicates) can see it.
      Shard& own = *shards_[worker.index];
      std::lock_guard olock(own.mu);
      for (std::size_t j = 1; j < k; ++j) {
        own.ring[(own.head + own.count) % capacity_] = worker.staging[j];
        ++own.count;
      }
    }
    worker.request = worker.staging[0];
    steals_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& steals =
        obs::MetricRegistry::global().counter("svc.batch.steals");
    steals.add(1);
    const std::size_t flying =
        in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    const std::size_t queued =
        total_size_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    in_flight_gauge().set(static_cast<double>(flying));
    queue_depth_gauge().set(static_cast<double>(queued));
    { std::lock_guard lock(mu_); }  // pairs with the not_full_ wait predicate
    not_full_.notify_one();
    return true;
  }
  return false;
}

void BatchEngine::note_request_done() {
  completed_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& completed =
      obs::MetricRegistry::global().counter("svc.batch.completed");
  completed.add(1);
  const std::size_t was_flying =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_gauge().set(static_cast<double>(was_flying - 1));
  if (was_flying == 1 &&
      total_size_.load(std::memory_order_acquire) == 0) {
    { std::lock_guard lock(mu_); }  // pairs with the wait_idle predicate
    idle_.notify_all();
  }
}

void BatchEngine::worker_loop(Worker& worker) {
  for (;;) {
    if (!pop(worker)) break;
    process(worker, worker.request);
    note_request_done();
  }
  std::lock_guard lock(mu_);
  --loops_running_;
  if (loops_running_ == 0) exited_.notify_all();
}

void BatchEngine::process(Worker& worker, const BatchRequest& request) {
  const obs::TimingSpan span("svc.batch.request");

  if (request.job == BatchJob::kStream) {
    // Stream request: freeze the arrival list into one combined problem and
    // schedule it; one "hdlts-stream" result. The StreamHdlts instance is
    // recycled per (policy, pv) combination for its warm arena.
    BatchResult result;
    result.id = request.id;
    result.seed = request.seed;
    result.scheduler = "hdlts-stream";
    try {
      if (worker.stream_latency == nullptr) {
        worker.stream_latency = &obs::MetricRegistry::global().histogram(
            "svc.batch.latency_ms.hdlts-stream", kLatencyBoundsMs);
      }
      const auto key =
          std::make_pair(static_cast<int>(request.stream_options.policy),
                         static_cast<int>(request.stream_options.pv));
      auto it = worker.stream.find(key);
      if (it == worker.stream.end()) {
        it = worker.stream
                 .emplace(key, core::StreamHdlts(request.stream_options))
                 .first;
      }
      const auto t0 = std::chrono::steady_clock::now();
      it->second.compile(*request.arrivals);
      it->second.run_into(worker.stream_result);
      const auto t1 = std::chrono::steady_clock::now();
      worker.stream_latency->observe(elapsed_ms(t0, t1));
      result.ok = true;
      result.makespan = worker.stream_result.makespan;
      result.stream = &worker.stream_result;
    } catch (const std::exception& e) {
      worker.error = e.what();
      result.error = worker.error;
      note_sched_failure();
    }
    on_result_(result);
    return;
  }

  const sim::Problem* problem = request.problem;
  if (request.generator != nullptr) {
    try {
      worker.problem.reset();  // points into the workload being replaced
      worker.workload.emplace((*request.generator)(request.seed));
      worker.problem.emplace(*worker.workload);
      problem = &*worker.problem;
    } catch (const std::exception& e) {
      worker.error = e.what();
      if (request.job == BatchJob::kOnline) {
        BatchResult result;
        result.id = request.id;
        result.seed = request.seed;
        result.scheduler = "hdlts-online";
        result.error = worker.error;
        note_sched_failure();
        on_result_(result);
        return;
      }
      for (std::size_t i = 0; i < request.schedulers.size(); ++i) {
        BatchResult result;
        result.id = request.id;
        result.seed = request.seed;
        result.scheduler = request.schedulers[i];
        result.scheduler_index = i;
        result.error = worker.error;
        note_sched_failure();
        on_result_(result);
      }
      return;
    }
  }

  if (request.job == BatchJob::kOnline) {
    // Dynamic request: one compiled failure-injection run, one result. The
    // worker's OnlineHdlts and OnlineResult are recycled across requests, so
    // the steady state allocates nothing (the request's fault-plan vector
    // already lives in the recycled ring slot).
    BatchResult result;
    result.id = request.id;
    result.seed = request.seed;
    result.scheduler = "hdlts-online";
    result.problem = problem;
    try {
      if (worker.online_latency == nullptr) {
        worker.online_latency = &obs::MetricRegistry::global().histogram(
            "svc.batch.latency_ms.hdlts-online", kLatencyBoundsMs);
      }
      const auto t0 = std::chrono::steady_clock::now();
      worker.online.run_into(*problem, request.failures,
                             worker.online_result);
      const auto t1 = std::chrono::steady_clock::now();
      worker.online_latency->observe(elapsed_ms(t0, t1));
      result.ok = true;
      result.makespan = worker.online_result.makespan;
      result.online = &worker.online_result;
    } catch (const std::exception& e) {
      worker.error = e.what();
      result.error = worker.error;
      note_sched_failure();
    }
    on_result_(result);
    return;
  }

  for (std::size_t i = 0; i < request.schedulers.size(); ++i) {
    const std::string& name = request.schedulers[i];
    BatchResult result;
    result.id = request.id;
    result.seed = request.seed;
    result.scheduler = name;
    result.scheduler_index = i;
    result.problem = problem;
    try {
      auto it = worker.cache.find(name);
      if (it == worker.cache.end()) {
        // Once per (worker, scheduler name): instantiate and configure the
        // scheduler and register its latency histogram. Steady-state
        // requests only hit the map lookup above.
        Worker::CacheEntry entry;
        entry.scheduler = registry_.make(name);
        entry.scheduler->set_use_compiled(options_.use_compiled);
        entry.scheduler->set_trace_sink(options_.trace_sink);
        entry.latency = &obs::MetricRegistry::global().histogram(
            "svc.batch.latency_ms." + name, kLatencyBoundsMs);
        it = worker.cache.emplace(name, std::move(entry)).first;
      }
      const auto t0 = std::chrono::steady_clock::now();
      it->second.scheduler->schedule_into(*problem, worker.schedule);
      const auto t1 = std::chrono::steady_clock::now();
      it->second.latency->observe(elapsed_ms(t0, t1));
      if (options_.check_schedules) {
        const auto violations = worker.schedule.validate(*problem);
        if (!violations.empty()) {
          // Report every violation, not just the first — a corrupted
          // schedule usually trips several invariants and the full list is
          // what identifies the bug.
          worker.error = violations.front();
          for (std::size_t v = 1; v < violations.size(); ++v) {
            worker.error += "; " + violations[v];
          }
          result.error = worker.error;
          static obs::Counter& check_violations =
              obs::MetricRegistry::global().counter(
                  "svc.batch.check_violations");
          check_violations.add(violations.size());
          note_sched_failure();
          on_result_(result);
          continue;
        }
      }
      result.ok = true;
      result.makespan = worker.schedule.makespan();
      result.schedule = &worker.schedule;
    } catch (const std::exception& e) {
      worker.error = e.what();
      result.error = worker.error;
      note_sched_failure();
    }
    on_result_(result);
  }
}

void BatchEngine::note_sched_failure() {
  sched_failures_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& failures =
      obs::MetricRegistry::global().counter("svc.batch.sched_failures");
  failures.add(1);
}

}  // namespace hdlts::svc
