// Heterogeneous Dynamic List Task Scheduling (HDLTS) — the paper's
// contribution (§IV, Algorithms 1 and 2).
//
// Three phases:
//  1. Effective entry-task duplication: after the entry task is placed on its
//     min-EFT processor, it is duplicated (from t = 0) on every other
//     processor where the duplicate finishes before the entry's output could
//     arrive over the network (Algorithm 1) — so children start locally.
//  2. Dynamic task prioritization: only *independent* tasks (all parents
//     finished) sit in the Independent Task Queue (ITQ); after every
//     assignment the penalty value PV(v) = sample standard deviation of
//     EFT(v, p) over all processors is recomputed, so processor availability
//     feeds back into priorities.
//  3. CPU selection: the highest-PV task goes to its min-EFT processor, with
//     EST = max(ready, avail) (end-of-queue; the paper's Table I trace shows
//     no insertion).
//
// Semantics pinned by reproducing Table I exactly (see DESIGN.md): PV uses
// the n-1 (sample) standard deviation, duplicates occupy their processor
// from t = 0, and children read the entry's output from the cheapest copy.
//
// Implementation: the inner loop is incremental. Each ITQ entry caches its
// EFT row and PV moments; after a placement only the columns of processors
// whose availability changed (sim::Schedule::procs_changed_since) are
// recomputed, and the PV follows in O(log P) per changed column (core/pv.hpp).
// Bit-identical to the brute-force recompute — enforced differentially
// against core::ReferenceHdlts in tests/incremental_equiv_test.cpp; see
// docs/ALGORITHMS.md "Complexity & incremental state".
#pragma once

#include <limits>
#include <vector>

#include "hdlts/core/pv.hpp"
#include "hdlts/sched/registry.hpp"
#include "hdlts/sched/scheduler.hpp"

namespace hdlts::core {

/// When to duplicate the entry task on a non-primary processor (Algorithm 1
/// leaves the quantifier over children ambiguous; both reproduce Table I).
enum class DuplicationRule {
  kOff,                  ///< never duplicate (ablation)
  kAnyChildBenefits,     ///< duplicate if it helps at least one child
  kAllChildrenBenefit,   ///< duplicate only if it helps every child
};

struct HdltsOptions {
  DuplicationRule duplication = DuplicationRule::kAnyChildBenefits;
  PvKind pv = PvKind::kSampleStddev;
  /// Idle-slot insertion for EST (off in the paper; ablation toggle).
  bool insertion = false;
  /// Recompute PVs after every assignment (the paper's "dynamic" list).
  /// When false, a task's PV is frozen when it enters the ITQ (ablation:
  /// the conventional static list).
  bool dynamic_priorities = true;
  /// Extension (paper §VI direction): on multi-entry workflows the pseudo
  /// entry has zero cost, so Algorithm 1 buys nothing — the exact reason
  /// HDLTS loses its edge on Montage (see EXPERIMENTS.md). When set, the
  /// duplication rule is applied to every *source* task (a task whose
  /// parents are all zero-cost pseudo tasks, or any entry), with duplicates
  /// placed into idle slots instead of assuming empty processors. On
  /// single-entry graphs with the entry scheduled first this reduces to
  /// Algorithm 1 exactly.
  bool duplicate_all_sources = false;
  /// Minimum work (EFT cells to recompute in one round) before the compiled
  /// path fans the per-entry refresh out over the borrowed thread pool
  /// (sched::Scheduler::set_thread_pool). Below it, or with no pool
  /// attached, the refresh runs serially; either way the schedule is
  /// bit-identical (entries write disjoint state, and the selection rule is
  /// order-independent). Small rounds stay serial because a team dispatch
  /// costs more than recomputing a few columns.
  std::size_t parallel_min_work = 4096;
  /// Multi-objective extension (core::EnergyAwareHdlts): weight of dynamic
  /// energy in the CPU selection rule, which becomes
  ///   argmin over eligible p of EFT(v, p) + energy_weight * E_dyn(v, p)
  /// with E_dyn the cached sim::CompiledProblem::dyn_energy row. At exactly
  /// 0.0 the baseline min-EFT scan runs verbatim — the schedule is
  /// bit-identical to plain HDLTS (enforced in tests/pareto_test.cpp).
  double energy_weight = 0.0;
  /// Absolute completion deadline for the weighted rule: processors whose
  /// EFT would overrun it are ineligible; when every processor overruns
  /// (or at energy_weight 0) selection falls back to pure min-EFT. +inf
  /// (the default) makes every processor eligible.
  double deadline = std::numeric_limits<double>::infinity();
};

/// One scheduling step, mirroring a row of the paper's Table I.
struct HdltsStep {
  std::vector<graph::TaskId> ready;  ///< ITQ at selection time (id order)
  std::vector<double> pv;            ///< penalty values, parallel to `ready`
  graph::TaskId selected = graph::kInvalidTask;
  std::vector<double> eft;           ///< EFT of `selected` per alive processor
  platform::ProcId chosen = platform::kInvalidProc;
};

struct HdltsTrace {
  std::vector<HdltsStep> steps;
  /// Processors that received an entry-task duplicate.
  std::vector<platform::ProcId> duplicated_on;
};

class Hdlts : public sched::Scheduler {
 public:
  explicit Hdlts(HdltsOptions options = {}) : options_(options) {}

  std::string name() const override { return "hdlts"; }
  const HdltsOptions& options() const { return options_; }

  sim::Schedule schedule(const sim::Problem& problem) const override;

  /// The zero-allocation entry point: on the compiled path (the default)
  /// with a warmed scratch arena and a recycled `out`, a steady-state call
  /// performs no heap allocation at all (tests/alloc_test.cpp).
  void schedule_into(const sim::Problem& problem,
                     sim::Schedule& out) const override;

  /// Like schedule() but records every step (used to regenerate Table I).
  /// Always runs the legacy path (tracing is a cold diagnostic).
  sim::Schedule schedule_traced(const sim::Problem& problem,
                                HdltsTrace* trace) const;

 private:
  /// Original implementation over the mutable TaskGraph/CostTable reads.
  /// `sink` (sched::Scheduler::trace_sink, may be null) receives the same
  /// decision events as the compiled path, in the same order.
  void run_legacy(const sim::Problem& problem, HdltsTrace* trace,
                  sim::Schedule& schedule) const;
  /// Flat fast path over sim::CompiledProblem: task-indexed SoA ready/EFT
  /// rows and arena-backed PV reduction trees, bit-identical to run_legacy
  /// (same FP op sequences; enforced in tests/compiled_equiv_test.cpp).
  /// Dispatches to run_compiled_impl on whether a trace sink is attached.
  void run_compiled(const sim::CompiledProblem& problem,
                    sim::Schedule& schedule) const;
  /// The hot loop, templated on a compile-time sink policy (obs::NullSink /
  /// obs::SinkRef): with NullSink every telemetry block is erased by
  /// `if constexpr`, so the uninstrumented path keeps its zero-allocation
  /// steady state and bit-identical schedules.
  template <typename Sink>
  void run_compiled_impl(const sim::CompiledProblem& problem,
                         sim::Schedule& schedule, Sink sink) const;

  HdltsOptions options_;
};

/// A registry with the baselines plus "hdlts", its ablation variants
/// ("hdlts-nodup", "hdlts-static", "hdlts-popstddev", "hdlts-range", ...)
/// and the multi-objective "hdlts-energy" (core::EnergyAwareHdlts).
sched::Registry default_registry();

/// The comparison set evaluated in the paper's §V, in reporting order:
/// HDLTS, HEFT, PETS, CPOP, PEFT, SDBATS.
std::vector<sched::SchedulerPtr> paper_schedulers();

}  // namespace hdlts::core
