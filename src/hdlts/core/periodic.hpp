// Periodic workflow arrivals with QoS metadata over a pre-occupied platform
// (the arXiv 2506.12415 scenario shape): workflow i arrives around i * period
// (plus bounded jitter), carries a soft or hard completion deadline derived
// from its own minimum work, and the processors are not idle at time zero —
// each lane may start with a pre-occupied busy prefix the Schedule respects.
//
// The generator is deterministic in (params, factory, seed): workflow i is
// built from a seed derived as derive_seed(seed, tag, i), never from shared
// generator state, so the arrival list is independent of evaluation order.
#pragma once

#include <cstdint>
#include <functional>

#include "hdlts/core/stream.hpp"

namespace hdlts::core {

/// Builds workflow `index` of the stream from its derived seed.
using WorkflowFactory =
    std::function<sim::Workload(std::size_t index, std::uint64_t seed)>;

struct PeriodicStreamParams {
  std::size_t count = 4;   ///< workflows in the stream
  double period = 25.0;    ///< nominal inter-arrival gap
  /// Uniform arrival jitter in [0, jitter * period); 0 = strictly periodic.
  double jitter = 0.25;
  /// Deadline slack: deadline = arrival + factor * (min work / alive procs).
  /// <= 0 disables deadlines (every arrival keeps the +inf default).
  double deadline_factor = 2.5;
  /// Probability that a deadline-bearing workflow's deadline is hard.
  double hard_fraction = 0.25;
  /// Each lane starts pre-occupied for [0, U(0, busy_fraction * period));
  /// <= 0 leaves the platform idle at time zero.
  double busy_fraction = 0.5;
};

struct PeriodicStream {
  std::vector<StreamArrival> arrivals;
  std::vector<BusyInterval> busy;
};

/// Generates a deadline-bearing periodic arrival stream plus the platform's
/// pre-occupied busy intervals. All workloads must target the same processor
/// count (enforced later by run_stream's combiner).
PeriodicStream make_periodic_stream(const PeriodicStreamParams& params,
                                    const WorkflowFactory& factory,
                                    std::uint64_t seed);

}  // namespace hdlts::core
