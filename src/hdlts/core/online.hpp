// Online HDLTS with processor-failure injection (the paper's §IV claim that
// the dynamic ITQ "will still be able to efficiently assign the tasks to the
// remaining available CPUs" when a CPU malfunctions, and its §VI future-work
// direction).
//
// Execution model: HDLTS assigns independent tasks exactly as the static
// algorithm does. When processor q fails at time T:
//   * executions that finished anywhere by T are committed (their outputs
//     remain available — already in transit / checkpointed);
//   * the execution running on q at T is lost and its task is re-queued;
//   * assignments that had not started by T (on any processor) are revoked
//     and re-queued — the scheduler reconsiders them against the reduced
//     machine set;
//   * q accepts no further work, and every new execution starts at or
//     after T.
// An execution committed while running on a then-healthy machine is still
// killed by a *later* failure of that machine: every failure in the plan is
// applied before the run can declare completion, so no surviving execution
// ever overlaps its processor's failure time. With no failures the result is
// bit-identical to the static schedule (enforced by check::OnlineValidator
// and the test suite).
#pragma once

#include <span>
#include <vector>

#include "hdlts/core/hdlts.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::core {

struct ProcFailure {
  platform::ProcId proc = platform::kInvalidProc;
  double time = 0.0;
};

struct OnlineExec {
  graph::TaskId task = graph::kInvalidTask;
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;
  /// True when this attempt was killed by a processor failure.
  bool lost = false;
};

struct OnlineResult {
  std::vector<OnlineExec> executions;
  double makespan = 0.0;
  /// False when the workflow could not finish (all processors failed).
  bool completed = false;
  std::size_t lost_executions = 0;
};

/// Runs the workflow to completion under the given failures (which must not
/// kill every processor if completion is expected). Failures are applied in
/// time order; duplicate failures of the same processor are ignored.
/// `sink` (optional) receives the run as structured events: begin, a note
/// per phase start / applied failure / lost execution, every surviving
/// execution as a placement, and an end event with the online makespan.
OnlineResult run_online(const sim::Workload& workload,
                        std::span<const ProcFailure> failures,
                        const HdltsOptions& options = {},
                        obs::DecisionTrace* sink = nullptr);

}  // namespace hdlts::core
