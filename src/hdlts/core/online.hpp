// Online HDLTS with processor-failure injection (the paper's §IV claim that
// the dynamic ITQ "will still be able to efficiently assign the tasks to the
// remaining available CPUs" when a CPU malfunctions, and its §VI future-work
// direction).
//
// Execution model: HDLTS assigns independent tasks exactly as the static
// algorithm does. When processor q fails at time T:
//   * executions that finished anywhere by T are committed (their outputs
//     remain available — already in transit / checkpointed);
//   * the execution running on q at T is lost and its task is re-queued;
//   * assignments that had not started by T (on any processor) are revoked
//     and re-queued — the scheduler reconsiders them against the reduced
//     machine set;
//   * q accepts no further work, and every new execution starts at or
//     after T.
// An execution committed while running on a then-healthy machine is still
// killed by a *later* failure of that machine: every failure in the plan is
// applied before the run can declare completion, so no surviving execution
// ever overlaps its processor's failure time. With no failures the result is
// bit-identical to the static schedule (enforced by check::OnlineValidator
// and the test suite).
//
// Two implementations produce bit-identical results (tests/dst_test.cpp,
// tests/online_test.cpp):
//   * the compiled path (OnlineHdlts, the default behind run_online) runs
//     every phase against the workload's frozen sim::CompiledProblem with
//     alive-processor column masking, arena-backed SoA ready/EFT rows,
//     incremental dirty-column EFT refresh, and simd::active() kernels —
//     after warm-up a run performs zero heap allocations (run_into);
//   * the legacy path (run_online_legacy) rebuilds a sim::Problem per phase
//     and recomputes every ITQ row per round — the reference the compiled
//     path is differential-tested against.
#pragma once

#include <span>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/arena.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::core {

struct ProcFailure {
  platform::ProcId proc = platform::kInvalidProc;
  double time = 0.0;
};

struct OnlineExec {
  graph::TaskId task = graph::kInvalidTask;
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;
  /// True when this attempt was killed by a processor failure.
  bool lost = false;
};

struct OnlineResult {
  std::vector<OnlineExec> executions;
  double makespan = 0.0;
  /// False when the workflow could not finish (all processors failed).
  bool completed = false;
  std::size_t lost_executions = 0;
};

/// Reusable online scheduler. Owns the scratch arena, the recycled Schedule,
/// and the committed/fresh execution buffers, so repeated runs over the same
/// problem shape reach a zero-heap-allocation steady state on the compiled
/// path (tests/alloc_test.cpp: OnlineCompiledSteadyState).
class OnlineHdlts {
 public:
  explicit OnlineHdlts(HdltsOptions options = {}) : options_(options) {}

  const HdltsOptions& options() const { return options_; }

  /// Compiled (default) vs legacy reference path; mirrors
  /// sched::Scheduler::set_use_compiled. The legacy path delegates to
  /// run_online_legacy and allocates freely.
  bool use_compiled() const { return use_compiled_; }
  void set_use_compiled(bool use) { use_compiled_ = use; }

  /// Runs the workflow under the fault plan. Validates (and on the compiled
  /// path freezes) the workload internally.
  OnlineResult run(const sim::Workload& workload,
                   std::span<const ProcFailure> failures,
                   obs::DecisionTrace* sink = nullptr);

  /// Compiled-path entry point over an already-frozen problem: with a warm
  /// arena and a recycled `out`, a steady-state call performs no heap
  /// allocation. With use_compiled() off this falls back to the legacy path
  /// (copying the workload; reference/negative-control only).
  void run_into(const sim::Problem& problem,
                std::span<const ProcFailure> failures, OnlineResult& out,
                obs::DecisionTrace* sink = nullptr);

 private:
  void run_compiled(const sim::Problem& problem,
                    std::span<const ProcFailure> failures, OnlineResult& out,
                    obs::DecisionTrace* sink);

  HdltsOptions options_;
  bool use_compiled_ = true;
  util::ScratchArena arena_;
  sim::Schedule schedule_{0, 1};
  std::vector<OnlineExec> committed_;  // finished or unstoppable executions
  std::vector<OnlineExec> fresh_;      // current phase's tentative executions
};

/// Runs the workflow to completion under the given failures (which must not
/// kill every processor if completion is expected). Failures are applied in
/// time order; duplicate failures of the same processor are ignored.
/// `sink` (optional) receives the run as structured events: begin, a note
/// per phase start / applied failure / lost execution, every surviving
/// execution as a placement, and an end event with the online makespan.
/// Compiled fast path; bit-identical to run_online_legacy.
OnlineResult run_online(const sim::Workload& workload,
                        std::span<const ProcFailure> failures,
                        const HdltsOptions& options = {},
                        obs::DecisionTrace* sink = nullptr);

/// Reference implementation: rebuilds the problem every phase and recomputes
/// every EFT row per round. Kept as the differential-testing oracle for the
/// compiled path (and as the allocation negative control).
OnlineResult run_online_legacy(const sim::Workload& workload,
                               std::span<const ProcFailure> failures,
                               const HdltsOptions& options = {},
                               obs::DecisionTrace* sink = nullptr);

}  // namespace hdlts::core
