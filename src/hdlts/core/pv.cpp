#include "hdlts/core/pv.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hdlts::core {

double pv_from_roots(PvKind kind, std::size_t n_leaves, double root_a,
                     double root_b) {
  const auto n = static_cast<double>(n_leaves);
  switch (kind) {
    case PvKind::kSampleStddev: {
      if (n_leaves < 2) return 0.0;
      const double sum = root_a;
      const double var = (root_b - sum * sum / n) / (n - 1.0);
      return std::sqrt(std::max(0.0, var));
    }
    case PvKind::kPopulationStddev: {
      const double sum = root_a;
      const double var = (root_b - sum * sum / n) / n;
      return std::sqrt(std::max(0.0, var));
    }
    case PvKind::kRange:
      return n_leaves == 0 ? 0.0 : root_b - root_a;
  }
  throw ContractViolation("unhandled PvKind");
}

PvAccumulator::PvAccumulator(PvKind kind, std::size_t num_procs)
    : kind_(kind),
      a_(pv_op_a(kind), num_procs),
      b_(pv_op_b(kind), num_procs) {}

void PvAccumulator::assign(std::span<const double> row) {
  a_.assign(row);
  if (kind_ == PvKind::kRange) {
    b_.assign(row);
    return;
  }
  std::vector<double> sq(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) sq[i] = pv_leaf_b(kind_, row[i]);
  b_.assign(sq);
}

void PvAccumulator::update(std::size_t i, double eft) {
  a_.update(i, eft);
  b_.update(i, pv_leaf_b(kind_, eft));
}

double PvAccumulator::pv() const {
  return pv_from_roots(kind_, a_.size(), a_.root(), b_.root());
}

double penalty_value(PvKind kind, std::span<const double> row) {
  PvAccumulator acc(kind, row.size());
  acc.assign(row);
  return acc.pv();
}

}  // namespace hdlts::core
