#include "hdlts/core/pv.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hdlts::core {

namespace {

using Op = util::ReductionTree::Op;

Op op_a(PvKind kind) { return kind == PvKind::kRange ? Op::kMin : Op::kSum; }
Op op_b(PvKind kind) { return kind == PvKind::kRange ? Op::kMax : Op::kSum; }

}  // namespace

PvAccumulator::PvAccumulator(PvKind kind, std::size_t num_procs)
    : kind_(kind), a_(op_a(kind), num_procs), b_(op_b(kind), num_procs) {}

void PvAccumulator::assign(std::span<const double> row) {
  a_.assign(row);
  if (kind_ == PvKind::kRange) {
    b_.assign(row);
    return;
  }
  std::vector<double> sq(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) sq[i] = row[i] * row[i];
  b_.assign(sq);
}

void PvAccumulator::update(std::size_t i, double eft) {
  a_.update(i, eft);
  b_.update(i, kind_ == PvKind::kRange ? eft : eft * eft);
}

double PvAccumulator::pv() const {
  const auto n = static_cast<double>(a_.size());
  switch (kind_) {
    case PvKind::kSampleStddev: {
      if (a_.size() < 2) return 0.0;
      const double sum = a_.root();
      const double var = (b_.root() - sum * sum / n) / (n - 1.0);
      return std::sqrt(std::max(0.0, var));
    }
    case PvKind::kPopulationStddev: {
      const double sum = a_.root();
      const double var = (b_.root() - sum * sum / n) / n;
      return std::sqrt(std::max(0.0, var));
    }
    case PvKind::kRange:
      return a_.size() == 0 ? 0.0 : b_.root() - a_.root();
  }
  throw ContractViolation("unhandled PvKind");
}

double penalty_value(PvKind kind, std::span<const double> row) {
  PvAccumulator acc(kind, row.size());
  acc.assign(row);
  return acc.pv();
}

}  // namespace hdlts::core
