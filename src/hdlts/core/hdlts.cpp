#include "hdlts/core/hdlts.hpp"

#include <algorithm>

#include "hdlts/sched/placement.hpp"

namespace hdlts::core {

namespace {

/// A task sitting in the ITQ. Ready times are fixed once a task becomes
/// independent (all parents are placed — and duplicated, if eligible —
/// before it enters the queue), so they are cached. The EFT row and its PV
/// moments are kept current incrementally: after each placement only the
/// columns of processors whose availability changed are recomputed.
struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;  ///< per alive processor, problem.procs() order
  std::vector<double> eft;    ///< cached EFT row, parallel to `ready`
  PvAccumulator pv;           ///< moments of `eft` (current in dynamic mode)
  double frozen_pv = 0.0;     ///< used when dynamic_priorities is off

  ItqEntry(graph::TaskId v, std::size_t np, PvKind kind)
      : task(v), ready(np), eft(np), pv(kind, np) {}
};

}  // namespace

sim::Schedule Hdlts::schedule(const sim::Problem& problem) const {
  return schedule_traced(problem, nullptr);
}

sim::Schedule Hdlts::schedule_traced(const sim::Problem& problem,
                                     HdltsTrace* trace) const {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<ItqEntry> itq;

  // Alive-processor index of each ProcId (changed-proc log entries -> column).
  constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);
  std::vector<std::size_t> column_of(problem.num_procs(), kNoColumn);
  for (std::size_t pi = 0; pi < np; ++pi) column_of[procs[pi]] = pi;

  // EFT of an ITQ entry on procs[pi] under the current schedule state.
  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double est =
        schedule.earliest_start(p, e.ready[pi], duration, options_.insertion);
    return est + duration;
  };

  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e(v, np, options_.pv);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
      e.eft[pi] = eft_of(e, pi);
    }
    e.pv.assign(e.eft);
    if (!options_.dynamic_priorities) {
      // Conventional static list: the PV is computed against the schedule
      // state at the moment the task becomes independent and never updated.
      e.frozen_pv = e.pv.pv();
    }
    itq.push_back(std::move(e));
  };

  // Recomputes, for every queued entry, exactly the EFT columns of the
  // processors `place`/`place_duplicate` touched since `mark` — the chosen
  // processor plus any duplicate hosts. Columns of untouched processors are
  // pure functions of unchanged state and stay bitwise valid.
  std::vector<std::size_t> dirty;
  std::vector<bool> dirty_seen(np, false);
  auto refresh_dirty_columns = [&](std::uint64_t mark) {
    dirty.clear();
    for (const platform::ProcId p : schedule.procs_changed_since(mark)) {
      const std::size_t pi = column_of[p];
      HDLTS_EXPECTS(pi != kNoColumn);
      if (!dirty_seen[pi]) {
        dirty_seen[pi] = true;
        dirty.push_back(pi);
      }
    }
    for (const std::size_t pi : dirty) dirty_seen[pi] = false;
    for (ItqEntry& e : itq) {
      for (const std::size_t pi : dirty) {
        const double eft = eft_of(e, pi);
        if (eft != e.eft[pi]) {
          e.eft[pi] = eft;
          e.pv.update(pi, eft);
        }
      }
    }
  };

  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) push_ready(v);
  }

  // A task is "free" when it costs nothing anywhere (pseudo entry/exit).
  auto is_free_task = [&](graph::TaskId v) {
    const auto row = problem.costs().row(v);
    for (const double c : row) {
      if (c > 0.0) return false;
    }
    return true;
  };
  // Duplication candidates: the unique entry (Algorithm 1), and — with the
  // duplicate_all_sources extension — every source task (no parents, or
  // only zero-cost pseudo parents).
  auto qualifies_for_duplication = [&](graph::TaskId v) {
    if (options_.duplication == DuplicationRule::kOff) return false;
    if (unique_entry && v == entries.front()) return true;
    if (!options_.duplicate_all_sources) return false;
    const auto parents = g.parents(v);
    if (parents.empty()) return true;
    for (const graph::Adjacent& p : parents) {
      if (!is_free_task(p.task)) return false;
    }
    return true;
  };

  // Entry/source-task duplication, Algorithm 1. Runs right after the task's
  // primary placement. When the task is the unique entry scheduled first,
  // every processor is still empty and the duplicate occupies
  // [0, W(entry, k)] — the paper's Table I behaviour; in the generalized
  // case duplicates go into idle slots.
  auto duplicate_task = [&](graph::TaskId v) {
    const auto children = g.children(v);
    if (children.empty() || is_free_task(v)) return;
    const sim::Placement& primary = schedule.placement(v);
    for (const platform::ProcId k : procs) {
      if (k == primary.proc) continue;
      const double dup_dur = problem.exec_time(v, k);
      const double dup_ready = schedule.ready_time(problem, v, k);
      const double dup_start =
          schedule.earliest_start(k, dup_ready, dup_dur, /*insertion=*/true);
      const double dup_finish = dup_start + dup_dur;
      // The duplicate "benefits" child j when it finishes before j's input
      // could arrive from the primary copy over the network.
      std::size_t benefits = 0;
      for (const graph::Adjacent& c : children) {
        const double arrival =
            primary.finish + problem.comm_time_data(c.data, primary.proc, k);
        if (dup_finish < arrival) ++benefits;
      }
      const bool do_duplicate =
          options_.duplication == DuplicationRule::kAnyChildBenefits
              ? benefits > 0
              : benefits == children.size();
      if (do_duplicate) {
        schedule.place_duplicate(v, k, dup_start, dup_finish);
        if (trace != nullptr) trace->duplicated_on.push_back(k);
      }
    }
  };

  while (!itq.empty()) {
    // Prioritize: every entry's cached PV is current (refreshed after the
    // previous placement), so a round costs O(|ITQ|) instead of O(|ITQ| * P).
    auto pv_of = [&](const ItqEntry& e) {
      return options_.dynamic_priorities ? e.pv.pv() : e.frozen_pv;
    };
    std::size_t pick = 0;
    double pick_pv = pv_of(itq[0]);
    for (std::size_t i = 1; i < itq.size(); ++i) {
      const double p = pv_of(itq[i]);
      // Highest PV wins; ties go to the lower task id for determinism (the
      // rule is order-independent, so swap-remove below cannot change picks).
      if (p > pick_pv || (p == pick_pv && itq[i].task < itq[pick].task)) {
        pick = i;
        pick_pv = p;
      }
    }

    if (trace != nullptr) {
      HdltsStep step;
      step.selected = itq[pick].task;
      step.eft = itq[pick].eft;
      for (std::size_t i = 0; i < itq.size(); ++i) {
        step.ready.push_back(itq[i].task);
        step.pv.push_back(pv_of(itq[i]));
      }
      // Present the ITQ in ascending task id, like the paper's Table I.
      std::vector<std::size_t> perm(step.ready.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
        return step.ready[a] < step.ready[b];
      });
      HdltsStep sorted;
      sorted.selected = step.selected;
      sorted.eft = step.eft;
      for (const std::size_t i : perm) {
        sorted.ready.push_back(step.ready[i]);
        sorted.pv.push_back(step.pv[i]);
      }
      trace->steps.push_back(std::move(sorted));
    }

    // Select the min-EFT processor (ties: lower processor id) from the
    // cached row, then drop the entry via swap-remove (O(1); the pick rule
    // above never depends on queue order).
    const ItqEntry chosen_entry = std::move(itq[pick]);
    if (pick + 1 != itq.size()) itq[pick] = std::move(itq.back());
    itq.pop_back();
    const std::vector<double>& row = chosen_entry.eft;
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < np; ++pi) {
      if (row[pi] < row[best]) best = pi;
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen_entry.task, proc);
    if (trace != nullptr) trace->steps.back().chosen = proc;

    const std::uint64_t mark = schedule.state_version();
    schedule.place(chosen_entry.task, proc, start, finish);
    if (qualifies_for_duplication(chosen_entry.task)) {
      duplicate_task(chosen_entry.task);
    }
    refresh_dirty_columns(mark);
    for (const graph::Adjacent& c : g.children(chosen_entry.task)) {
      if (--pending[c.task] == 0) push_ready(c.task);
    }
  }

  HDLTS_ENSURES(schedule.num_placed() == problem.num_tasks());
  return schedule;
}

sched::Registry default_registry() {
  sched::Registry r = sched::baseline_registry();
  r.add("hdlts", [] { return std::make_unique<Hdlts>(); });
  r.add("hdlts-nodup", [] {
    HdltsOptions o;
    o.duplication = DuplicationRule::kOff;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-static", [] {
    HdltsOptions o;
    o.dynamic_priorities = false;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-popstddev", [] {
    HdltsOptions o;
    o.pv = PvKind::kPopulationStddev;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-range", [] {
    HdltsOptions o;
    o.pv = PvKind::kRange;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-insertion", [] {
    HdltsOptions o;
    o.insertion = true;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-multidup", [] {
    HdltsOptions o;
    o.duplicate_all_sources = true;
    return std::make_unique<Hdlts>(o);
  });
  return r;
}

std::vector<sched::SchedulerPtr> paper_schedulers() {
  const sched::Registry r = default_registry();
  std::vector<sched::SchedulerPtr> out;
  for (const char* name : {"hdlts", "heft", "pets", "cpop", "peft", "sdbats"}) {
    out.push_back(r.make(name));
  }
  return out;
}

}  // namespace hdlts::core
