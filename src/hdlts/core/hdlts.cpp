#include "hdlts/core/hdlts.hpp"

#include <algorithm>

#include "hdlts/sched/placement.hpp"
#include "hdlts/util/stats.hpp"

namespace hdlts::core {

namespace {

double penalty_value(PvKind kind, std::span<const double> eft) {
  switch (kind) {
    case PvKind::kSampleStddev:
      return util::stddev_sample(eft);
    case PvKind::kPopulationStddev:
      return util::stddev_population(eft);
    case PvKind::kRange:
      return util::range(eft);
  }
  throw ContractViolation("unhandled PvKind");
}

/// A task sitting in the ITQ. Ready times are fixed once a task becomes
/// independent (all parents are placed before it enters the queue), so they
/// are cached; only processor availability changes between iterations.
struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;  ///< per alive processor, problem.procs() order
  double frozen_pv = 0.0;     ///< used when dynamic_priorities is off
};

}  // namespace

sim::Schedule Hdlts::schedule(const sim::Problem& problem) const {
  return schedule_traced(problem, nullptr);
}

sim::Schedule Hdlts::schedule_traced(const sim::Problem& problem,
                                     HdltsTrace* trace) const {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<ItqEntry> itq;

  // EFT of an ITQ entry on procs[pi] under the current schedule state.
  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double est =
        schedule.earliest_start(p, e.ready[pi], duration, options_.insertion);
    return est + duration;
  };
  auto eft_row = [&](const ItqEntry& e) {
    std::vector<double> row(np);
    for (std::size_t pi = 0; pi < np; ++pi) row[pi] = eft_of(e, pi);
    return row;
  };

  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    if (!options_.dynamic_priorities) {
      // Conventional static list: the PV is computed against the schedule
      // state at the moment the task becomes independent and never updated.
      e.frozen_pv = penalty_value(options_.pv, eft_row(e));
    }
    itq.push_back(std::move(e));
  };

  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) push_ready(v);
  }

  // A task is "free" when it costs nothing anywhere (pseudo entry/exit).
  auto is_free_task = [&](graph::TaskId v) {
    const auto row = problem.costs().row(v);
    for (const double c : row) {
      if (c > 0.0) return false;
    }
    return true;
  };
  // Duplication candidates: the unique entry (Algorithm 1), and — with the
  // duplicate_all_sources extension — every source task (no parents, or
  // only zero-cost pseudo parents).
  auto qualifies_for_duplication = [&](graph::TaskId v) {
    if (options_.duplication == DuplicationRule::kOff) return false;
    if (unique_entry && v == entries.front()) return true;
    if (!options_.duplicate_all_sources) return false;
    const auto parents = g.parents(v);
    if (parents.empty()) return true;
    for (const graph::Adjacent& p : parents) {
      if (!is_free_task(p.task)) return false;
    }
    return true;
  };

  // Entry/source-task duplication, Algorithm 1. Runs right after the task's
  // primary placement. When the task is the unique entry scheduled first,
  // every processor is still empty and the duplicate occupies
  // [0, W(entry, k)] — the paper's Table I behaviour; in the generalized
  // case duplicates go into idle slots.
  auto duplicate_task = [&](graph::TaskId v) {
    const auto children = g.children(v);
    if (children.empty() || is_free_task(v)) return;
    const sim::Placement& primary = schedule.placement(v);
    for (const platform::ProcId k : procs) {
      if (k == primary.proc) continue;
      const double dup_dur = problem.exec_time(v, k);
      const double dup_ready = schedule.ready_time(problem, v, k);
      const double dup_start =
          schedule.earliest_start(k, dup_ready, dup_dur, /*insertion=*/true);
      const double dup_finish = dup_start + dup_dur;
      // The duplicate "benefits" child j when it finishes before j's input
      // could arrive from the primary copy over the network.
      std::size_t benefits = 0;
      for (const graph::Adjacent& c : children) {
        const double arrival =
            primary.finish + problem.comm_time_data(c.data, primary.proc, k);
        if (dup_finish < arrival) ++benefits;
      }
      const bool do_duplicate =
          options_.duplication == DuplicationRule::kAnyChildBenefits
              ? benefits > 0
              : benefits == children.size();
      if (do_duplicate) {
        schedule.place_duplicate(v, k, dup_start, dup_finish);
        if (trace != nullptr) trace->duplicated_on.push_back(k);
      }
    }
  };

  while (!itq.empty()) {
    // Prioritize: PV per queued task (recomputed each round in dynamic mode).
    std::vector<double> pv(itq.size());
    for (std::size_t i = 0; i < itq.size(); ++i) {
      pv[i] = options_.dynamic_priorities
                  ? penalty_value(options_.pv, eft_row(itq[i]))
                  : itq[i].frozen_pv;
    }
    std::size_t pick = 0;
    for (std::size_t i = 1; i < itq.size(); ++i) {
      // Highest PV wins; ties go to the lower task id for determinism.
      if (pv[i] > pv[pick] ||
          (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
        pick = i;
      }
    }

    // Select the min-EFT processor (ties: lower processor id).
    const ItqEntry chosen_entry = std::move(itq[pick]);
    const double chosen_pv = pv[pick];
    itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto row = eft_row(chosen_entry);
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < np; ++pi) {
      if (row[pi] < row[best]) best = pi;
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen_entry.task, proc);

    if (trace != nullptr) {
      HdltsStep step;
      step.selected = chosen_entry.task;
      step.eft = row;
      step.chosen = proc;
      step.ready.push_back(chosen_entry.task);
      step.pv.push_back(chosen_pv);
      for (std::size_t i = 0; i < itq.size(); ++i) {
        step.ready.push_back(itq[i].task);
        step.pv.push_back(pv[i < pick ? i : i + 1]);
      }
      // Present the ITQ in ascending task id, like the paper's Table I.
      std::vector<std::size_t> perm(step.ready.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
        return step.ready[a] < step.ready[b];
      });
      HdltsStep sorted;
      sorted.selected = step.selected;
      sorted.eft = step.eft;
      sorted.chosen = step.chosen;
      for (const std::size_t i : perm) {
        sorted.ready.push_back(step.ready[i]);
        sorted.pv.push_back(step.pv[i]);
      }
      trace->steps.push_back(std::move(sorted));
    }

    schedule.place(chosen_entry.task, proc, start, finish);
    if (qualifies_for_duplication(chosen_entry.task)) {
      duplicate_task(chosen_entry.task);
    }
    for (const graph::Adjacent& c : g.children(chosen_entry.task)) {
      if (--pending[c.task] == 0) push_ready(c.task);
    }
  }

  HDLTS_ENSURES(schedule.num_placed() == problem.num_tasks());
  return schedule;
}

sched::Registry default_registry() {
  sched::Registry r = sched::baseline_registry();
  r.add("hdlts", [] { return std::make_unique<Hdlts>(); });
  r.add("hdlts-nodup", [] {
    HdltsOptions o;
    o.duplication = DuplicationRule::kOff;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-static", [] {
    HdltsOptions o;
    o.dynamic_priorities = false;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-popstddev", [] {
    HdltsOptions o;
    o.pv = PvKind::kPopulationStddev;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-range", [] {
    HdltsOptions o;
    o.pv = PvKind::kRange;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-insertion", [] {
    HdltsOptions o;
    o.insertion = true;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-multidup", [] {
    HdltsOptions o;
    o.duplicate_all_sources = true;
    return std::make_unique<Hdlts>(o);
  });
  return r;
}

std::vector<sched::SchedulerPtr> paper_schedulers() {
  const sched::Registry r = default_registry();
  std::vector<sched::SchedulerPtr> out;
  for (const char* name : {"hdlts", "heft", "pets", "cpop", "peft", "sdbats"}) {
    out.push_back(r.make(name));
  }
  return out;
}

}  // namespace hdlts::core
