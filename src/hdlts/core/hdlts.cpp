#include "hdlts/core/hdlts.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "hdlts/core/energy_aware.hpp"
#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/span.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/sched/placement.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/util/thread_pool.hpp"

namespace hdlts::core {

namespace {

/// Registry references cached once (function-local static), so steady-state
/// calls touch only relaxed atomics: the hot loops aggregate into plain
/// locals and flush here once per schedule call.
struct HdltsMetrics {
  obs::Counter& calls;
  obs::Counter& tasks_placed;
  obs::Counter& duplicates_placed;
  obs::Counter& eft_refreshes;
  obs::Gauge& itq_high_water;
  obs::Histogram& itq_peak_width;

  static HdltsMetrics& get() {
    static constexpr std::array<double, 8> kWidthBounds = {1.0,  2.0,  4.0,
                                                           8.0,  16.0, 32.0,
                                                           64.0, 128.0};
    static HdltsMetrics m{
        obs::MetricRegistry::global().counter("hdlts.schedule_calls"),
        obs::MetricRegistry::global().counter("hdlts.tasks_placed"),
        obs::MetricRegistry::global().counter("hdlts.duplicates_placed"),
        obs::MetricRegistry::global().counter("hdlts.eft_refreshes"),
        obs::MetricRegistry::global().gauge("hdlts.itq_high_water"),
        obs::MetricRegistry::global().histogram("hdlts.itq_peak_width",
                                                kWidthBounds),
    };
    return m;
  }

  void flush(std::uint64_t placed, std::uint64_t duplicates,
             std::uint64_t refreshes, std::size_t high_water) {
    calls.add(1);
    tasks_placed.add(placed);
    duplicates_placed.add(duplicates);
    eft_refreshes.add(refreshes);
    itq_high_water.record_max(static_cast<double>(high_water));
    itq_peak_width.observe(static_cast<double>(high_water));
  }
};

/// A task sitting in the ITQ (legacy path). Ready times are fixed once a
/// task becomes independent (all parents are placed — and duplicated, if
/// eligible — before it enters the queue), so they are cached. The EFT row
/// and its PV moments are kept current incrementally: after each placement
/// only the columns of processors whose availability changed are recomputed.
struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;  ///< per alive processor, problem.procs() order
  std::vector<double> eft;    ///< cached EFT row, parallel to `ready`
  PvAccumulator pv;           ///< moments of `eft` (current in dynamic mode)
  double frozen_pv = 0.0;     ///< used when dynamic_priorities is off

  ItqEntry(graph::TaskId v, std::size_t np, PvKind kind)
      : task(v), ready(np), eft(np), pv(kind, np) {}
};

/// Weighted EFT+energy CPU selection (energy_weight != 0 only; the weight-0
/// configuration never reaches this function — it runs the literal baseline
/// min-EFT scan, so its schedules stay bit-identical to plain HDLTS).
/// Among processors whose EFT meets the deadline, picks the argmin of
/// EFT + weight * E_dyn, ties to the lower column index; when no processor
/// meets the deadline, falls back to the baseline min-EFT scan. `dyn(pi)`
/// must be the task's dynamic energy on column pi — W * (busy - idle), the
/// exact product sim::CompiledProblem::dyn_energy caches, so the legacy and
/// compiled paths read identical bits.
template <typename DynEnergy>
std::size_t select_weighted(const double* row, std::size_t np, double weight,
                            double deadline, DynEnergy dyn) {
  std::size_t best = np;
  double best_key = 0.0;
  for (std::size_t pi = 0; pi < np; ++pi) {
    if (row[pi] > deadline) continue;
    const double key = row[pi] + weight * dyn(pi);
    if (best == np || key < best_key) {
      best = pi;
      best_key = key;
    }
  }
  if (best != np) return best;
  best = 0;
  for (std::size_t pi = 1; pi < np; ++pi) {
    if (row[pi] < row[best]) best = pi;
  }
  return best;
}

}  // namespace

sim::Schedule Hdlts::schedule(const sim::Problem& problem) const {
  sim::Schedule out(problem.num_tasks(), problem.num_procs());
  schedule_into(problem, out);
  return out;
}

void Hdlts::schedule_into(const sim::Problem& problem,
                          sim::Schedule& out) const {
  const obs::TimingSpan span("hdlts.schedule_into");
  out.reset(problem.num_tasks(), problem.num_procs());
  if (use_compiled()) {
    run_compiled(problem.compiled(), out);
  } else {
    run_legacy(problem, nullptr, out);
  }
}

sim::Schedule Hdlts::schedule_traced(const sim::Problem& problem,
                                     HdltsTrace* trace) const {
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  run_legacy(problem, trace, schedule);
  return schedule;
}

void Hdlts::run_legacy(const sim::Problem& problem, HdltsTrace* trace,
                       sim::Schedule& schedule) const {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();

  obs::DecisionTrace* const sink = trace_sink();
  if (sink != nullptr) {
    sink->on_begin({name(), problem.num_tasks(), problem.num_procs()});
  }
  std::uint64_t eft_recomputes = 0;
  std::uint64_t dup_count = 0;
  std::size_t itq_high_water = 0;
  std::size_t step_index = 0;

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<ItqEntry> itq;

  // Alive-processor index of each ProcId (changed-proc log entries -> column).
  constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);
  std::vector<std::size_t> column_of(problem.num_procs(), kNoColumn);
  for (std::size_t pi = 0; pi < np; ++pi) column_of[procs[pi]] = pi;

  // EFT of an ITQ entry on procs[pi] under the current schedule state.
  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double est =
        schedule.earliest_start(p, e.ready[pi], duration, options_.insertion);
    return est + duration;
  };

  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e(v, np, options_.pv);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
      e.eft[pi] = eft_of(e, pi);
    }
    e.pv.assign(e.eft);
    if (!options_.dynamic_priorities) {
      // Conventional static list: the PV is computed against the schedule
      // state at the moment the task becomes independent and never updated.
      e.frozen_pv = e.pv.pv();
    }
    itq.push_back(std::move(e));
  };

  // Recomputes, for every queued entry, exactly the EFT columns of the
  // processors `place`/`place_duplicate` touched since `mark` — the chosen
  // processor plus any duplicate hosts. Columns of untouched processors are
  // pure functions of unchanged state and stay bitwise valid.
  std::vector<std::size_t> dirty;
  std::vector<bool> dirty_seen(np, false);
  auto refresh_dirty_columns = [&](std::uint64_t mark) {
    dirty.clear();
    for (const platform::ProcId p : schedule.procs_changed_since(mark)) {
      const std::size_t pi = column_of[p];
      HDLTS_EXPECTS(pi != kNoColumn);
      if (!dirty_seen[pi]) {
        dirty_seen[pi] = true;
        dirty.push_back(pi);
      }
    }
    for (const std::size_t pi : dirty) dirty_seen[pi] = false;
    eft_recomputes += dirty.size() * itq.size();
    for (ItqEntry& e : itq) {
      for (const std::size_t pi : dirty) {
        const double eft = eft_of(e, pi);
        if (eft != e.eft[pi]) {
          e.eft[pi] = eft;
          e.pv.update(pi, eft);
        }
      }
    }
  };

  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) push_ready(v);
  }

  // A task is "free" when it costs nothing anywhere (pseudo entry/exit).
  auto is_free_task = [&](graph::TaskId v) {
    const auto row = problem.costs().row(v);
    for (const double c : row) {
      if (c > 0.0) return false;
    }
    return true;
  };
  // Duplication candidates: the unique entry (Algorithm 1), and — with the
  // duplicate_all_sources extension — every source task (no parents, or
  // only zero-cost pseudo parents).
  auto qualifies_for_duplication = [&](graph::TaskId v) {
    if (options_.duplication == DuplicationRule::kOff) return false;
    if (unique_entry && v == entries.front()) return true;
    if (!options_.duplicate_all_sources) return false;
    const auto parents = g.parents(v);
    if (parents.empty()) return true;
    for (const graph::Adjacent& p : parents) {
      if (!is_free_task(p.task)) return false;
    }
    return true;
  };

  // Entry/source-task duplication, Algorithm 1. Runs right after the task's
  // primary placement. When the task is the unique entry scheduled first,
  // every processor is still empty and the duplicate occupies
  // [0, W(entry, k)] — the paper's Table I behaviour; in the generalized
  // case duplicates go into idle slots.
  auto duplicate_task = [&](graph::TaskId v) {
    const auto children = g.children(v);
    if (children.empty() || is_free_task(v)) return;
    const sim::Placement& primary = schedule.placement(v);
    for (const platform::ProcId k : procs) {
      if (k == primary.proc) continue;
      const double dup_dur = problem.exec_time(v, k);
      const double dup_ready = schedule.ready_time(problem, v, k);
      const double dup_start =
          schedule.earliest_start(k, dup_ready, dup_dur, /*insertion=*/true);
      const double dup_finish = dup_start + dup_dur;
      // The duplicate "benefits" child j when it finishes before j's input
      // could arrive from the primary copy over the network.
      std::size_t benefits = 0;
      double best_arrival = std::numeric_limits<double>::infinity();
      for (const graph::Adjacent& c : children) {
        const double arrival =
            primary.finish + problem.comm_time_data(c.data, primary.proc, k);
        best_arrival = std::min(best_arrival, arrival);
        if (dup_finish < arrival) ++benefits;
      }
      const bool do_duplicate =
          options_.duplication == DuplicationRule::kAnyChildBenefits
              ? benefits > 0
              : benefits == children.size();
      if (sink != nullptr) {
        obs::DuplicationEvent ev;
        ev.task = v;
        ev.primary_proc = primary.proc;
        ev.candidate_proc = k;
        ev.dup_start = dup_start;
        ev.dup_finish = dup_finish;
        ev.best_arrival = best_arrival;
        ev.benefits = benefits;
        ev.num_children = children.size();
        ev.accepted = do_duplicate;
        sink->on_duplication(ev);
      }
      if (do_duplicate) {
        schedule.place_duplicate(v, k, dup_start, dup_finish);
        ++dup_count;
        if (sink != nullptr) {
          sink->on_placement({v, k, dup_start, dup_finish, true});
        }
        if (trace != nullptr) trace->duplicated_on.push_back(k);
      }
    }
  };

  // ITQ snapshot scratch for the sink (queue order, matching the compiled
  // path's position-parallel arrays bit for bit).
  std::vector<graph::TaskId> snap_tasks;
  std::vector<double> snap_pvs;

  while (!itq.empty()) {
    itq_high_water = std::max(itq_high_water, itq.size());
    // Prioritize: every entry's cached PV is current (refreshed after the
    // previous placement), so a round costs O(|ITQ|) instead of O(|ITQ| * P).
    auto pv_of = [&](const ItqEntry& e) {
      return options_.dynamic_priorities ? e.pv.pv() : e.frozen_pv;
    };
    std::size_t pick = 0;
    double pick_pv = pv_of(itq[0]);
    for (std::size_t i = 1; i < itq.size(); ++i) {
      const double p = pv_of(itq[i]);
      // Highest PV wins; ties go to the lower task id for determinism (the
      // rule is order-independent, so swap-remove below cannot change picks).
      if (p > pick_pv || (p == pick_pv && itq[i].task < itq[pick].task)) {
        pick = i;
        pick_pv = p;
      }
    }

    if (trace != nullptr) {
      HdltsStep step;
      step.selected = itq[pick].task;
      step.eft = itq[pick].eft;
      for (std::size_t i = 0; i < itq.size(); ++i) {
        step.ready.push_back(itq[i].task);
        step.pv.push_back(pv_of(itq[i]));
      }
      // Present the ITQ in ascending task id, like the paper's Table I.
      std::vector<std::size_t> perm(step.ready.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
        return step.ready[a] < step.ready[b];
      });
      HdltsStep sorted;
      sorted.selected = step.selected;
      sorted.eft = step.eft;
      for (const std::size_t i : perm) {
        sorted.ready.push_back(step.ready[i]);
        sorted.pv.push_back(step.pv[i]);
      }
      trace->steps.push_back(std::move(sorted));
    }

    if (sink != nullptr) {
      snap_tasks.clear();
      snap_pvs.clear();
      for (const ItqEntry& e : itq) {
        snap_tasks.push_back(e.task);
        snap_pvs.push_back(pv_of(e));
      }
    }

    // Select the min-EFT processor (ties: lower processor id) from the
    // cached row, then drop the entry via swap-remove (O(1); the pick rule
    // above never depends on queue order).
    const ItqEntry chosen_entry = std::move(itq[pick]);
    if (pick + 1 != itq.size()) itq[pick] = std::move(itq.back());
    itq.pop_back();
    const std::vector<double>& row = chosen_entry.eft;
    std::size_t best = 0;
    if (options_.energy_weight == 0.0) {
      for (std::size_t pi = 1; pi < np; ++pi) {
        if (row[pi] < row[best]) best = pi;
      }
    } else {
      const platform::Platform& plat = problem.platform();
      const graph::TaskId v = chosen_entry.task;
      best = select_weighted(row.data(), np, options_.energy_weight,
                             options_.deadline, [&](std::size_t pi) {
                               const platform::ProcId p = procs[pi];
                               return problem.exec_time(v, p) *
                                      (plat.busy_power(p) - plat.idle_power(p));
                             });
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen_entry.task, proc);
    if (trace != nullptr) trace->steps.back().chosen = proc;

    if (sink != nullptr) {
      obs::StepEvent ev;
      ev.step = step_index;
      ev.itq_tasks = snap_tasks;
      ev.itq_pv = snap_pvs;
      ev.selected = chosen_entry.task;
      ev.eft = row;
      ev.chosen = proc;
      ev.start = start;
      ev.finish = finish;
      sink->on_step(ev);
    }
    ++step_index;

    const std::uint64_t mark = schedule.state_version();
    schedule.place(chosen_entry.task, proc, start, finish);
    if (sink != nullptr) {
      sink->on_placement({chosen_entry.task, proc, start, finish, false});
    }
    if (qualifies_for_duplication(chosen_entry.task)) {
      duplicate_task(chosen_entry.task);
    }
    refresh_dirty_columns(mark);
    for (const graph::Adjacent& c : g.children(chosen_entry.task)) {
      if (--pending[c.task] == 0) push_ready(c.task);
    }
  }

  HDLTS_ENSURES(schedule.num_placed() == problem.num_tasks());
  if (sink != nullptr) {
    obs::ScheduleEndEvent ev;
    ev.makespan = schedule.makespan();
    ev.steps = step_index;
    ev.itq_high_water = itq_high_water;
    ev.arena_bytes = 0;  // the legacy path does not use the scratch arena
    ev.duplicates = dup_count;
    sink->on_end(ev);
  }
  HdltsMetrics::get().flush(schedule.num_placed(), dup_count, eft_recomputes,
                            itq_high_water);
}

// Dispatch on whether a sink is attached: the no-sink instantiation erases
// every telemetry block at compile time (obs::NullSink::kEnabled is false),
// so an uninstrumented schedule call runs the pre-telemetry hot loop.
void Hdlts::run_compiled(const sim::CompiledProblem& problem,
                         sim::Schedule& schedule) const {
  if (trace_sink() == nullptr) {
    run_compiled_impl(problem, schedule, obs::NullSink{});
  } else {
    run_compiled_impl(problem, schedule, obs::SinkRef{trace_sink()});
  }
}

// Flat fast path. Same algorithm as run_legacy, with the per-entry
// vector-of-vectors state replaced by slot-indexed SoA rows carved from the
// scratch arena, and the PvAccumulator trees replaced by arena-backed node
// slices driven through util::tree_ops — the same reduction arithmetic, the
// same leaf values, the same pv_from_roots formula, hence bit-identical
// schedules (tests/compiled_equiv_test.cpp). After the arena and the
// recycled Schedule are warm, a call performs zero heap allocations
// (tests/alloc_test.cpp).
//
// Rows live in *slots*, not task ids: a slot is acquired when a task enters
// the ITQ and recycled (LIFO) when it leaves, so the touched working set is
// bounded by the peak ITQ width — not by V — and the refresh scan walks hot
// cache lines instead of striding over V-sized arrays. PVs are additionally
// mirrored into an ITQ-position-parallel array so the selection scan is a
// single contiguous sweep.
template <typename Sink>
void Hdlts::run_compiled_impl(const sim::CompiledProblem& problem,
                              sim::Schedule& schedule,
                              [[maybe_unused]] Sink sink) const {
  util::ScratchArena& arena = scratch();
  arena.reset();

  // Kernel table resolved once per call; every backend is bit-identical to
  // the scalar reference (src/hdlts/simd/kernels.hpp), so the compiled path
  // stays exactly equivalent to run_legacy under any HDLTS_SIMD setting.
  const simd::Dispatch& simd_k = simd::active();

  const std::size_t n = problem.num_tasks();
  const auto procs = problem.procs();
  const std::size_t np = procs.size();
  const PvKind kind = options_.pv;
  const auto op_a = pv_op_a(kind);
  const auto op_b = pv_op_b(kind);
  const double id_a = util::tree_ops::identity(op_a);
  const double id_b = util::tree_ops::identity(op_b);
  const std::size_t base = util::tree_ops::base_for(np);
  const std::size_t tree_len = 2 * base;

  const auto entries = problem.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  if constexpr (Sink::kEnabled) {
    sink->on_begin({name(), problem.num_tasks(), problem.num_procs()});
  }
  std::uint64_t eft_recomputes = 0;
  std::uint64_t dup_count = 0;
  std::size_t itq_high_water = 0;
  std::size_t step_index = 0;

  // Slot-indexed SoA state (uninitialized until a slot is acquired). Slot
  // ids are handed out sequentially and recycled LIFO, so although the
  // arrays are sized for the worst case (every task independent at once),
  // only the first peak-ITQ-width slots are ever touched.
  const auto ready = arena.alloc<double>(n * np);
  const auto eft = arena.alloc<double>(n * np);
  const auto tree_a = arena.alloc<double>(n * tree_len);
  const auto tree_b = arena.alloc<double>(n * tree_len);
  const auto pending = arena.alloc<std::size_t>(n);
  // The ITQ: position-parallel arrays, compacted by swap-remove. Keeping
  // the PVs contiguous makes the argmax scan a linear sweep of doubles.
  const auto itq_task = arena.alloc<graph::TaskId>(n);
  const auto itq_slot = arena.alloc<std::uint32_t>(n);
  const auto itq_pv = arena.alloc<double>(n);
  std::size_t itq_size = 0;
  const auto free_slots = arena.alloc<std::uint32_t>(n);
  std::size_t free_size = 0;
  std::uint32_t next_slot = 0;

  auto eft_of = [&](graph::TaskId v, std::size_t slot, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(v, p);
    const double est = schedule.earliest_start(p, ready[slot * np + pi],
                                               duration, options_.insertion);
    return est + duration;
  };

  // Newly-independent tasks are enqueued first (slot ids and queue
  // positions assigned serially, exactly the order the one-at-a-time push
  // used to produce) and their rows/trees/PV filled second. Each fill
  // touches only its own slot and queue position and reads only state that
  // is constant for the round, so a round's fills produce the same bits
  // whether they run serially or across the team.
  const auto fresh = arena.alloc<std::size_t>(n);  // queue positions to fill
  std::size_t fresh_size = 0;
  auto enqueue_ready = [&](graph::TaskId v) {
    const std::uint32_t slot =
        free_size > 0 ? free_slots[--free_size] : next_slot++;
    itq_task[itq_size] = v;
    itq_slot[itq_size] = slot;
    fresh[fresh_size++] = itq_size;
    ++itq_size;
  };
  auto fill_entry = [&](std::size_t qi) {
    const graph::TaskId v = itq_task[qi];
    const std::uint32_t slot = itq_slot[qi];
    const auto r = ready.subspan(slot * np, np);
    const auto e = eft.subspan(slot * np, np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      r[pi] = schedule.ready_time(problem, v, procs[pi]);
      e[pi] = eft_of(v, slot, pi);
    }
    double* const ta = tree_a.data() + slot * tree_len;
    double* const tb = tree_b.data() + slot * tree_len;
    // Leaves: the EFT row into A, pv_leaf_b into B, identity padding; then
    // combine_up rebuilds every internal node — the same node values as
    // tree_ops::fill_identity + leaf stores + tree_ops::combine_up.
    std::copy(e.begin(), e.end(), ta + base);
    if (kind == PvKind::kRange) {
      std::copy(e.begin(), e.end(), tb + base);
    } else {
      simd_k.square(e.data(), tb + base, np);
    }
    for (std::size_t pi = np; pi < base; ++pi) {
      ta[base + pi] = id_a;
      tb[base + pi] = id_b;
    }
    simd_k.combine_up(op_a, ta, base);
    simd_k.combine_up(op_b, tb, base);
    // In dynamic mode this is refreshed whenever a column changes; in
    // static mode this initial value is the frozen PV.
    itq_pv[qi] = pv_from_roots(kind, np, ta[1], tb[1]);
  };
  util::ThreadPool* const pool = thread_pool();
  auto fill_fresh = [&] {
    if (pool != nullptr && fresh_size * np >= options_.parallel_min_work) {
      pool->run_team(fresh_size, /*chunk=*/4,
                     [&](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) fill_entry(fresh[i]);
                     });
    } else {
      for (std::size_t i = 0; i < fresh_size; ++i) fill_entry(fresh[i]);
    }
    fresh_size = 0;
  };

  const auto dirty = arena.alloc<std::size_t>(np);
  std::size_t dirty_size = 0;
  const auto dirty_seen = arena.alloc<unsigned char>(np);
  std::fill(dirty_seen.begin(), dirty_seen.end(), 0);
  auto refresh_dirty_columns = [&](std::uint64_t mark) {
    dirty_size = 0;
    for (const platform::ProcId p : schedule.procs_changed_since(mark)) {
      const std::size_t pi = problem.column_of(p);
      HDLTS_EXPECTS(pi != sim::CompiledProblem::kNoColumn);
      if (dirty_seen[pi] == 0) {
        dirty_seen[pi] = 1;
        dirty[dirty_size++] = pi;
      }
    }
    for (std::size_t di = 0; di < dirty_size; ++di) dirty_seen[dirty[di]] = 0;
    eft_recomputes += dirty_size * itq_size;
    auto refresh_entry = [&](std::size_t i) {
      const graph::TaskId v = itq_task[i];
      const std::size_t slot = itq_slot[i];
      const auto e = eft.subspan(slot * np, np);
      bool changed = false;
      for (std::size_t di = 0; di < dirty_size; ++di) {
        const std::size_t pi = dirty[di];
        const double f = eft_of(v, slot, pi);
        if (f != e[pi]) {
          e[pi] = f;
          // The EFT row feeds processor selection in both modes, but the PV
          // moments only matter under dynamic priorities (static mode reads
          // the frozen itq_pv value).
          if (options_.dynamic_priorities) {
            util::tree_ops::update(
                op_a, tree_a.subspan(slot * tree_len, tree_len), base, pi, f);
            util::tree_ops::update(op_b,
                                   tree_b.subspan(slot * tree_len, tree_len),
                                   base, pi, pv_leaf_b(kind, f));
            changed = true;
          }
        }
      }
      if (changed) {
        itq_pv[i] = pv_from_roots(kind, np, tree_a[slot * tree_len + 1],
                                  tree_b[slot * tree_len + 1]);
      }
    };
    // Entry i writes only its own slot's row/trees and itq_pv[i], and reads
    // only the (frozen for the round) schedule state — disjoint writes, so
    // the team fan-out is bit-identical to the serial sweep.
    if (pool != nullptr &&
        dirty_size * itq_size >= options_.parallel_min_work) {
      pool->run_team(itq_size, /*chunk=*/16,
                     [&](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) refresh_entry(i);
                     });
    } else {
      for (std::size_t i = 0; i < itq_size; ++i) refresh_entry(i);
    }
  };

  for (graph::TaskId v = 0; v < n; ++v) {
    pending[v] = problem.in_degree(v);
    if (pending[v] == 0) enqueue_ready(v);
  }
  fill_fresh();

  auto qualifies_for_duplication = [&](graph::TaskId v) {
    if (options_.duplication == DuplicationRule::kOff) return false;
    if (unique_entry && v == entries[0]) return true;
    if (!options_.duplicate_all_sources) return false;
    const auto parents = problem.parents(v);
    if (parents.empty()) return true;
    for (const graph::Adjacent& p : parents) {
      if (!problem.is_free_task(p.task)) return false;
    }
    return true;
  };

  auto duplicate_task = [&](graph::TaskId v) {
    const auto children = problem.children(v);
    if (children.empty() || problem.is_free_task(v)) return;
    const sim::Placement& primary = schedule.placement(v);
    for (const platform::ProcId k : procs) {
      if (k == primary.proc) continue;
      const double dup_dur = problem.exec_time(v, k);
      const double dup_ready = schedule.ready_time(problem, v, k);
      const double dup_start =
          schedule.earliest_start(k, dup_ready, dup_dur, /*insertion=*/true);
      const double dup_finish = dup_start + dup_dur;
      std::size_t benefits = 0;
      for (const graph::Adjacent& c : children) {
        const double arrival =
            primary.finish + problem.comm_time_data(c.data, primary.proc, k);
        if (dup_finish < arrival) ++benefits;
      }
      const bool do_duplicate =
          options_.duplication == DuplicationRule::kAnyChildBenefits
              ? benefits > 0
              : benefits == children.size();
      if constexpr (Sink::kEnabled) {
        // A second pass (cold; sink attached only) for the min arrival the
        // accept/reject verdict was compared against.
        double best_arrival = std::numeric_limits<double>::infinity();
        for (const graph::Adjacent& c : children) {
          const double arrival =
              primary.finish + problem.comm_time_data(c.data, primary.proc, k);
          best_arrival = std::min(best_arrival, arrival);
        }
        obs::DuplicationEvent ev;
        ev.task = v;
        ev.primary_proc = primary.proc;
        ev.candidate_proc = k;
        ev.dup_start = dup_start;
        ev.dup_finish = dup_finish;
        ev.best_arrival = best_arrival;
        ev.benefits = benefits;
        ev.num_children = children.size();
        ev.accepted = do_duplicate;
        sink->on_duplication(ev);
      }
      if (do_duplicate) {
        schedule.place_duplicate(v, k, dup_start, dup_finish);
        ++dup_count;
        if constexpr (Sink::kEnabled) {
          sink->on_placement({v, k, dup_start, dup_finish, true});
        }
      }
    }
  };

  while (itq_size > 0) {
    itq_high_water = std::max(itq_high_water, itq_size);
    // Highest PV wins; ties go to the lower task id (order-independent, so
    // the swap-remove compaction below cannot change picks).
    const std::size_t pick =
        simd_k.argmax_key(itq_pv.data(), itq_task.data(), itq_size);

    const graph::TaskId chosen = itq_task[pick];
    const std::uint32_t slot = itq_slot[pick];

    // CPU selection from the cached row. The row is slot-indexed, so running
    // the argmin before the queue compaction below reads the same bits.
    const auto row = eft.subspan(slot * np, np);
    const std::size_t best =
        options_.energy_weight == 0.0
            ? simd_k.argmin(row.data(), np)
            : select_weighted(row.data(), np, options_.energy_weight,
                              options_.deadline, [&](std::size_t pi) {
                                return problem.dyn_energy(chosen, procs[pi]);
                              });
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen, proc);

    if constexpr (Sink::kEnabled) {
      // Snapshot before the swap-remove so the ITQ spans are intact.
      obs::StepEvent ev;
      ev.step = step_index;
      ev.itq_tasks = {itq_task.data(), itq_size};
      ev.itq_pv = {itq_pv.data(), itq_size};
      ev.selected = chosen;
      ev.eft = row;
      ev.chosen = proc;
      ev.start = start;
      ev.finish = finish;
      sink->on_step(ev);
    }
    ++step_index;

    const std::size_t last = itq_size - 1;
    itq_task[pick] = itq_task[last];
    itq_slot[pick] = itq_slot[last];
    itq_pv[pick] = itq_pv[last];
    itq_size = last;
    // The chosen task's rows are dead from here on; recycle the slot so the
    // next push reuses the hot cache lines.
    free_slots[free_size++] = slot;

    const std::uint64_t mark = schedule.state_version();
    schedule.place(chosen, proc, start, finish);
    if constexpr (Sink::kEnabled) {
      sink->on_placement({chosen, proc, start, finish, false});
    }
    if (qualifies_for_duplication(chosen)) duplicate_task(chosen);
    refresh_dirty_columns(mark);
    for (const graph::Adjacent& c : problem.children(chosen)) {
      if (--pending[c.task] == 0) enqueue_ready(c.task);
    }
    fill_fresh();
  }

  HDLTS_ENSURES(schedule.num_placed() == n);
  if constexpr (Sink::kEnabled) {
    obs::ScheduleEndEvent ev;
    ev.makespan = schedule.makespan();
    ev.steps = step_index;
    ev.itq_high_water = itq_high_water;
    ev.arena_bytes = arena.used();
    ev.duplicates = dup_count;
    sink->on_end(ev);
  }
  HdltsMetrics::get().flush(schedule.num_placed(), dup_count, eft_recomputes,
                            itq_high_water);
}

sched::Registry default_registry() {
  sched::Registry r = sched::baseline_registry();
  r.add("hdlts", [] { return std::make_unique<Hdlts>(); });
  r.add("hdlts-nodup", [] {
    HdltsOptions o;
    o.duplication = DuplicationRule::kOff;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-static", [] {
    HdltsOptions o;
    o.dynamic_priorities = false;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-popstddev", [] {
    HdltsOptions o;
    o.pv = PvKind::kPopulationStddev;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-range", [] {
    HdltsOptions o;
    o.pv = PvKind::kRange;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-insertion", [] {
    HdltsOptions o;
    o.insertion = true;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-multidup", [] {
    HdltsOptions o;
    o.duplicate_all_sources = true;
    return std::make_unique<Hdlts>(o);
  });
  r.add("hdlts-energy", [] { return std::make_unique<EnergyAwareHdlts>(); });
  return r;
}

std::vector<sched::SchedulerPtr> paper_schedulers() {
  const sched::Registry r = default_registry();
  std::vector<sched::SchedulerPtr> out;
  for (const char* name : {"hdlts", "heft", "pets", "cpop", "peft", "sdbats"}) {
    out.push_back(r.make(name));
  }
  return out;
}

}  // namespace hdlts::core
