#include "hdlts/core/online.hpp"

#include <algorithm>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/trace.hpp"

namespace hdlts::core {

namespace {

// PV arithmetic comes from core/pv.hpp (shared with the incremental and
// reference schedulers, so every HDLTS mode ranks by identical values).

struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;
  double frozen_pv = 0.0;
};

/// One HDLTS pass over the not-yet-done tasks, starting from the committed
/// state already placed in `schedule`. New executions start at or after
/// `phase_start`. Appends the new executions to `out`.
void run_phase(const sim::Problem& problem, sim::Schedule& schedule,
               std::vector<bool>& done, double phase_start,
               const HdltsOptions& options, bool cold,
               std::vector<OnlineExec>& out) {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();

  std::vector<std::size_t> pending(g.num_tasks(), 0);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::Adjacent& p : g.parents(v)) {
      if (!done[p.task]) ++pending[v];
    }
  }

  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double ready = std::max(e.ready[pi], phase_start);
    const double est =
        schedule.earliest_start(p, ready, duration, options.insertion);
    return est + duration;
  };
  auto eft_row = [&](const ItqEntry& e) {
    std::vector<double> row(np);
    for (std::size_t pi = 0; pi < np; ++pi) row[pi] = eft_of(e, pi);
    return row;
  };

  std::vector<ItqEntry> itq;
  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    if (!options.dynamic_priorities) {
      e.frozen_pv = penalty_value(options.pv, eft_row(e));
    }
    itq.push_back(std::move(e));
  };
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!done[v] && pending[v] == 0) push_ready(v);
  }

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  while (!itq.empty()) {
    std::vector<double> pv(itq.size());
    for (std::size_t i = 0; i < itq.size(); ++i) {
      pv[i] = options.dynamic_priorities
                  ? penalty_value(options.pv, eft_row(itq[i]))
                  : itq[i].frozen_pv;
    }
    std::size_t pick = 0;
    for (std::size_t i = 1; i < itq.size(); ++i) {
      if (pv[i] > pv[pick] ||
          (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
        pick = i;
      }
    }
    const ItqEntry chosen = std::move(itq[pick]);
    itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto row = eft_row(chosen);
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < np; ++pi) {
      if (row[pi] < row[best]) best = pi;
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen.task, proc);
    schedule.place(chosen.task, proc, start, finish);
    out.push_back({chosen.task, proc, start, finish, false, false});

    // Entry duplication only applies on the cold start (all processors
    // empty); after a failure the machines are busy and Algorithm 1's
    // "duplicate from t = 0" premise no longer holds.
    if (cold && unique_entry && chosen.task == entries.front() &&
        options.duplication != DuplicationRule::kOff &&
        !g.children(chosen.task).empty()) {
      for (const platform::ProcId k : procs) {
        if (k == proc) continue;
        const double dup_finish = problem.exec_time(chosen.task, k);
        std::size_t benefits = 0;
        const auto children = g.children(chosen.task);
        for (const graph::Adjacent& c : children) {
          if (dup_finish < finish + problem.comm_time_data(c.data, proc, k)) {
            ++benefits;
          }
        }
        const bool do_dup =
            options.duplication == DuplicationRule::kAnyChildBenefits
                ? benefits > 0
                : benefits == children.size();
        if (do_dup) {
          schedule.place_duplicate(chosen.task, k, 0.0, dup_finish);
          out.push_back({chosen.task, k, 0.0, dup_finish, true, false});
        }
      }
    }

    for (const graph::Adjacent& c : g.children(chosen.task)) {
      bool ready = true;
      for (const graph::Adjacent& p : g.parents(c.task)) {
        if (!done[p.task] && !schedule.is_placed(p.task)) {
          ready = false;
          break;
        }
      }
      // pending-based check: only push when this was the last open parent.
      if (ready && !schedule.is_placed(c.task)) {
        bool already = false;
        for (const ItqEntry& e : itq) {
          if (e.task == c.task) {
            already = true;
            break;
          }
        }
        if (!already) push_ready(c.task);
      }
    }
  }
}

}  // namespace

OnlineResult run_online(const sim::Workload& workload,
                        std::span<const ProcFailure> failures,
                        const HdltsOptions& options,
                        obs::DecisionTrace* sink) {
  sim::Workload state = workload;
  state.validate();
  const std::size_t n = state.graph.num_tasks();

  if (sink != nullptr) {
    sink->on_begin({"online-hdlts", n, state.platform.num_procs()});
  }

  std::vector<ProcFailure> pending_failures(failures.begin(), failures.end());
  std::sort(pending_failures.begin(), pending_failures.end(),
            [](const ProcFailure& a, const ProcFailure& b) {
              return a.time < b.time;
            });

  OnlineResult result;
  std::vector<OnlineExec> committed;  // finished or unstoppable executions
  std::vector<bool> done(n, false);
  double phase_start = 0.0;
  bool cold = true;

  for (;;) {
    const bool all_done =
        std::all_of(done.begin(), done.end(), [](bool d) { return d; });
    // Completion requires the whole fault plan to be consumed: a failure
    // scheduled after every task acquired a committed copy can still kill a
    // copy that is running past the failure instant (see the sweep below).
    if (all_done && pending_failures.empty()) {
      result.completed = true;
      break;
    }
    if (!all_done && state.platform.num_alive() == 0) {
      result.completed = false;
      break;
    }

    std::vector<OnlineExec> fresh;
    if (!all_done) {
      // Rebuild the schedule state from committed executions.
      const sim::Problem problem(state);
      sim::Schedule schedule(n, state.platform.num_procs());
      std::vector<bool> has_primary(n, false);
      for (const OnlineExec& e : committed) {
        if (!has_primary[e.task]) {
          schedule.place(e.task, e.proc, e.start, e.finish);
          has_primary[e.task] = true;
        } else {
          schedule.place_duplicate(e.task, e.proc, e.start, e.finish);
        }
      }

      if (sink != nullptr) sink->on_note("online.phase_start", phase_start);
      run_phase(problem, schedule, done, phase_start, options, cold, fresh);
      cold = false;

      if (pending_failures.empty()) {
        for (OnlineExec& e : fresh) committed.push_back(e);
        for (const OnlineExec& e : committed) {
          if (!e.duplicate) done[e.task] = true;
        }
        result.completed = true;
        break;
      }
    }

    // Apply the next failure: keep what physically happened before it.
    const ProcFailure fail = pending_failures.front();
    pending_failures.erase(pending_failures.begin());
    if (!state.platform.is_alive(fail.proc)) continue;  // duplicate failure
    if (sink != nullptr) sink->on_note("online.failure", fail.time);

    auto kill = [&](OnlineExec e) {
      e.lost = true;
      e.finish = fail.time;
      result.executions.push_back(e);
      ++result.lost_executions;
      if (sink != nullptr) sink->on_note("online.lost_execution", fail.time);
    };

    for (OnlineExec& e : fresh) {
      const bool on_failed = e.proc == fail.proc;
      if (e.finish <= fail.time) {
        committed.push_back(e);  // finished before the failure
      } else if (e.start < fail.time) {
        if (on_failed) {
          kill(e);  // killed mid-execution; the task is re-queued later
        } else {
          committed.push_back(e);  // keeps running on a healthy machine
        }
      }
      // start >= fail.time: revoked silently; the task will be reconsidered.
    }
    // An execution committed during an *earlier* failure ("keeps running on
    // a healthy machine") is not unstoppable forever: if this failure kills
    // the machine it is still running on, it dies now. Without this sweep a
    // survivor could overlap its processor's failure time, which the online
    // validator (check::OnlineValidator) rightly rejects.
    for (std::size_t i = 0; i < committed.size();) {
      const OnlineExec& e = committed[i];
      if (e.proc == fail.proc && e.finish > fail.time) {
        if (e.start < fail.time) kill(e);
        committed.erase(committed.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // A task is done when any committed copy of it completed (a surviving
    // duplicate covers a lost primary).
    done.assign(n, false);
    for (const OnlineExec& e : committed) done[e.task] = true;

    state.platform.set_alive(fail.proc, false);
    phase_start = std::max(phase_start, fail.time);
  }

  for (const OnlineExec& e : committed) {
    result.executions.push_back(e);
    result.makespan = std::max(result.makespan, e.finish);
  }
  std::sort(result.executions.begin(), result.executions.end(),
            [](const OnlineExec& a, const OnlineExec& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });

  if (sink != nullptr) {
    std::size_t duplicates = 0;
    for (const OnlineExec& e : result.executions) {
      if (e.lost) continue;  // lost attempts are notes, not placements
      if (e.duplicate) ++duplicates;
      sink->on_placement({e.task, e.proc, e.start, e.finish, e.duplicate});
    }
    obs::ScheduleEndEvent end;
    end.makespan = result.makespan;
    end.steps = result.executions.size() - result.lost_executions;
    end.duplicates = duplicates;
    sink->on_end(end);
  }
  {
    static obs::Counter& runs =
        obs::MetricRegistry::global().counter("online.runs");
    static obs::Counter& lost =
        obs::MetricRegistry::global().counter("online.lost_executions");
    runs.add(1);
    lost.add(result.lost_executions);
  }
  return result;
}

}  // namespace hdlts::core
