#include "hdlts/core/online.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/util/reduction_tree.hpp"

namespace hdlts::core {

namespace {

// PV arithmetic comes from core/pv.hpp (shared with the incremental and
// reference schedulers, so every HDLTS mode ranks by identical values).

struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;
  double frozen_pv = 0.0;
};

void flush_online_metrics(std::size_t lost) {
  static obs::Counter& runs =
      obs::MetricRegistry::global().counter("online.runs");
  static obs::Counter& lost_count =
      obs::MetricRegistry::global().counter("online.lost_executions");
  runs.add(1);
  lost_count.add(lost);
}

/// Final ordering, sink flush, and metric flush shared by both paths (this
/// is where the two implementations must already agree bit for bit).
void finish_result(OnlineResult& result, obs::DecisionTrace* sink) {
  std::sort(result.executions.begin(), result.executions.end(),
            [](const OnlineExec& a, const OnlineExec& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });
  if (sink != nullptr) {
    std::size_t duplicates = 0;
    for (const OnlineExec& e : result.executions) {
      if (e.lost) continue;  // lost attempts are notes, not placements
      if (e.duplicate) ++duplicates;
      sink->on_placement({e.task, e.proc, e.start, e.finish, e.duplicate});
    }
    obs::ScheduleEndEvent end;
    end.makespan = result.makespan;
    end.steps = result.executions.size() - result.lost_executions;
    end.duplicates = duplicates;
    sink->on_end(end);
  }
  flush_online_metrics(result.lost_executions);
}

/// One HDLTS pass over the not-yet-done tasks, starting from the committed
/// state already placed in `schedule`. New executions start at or after
/// `phase_start`. Appends the new executions to `out`.
void run_phase(const sim::Problem& problem, sim::Schedule& schedule,
               std::vector<bool>& done, double phase_start,
               const HdltsOptions& options, bool cold,
               std::vector<OnlineExec>& out) {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();

  std::vector<std::size_t> pending(g.num_tasks(), 0);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::Adjacent& p : g.parents(v)) {
      if (!done[p.task]) ++pending[v];
    }
  }

  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double ready = std::max(e.ready[pi], phase_start);
    const double est =
        schedule.earliest_start(p, ready, duration, options.insertion);
    return est + duration;
  };
  auto eft_row = [&](const ItqEntry& e) {
    std::vector<double> row(np);
    for (std::size_t pi = 0; pi < np; ++pi) row[pi] = eft_of(e, pi);
    return row;
  };

  std::vector<ItqEntry> itq;
  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    if (!options.dynamic_priorities) {
      e.frozen_pv = penalty_value(options.pv, eft_row(e));
    }
    itq.push_back(std::move(e));
  };
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!done[v] && pending[v] == 0) push_ready(v);
  }

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  while (!itq.empty()) {
    std::vector<double> pv(itq.size());
    for (std::size_t i = 0; i < itq.size(); ++i) {
      pv[i] = options.dynamic_priorities
                  ? penalty_value(options.pv, eft_row(itq[i]))
                  : itq[i].frozen_pv;
    }
    std::size_t pick = 0;
    for (std::size_t i = 1; i < itq.size(); ++i) {
      if (pv[i] > pv[pick] ||
          (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
        pick = i;
      }
    }
    const ItqEntry chosen = std::move(itq[pick]);
    itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto row = eft_row(chosen);
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < np; ++pi) {
      if (row[pi] < row[best]) best = pi;
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen.task, proc);
    schedule.place(chosen.task, proc, start, finish);
    out.push_back({chosen.task, proc, start, finish, false, false});

    // Entry duplication only applies on the cold start (all processors
    // empty); after a failure the machines are busy and Algorithm 1's
    // "duplicate from t = 0" premise no longer holds.
    if (cold && unique_entry && chosen.task == entries.front() &&
        options.duplication != DuplicationRule::kOff &&
        !g.children(chosen.task).empty()) {
      for (const platform::ProcId k : procs) {
        if (k == proc) continue;
        const double dup_finish = problem.exec_time(chosen.task, k);
        std::size_t benefits = 0;
        const auto children = g.children(chosen.task);
        for (const graph::Adjacent& c : children) {
          if (dup_finish < finish + problem.comm_time_data(c.data, proc, k)) {
            ++benefits;
          }
        }
        const bool do_dup =
            options.duplication == DuplicationRule::kAnyChildBenefits
                ? benefits > 0
                : benefits == children.size();
        if (do_dup) {
          schedule.place_duplicate(chosen.task, k, 0.0, dup_finish);
          out.push_back({chosen.task, k, 0.0, dup_finish, true, false});
        }
      }
    }

    for (const graph::Adjacent& c : g.children(chosen.task)) {
      bool ready = true;
      for (const graph::Adjacent& p : g.parents(c.task)) {
        if (!done[p.task] && !schedule.is_placed(p.task)) {
          ready = false;
          break;
        }
      }
      // pending-based check: only push when this was the last open parent.
      if (ready && !schedule.is_placed(c.task)) {
        bool already = false;
        for (const ItqEntry& e : itq) {
          if (e.task == c.task) {
            already = true;
            break;
          }
        }
        if (!already) push_ready(c.task);
      }
    }
  }
}

}  // namespace

OnlineResult run_online_legacy(const sim::Workload& workload,
                               std::span<const ProcFailure> failures,
                               const HdltsOptions& options,
                               obs::DecisionTrace* sink) {
  sim::Workload state = workload;
  state.validate();
  const std::size_t n = state.graph.num_tasks();

  if (sink != nullptr) {
    sink->on_begin({"online-hdlts", n, state.platform.num_procs()});
  }

  std::vector<ProcFailure> pending_failures(failures.begin(), failures.end());
  std::sort(pending_failures.begin(), pending_failures.end(),
            [](const ProcFailure& a, const ProcFailure& b) {
              return a.time < b.time;
            });

  OnlineResult result;
  std::vector<OnlineExec> committed;  // finished or unstoppable executions
  std::vector<bool> done(n, false);
  double phase_start = 0.0;
  bool cold = true;

  for (;;) {
    const bool all_done =
        std::all_of(done.begin(), done.end(), [](bool d) { return d; });
    // Completion requires the whole fault plan to be consumed: a failure
    // scheduled after every task acquired a committed copy can still kill a
    // copy that is running past the failure instant (see the sweep below).
    if (all_done && pending_failures.empty()) {
      result.completed = true;
      break;
    }
    if (!all_done && state.platform.num_alive() == 0) {
      result.completed = false;
      break;
    }

    std::vector<OnlineExec> fresh;
    if (!all_done) {
      // Rebuild the schedule state from committed executions.
      const sim::Problem problem(state);
      sim::Schedule schedule(n, state.platform.num_procs());
      std::vector<bool> has_primary(n, false);
      for (const OnlineExec& e : committed) {
        if (!has_primary[e.task]) {
          schedule.place(e.task, e.proc, e.start, e.finish);
          has_primary[e.task] = true;
        } else {
          schedule.place_duplicate(e.task, e.proc, e.start, e.finish);
        }
      }

      if (sink != nullptr) sink->on_note("online.phase_start", phase_start);
      run_phase(problem, schedule, done, phase_start, options, cold, fresh);
      cold = false;

      if (pending_failures.empty()) {
        for (OnlineExec& e : fresh) committed.push_back(e);
        for (const OnlineExec& e : committed) {
          if (!e.duplicate) done[e.task] = true;
        }
        result.completed = true;
        break;
      }
    }

    // Apply the next failure: keep what physically happened before it.
    const ProcFailure fail = pending_failures.front();
    pending_failures.erase(pending_failures.begin());
    if (!state.platform.is_alive(fail.proc)) continue;  // duplicate failure
    if (sink != nullptr) sink->on_note("online.failure", fail.time);

    auto kill = [&](OnlineExec e) {
      e.lost = true;
      e.finish = fail.time;
      result.executions.push_back(e);
      ++result.lost_executions;
      if (sink != nullptr) sink->on_note("online.lost_execution", fail.time);
    };

    for (OnlineExec& e : fresh) {
      const bool on_failed = e.proc == fail.proc;
      if (e.finish <= fail.time) {
        committed.push_back(e);  // finished before the failure
      } else if (e.start < fail.time) {
        if (on_failed) {
          kill(e);  // killed mid-execution; the task is re-queued later
        } else {
          committed.push_back(e);  // keeps running on a healthy machine
        }
      }
      // start >= fail.time: revoked silently; the task will be reconsidered.
    }
    // An execution committed during an *earlier* failure ("keeps running on
    // a healthy machine") is not unstoppable forever: if this failure kills
    // the machine it is still running on, it dies now. Without this sweep a
    // survivor could overlap its processor's failure time, which the online
    // validator (check::OnlineValidator) rightly rejects.
    for (std::size_t i = 0; i < committed.size();) {
      const OnlineExec& e = committed[i];
      if (e.proc == fail.proc && e.finish > fail.time) {
        if (e.start < fail.time) kill(e);
        committed.erase(committed.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // A task is done when any committed copy of it completed (a surviving
    // duplicate covers a lost primary).
    done.assign(n, false);
    for (const OnlineExec& e : committed) done[e.task] = true;

    state.platform.set_alive(fail.proc, false);
    phase_start = std::max(phase_start, fail.time);
  }

  for (const OnlineExec& e : committed) {
    result.executions.push_back(e);
    result.makespan = std::max(result.makespan, e.finish);
  }
  finish_result(result, sink);
  return result;
}

// Compiled fast path. Same algorithm as run_online_legacy, but every phase
// runs against the workload's single frozen sim::CompiledProblem instead of
// a freshly compiled per-phase sim::Problem: processor death is an
// alive-column mask, the per-phase schedule is a recycled reset + replay of
// the committed executions, ITQ state lives in slot-recycled arena-backed
// SoA rows (the hdlts.cpp compiled-loop layout), EFT columns are refreshed
// incrementally from the Schedule change log, and processor/task selection
// go through simd::active()'s argmin_masked / argmax_key kernels.
//
// Bit-identity with the legacy path (tests/dst_test.cpp, online_test.cpp)
// rests on three facts:
//   * Schedule::ready_time / earliest_start read only placements, never
//     processor liveness, so the frozen view plus a mask reproduces the
//     per-phase rebuilt problem exactly;
//   * a cached EFT cell only goes stale when its processor's timeline
//     changes, which procs_changed_since reports exactly — so the cached
//     row always equals the legacy full recompute;
//   * PV reduction trees use the *compacted* alive columns as leaves
//     (base_for(#alive)), the same tree shape penalty_value builds over the
//     legacy compacted row — identity-padding dead columns instead would
//     change the pairwise summation order and the bits.
void OnlineHdlts::run_compiled(const sim::Problem& problem,
                               std::span<const ProcFailure> failures,
                               OnlineResult& out, obs::DecisionTrace* sink) {
  const sim::CompiledProblem& cp = problem.compiled();
  util::ScratchArena& arena = arena_;
  arena.reset();
  const simd::Dispatch& simd_k = simd::active();

  const std::size_t n = cp.num_tasks();
  const auto procs = cp.procs();  // initial alive list = the column space
  const std::size_t np = procs.size();
  const PvKind kind = options_.pv;
  const auto op_a = pv_op_a(kind);
  const auto op_b = pv_op_b(kind);
  const double id_a = util::tree_ops::identity(op_a);
  const double id_b = util::tree_ops::identity(op_b);
  // Trees are stored at the full-width stride; each phase uses only the
  // prefix for its compacted alive-leaf tree.
  const std::size_t tree_cap =
      2 * util::tree_ops::base_for(np > 0 ? np : 1);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (sink != nullptr) sink->on_begin({"online-hdlts", n, cp.num_procs()});

  // Column-space state.
  const auto alive = arena.alloc<unsigned char>(np);
  const auto leaf_of = arena.alloc<std::size_t>(np);     // column -> leaf
  const auto alive_cols = arena.alloc<std::size_t>(np);  // leaf -> column
  // Task-space state.
  const auto done = arena.alloc<unsigned char>(n);
  const auto has_primary = arena.alloc<unsigned char>(n);
  const auto pending = arena.alloc<std::size_t>(n);
  // Slot-indexed SoA rows + trees (see hdlts.cpp run_compiled_impl).
  const auto ready = arena.alloc<double>(n * np);
  const auto eft = arena.alloc<double>(n * np);
  const auto tree_a = arena.alloc<double>(n * tree_cap);
  const auto tree_b = arena.alloc<double>(n * tree_cap);
  const auto itq_task = arena.alloc<graph::TaskId>(n);
  const auto itq_slot = arena.alloc<std::uint32_t>(n);
  const auto itq_pv = arena.alloc<double>(n);
  const auto free_slots = arena.alloc<std::uint32_t>(n);
  const auto fresh_q = arena.alloc<std::size_t>(n);
  const auto dirty = arena.alloc<std::size_t>(np);
  const auto dirty_seen = arena.alloc<unsigned char>(np);
  const auto plan = arena.alloc<ProcFailure>(failures.size());

  std::fill(alive.begin(), alive.end(), static_cast<unsigned char>(1));
  std::fill(done.begin(), done.end(), static_cast<unsigned char>(0));
  std::fill(dirty_seen.begin(), dirty_seen.end(),
            static_cast<unsigned char>(0));
  std::copy(failures.begin(), failures.end(), plan.begin());
  std::sort(plan.begin(), plan.end(),
            [](const ProcFailure& a, const ProcFailure& b) {
              return a.time < b.time;
            });
  std::size_t plan_cursor = 0;
  std::size_t alive_count = np;
  std::size_t done_count = 0;

  out.executions.clear();
  out.makespan = 0.0;
  out.completed = false;
  out.lost_executions = 0;
  committed_.clear();
  sim::Schedule& schedule = schedule_;

  const auto entries = cp.entry_tasks();
  const bool unique_entry = entries.size() == 1;
  double phase_start = 0.0;
  bool cold = true;

  // One HDLTS pass over the not-yet-done tasks (legacy run_phase, on the
  // compiled substrate). Appends new executions to fresh_.
  auto run_phase_compiled = [&]() {
    // Compact this phase's alive columns into reduction-tree leaves.
    std::size_t n_alive = 0;
    for (std::size_t ci = 0; ci < np; ++ci) {
      if (alive[ci] != 0) {
        leaf_of[ci] = n_alive;
        alive_cols[n_alive] = ci;
        ++n_alive;
      } else {
        leaf_of[ci] = sim::CompiledProblem::kNoColumn;
      }
    }
    const std::size_t base = util::tree_ops::base_for(n_alive);
    const bool cold_phase = cold;

    std::size_t itq_size = 0;
    std::size_t free_size = 0;
    std::uint32_t next_slot = 0;
    std::size_t fresh_size = 0;

    auto eft_of = [&](graph::TaskId v, std::uint32_t slot, std::size_t ci) {
      const platform::ProcId p = procs[ci];
      const double duration = cp.exec_time(v, p);
      const double rdy = std::max(ready[slot * np + ci], phase_start);
      const double est =
          schedule.earliest_start(p, rdy, duration, options_.insertion);
      return est + duration;
    };
    auto enqueue_ready = [&](graph::TaskId v) {
      const std::uint32_t slot =
          free_size > 0 ? free_slots[--free_size] : next_slot++;
      itq_task[itq_size] = v;
      itq_slot[itq_size] = slot;
      fresh_q[fresh_size++] = itq_size;
      ++itq_size;
    };
    auto fill_entry = [&](std::size_t qi) {
      const graph::TaskId v = itq_task[qi];
      const std::uint32_t slot = itq_slot[qi];
      const auto r = ready.subspan(slot * np, np);
      const auto e = eft.subspan(slot * np, np);
      for (std::size_t ci = 0; ci < np; ++ci) {
        if (alive[ci] != 0) {
          r[ci] = schedule.ready_time(cp, v, procs[ci]);
          e[ci] = eft_of(v, slot, ci);
        } else {
          // Dead columns stay inert: +inf never wins the masked argmin and
          // the value is excluded from the compacted tree leaves anyway.
          r[ci] = 0.0;
          e[ci] = kInf;
        }
      }
      double* const ta = tree_a.data() + slot * tree_cap;
      double* const tb = tree_b.data() + slot * tree_cap;
      for (std::size_t li = 0; li < n_alive; ++li) {
        ta[base + li] = e[alive_cols[li]];
      }
      if (kind == PvKind::kRange) {
        std::copy(ta + base, ta + base + n_alive, tb + base);
      } else {
        simd_k.square(ta + base, tb + base, n_alive);
      }
      for (std::size_t li = n_alive; li < base; ++li) {
        ta[base + li] = id_a;
        tb[base + li] = id_b;
      }
      simd_k.combine_up(op_a, ta, base);
      simd_k.combine_up(op_b, tb, base);
      itq_pv[qi] = pv_from_roots(kind, n_alive, ta[1], tb[1]);
    };
    auto fill_fresh = [&]() {
      for (std::size_t i = 0; i < fresh_size; ++i) fill_entry(fresh_q[i]);
      fresh_size = 0;
    };

    auto refresh_dirty_columns = [&](std::uint64_t mark) {
      std::size_t dirty_size = 0;
      for (const platform::ProcId p : schedule.procs_changed_since(mark)) {
        const std::size_t ci = cp.column_of(p);
        HDLTS_EXPECTS(ci != sim::CompiledProblem::kNoColumn);
        if (dirty_seen[ci] == 0) {
          dirty_seen[ci] = 1;
          dirty[dirty_size++] = ci;
        }
      }
      for (std::size_t di = 0; di < dirty_size; ++di) dirty_seen[dirty[di]] = 0;
      for (std::size_t i = 0; i < itq_size; ++i) {
        const graph::TaskId v = itq_task[i];
        const std::uint32_t slot = itq_slot[i];
        const auto e = eft.subspan(slot * np, np);
        bool changed = false;
        for (std::size_t di = 0; di < dirty_size; ++di) {
          const std::size_t ci = dirty[di];
          const double f = eft_of(v, slot, ci);
          if (f != e[ci]) {
            e[ci] = f;
            // The row feeds processor selection in both modes; the PV trees
            // only matter under dynamic priorities (static mode keeps the
            // frozen itq_pv value, exactly like the legacy frozen_pv).
            if (options_.dynamic_priorities) {
              const std::size_t li = leaf_of[ci];
              util::tree_ops::update(
                  op_a, tree_a.subspan(slot * tree_cap, tree_cap), base, li, f);
              util::tree_ops::update(
                  op_b, tree_b.subspan(slot * tree_cap, tree_cap), base, li,
                  pv_leaf_b(kind, f));
              changed = true;
            }
          }
        }
        if (changed) {
          itq_pv[i] = pv_from_roots(kind, n_alive, tree_a[slot * tree_cap + 1],
                                    tree_b[slot * tree_cap + 1]);
        }
      }
    };

    // Parents not yet done gate each task; the initial ready set is pushed
    // in ascending task id, exactly like the legacy one-at-a-time scan.
    for (graph::TaskId v = 0; v < n; ++v) {
      pending[v] = 0;
      for (const graph::Adjacent& p : cp.parents(v)) {
        if (done[p.task] == 0) ++pending[v];
      }
    }
    for (graph::TaskId v = 0; v < n; ++v) {
      if (done[v] == 0 && pending[v] == 0) enqueue_ready(v);
    }
    fill_fresh();

    while (itq_size > 0) {
      // Highest PV wins; ties go to the lower task id (order-independent,
      // so the swap-remove compaction below cannot change picks).
      const std::size_t pick =
          simd_k.argmax_key(itq_pv.data(), itq_task.data(), itq_size);
      const graph::TaskId chosen = itq_task[pick];
      const std::uint32_t slot = itq_slot[pick];

      // Min-EFT processor among the *surviving* columns: the masked argmin
      // over the full-width row picks the same column the legacy scan finds
      // on its compacted row (relative order of alive columns is preserved).
      const auto row = eft.subspan(slot * np, np);
      const std::size_t best = simd_k.argmin_masked(row.data(), alive.data(),
                                                    np);
      const platform::ProcId proc = procs[best];
      const double finish = row[best];
      const double start = finish - cp.exec_time(chosen, proc);

      const std::size_t last = itq_size - 1;
      itq_task[pick] = itq_task[last];
      itq_slot[pick] = itq_slot[last];
      itq_pv[pick] = itq_pv[last];
      itq_size = last;
      free_slots[free_size++] = slot;

      const std::uint64_t mark = schedule.state_version();
      schedule.place(chosen, proc, start, finish);
      fresh_.push_back({chosen, proc, start, finish, false, false});

      // Entry duplication only applies on the cold start (all processors
      // empty); after a failure the machines are busy and Algorithm 1's
      // "duplicate from t = 0" premise no longer holds.
      if (cold_phase && unique_entry && chosen == entries[0] &&
          options_.duplication != DuplicationRule::kOff &&
          cp.out_degree(chosen) > 0) {
        const auto children = cp.children(chosen);
        for (std::size_t ci = 0; ci < np; ++ci) {
          if (alive[ci] == 0) continue;
          const platform::ProcId k = procs[ci];
          if (k == proc) continue;
          const double dup_finish = cp.exec_time(chosen, k);
          std::size_t benefits = 0;
          for (const graph::Adjacent& c : children) {
            if (dup_finish < finish + cp.comm_time_data(c.data, proc, k)) {
              ++benefits;
            }
          }
          const bool do_dup =
              options_.duplication == DuplicationRule::kAnyChildBenefits
                  ? benefits > 0
                  : benefits == children.size();
          if (do_dup) {
            schedule.place_duplicate(chosen, k, 0.0, dup_finish);
            fresh_.push_back({chosen, k, 0.0, dup_finish, true, false});
          }
        }
      }

      refresh_dirty_columns(mark);
      for (const graph::Adjacent& c : cp.children(chosen)) {
        if (--pending[c.task] == 0 && done[c.task] == 0) {
          enqueue_ready(c.task);
        }
      }
      fill_fresh();
    }
  };

  for (;;) {
    const bool all_done = done_count == n;
    // Completion requires the whole fault plan to be consumed: a failure
    // scheduled after every task acquired a committed copy can still kill a
    // copy that is running past the failure instant (see the sweep below).
    if (all_done && plan_cursor == plan.size()) {
      out.completed = true;
      break;
    }
    if (!all_done && alive_count == 0) {
      out.completed = false;
      break;
    }

    fresh_.clear();
    if (!all_done) {
      // Rebuild the schedule state from committed executions.
      schedule.reset(n, cp.num_procs());
      std::fill(has_primary.begin(), has_primary.end(),
                static_cast<unsigned char>(0));
      for (const OnlineExec& e : committed_) {
        if (has_primary[e.task] == 0) {
          schedule.place(e.task, e.proc, e.start, e.finish);
          has_primary[e.task] = 1;
        } else {
          schedule.place_duplicate(e.task, e.proc, e.start, e.finish);
        }
      }

      if (sink != nullptr) sink->on_note("online.phase_start", phase_start);
      run_phase_compiled();
      cold = false;

      if (plan_cursor == plan.size()) {
        for (const OnlineExec& e : fresh_) committed_.push_back(e);
        out.completed = true;
        break;
      }
    }

    // Apply the next failure: keep what physically happened before it.
    const ProcFailure fail = plan[plan_cursor++];
    if (fail.proc >= cp.num_procs()) {
      throw InvalidArgument("unknown processor id " +
                            std::to_string(fail.proc));
    }
    const std::size_t fcol = cp.column_of(fail.proc);
    if (fcol == sim::CompiledProblem::kNoColumn || alive[fcol] == 0) {
      continue;  // duplicate failure (or a processor dead from the start)
    }
    if (sink != nullptr) sink->on_note("online.failure", fail.time);

    auto kill = [&](OnlineExec e) {
      e.lost = true;
      e.finish = fail.time;
      out.executions.push_back(e);
      ++out.lost_executions;
      if (sink != nullptr) sink->on_note("online.lost_execution", fail.time);
    };

    for (OnlineExec& e : fresh_) {
      const bool on_failed = e.proc == fail.proc;
      if (e.finish <= fail.time) {
        committed_.push_back(e);  // finished before the failure
      } else if (e.start < fail.time) {
        if (on_failed) {
          kill(e);  // killed mid-execution; the task is re-queued later
        } else {
          committed_.push_back(e);  // keeps running on a healthy machine
        }
      }
      // start >= fail.time: revoked silently; the task will be reconsidered.
    }
    // An execution committed during an *earlier* failure is not unstoppable
    // forever: if this failure kills the machine it is still running on, it
    // dies now (same sweep as the legacy path).
    for (std::size_t i = 0; i < committed_.size();) {
      const OnlineExec& e = committed_[i];
      if (e.proc == fail.proc && e.finish > fail.time) {
        if (e.start < fail.time) kill(e);
        committed_.erase(committed_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // A task is done when any committed copy of it completed (a surviving
    // duplicate covers a lost primary).
    std::fill(done.begin(), done.end(), static_cast<unsigned char>(0));
    done_count = 0;
    for (const OnlineExec& e : committed_) {
      if (done[e.task] == 0) {
        done[e.task] = 1;
        ++done_count;
      }
    }

    alive[fcol] = 0;
    --alive_count;
    phase_start = std::max(phase_start, fail.time);
  }

  for (const OnlineExec& e : committed_) {
    out.executions.push_back(e);
    out.makespan = std::max(out.makespan, e.finish);
  }
  finish_result(out, sink);
}

OnlineResult OnlineHdlts::run(const sim::Workload& workload,
                              std::span<const ProcFailure> failures,
                              obs::DecisionTrace* sink) {
  if (!use_compiled_) return run_online_legacy(workload, failures, options_, sink);
  const sim::Problem problem(workload);  // validates + freezes once
  OnlineResult out;
  run_compiled(problem, failures, out, sink);
  return out;
}

void OnlineHdlts::run_into(const sim::Problem& problem,
                           std::span<const ProcFailure> failures,
                           OnlineResult& out, obs::DecisionTrace* sink) {
  if (!use_compiled_) {
    const sim::Workload copy{problem.graph(), problem.costs(),
                             problem.platform()};
    out = run_online_legacy(copy, failures, options_, sink);
    return;
  }
  run_compiled(problem, failures, out, sink);
}

OnlineResult run_online(const sim::Workload& workload,
                        std::span<const ProcFailure> failures,
                        const HdltsOptions& options,
                        obs::DecisionTrace* sink) {
  OnlineHdlts online(options);
  return online.run(workload, failures, sink);
}

}  // namespace hdlts::core
