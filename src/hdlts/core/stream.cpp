#include "hdlts/core/stream.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/trace.hpp"
#include "hdlts/simd/kernels.hpp"
#include "hdlts/util/reduction_tree.hpp"

namespace hdlts::core {

namespace {

// PV arithmetic comes from core/pv.hpp (shared with the incremental and
// reference schedulers, so every HDLTS mode ranks by identical values).

struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;  // combined id space
  std::vector<double> ready;                 // per alive processor
  std::size_t fifo_order = 0;                // arrival order into the ITQ
};

void flush_stream_metrics(std::size_t workflow_count) {
  static obs::Counter& runs =
      obs::MetricRegistry::global().counter("stream.runs");
  static obs::Counter& workflows =
      obs::MetricRegistry::global().counter("stream.workflows");
  runs.add(1);
  workflows.add(workflow_count);
}

}  // namespace

/// The frozen stream: the merged workload plus the per-task arrival floors
/// and id-space bookkeeping both implementations share.
struct detail::FrozenStream {
  sim::Workload workload;
  std::vector<double> floor;        // per combined task: arrival of its owner
  std::vector<std::size_t> owner;   // per combined task: workflow index
  std::vector<std::size_t> offset;  // workflow -> first combined id
  std::vector<std::size_t> phase_order;  // workflow indices in arrival order
  std::vector<double> arrival;           // per workflow
  std::vector<double> deadline;          // per workflow (absolute; +inf none)
  std::vector<unsigned char> hard;       // per workflow: hard deadline?
  std::vector<BusyInterval> busy;        // pre-occupied processor intervals
};

namespace {

/// Validates the arrivals and merges them into one workload in the combined
/// id space (workflow w's task t becomes offset[w] + t). The graph is
/// reserved to the exact task/edge totals (and the CostTable constructor
/// pre-sizes the full matrix), so the build does not realloc-churn through
/// add_task/add_edge.
detail::FrozenStream build_combined(std::span<const StreamArrival> arrivals,
                                    std::span<const BusyInterval> busy) {
  if (arrivals.empty()) {
    throw InvalidArgument("workflow stream must not be empty");
  }
  const std::size_t num_procs = arrivals.front().workload.platform.num_procs();
  for (const StreamArrival& a : arrivals) {
    a.workload.validate();
    if (a.workload.platform.num_procs() != num_procs) {
      throw InvalidArgument(
          "all stream workflows must target the same processor count");
    }
    if (a.arrival < 0.0) {
      throw InvalidArgument("arrival times must be non-negative");
    }
    if (a.deadline < a.arrival) {
      throw InvalidArgument("deadline precedes the workflow's arrival");
    }
  }
  for (const BusyInterval& b : busy) {
    if (b.proc >= num_procs) {
      throw InvalidArgument("busy interval uses unknown processor " +
                            std::to_string(b.proc));
    }
    if (b.start < 0.0 || b.finish < b.start) {
      throw InvalidArgument("busy interval is malformed");
    }
  }

  std::vector<std::size_t> offset(arrivals.size() + 1, 0);
  std::size_t total_edges = 0;
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    offset[w + 1] = offset[w] + arrivals[w].workload.graph.num_tasks();
    total_edges += arrivals[w].workload.graph.num_edges();
  }
  const std::size_t total = offset.back();

  detail::FrozenStream out{
      sim::Workload{graph::TaskGraph{}, sim::CostTable(total, num_procs),
                    arrivals.front().workload.platform},
      std::vector<double>(total, 0.0),
      std::vector<std::size_t>(total, 0),
      std::move(offset),
      {},
      {},
      {},
      {},
      {}};
  out.workload.graph.reserve(total, total_edges);
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    const auto& g = arrivals[w].workload.graph;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const graph::TaskId id =
          out.workload.graph.add_task(g.name(v) + "@" + std::to_string(w),
                                      g.work(v));
      HDLTS_ENSURES(id == out.offset[w] + v);
      out.floor[id] = arrivals[w].arrival;
      out.owner[id] = w;
      for (platform::ProcId p = 0; p < num_procs; ++p) {
        out.workload.costs.set(id, p, arrivals[w].workload.costs(v, p));
      }
    }
  }
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    const auto& g = arrivals[w].workload.graph;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      for (const graph::Adjacent& c : g.children(v)) {
        out.workload.graph.add_edge(
            static_cast<graph::TaskId>(out.offset[w] + v),
            static_cast<graph::TaskId>(out.offset[w] + c.task), c.data);
      }
    }
  }

  // Arrival phases in time order.
  out.phase_order.resize(arrivals.size());
  std::iota(out.phase_order.begin(), out.phase_order.end(), 0);
  std::sort(out.phase_order.begin(), out.phase_order.end(),
            [&](std::size_t a, std::size_t b) {
              return arrivals[a].arrival < arrivals[b].arrival;
            });
  out.arrival.resize(arrivals.size());
  out.deadline.resize(arrivals.size());
  out.hard.resize(arrivals.size());
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    out.arrival[w] = arrivals[w].arrival;
    out.deadline[w] = arrivals[w].deadline;
    out.hard[w] =
        arrivals[w].deadline_kind == DeadlineKind::kHard ? 1 : 0;
  }
  out.busy.assign(busy.begin(), busy.end());
  return out;
}

/// Deadline bookkeeping shared by both implementations: compares each
/// workflow's finish against its (absolute) deadline with strict >, so the
/// compiled and legacy paths stay exactly == on every new field.
void account_deadlines(const std::vector<double>& deadline,
                       const std::vector<unsigned char>& hard,
                       StreamResult& out) {
  out.deadline_missed.assign(deadline.size(), 0);
  out.deadline_misses = 0;
  out.hard_deadline_misses = 0;
  for (std::size_t w = 0; w < deadline.size(); ++w) {
    if (out.finish[w] > deadline[w]) {
      out.deadline_missed[w] = 1;
      ++out.deadline_misses;
      if (hard[w] != 0) ++out.hard_deadline_misses;
    }
  }
}

/// Pins the pre-occupied intervals onto a freshly reset schedule; the same
/// call order in both paths keeps their timelines bit-identical.
void apply_busy(std::span<const BusyInterval> busy, sim::Schedule& schedule) {
  for (const BusyInterval& b : busy) {
    schedule.place_busy(b.proc, b.start, b.finish);
  }
}

}  // namespace

StreamResult run_stream_legacy(std::span<const StreamArrival> arrivals,
                               const StreamOptions& options,
                               obs::DecisionTrace* sink,
                               std::span<const BusyInterval> busy) {
  const detail::FrozenStream frozen = build_combined(arrivals, busy);
  const std::size_t num_procs = frozen.workload.platform.num_procs();
  const std::size_t total = frozen.workload.graph.num_tasks();
  const std::vector<double>& floor = frozen.floor;

  const sim::Problem problem(frozen.workload);
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();

  if (sink != nullptr) {
    sink->on_begin({options.policy == StreamPolicy::kHdltsPv ? "stream-hdlts"
                                                             : "stream-fifo",
                    total, num_procs});
  }

  sim::Schedule schedule(total, num_procs);
  apply_busy(frozen.busy, schedule);
  std::vector<std::size_t> pending(total, 0);
  std::vector<bool> released(total, false);
  std::vector<ItqEntry> itq;
  std::size_t fifo_counter = 0;

  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double ready = std::max(e.ready[pi], floor[e.task]);
    const double est = std::max(ready, schedule.proc_available(p));
    return est + duration;
  };
  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    e.fifo_order = fifo_counter++;
    itq.push_back(std::move(e));
  };

  auto drain_itq = [&]() {
    while (!itq.empty()) {
      std::size_t pick = 0;
      if (options.policy == StreamPolicy::kHdltsPv) {
        std::vector<double> pv(itq.size());
        for (std::size_t i = 0; i < itq.size(); ++i) {
          std::vector<double> row(np);
          for (std::size_t pi = 0; pi < np; ++pi) row[pi] = eft_of(itq[i], pi);
          pv[i] = penalty_value(options.pv, row);
        }
        for (std::size_t i = 1; i < itq.size(); ++i) {
          if (pv[i] > pv[pick] ||
              (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
            pick = i;
          }
        }
      } else {
        for (std::size_t i = 1; i < itq.size(); ++i) {
          if (itq[i].fifo_order < itq[pick].fifo_order) pick = i;
        }
      }
      const ItqEntry chosen = std::move(itq[pick]);
      itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
      std::size_t best = 0;
      double best_eft = eft_of(chosen, 0);
      for (std::size_t pi = 1; pi < np; ++pi) {
        const double eft = eft_of(chosen, pi);
        if (eft < best_eft) {
          best_eft = eft;
          best = pi;
        }
      }
      const platform::ProcId proc = procs[best];
      const double start = best_eft - problem.exec_time(chosen.task, proc);
      schedule.place(chosen.task, proc, start, best_eft);
      if (sink != nullptr) {
        sink->on_placement({chosen.task, proc, start, best_eft, false});
      }
      for (const graph::Adjacent& c : problem.graph().children(chosen.task)) {
        if (released[c.task] && --pending[c.task] == 0) push_ready(c.task);
      }
    }
  };

  for (const std::size_t w : frozen.phase_order) {
    if (sink != nullptr) sink->on_note("stream.arrival", arrivals[w].arrival);
    // Release workflow w's tasks into the scheduler's universe.
    for (std::size_t t = frozen.offset[w]; t < frozen.offset[w + 1]; ++t) {
      const auto v = static_cast<graph::TaskId>(t);
      released[v] = true;
      pending[v] = 0;
      for (const graph::Adjacent& p : problem.graph().parents(v)) {
        if (!schedule.is_placed(p.task)) ++pending[v];
      }
      if (pending[v] == 0) push_ready(v);
    }
    drain_itq();
  }

  HDLTS_ENSURES(schedule.num_placed() == total);
  StreamResult result;
  result.finish.assign(arrivals.size(), 0.0);
  result.flow_time.assign(arrivals.size(), 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    const auto v = static_cast<graph::TaskId>(t);
    const sim::Placement& pl = schedule.placement(v);
    result.executions.push_back(
        {frozen.owner[t],
         static_cast<graph::TaskId>(t - frozen.offset[frozen.owner[t]]),
         pl.proc, pl.start, pl.finish});
    result.finish[frozen.owner[t]] =
        std::max(result.finish[frozen.owner[t]], pl.finish);
    result.makespan = std::max(result.makespan, pl.finish);
  }
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    result.flow_time[w] = result.finish[w] - arrivals[w].arrival;
  }
  account_deadlines(frozen.deadline, frozen.hard, result);
  std::sort(result.executions.begin(), result.executions.end(),
            [](const StreamTaskExec& a, const StreamTaskExec& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });

  if (sink != nullptr) {
    obs::ScheduleEndEvent end;
    end.makespan = result.makespan;
    end.steps = total;
    sink->on_end(end);
  }
  flush_stream_metrics(arrivals.size());
  return result;
}

StreamHdlts::StreamHdlts(StreamOptions options) : options_(options) {}
StreamHdlts::~StreamHdlts() = default;
StreamHdlts::StreamHdlts(StreamHdlts&&) noexcept = default;
StreamHdlts& StreamHdlts::operator=(StreamHdlts&&) noexcept = default;

void StreamHdlts::compile(std::span<const StreamArrival> arrivals,
                          std::span<const BusyInterval> busy) {
  problem_.reset();
  frozen_ =
      std::make_unique<detail::FrozenStream>(build_combined(arrivals, busy));
  problem_.emplace(frozen_->workload);
}

const sim::Workload& StreamHdlts::combined() const {
  HDLTS_EXPECTS(frozen_ != nullptr);
  return frozen_->workload;
}

// Compiled fast path. Same algorithm as run_stream_legacy, but the drain
// loop runs against the frozen combined sim::CompiledProblem with the
// hdlts.cpp compiled-loop layout: slot-recycled arena-backed SoA ready/EFT
// rows, PV reduction trees maintained incrementally from the Schedule
// change log (a placement only moves its own processor's availability, so
// only that EFT column can change), and simd::active() argmin/argmax_key
// kernels for CPU and task selection. The FIFO policy keeps a contiguous
// fifo-order array instead (unique values, scanned for the minimum), and
// skips all PV work exactly like the legacy path does.
void StreamHdlts::run_into(StreamResult& out, obs::DecisionTrace* sink) {
  HDLTS_EXPECTS(problem_.has_value());
  const detail::FrozenStream& frozen = *frozen_;
  const sim::CompiledProblem& cp = problem_->compiled();
  const auto procs = cp.procs();
  const std::size_t np = procs.size();
  const std::size_t total = cp.num_tasks();
  const std::size_t num_workflows = frozen.arrival.size();
  const bool use_pv = options_.policy == StreamPolicy::kHdltsPv;
  const PvKind kind = options_.pv;
  const auto op_a = pv_op_a(kind);
  const auto op_b = pv_op_b(kind);
  const double id_a = util::tree_ops::identity(op_a);
  const double id_b = util::tree_ops::identity(op_b);
  const std::size_t base = util::tree_ops::base_for(np > 0 ? np : 1);
  const std::size_t tree_len = 2 * base;

  util::ScratchArena& arena = arena_;
  arena.reset();
  const simd::Dispatch& simd_k = simd::active();

  if (sink != nullptr) {
    sink->on_begin({use_pv ? "stream-hdlts" : "stream-fifo", total,
                    cp.num_procs()});
  }

  const auto pending = arena.alloc<std::size_t>(total);
  const auto released = arena.alloc<unsigned char>(total);
  const auto ready = arena.alloc<double>(total * np);
  const auto eft = arena.alloc<double>(total * np);
  // PV state only when the policy ranks by PV; the arena spans are carved
  // regardless (cheap) but trees are only written on the PV path.
  const auto tree_a = arena.alloc<double>(use_pv ? total * tree_len : 0);
  const auto tree_b = arena.alloc<double>(use_pv ? total * tree_len : 0);
  const auto itq_task = arena.alloc<graph::TaskId>(total);
  const auto itq_slot = arena.alloc<std::uint32_t>(total);
  const auto itq_pv = arena.alloc<double>(total);
  const auto itq_fifo = arena.alloc<std::size_t>(total);
  const auto free_slots = arena.alloc<std::uint32_t>(total);
  const auto fresh_q = arena.alloc<std::size_t>(total);
  const auto dirty = arena.alloc<std::size_t>(np);
  const auto dirty_seen = arena.alloc<unsigned char>(np);

  std::fill(released.begin(), released.end(), static_cast<unsigned char>(0));
  std::fill(dirty_seen.begin(), dirty_seen.end(),
            static_cast<unsigned char>(0));

  schedule_.reset(total, cp.num_procs());
  sim::Schedule& schedule = schedule_;
  apply_busy(frozen.busy, schedule);
  std::size_t itq_size = 0;
  std::size_t free_size = 0;
  std::uint32_t next_slot = 0;
  std::size_t fresh_size = 0;
  std::size_t fifo_counter = 0;

  auto eft_of = [&](graph::TaskId v, std::uint32_t slot, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = cp.exec_time(v, p);
    const double rdy = std::max(ready[slot * np + pi], frozen.floor[v]);
    const double est = std::max(rdy, schedule.proc_available(p));
    return est + duration;
  };
  auto enqueue_ready = [&](graph::TaskId v) {
    const std::uint32_t slot =
        free_size > 0 ? free_slots[--free_size] : next_slot++;
    itq_task[itq_size] = v;
    itq_slot[itq_size] = slot;
    itq_pv[itq_size] = 0.0;  // overwritten on the PV path; keeps the
                             // swap-remove below off uninitialized memory
    itq_fifo[itq_size] = fifo_counter++;
    fresh_q[fresh_size++] = itq_size;
    ++itq_size;
  };
  auto fill_entry = [&](std::size_t qi) {
    const graph::TaskId v = itq_task[qi];
    const std::uint32_t slot = itq_slot[qi];
    const auto r = ready.subspan(slot * np, np);
    const auto e = eft.subspan(slot * np, np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      r[pi] = schedule.ready_time(cp, v, procs[pi]);
      e[pi] = eft_of(v, slot, pi);
    }
    if (!use_pv) return;
    double* const ta = tree_a.data() + slot * tree_len;
    double* const tb = tree_b.data() + slot * tree_len;
    std::copy(e.begin(), e.end(), ta + base);
    if (kind == PvKind::kRange) {
      std::copy(e.begin(), e.end(), tb + base);
    } else {
      simd_k.square(e.data(), tb + base, np);
    }
    for (std::size_t pi = np; pi < base; ++pi) {
      ta[base + pi] = id_a;
      tb[base + pi] = id_b;
    }
    simd_k.combine_up(op_a, ta, base);
    simd_k.combine_up(op_b, tb, base);
    itq_pv[qi] = pv_from_roots(kind, np, ta[1], tb[1]);
  };
  auto fill_fresh = [&]() {
    for (std::size_t i = 0; i < fresh_size; ++i) fill_entry(fresh_q[i]);
    fresh_size = 0;
  };

  auto refresh_dirty_columns = [&](std::uint64_t mark) {
    std::size_t dirty_size = 0;
    for (const platform::ProcId p : schedule.procs_changed_since(mark)) {
      const std::size_t pi = cp.column_of(p);
      HDLTS_EXPECTS(pi != sim::CompiledProblem::kNoColumn);
      if (dirty_seen[pi] == 0) {
        dirty_seen[pi] = 1;
        dirty[dirty_size++] = pi;
      }
    }
    for (std::size_t di = 0; di < dirty_size; ++di) dirty_seen[dirty[di]] = 0;
    for (std::size_t i = 0; i < itq_size; ++i) {
      const graph::TaskId v = itq_task[i];
      const std::uint32_t slot = itq_slot[i];
      const auto e = eft.subspan(slot * np, np);
      bool changed = false;
      for (std::size_t di = 0; di < dirty_size; ++di) {
        const std::size_t pi = dirty[di];
        const double f = eft_of(v, slot, pi);
        if (f != e[pi]) {
          e[pi] = f;
          if (use_pv) {
            util::tree_ops::update(
                op_a, tree_a.subspan(slot * tree_len, tree_len), base, pi, f);
            util::tree_ops::update(
                op_b, tree_b.subspan(slot * tree_len, tree_len), base, pi,
                pv_leaf_b(kind, f));
            changed = true;
          }
        }
      }
      if (changed) {
        itq_pv[i] = pv_from_roots(kind, np, tree_a[slot * tree_len + 1],
                                  tree_b[slot * tree_len + 1]);
      }
    }
  };

  auto drain_itq = [&]() {
    while (itq_size > 0) {
      std::size_t pick = 0;
      if (use_pv) {
        // Highest PV wins; ties to the lower task id (order-independent).
        pick = simd_k.argmax_key(itq_pv.data(), itq_task.data(), itq_size);
      } else {
        // FIFO orders are unique, so the minimum is order-independent too.
        for (std::size_t i = 1; i < itq_size; ++i) {
          if (itq_fifo[i] < itq_fifo[pick]) pick = i;
        }
      }
      const graph::TaskId chosen = itq_task[pick];
      const std::uint32_t slot = itq_slot[pick];
      const auto row = eft.subspan(slot * np, np);
      const std::size_t best = simd_k.argmin(row.data(), np);
      const platform::ProcId proc = procs[best];
      const double best_eft = row[best];
      const double start = best_eft - cp.exec_time(chosen, proc);

      const std::size_t last = itq_size - 1;
      itq_task[pick] = itq_task[last];
      itq_slot[pick] = itq_slot[last];
      itq_pv[pick] = itq_pv[last];
      itq_fifo[pick] = itq_fifo[last];
      itq_size = last;
      free_slots[free_size++] = slot;

      const std::uint64_t mark = schedule.state_version();
      schedule.place(chosen, proc, start, best_eft);
      if (sink != nullptr) {
        sink->on_placement({chosen, proc, start, best_eft, false});
      }
      refresh_dirty_columns(mark);
      for (const graph::Adjacent& c : cp.children(chosen)) {
        if (released[c.task] != 0 && --pending[c.task] == 0) {
          enqueue_ready(c.task);
        }
      }
      fill_fresh();
    }
  };

  for (const std::size_t w : frozen.phase_order) {
    if (sink != nullptr) sink->on_note("stream.arrival", frozen.arrival[w]);
    // Release workflow w's tasks into the scheduler's universe.
    for (std::size_t t = frozen.offset[w]; t < frozen.offset[w + 1]; ++t) {
      const auto v = static_cast<graph::TaskId>(t);
      released[v] = 1;
      pending[v] = 0;
      for (const graph::Adjacent& p : cp.parents(v)) {
        if (!schedule.is_placed(p.task)) ++pending[v];
      }
      if (pending[v] == 0) enqueue_ready(v);
    }
    fill_fresh();
    drain_itq();
  }

  HDLTS_ENSURES(schedule.num_placed() == total);
  out.executions.clear();
  out.makespan = 0.0;
  out.finish.assign(num_workflows, 0.0);
  out.flow_time.assign(num_workflows, 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    const auto v = static_cast<graph::TaskId>(t);
    const sim::Placement& pl = schedule.placement(v);
    out.executions.push_back(
        {frozen.owner[t],
         static_cast<graph::TaskId>(t - frozen.offset[frozen.owner[t]]),
         pl.proc, pl.start, pl.finish});
    out.finish[frozen.owner[t]] =
        std::max(out.finish[frozen.owner[t]], pl.finish);
    out.makespan = std::max(out.makespan, pl.finish);
  }
  for (std::size_t w = 0; w < num_workflows; ++w) {
    out.flow_time[w] = out.finish[w] - frozen.arrival[w];
  }
  account_deadlines(frozen.deadline, frozen.hard, out);
  std::sort(out.executions.begin(), out.executions.end(),
            [](const StreamTaskExec& a, const StreamTaskExec& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });

  if (sink != nullptr) {
    obs::ScheduleEndEvent end;
    end.makespan = out.makespan;
    end.steps = total;
    sink->on_end(end);
  }
  flush_stream_metrics(num_workflows);
}

StreamResult StreamHdlts::run(std::span<const StreamArrival> arrivals,
                              obs::DecisionTrace* sink,
                              std::span<const BusyInterval> busy) {
  if (!use_compiled_) {
    return run_stream_legacy(arrivals, options_, sink, busy);
  }
  compile(arrivals, busy);
  StreamResult out;
  run_into(out, sink);
  return out;
}

StreamResult run_stream(std::span<const StreamArrival> arrivals,
                        const StreamOptions& options,
                        obs::DecisionTrace* sink,
                        std::span<const BusyInterval> busy) {
  StreamHdlts stream(options);
  return stream.run(arrivals, sink, busy);
}

}  // namespace hdlts::core
