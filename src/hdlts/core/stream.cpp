#include "hdlts/core/stream.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/obs/metrics.hpp"
#include "hdlts/obs/trace.hpp"

namespace hdlts::core {

namespace {

// PV arithmetic comes from core/pv.hpp (shared with the incremental and
// reference schedulers, so every HDLTS mode ranks by identical values).

struct ItqEntry {
  graph::TaskId task = graph::kInvalidTask;  // combined id space
  std::vector<double> ready;                 // per alive processor
  std::size_t fifo_order = 0;                // arrival order into the ITQ
};

}  // namespace

StreamResult run_stream(std::span<const StreamArrival> arrivals,
                        const StreamOptions& options, obs::DecisionTrace* sink) {
  if (arrivals.empty()) {
    throw InvalidArgument("workflow stream must not be empty");
  }
  const std::size_t num_procs = arrivals.front().workload.platform.num_procs();
  for (const StreamArrival& a : arrivals) {
    a.workload.validate();
    if (a.workload.platform.num_procs() != num_procs) {
      throw InvalidArgument(
          "all stream workflows must target the same processor count");
    }
    if (a.arrival < 0.0) {
      throw InvalidArgument("arrival times must be non-negative");
    }
  }

  // Combined id space: workflow w's task t maps to offset[w] + t.
  std::vector<std::size_t> offset(arrivals.size() + 1, 0);
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    offset[w + 1] = offset[w] + arrivals[w].workload.graph.num_tasks();
  }
  const std::size_t total = offset.back();

  sim::Workload combined{graph::TaskGraph{}, sim::CostTable(total, num_procs),
                         arrivals.front().workload.platform};
  std::vector<double> floor(total, 0.0);
  std::vector<std::size_t> owner(total, 0);
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    const auto& g = arrivals[w].workload.graph;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const graph::TaskId id =
          combined.graph.add_task(g.name(v) + "@" + std::to_string(w),
                                  g.work(v));
      HDLTS_ENSURES(id == offset[w] + v);
      floor[id] = arrivals[w].arrival;
      owner[id] = w;
      for (platform::ProcId p = 0; p < num_procs; ++p) {
        combined.costs.set(id, p, arrivals[w].workload.costs(v, p));
      }
    }
  }
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    const auto& g = arrivals[w].workload.graph;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      for (const graph::Adjacent& c : g.children(v)) {
        combined.graph.add_edge(static_cast<graph::TaskId>(offset[w] + v),
                                static_cast<graph::TaskId>(offset[w] + c.task),
                                c.data);
      }
    }
  }
  const sim::Problem problem(combined);
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();

  if (sink != nullptr) {
    sink->on_begin({options.policy == StreamPolicy::kHdltsPv ? "stream-hdlts"
                                                             : "stream-fifo",
                    total, num_procs});
  }

  // Arrival phases in time order.
  std::vector<std::size_t> phase_order(arrivals.size());
  std::iota(phase_order.begin(), phase_order.end(), 0);
  std::sort(phase_order.begin(), phase_order.end(),
            [&](std::size_t a, std::size_t b) {
              return arrivals[a].arrival < arrivals[b].arrival;
            });

  sim::Schedule schedule(total, num_procs);
  std::vector<std::size_t> pending(total, 0);
  std::vector<bool> released(total, false);
  std::vector<ItqEntry> itq;
  std::size_t fifo_counter = 0;

  auto eft_of = [&](const ItqEntry& e, std::size_t pi) {
    const platform::ProcId p = procs[pi];
    const double duration = problem.exec_time(e.task, p);
    const double ready = std::max(e.ready[pi], floor[e.task]);
    const double est = std::max(ready, schedule.proc_available(p));
    return est + duration;
  };
  auto push_ready = [&](graph::TaskId v) {
    ItqEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    e.fifo_order = fifo_counter++;
    itq.push_back(std::move(e));
  };

  auto drain_itq = [&]() {
    while (!itq.empty()) {
      std::size_t pick = 0;
      if (options.policy == StreamPolicy::kHdltsPv) {
        std::vector<double> pv(itq.size());
        for (std::size_t i = 0; i < itq.size(); ++i) {
          std::vector<double> row(np);
          for (std::size_t pi = 0; pi < np; ++pi) row[pi] = eft_of(itq[i], pi);
          pv[i] = penalty_value(options.pv, row);
        }
        for (std::size_t i = 1; i < itq.size(); ++i) {
          if (pv[i] > pv[pick] ||
              (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
            pick = i;
          }
        }
      } else {
        for (std::size_t i = 1; i < itq.size(); ++i) {
          if (itq[i].fifo_order < itq[pick].fifo_order) pick = i;
        }
      }
      const ItqEntry chosen = std::move(itq[pick]);
      itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
      std::size_t best = 0;
      double best_eft = eft_of(chosen, 0);
      for (std::size_t pi = 1; pi < np; ++pi) {
        const double eft = eft_of(chosen, pi);
        if (eft < best_eft) {
          best_eft = eft;
          best = pi;
        }
      }
      const platform::ProcId proc = procs[best];
      const double start = best_eft - problem.exec_time(chosen.task, proc);
      schedule.place(chosen.task, proc, start, best_eft);
      if (sink != nullptr) {
        sink->on_placement({chosen.task, proc, start, best_eft, false});
      }
      for (const graph::Adjacent& c : problem.graph().children(chosen.task)) {
        if (released[c.task] && --pending[c.task] == 0) push_ready(c.task);
      }
    }
  };

  for (const std::size_t w : phase_order) {
    if (sink != nullptr) sink->on_note("stream.arrival", arrivals[w].arrival);
    // Release workflow w's tasks into the scheduler's universe.
    for (std::size_t t = offset[w]; t < offset[w + 1]; ++t) {
      const auto v = static_cast<graph::TaskId>(t);
      released[v] = true;
      pending[v] = 0;
      for (const graph::Adjacent& p : problem.graph().parents(v)) {
        if (!schedule.is_placed(p.task)) ++pending[v];
      }
      if (pending[v] == 0) push_ready(v);
    }
    drain_itq();
  }

  HDLTS_ENSURES(schedule.num_placed() == total);
  StreamResult result;
  result.finish.assign(arrivals.size(), 0.0);
  result.flow_time.assign(arrivals.size(), 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    const auto v = static_cast<graph::TaskId>(t);
    const sim::Placement& pl = schedule.placement(v);
    result.executions.push_back({owner[t],
                                 static_cast<graph::TaskId>(t - offset[owner[t]]),
                                 pl.proc, pl.start, pl.finish});
    result.finish[owner[t]] = std::max(result.finish[owner[t]], pl.finish);
    result.makespan = std::max(result.makespan, pl.finish);
  }
  for (std::size_t w = 0; w < arrivals.size(); ++w) {
    result.flow_time[w] = result.finish[w] - arrivals[w].arrival;
  }
  std::sort(result.executions.begin(), result.executions.end(),
            [](const StreamTaskExec& a, const StreamTaskExec& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });

  if (sink != nullptr) {
    obs::ScheduleEndEvent end;
    end.makespan = result.makespan;
    end.steps = total;
    sink->on_end(end);
  }
  {
    static obs::Counter& runs =
        obs::MetricRegistry::global().counter("stream.runs");
    static obs::Counter& workflows =
        obs::MetricRegistry::global().counter("stream.workflows");
    runs.add(1);
    workflows.add(arrivals.size());
  }
  return result;
}

}  // namespace hdlts::core
