// HDLTS penalty-value (PV) arithmetic, shared by the incremental scheduler
// (core/hdlts.cpp) and the brute-force reference (core/reference.cpp).
//
// The PV condenses a task's EFT row into one number (paper Eq. 8). To make
// the incremental path provably bit-identical to a full recompute, both paths
// go through the same reduction arithmetic: the row moments (sum, sum of
// squares) and extrema are kept in fixed-shape pairwise reduction trees, so
// updating only the columns whose processor changed yields exactly the same
// PV as rebuilding from the full row. A single-column update costs O(log P)
// instead of the O(P) full reduction.
//
// PvAccumulator owns its trees (used by the reference and the legacy path);
// the compiled fast path carves tree node storage from a ScratchArena and
// drives it through util::tree_ops plus the pv_op_a/pv_op_b/pv_leaf_b/
// pv_from_roots helpers below — the same ops, the same leaf values, the same
// final formula, hence the same bits.
#pragma once

#include <cstddef>
#include <span>

#include "hdlts/util/reduction_tree.hpp"

namespace hdlts::core {

/// How the penalty value condenses the EFT vector. The paper uses the sample
/// standard deviation; the alternatives are ablation variants (bench X3).
enum class PvKind { kSampleStddev, kPopulationStddev, kRange };

/// Reduction op of the A tree (sum of EFT for stddev kinds, min for range).
inline util::ReductionTree::Op pv_op_a(PvKind kind) {
  return kind == PvKind::kRange ? util::ReductionTree::Op::kMin
                                : util::ReductionTree::Op::kSum;
}

/// Reduction op of the B tree (sum of EFT^2 for stddev kinds, max for range).
inline util::ReductionTree::Op pv_op_b(PvKind kind) {
  return kind == PvKind::kRange ? util::ReductionTree::Op::kMax
                                : util::ReductionTree::Op::kSum;
}

/// The B-tree leaf value for an EFT entry (eft^2 for stddev kinds).
inline double pv_leaf_b(PvKind kind, double eft) {
  return kind == PvKind::kRange ? eft : eft * eft;
}

/// The penalty value given the two tree roots over a row of length n. This
/// is the single formula every PV in the codebase funnels through.
double pv_from_roots(PvKind kind, std::size_t n, double root_a, double root_b);

/// Incrementally maintained PV of one EFT row of length P (the alive
/// processor count). Holds two reduction trees: sum / sum-of-squares for the
/// stddev kinds, min / max for the range kind.
class PvAccumulator {
 public:
  PvAccumulator(PvKind kind, std::size_t num_procs);

  std::size_t size() const { return a_.size(); }

  /// Rebuilds from a full row (row.size() must equal size()). O(P).
  void assign(std::span<const double> row);

  /// Replaces column i with eft. O(log P).
  void update(std::size_t i, double eft);

  /// The penalty value of the current row. O(1).
  double pv() const;

 private:
  PvKind kind_;
  util::ReductionTree a_;  // sum of EFT   | min EFT
  util::ReductionTree b_;  // sum of EFT^2 | max EFT
};

/// The canonical PV of a full row: a fresh PvAccumulator reduction. This is
/// the arithmetic contract every HDLTS path (incremental, frozen-priority,
/// reference) computes PVs with.
double penalty_value(PvKind kind, std::span<const double> row);

}  // namespace hdlts::core
