// HDLTS penalty-value (PV) arithmetic, shared by the incremental scheduler
// (core/hdlts.cpp) and the brute-force reference (core/reference.cpp).
//
// The PV condenses a task's EFT row into one number (paper Eq. 8). To make
// the incremental path provably bit-identical to a full recompute, both paths
// go through PvAccumulator: the row moments (sum, sum of squares) and
// extrema are kept in fixed-shape pairwise reduction trees, so updating only
// the columns whose processor changed yields exactly the same PV as
// rebuilding from the full row. A single-column update costs O(log P)
// instead of the O(P) full reduction.
#pragma once

#include <cstddef>
#include <span>

#include "hdlts/util/reduction_tree.hpp"

namespace hdlts::core {

/// How the penalty value condenses the EFT vector. The paper uses the sample
/// standard deviation; the alternatives are ablation variants (bench X3).
enum class PvKind { kSampleStddev, kPopulationStddev, kRange };

/// Incrementally maintained PV of one EFT row of length P (the alive
/// processor count). Holds two reduction trees: sum / sum-of-squares for the
/// stddev kinds, min / max for the range kind.
class PvAccumulator {
 public:
  PvAccumulator(PvKind kind, std::size_t num_procs);

  std::size_t size() const { return a_.size(); }

  /// Rebuilds from a full row (row.size() must equal size()). O(P).
  void assign(std::span<const double> row);

  /// Replaces column i with eft. O(log P).
  void update(std::size_t i, double eft);

  /// The penalty value of the current row. O(1).
  double pv() const;

 private:
  PvKind kind_;
  util::ReductionTree a_;  // sum of EFT   | min EFT
  util::ReductionTree b_;  // sum of EFT^2 | max EFT
};

/// The canonical PV of a full row: a fresh PvAccumulator reduction. This is
/// the arithmetic contract every HDLTS path (incremental, frozen-priority,
/// reference) computes PVs with.
double penalty_value(PvKind kind, std::span<const double> row);

}  // namespace hdlts::core
