#include "hdlts/core/reference.hpp"

#include <algorithm>
#include <numeric>

#include "hdlts/graph/algorithms.hpp"
#include "hdlts/sched/ranking.hpp"

namespace hdlts::core {

namespace {

// Must match sim/schedule.cpp so the brute-force scans treat zero-duration
// pseudo-task records identically to the optimized queries.
constexpr double kEps = 1e-7;

/// Availability by full timeline scan (the pre-incremental proc_available).
double scan_avail(const sim::Schedule& schedule, platform::ProcId proc) {
  double avail = 0.0;
  for (const sim::Placement& pl : schedule.timeline(proc)) {
    avail = std::max(avail, pl.finish);
  }
  return avail;
}

/// Earliest start by full timeline scan (the pre-incremental earliest_start).
double scan_earliest_start(const sim::Schedule& schedule,
                           platform::ProcId proc, double ready,
                           double duration, bool insertion) {
  if (!insertion) return std::max(ready, scan_avail(schedule, proc));
  if (duration <= kEps) return ready;
  double cursor = ready;
  for (const sim::Placement& pl : schedule.timeline(proc)) {
    if (pl.finish - pl.start <= kEps) continue;
    if (pl.start >= cursor + duration - kEps) break;
    cursor = std::max(cursor, pl.finish);
  }
  return cursor;
}

struct RefEntry {
  graph::TaskId task = graph::kInvalidTask;
  std::vector<double> ready;
  double frozen_pv = 0.0;
};

}  // namespace

sim::Schedule ReferenceHdlts::schedule(const sim::Problem& problem) const {
  const auto& g = problem.graph();
  const auto& procs = problem.procs();
  const std::size_t np = procs.size();
  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());

  const auto entries = g.entry_tasks();
  const bool unique_entry = entries.size() == 1;

  std::vector<std::size_t> pending(g.num_tasks());
  std::vector<RefEntry> itq;

  auto eft_row = [&](const RefEntry& e) {
    std::vector<double> row(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      const platform::ProcId p = procs[pi];
      const double duration = problem.exec_time(e.task, p);
      const double est = scan_earliest_start(schedule, p, e.ready[pi],
                                             duration, options_.insertion);
      row[pi] = est + duration;
    }
    return row;
  };

  auto push_ready = [&](graph::TaskId v) {
    RefEntry e;
    e.task = v;
    e.ready.resize(np);
    for (std::size_t pi = 0; pi < np; ++pi) {
      e.ready[pi] = schedule.ready_time(problem, v, procs[pi]);
    }
    if (!options_.dynamic_priorities) {
      e.frozen_pv = penalty_value(options_.pv, eft_row(e));
    }
    itq.push_back(std::move(e));
  };

  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) push_ready(v);
  }

  auto is_free_task = [&](graph::TaskId v) {
    const auto row = problem.costs().row(v);
    for (const double c : row) {
      if (c > 0.0) return false;
    }
    return true;
  };
  auto qualifies_for_duplication = [&](graph::TaskId v) {
    if (options_.duplication == DuplicationRule::kOff) return false;
    if (unique_entry && v == entries.front()) return true;
    if (!options_.duplicate_all_sources) return false;
    const auto parents = g.parents(v);
    if (parents.empty()) return true;
    for (const graph::Adjacent& p : parents) {
      if (!is_free_task(p.task)) return false;
    }
    return true;
  };

  auto duplicate_task = [&](graph::TaskId v) {
    const auto children = g.children(v);
    if (children.empty() || is_free_task(v)) return;
    const sim::Placement& primary = schedule.placement(v);
    for (const platform::ProcId k : procs) {
      if (k == primary.proc) continue;
      const double dup_dur = problem.exec_time(v, k);
      const double dup_ready = schedule.ready_time(problem, v, k);
      const double dup_start = scan_earliest_start(schedule, k, dup_ready,
                                                   dup_dur, /*insertion=*/true);
      const double dup_finish = dup_start + dup_dur;
      std::size_t benefits = 0;
      for (const graph::Adjacent& c : children) {
        const double arrival =
            primary.finish + problem.comm_time_data(c.data, primary.proc, k);
        if (dup_finish < arrival) ++benefits;
      }
      const bool do_duplicate =
          options_.duplication == DuplicationRule::kAnyChildBenefits
              ? benefits > 0
              : benefits == children.size();
      if (do_duplicate) schedule.place_duplicate(v, k, dup_start, dup_finish);
    }
  };

  while (!itq.empty()) {
    std::vector<double> pv(itq.size());
    for (std::size_t i = 0; i < itq.size(); ++i) {
      pv[i] = options_.dynamic_priorities
                  ? penalty_value(options_.pv, eft_row(itq[i]))
                  : itq[i].frozen_pv;
    }
    std::size_t pick = 0;
    for (std::size_t i = 1; i < itq.size(); ++i) {
      if (pv[i] > pv[pick] ||
          (pv[i] == pv[pick] && itq[i].task < itq[pick].task)) {
        pick = i;
      }
    }

    const RefEntry chosen_entry = std::move(itq[pick]);
    itq.erase(itq.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto row = eft_row(chosen_entry);
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < np; ++pi) {
      if (row[pi] < row[best]) best = pi;
    }
    const platform::ProcId proc = procs[best];
    const double finish = row[best];
    const double start = finish - problem.exec_time(chosen_entry.task, proc);

    schedule.place(chosen_entry.task, proc, start, finish);
    if (qualifies_for_duplication(chosen_entry.task)) {
      duplicate_task(chosen_entry.task);
    }
    for (const graph::Adjacent& c : g.children(chosen_entry.task)) {
      if (--pending[c.task] == 0) push_ready(c.task);
    }
  }

  HDLTS_ENSURES(schedule.num_placed() == problem.num_tasks());
  return schedule;
}

sim::Schedule ReferenceHeft::schedule(const sim::Problem& problem) const {
  const auto rank = sched::upward_rank_mean(problem);
  const auto order = graph::topological_order(problem.graph());

  std::vector<std::size_t> topo_pos(problem.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;

  std::vector<graph::TaskId> list(problem.num_tasks());
  std::iota(list.begin(), list.end(), 0);
  std::sort(list.begin(), list.end(), [&](graph::TaskId a, graph::TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return topo_pos[a] < topo_pos[b];
  });

  sim::Schedule schedule(problem.num_tasks(), problem.num_procs());
  for (const graph::TaskId v : list) {
    platform::ProcId best_proc = platform::kInvalidProc;
    double best_est = 0.0;
    double best_eft = 0.0;
    for (const platform::ProcId p : problem.procs()) {
      const double ready = schedule.ready_time(problem, v, p);
      const double duration = problem.exec_time(v, p);
      const double est =
          scan_earliest_start(schedule, p, ready, duration, insertion_);
      const double eft = est + duration;
      if (best_proc == platform::kInvalidProc || eft < best_eft) {
        best_proc = p;
        best_est = est;
        best_eft = eft;
      }
    }
    schedule.place(v, best_proc, best_est, best_eft);
  }
  return schedule;
}

}  // namespace hdlts::core
