// Brute-force reference schedulers — the differential-testing oracles for
// the incremental hot paths (tests/incremental_equiv_test.cpp) and the
// pre-optimization baseline timed by bench/micro_scale.
//
// ReferenceHdlts re-implements HDLTS exactly as the pre-incremental code
// did: the full EFT row of every ITQ entry is rebuilt from scratch each
// round, and every availability / earliest-start query rescans the processor
// timeline instead of using sim::Schedule's O(1) caches. ReferenceHeft does
// the same for HEFT. Both must produce bit-identical schedules to their
// optimized counterparts on every input; neither is registered in
// default_registry() — they exist for verification and benchmarking only.
#pragma once

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sched/scheduler.hpp"

namespace hdlts::core {

class ReferenceHdlts final : public sched::Scheduler {
 public:
  explicit ReferenceHdlts(HdltsOptions options = {}) : options_(options) {}

  std::string name() const override { return "hdlts-reference"; }
  const HdltsOptions& options() const { return options_; }

  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  HdltsOptions options_;
};

class ReferenceHeft final : public sched::Scheduler {
 public:
  explicit ReferenceHeft(bool insertion = true) : insertion_(insertion) {}

  std::string name() const override { return "heft-reference"; }

  sim::Schedule schedule(const sim::Problem& problem) const override;

 private:
  bool insertion_;
};

}  // namespace hdlts::core
