// EnergyAwareHdlts is header-only over Hdlts (the weighted selection rule
// lives in hdlts.cpp so both the legacy and compiled paths share it); this
// translation unit just anchors the class for the module's object list.
#include "hdlts/core/energy_aware.hpp"

#include <type_traits>

namespace hdlts::core {

static_assert(!std::is_abstract_v<EnergyAwareHdlts>,
              "EnergyAwareHdlts must be constructible behind the registry");

}  // namespace hdlts::core
