// Dynamic application workflows (the paper's §VI second future-work item):
// a stream of workflows arriving over time on a shared heterogeneous
// platform, scheduled online.
//
// Model: the scheduler is not clairvoyant — a workflow is invisible before
// its arrival. Between arrivals the scheduler eagerly assigns every
// currently-independent task exactly as HDLTS does (Algorithm 2), with each
// task's EST floored at its workflow's arrival time; when a new workflow
// arrives its source tasks join the ITQ and priorities are recomputed.
// Assignments are non-preemptive and never revoked (contrast with the
// failure path in hdlts/core/online.hpp, which does revoke).
//
// Two implementations produce bit-identical results (tests/stream_test.cpp,
// tests/dst_test.cpp):
//   * the compiled path (StreamHdlts, the default behind run_stream) merges
//     the arrivals once into a combined CSR sim::CompiledProblem (the
//     combiner reserves exact task/edge counts) and schedules with
//     arena-backed SoA ready/EFT rows, incremental dirty-column refresh,
//     and simd::active() kernels; once frozen, repeated run_into() calls
//     perform zero heap allocations;
//   * the legacy path (run_stream_legacy) recomputes every ITQ row per
//     round — the reference the compiled path is tested against.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdlts/core/hdlts.hpp"
#include "hdlts/sim/schedule.hpp"
#include "hdlts/util/arena.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::core {

namespace detail {
struct FrozenStream;  // the merged combined-id-space workload (stream.cpp)
}

/// QoS class of a workflow's deadline (arXiv 2506.12415's soft/hard split).
/// Accounting only — the non-clairvoyant stream scheduler never revokes
/// work, so a hard miss is reported, not prevented.
enum class DeadlineKind {
  kSoft,  ///< a miss degrades quality of service
  kHard,  ///< a miss is a correctness event (counted separately)
};

/// One workflow in the stream. Workloads must all target a platform with
/// the same processor count; the stream runs on the platform of the first
/// arrival (bandwidths of later platforms are ignored).
struct StreamArrival {
  sim::Workload workload;
  double arrival = 0.0;
  /// Absolute completion deadline; +infinity (the default) means none.
  double deadline = std::numeric_limits<double>::infinity();
  DeadlineKind deadline_kind = DeadlineKind::kSoft;
};

/// A pre-occupied interval on one processor: background load that exists
/// before the stream starts (the platform is not idle at time zero). The
/// Schedule respects these at init — no task may overlap one.
struct BusyInterval {
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
};

/// Which priority rule drives the shared ITQ.
enum class StreamPolicy {
  kHdltsPv,  ///< penalty value (sample stddev of EFTs) — the paper's rule
  kFifoEft,  ///< first-come-first-served among ready tasks, min-EFT CPU
};

struct StreamTaskExec {
  std::size_t workflow = 0;       ///< index into the arrival list
  graph::TaskId task = 0;         ///< task id *within* that workflow
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
};

struct StreamResult {
  std::vector<StreamTaskExec> executions;
  /// Completion time of each workflow (absolute).
  std::vector<double> finish;
  /// Flow time of each workflow: finish - arrival.
  std::vector<double> flow_time;
  /// Per workflow: 1 when finish exceeds the arrival's deadline.
  std::vector<unsigned char> deadline_missed;
  /// Count of missed deadlines (soft + hard) and the hard subset.
  std::size_t deadline_misses = 0;
  std::size_t hard_deadline_misses = 0;
  /// Completion of the whole stream.
  double makespan = 0.0;
};

struct StreamOptions {
  StreamPolicy policy = StreamPolicy::kHdltsPv;
  PvKind pv = PvKind::kSampleStddev;
};

/// Reusable stream scheduler. compile() freezes an arrival set into one
/// combined CSR problem (this step allocates); run_into() then schedules
/// the frozen stream with arena-backed state — with a warm arena and a
/// recycled result, a steady-state call performs zero heap allocations
/// (tests/alloc_test.cpp: StreamCompiledSteadyState).
class StreamHdlts {
 public:
  explicit StreamHdlts(StreamOptions options = {});
  ~StreamHdlts();
  StreamHdlts(StreamHdlts&&) noexcept;
  StreamHdlts& operator=(StreamHdlts&&) noexcept;

  const StreamOptions& options() const { return options_; }

  /// Compiled (default) vs legacy reference path; only affects run() —
  /// run_into() always schedules the frozen compiled problem.
  bool use_compiled() const { return use_compiled_; }
  void set_use_compiled(bool use) { use_compiled_ = use; }

  /// Validates the arrivals and freezes them into the combined problem.
  /// `busy` (optional) pins pre-occupied processor intervals that every
  /// subsequent run_into() re-applies to the Schedule at init. Throws
  /// InvalidArgument exactly where run_stream would.
  void compile(std::span<const StreamArrival> arrivals,
               std::span<const BusyInterval> busy = {});
  bool compiled() const { return problem_.has_value(); }
  /// The frozen combined workload (requires compiled()).
  const sim::Workload& combined() const;

  /// Schedules the frozen stream (requires compiled()). Zero-allocation in
  /// steady state with a null sink.
  void run_into(StreamResult& out, obs::DecisionTrace* sink = nullptr);

  /// compile() + run_into() (or the legacy reference when use_compiled()
  /// is off).
  StreamResult run(std::span<const StreamArrival> arrivals,
                   obs::DecisionTrace* sink = nullptr,
                   std::span<const BusyInterval> busy = {});

 private:
  StreamOptions options_;
  bool use_compiled_ = true;
  std::unique_ptr<detail::FrozenStream> frozen_;
  std::optional<sim::Problem> problem_;
  util::ScratchArena arena_;
  sim::Schedule schedule_{0, 1};
};

/// Runs the stream to completion. Throws InvalidArgument on inconsistent
/// processor counts or an empty stream. `sink` (optional) receives a note
/// per workflow arrival, every execution as a placement (in the combined id
/// space), and an end event with the stream makespan; exported through
/// obs::write_chrome_trace this reconstructs the per-processor lanes even
/// though no sim::Schedule is returned. Compiled fast path; bit-identical
/// to run_stream_legacy.
StreamResult run_stream(std::span<const StreamArrival> arrivals,
                        const StreamOptions& options = {},
                        obs::DecisionTrace* sink = nullptr,
                        std::span<const BusyInterval> busy = {});

/// Reference implementation: recomputes every EFT row and PV per round.
/// Kept as the differential-testing oracle for the compiled path (and as
/// the allocation negative control).
StreamResult run_stream_legacy(std::span<const StreamArrival> arrivals,
                               const StreamOptions& options = {},
                               obs::DecisionTrace* sink = nullptr,
                               std::span<const BusyInterval> busy = {});

}  // namespace hdlts::core
