// Dynamic application workflows (the paper's §VI second future-work item):
// a stream of workflows arriving over time on a shared heterogeneous
// platform, scheduled online.
//
// Model: the scheduler is not clairvoyant — a workflow is invisible before
// its arrival. Between arrivals the scheduler eagerly assigns every
// currently-independent task exactly as HDLTS does (Algorithm 2), with each
// task's EST floored at its workflow's arrival time; when a new workflow
// arrives its source tasks join the ITQ and priorities are recomputed.
// Assignments are non-preemptive and never revoked (contrast with the
// failure path in hdlts/core/online.hpp, which does revoke).
#pragma once

#include <span>
#include <vector>

#include "hdlts/core/hdlts.hpp"

namespace hdlts::obs {
class DecisionTrace;
}

namespace hdlts::core {

/// One workflow in the stream. Workloads must all target a platform with
/// the same processor count; the stream runs on the platform of the first
/// arrival (bandwidths of later platforms are ignored).
struct StreamArrival {
  sim::Workload workload;
  double arrival = 0.0;
};

/// Which priority rule drives the shared ITQ.
enum class StreamPolicy {
  kHdltsPv,  ///< penalty value (sample stddev of EFTs) — the paper's rule
  kFifoEft,  ///< first-come-first-served among ready tasks, min-EFT CPU
};

struct StreamTaskExec {
  std::size_t workflow = 0;       ///< index into the arrival list
  graph::TaskId task = 0;         ///< task id *within* that workflow
  platform::ProcId proc = platform::kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
};

struct StreamResult {
  std::vector<StreamTaskExec> executions;
  /// Completion time of each workflow (absolute).
  std::vector<double> finish;
  /// Flow time of each workflow: finish - arrival.
  std::vector<double> flow_time;
  /// Completion of the whole stream.
  double makespan = 0.0;
};

struct StreamOptions {
  StreamPolicy policy = StreamPolicy::kHdltsPv;
  PvKind pv = PvKind::kSampleStddev;
};

/// Runs the stream to completion. Throws InvalidArgument on inconsistent
/// processor counts or an empty stream. `sink` (optional) receives a note
/// per workflow arrival, every execution as a placement (in the combined id
/// space), and an end event with the stream makespan; exported through
/// obs::write_chrome_trace this reconstructs the per-processor lanes even
/// though no sim::Schedule is returned.
StreamResult run_stream(std::span<const StreamArrival> arrivals,
                        const StreamOptions& options = {},
                        obs::DecisionTrace* sink = nullptr);

}  // namespace hdlts::core
