#include "hdlts/core/periodic.hpp"

#include <algorithm>
#include <limits>

#include "hdlts/util/rng.hpp"

namespace hdlts::core {

namespace {

/// Scheduler-independent makespan floor of one workload: the total
/// minimum-processor work spread over the alive processors. Local on purpose
/// — core cannot link metrics (metrics sits above svc, which sits above
/// core), and the deadline only needs a consistent scale, not a tight bound.
double min_work_per_proc(const sim::Workload& wl) {
  const std::vector<platform::ProcId> alive = wl.platform.alive_procs();
  if (alive.empty()) return 0.0;
  double min_work = 0.0;
  for (graph::TaskId v = 0; v < wl.graph.num_tasks(); ++v) {
    double best = wl.costs(v, alive.front());
    for (const platform::ProcId p : alive) {
      best = std::min(best, wl.costs(v, p));
    }
    min_work += best;
  }
  return min_work / static_cast<double>(alive.size());
}

}  // namespace

PeriodicStream make_periodic_stream(const PeriodicStreamParams& params,
                                    const WorkflowFactory& factory,
                                    std::uint64_t seed) {
  HDLTS_EXPECTS(params.count > 0);
  HDLTS_EXPECTS(params.period > 0.0);
  util::Rng rng(util::derive_seed(seed, 0x9e0dULL));

  PeriodicStream out;
  out.arrivals.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    sim::Workload wl = factory(i, util::derive_seed(seed, 0x77fULL, i));
    double arrival = params.period * static_cast<double>(i);
    if (params.jitter > 0.0) {
      arrival += rng.uniform(0.0, params.jitter * params.period);
    }
    double deadline = std::numeric_limits<double>::infinity();
    DeadlineKind kind = DeadlineKind::kSoft;
    if (params.deadline_factor > 0.0) {
      deadline = arrival + params.deadline_factor * min_work_per_proc(wl);
      kind = rng.chance(params.hard_fraction) ? DeadlineKind::kHard
                                              : DeadlineKind::kSoft;
    }
    out.arrivals.push_back({std::move(wl), arrival, deadline, kind});
  }

  if (params.busy_fraction > 0.0) {
    const std::size_t num_procs =
        out.arrivals.front().workload.platform.num_procs();
    for (platform::ProcId p = 0; p < num_procs; ++p) {
      const double len = rng.uniform(0.0, params.busy_fraction * params.period);
      if (len > 0.0) out.busy.push_back({p, 0.0, len});
    }
  }
  return out;
}

}  // namespace hdlts::core
