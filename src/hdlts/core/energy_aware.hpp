// Energy- and deadline-aware HDLTS (multi-objective extension; the Mack et
// al. arXiv 2112.08980 direction named in the ROADMAP). Identical to HDLTS
// in phases 1 and 2 (entry duplication, PV-driven dynamic prioritization);
// only the CPU selection rule changes: instead of pure min-EFT, the chosen
// task goes to
//
//   argmin over eligible p of  EFT(v, p) + energy_weight * E_dyn(v, p)
//
// where E_dyn(v, p) = W(v, p) * (busy_power(p) - idle_power(p)) is the
// cached sim::CompiledProblem::dyn_energy row and a processor is eligible
// only when its EFT meets options().deadline (min-EFT fallback when none
// do). At energy_weight == 0 the baseline scan runs verbatim, so the
// configuration space degrades continuously to plain HDLTS — bit-identical
// schedules at weight 0, enforced in tests/pareto_test.cpp.
#pragma once

#include "hdlts/core/hdlts.hpp"

namespace hdlts::core {

class EnergyAwareHdlts final : public Hdlts {
 public:
  /// Defaults to energy_defaults() — unit energy weight, no deadline.
  explicit EnergyAwareHdlts(HdltsOptions options = energy_defaults())
      : Hdlts(options) {}

  std::string name() const override { return "hdlts-energy"; }

  /// The registry preset behind "hdlts-energy": energy_weight = 1.0 (EFT
  /// time units and joules enter the key at equal weight under the default
  /// busy/idle powers), everything else baseline HDLTS.
  static HdltsOptions energy_defaults() {
    HdltsOptions o;
    o.energy_weight = 1.0;
    return o;
  }
};

}  // namespace hdlts::core
