#include "hdlts/workload/gauss.hpp"

namespace hdlts::workload {

void GaussParams::validate() const {
  if (matrix_size < 2) throw InvalidArgument("gauss needs matrix size >= 2");
  costs.validate();
}

std::size_t gauss_task_count(std::size_t matrix_size) {
  return (matrix_size - 1) + matrix_size * (matrix_size - 1) / 2;
}

graph::TaskGraph gauss_structure(std::size_t matrix_size) {
  if (matrix_size < 2) throw InvalidArgument("gauss needs matrix size >= 2");
  const std::size_t m = matrix_size;
  graph::TaskGraph g;
  // Each update task has <= 2 in-edges, each pivot <= 1.
  g.reserve(gauss_task_count(m), m * (m - 1));
  // update[j] holds the most recent task that produced column j.
  std::vector<graph::TaskId> update(m, graph::kInvalidTask);
  graph::TaskId prev_pivot = graph::kInvalidTask;
  for (std::size_t k = 0; k + 1 < m; ++k) {
    const graph::TaskId pivot = g.add_task("piv_" + std::to_string(k));
    if (k > 0) {
      // The pivot consumes the column k update from the previous step.
      g.add_edge(update[k], pivot, 0.0);
    }
    (void)prev_pivot;
    for (std::size_t j = k + 1; j < m; ++j) {
      const graph::TaskId u =
          g.add_task("upd_" + std::to_string(k) + "_" + std::to_string(j));
      g.add_edge(pivot, u, 0.0);
      if (k > 0) g.add_edge(update[j], u, 0.0);
      update[j] = u;
    }
    prev_pivot = pivot;
  }
  HDLTS_ENSURES(g.num_tasks() == gauss_task_count(matrix_size));
  HDLTS_ENSURES(g.entry_tasks().size() == 1 && g.exit_tasks().size() == 1);
  return g;
}

sim::Workload gauss_workload(const GaussParams& params, std::uint64_t seed) {
  params.validate();
  return make_workload(gauss_structure(params.matrix_size), params.costs,
                       seed);
}

}  // namespace hdlts::workload
