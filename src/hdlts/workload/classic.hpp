// The worked example of the paper's Fig. 1 / Table I: the classic 10-task
// workflow from the HEFT paper (Topcuoglu, Hariri & Wu, TPDS 2002, Fig. 2),
// on 3 processors. Reverse-engineering the Table I arithmetic shows the
// HDLTS paper reuses this exact graph, W matrix, and edge weights (see
// DESIGN.md). Known makespans on it: HDLTS = 73, HEFT = 80, CPOP = 86.
#pragma once

#include "hdlts/sim/problem.hpp"

namespace hdlts::workload {

/// The 10-task / 3-processor benchmark workload. Task ids 0..9 correspond to
/// the paper's T1..T10; edge data volumes equal communication times
/// (bandwidth 1).
sim::Workload classic_workload();

}  // namespace hdlts::workload
