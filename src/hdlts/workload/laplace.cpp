#include "hdlts/workload/laplace.hpp"

#include <algorithm>

namespace hdlts::workload {

void LaplaceParams::validate() const {
  if (size < 2) throw InvalidArgument("laplace needs size >= 2");
  costs.validate();
}

graph::TaskGraph laplace_structure(std::size_t size) {
  if (size < 2) throw InvalidArgument("laplace needs size >= 2");
  const std::size_t m = size;
  const std::size_t levels = 2 * m - 1;
  auto width = [m, levels](std::size_t l) {
    return std::min(l + 1, levels - l);
  };

  graph::TaskGraph g;
  // Every task feeds at most two successors.
  g.reserve(m * m, 2 * m * m);
  std::vector<std::vector<graph::TaskId>> level(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t i = 0; i < width(l); ++i) {
      level[l].push_back(
          g.add_task("lap_" + std::to_string(l) + "_" + std::to_string(i)));
    }
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const std::size_t w = width(l);
    const std::size_t wn = width(l + 1);
    for (std::size_t i = 0; i < w; ++i) {
      if (wn > w) {
        // Expanding half: (l, i) feeds (l+1, i) and (l+1, i+1).
        g.add_edge(level[l][i], level[l + 1][i], 0.0);
        g.add_edge(level[l][i], level[l + 1][i + 1], 0.0);
      } else {
        // Contracting half: (l, i) feeds (l+1, i-1) and (l+1, i).
        if (i >= 1) g.add_edge(level[l][i], level[l + 1][i - 1], 0.0);
        if (i + 1 <= wn) g.add_edge(level[l][i], level[l + 1][i], 0.0);
      }
    }
  }
  HDLTS_ENSURES(g.num_tasks() == m * m);
  HDLTS_ENSURES(g.entry_tasks().size() == 1 && g.exit_tasks().size() == 1);
  return g;
}

sim::Workload laplace_workload(const LaplaceParams& params,
                               std::uint64_t seed) {
  params.validate();
  return make_workload(laplace_structure(params.size), params.costs, seed);
}

}  // namespace hdlts::workload
