#include "hdlts/workload/forkjoin.hpp"

namespace hdlts::workload {

void ForkJoinParams::validate() const {
  if (chains == 0) throw InvalidArgument("forkjoin needs >= 1 chain");
  if (length == 0) throw InvalidArgument("forkjoin needs chain length >= 1");
  costs.validate();
}

graph::TaskGraph forkjoin_structure(std::size_t chains, std::size_t length) {
  if (chains == 0 || length == 0) {
    throw InvalidArgument("forkjoin needs >= 1 chain of length >= 1");
  }
  graph::TaskGraph g;
  g.reserve(2 + chains * length, chains * (length + 1));
  const graph::TaskId entry = g.add_task("fork");
  std::vector<graph::TaskId> tails;
  tails.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    graph::TaskId prev = entry;
    for (std::size_t s = 0; s < length; ++s) {
      const graph::TaskId t = g.add_task(
          "chain_" + std::to_string(c) + "_" + std::to_string(s));
      g.add_edge(prev, t, 0.0);
      prev = t;
    }
    tails.push_back(prev);
  }
  const graph::TaskId exit = g.add_task("join");
  for (const graph::TaskId t : tails) g.add_edge(t, exit, 0.0);
  HDLTS_ENSURES(g.num_tasks() == 2 + chains * length);
  return g;
}

sim::Workload forkjoin_workload(const ForkJoinParams& params,
                                std::uint64_t seed) {
  params.validate();
  return make_workload(forkjoin_structure(params.chains, params.length),
                       params.costs, seed);
}

}  // namespace hdlts::workload
