#include "hdlts/workload/grid.hpp"

#include <algorithm>
#include <unordered_set>

namespace hdlts::workload {

ParameterGrid ParameterGrid::paper() {
  ParameterGrid g;
  g.tasks = {100, 200, 300, 400, 500, 1000, 5000, 10000};
  g.alpha = {0.5, 1.0, 1.5, 2.0, 2.5};
  g.density = {1, 2, 3, 4, 5};
  g.ccr = {1.0, 2.0, 3.0, 4.0, 5.0};
  g.procs = {2, 4, 6, 8, 10};
  g.wdag = {50, 60, 70, 80, 90, 100};
  g.beta = {0.4, 0.8, 1.2, 1.6, 2.0};
  return g;
}

std::size_t ParameterGrid::size() const {
  return tasks.size() * alpha.size() * density.size() * ccr.size() *
         procs.size() * wdag.size() * beta.size();
}

RandomDagParams ParameterGrid::at(std::size_t index) const {
  if (tasks.empty() || alpha.empty() || density.empty() || ccr.empty() ||
      procs.empty() || wdag.empty() || beta.empty()) {
    throw InvalidArgument("parameter grid has an empty axis");
  }
  if (index >= size()) {
    throw InvalidArgument("grid index " + std::to_string(index) +
                          " out of range (size " + std::to_string(size()) +
                          ")");
  }
  auto take = [&index](const auto& axis) {
    const std::size_t i = index % axis.size();
    index /= axis.size();
    return axis[i];
  };
  // beta fastest, tasks slowest — matches the documented mixed radix.
  RandomDagParams p;
  p.costs.beta = take(beta);
  p.costs.wdag = take(wdag);
  p.costs.num_procs = take(procs);
  p.costs.ccr = take(ccr);
  p.density = take(density);
  p.alpha = take(alpha);
  p.num_tasks = take(tasks);
  return p;
}

std::vector<std::size_t> ParameterGrid::sample(std::size_t count,
                                               std::uint64_t seed) const {
  const std::size_t n = size();
  if (count > n) {
    throw InvalidArgument("cannot sample " + std::to_string(count) +
                          " from a grid of " + std::to_string(n));
  }
  util::Rng rng(seed);
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (seen.insert(i).second) out.push_back(i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hdlts::workload
