// Montage astronomical-mosaic workflow (paper §V-C2; Deelman et al.,
// Pegasus). The classic level structure is
//   mProjectPP(k) -> mDiffFit(~3k/2) -> mConcatFit(1) -> mBgModel(1)
//   -> mBackground(k) -> mImgtbl(1) -> mAdd(1) -> mShrink(1) -> mJPEG(1),
// which gives the well-known 20-node sample at k = 4 and scales to the 50-
// and 100-node workflows the paper sweeps.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct MontageParams {
  std::size_t num_nodes = 50;  ///< total task budget (>= 13, i.e. k >= 2)
  CostParams costs;

  void validate() const;
};

/// Structure only; mDiffFit pairings beyond the adjacent-image chain are
/// drawn from `rng`. Multiple mProjectPP entries (normalized later).
graph::TaskGraph montage_structure(const MontageParams& params,
                                   util::Rng& rng);

sim::Workload montage_workload(const MontageParams& params,
                               std::uint64_t seed);

}  // namespace hdlts::workload
