// Synthetic random task-graph generator (paper §V-B), following the
// parameterization of Topcuoglu et al.: V tasks arranged into about
// sqrt(V)/alpha precedence levels of mean width alpha*sqrt(V); each task
// feeds `density` (on average) tasks on later levels. The generator can emit
// multiple entry/exit tasks, which make_workload() normalizes with pseudo
// tasks exactly as the paper describes.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/util/rng.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct RandomDagParams {
  std::size_t num_tasks = 100;  ///< V (before pseudo-task normalization)
  double alpha = 1.0;           ///< shape: height ~ sqrt(V)/alpha
  std::size_t density = 3;      ///< mean out-degree toward later levels
  CostParams costs;             ///< processors, Wdag, beta, CCR

  void validate() const;
};

/// Structure only (no costs); deterministic for a given rng state.
graph::TaskGraph random_structure(const RandomDagParams& params,
                                  util::Rng& rng);

/// Complete workload: structure + normalization + costs, from one seed.
sim::Workload random_workload(const RandomDagParams& params,
                              std::uint64_t seed);

}  // namespace hdlts::workload
