// The paper's Table II parameter grid as a first-class object: every
// combination of V, alpha, density, CCR, CPU count, Wdag and beta,
// addressable by a mixed-radix index — so sweeps can enumerate or sample
// the whole space deterministically (the paper reports "125K unique
// application workflow graphs"; the literal product of Table II is
// 8*5*5*5*5*6*5 = 150,000 combinations).
#pragma once

#include <cstdint>
#include <vector>

#include "hdlts/workload/random_dag.hpp"

namespace hdlts::workload {

struct ParameterGrid {
  std::vector<std::size_t> tasks;
  std::vector<double> alpha;
  std::vector<std::size_t> density;
  std::vector<double> ccr;
  std::vector<std::size_t> procs;
  std::vector<double> wdag;
  std::vector<double> beta;

  /// The paper's Table II values.
  static ParameterGrid paper();

  /// Number of combinations (product of the axis sizes).
  std::size_t size() const;

  /// The index-th combination (mixed-radix decode, tasks slowest).
  /// Throws InvalidArgument when out of range or any axis is empty.
  RandomDagParams at(std::size_t index) const;

  /// `count` distinct combination indices drawn without replacement,
  /// deterministic per seed; count must not exceed size().
  std::vector<std::size_t> sample(std::size_t count,
                                  std::uint64_t seed) const;
};

}  // namespace hdlts::workload
