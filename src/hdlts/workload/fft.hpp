// Fast Fourier Transform application workflow (paper §V-C1, after the HEFT
// paper): a recursive-call binary tree of 2(m-1)+1 tasks whose m leaves feed
// a butterfly network of m*log2(m) tasks. m = 4..32 yields 15..223 tasks,
// matching the paper's range.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct FftParams {
  std::size_t points = 8;  ///< m; must be a power of two >= 2
  CostParams costs;

  void validate() const;
};

/// Number of tasks an m-point FFT workflow contains (before normalization):
/// 2(m-1)+1 recursive + m*log2(m) butterfly.
std::size_t fft_task_count(std::size_t points);

/// Structure only. Single entry (tree root); the m butterfly outputs form
/// multiple exits, normalized later by make_workload.
graph::TaskGraph fft_structure(std::size_t points);

sim::Workload fft_workload(const FftParams& params, std::uint64_t seed);

}  // namespace hdlts::workload
