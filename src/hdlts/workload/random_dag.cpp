#include "hdlts/workload/random_dag.hpp"

#include <algorithm>
#include <cmath>

namespace hdlts::workload {

void RandomDagParams::validate() const {
  if (num_tasks < 2) throw InvalidArgument("random DAG needs >= 2 tasks");
  if (alpha <= 0.0) throw InvalidArgument("alpha must be positive");
  if (density == 0) throw InvalidArgument("density must be >= 1");
  costs.validate();
}

graph::TaskGraph random_structure(const RandomDagParams& params,
                                  util::Rng& rng) {
  params.validate();
  const auto v = static_cast<double>(params.num_tasks);
  const double sqrt_v = std::sqrt(v);

  // Height ~ sqrt(V)/alpha levels; per-level widths jitter around
  // alpha*sqrt(V) and are then scaled so they sum to exactly V.
  const std::size_t levels = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(sqrt_v / params.alpha)));
  std::vector<double> raw(levels);
  double total = 0.0;
  for (double& w : raw) {
    w = rng.uniform(0.5, 1.5) * params.alpha * sqrt_v;
    total += w;
  }
  std::vector<std::size_t> width(levels, 1);
  std::size_t assigned = levels;  // one guaranteed task per level
  for (std::size_t l = 0; l < levels && assigned < params.num_tasks; ++l) {
    const auto extra = static_cast<std::size_t>(
        std::floor(raw[l] / total * (v - static_cast<double>(levels))));
    const std::size_t take =
        std::min(extra, params.num_tasks - assigned);
    width[l] += take;
    assigned += take;
  }
  // Distribute any rounding remainder round-robin.
  for (std::size_t l = 0; assigned < params.num_tasks;
       l = (l + 1) % levels) {
    ++width[l];
    ++assigned;
  }

  graph::TaskGraph g;
  // One mandatory parent edge per non-top task plus ~density extras per
  // non-bottom task — a close upper bound on the final edge count.
  g.reserve(params.num_tasks, params.num_tasks * (1 + params.density));
  std::vector<std::vector<graph::TaskId>> level_tasks(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    for (std::size_t i = 0; i < width[l]; ++i) {
      level_tasks[l].push_back(g.add_task());
    }
  }

  // Every non-top task takes one mandatory parent on the previous level (so
  // the level structure is real), plus extra forward edges for density. The
  // top level can hold several tasks — the multi-entry case the paper's
  // pseudo-task normalization exists for; likewise multiple exits arise
  // naturally from tasks that never get chosen as a source.
  for (std::size_t l = 1; l < levels; ++l) {
    for (const graph::TaskId t : level_tasks[l]) {
      const auto& prev = level_tasks[l - 1];
      const graph::TaskId parent = prev[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))];
      g.add_edge(parent, t, 0.0);
    }
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    for (const graph::TaskId t : level_tasks[l]) {
      // Out-degree ~ U[1, 2*density - 1], mean = density (counting the
      // mandatory child edges this task may already have received).
      const auto want = static_cast<std::size_t>(
          rng.uniform_int(1, 2 * static_cast<std::int64_t>(params.density) - 1));
      std::size_t have = g.out_degree(t);
      for (std::size_t attempt = 0; have < want && attempt < 4 * want;
           ++attempt) {
        // Target a uniformly random task on any deeper level.
        const std::size_t dl = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(l) + 1,
            static_cast<std::int64_t>(levels) - 1));
        const auto& pool = level_tasks[dl];
        const graph::TaskId target = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        if (!g.has_edge(t, target)) {
          g.add_edge(t, target, 0.0);
          ++have;
        }
      }
    }
  }
  return g;
}

sim::Workload random_workload(const RandomDagParams& params,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  graph::TaskGraph structure = random_structure(params, rng);
  return make_workload(std::move(structure), params.costs, rng);
}

}  // namespace hdlts::workload
