// Laplace-equation solver workflow (a standard structured benchmark in the
// SDBATS/HEFT literature; extension workload): an m×m diamond lattice —
// widths 1, 2, ..., m, ..., 2, 1 — where each task feeds its one or two
// neighbours on the next level. m^2 tasks, single entry and exit.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct LaplaceParams {
  std::size_t size = 5;  ///< m >= 2; the workflow has m*m tasks
  CostParams costs;

  void validate() const;
};

graph::TaskGraph laplace_structure(std::size_t size);

sim::Workload laplace_workload(const LaplaceParams& params,
                               std::uint64_t seed);

}  // namespace hdlts::workload
