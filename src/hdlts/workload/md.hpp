// Modified molecular-dynamics code workflow (paper §V-C3, after the HEFT
// paper's Fig. 11, originally Kim & Browne 1988): a fixed 41-task irregular
// DAG. The paper's figure is not machine-readable in our source, so the
// edge list below is a structural facsimile — 41 tasks over 10 precedence
// levels with the characteristic irregular fan-in/fan-out and level-skipping
// edges — with costs randomized by the same CCR/beta machinery the paper
// sweeps (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct MdParams {
  CostParams costs;

  void validate() const { costs.validate(); }
};

/// The fixed 41-task structure (single entry, single exit).
graph::TaskGraph md_structure();

sim::Workload md_workload(const MdParams& params, std::uint64_t seed);

}  // namespace hdlts::workload
