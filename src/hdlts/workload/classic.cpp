#include "hdlts/workload/classic.hpp"

namespace hdlts::workload {

sim::Workload classic_workload() {
  graph::TaskGraph g;
  // W matrix (rows T1..T10, columns P1..P3) from the HEFT paper.
  constexpr double kW[10][3] = {
      {14, 16, 9},  {13, 19, 18}, {11, 13, 19}, {13, 8, 17},  {12, 13, 10},
      {13, 16, 9},  {7, 15, 11},  {5, 11, 14},  {18, 12, 20}, {21, 7, 16},
  };
  for (int i = 0; i < 10; ++i) {
    g.add_task("T" + std::to_string(i + 1), /*work=*/0.0);
  }
  // Edges with their data volumes (== communication times at bandwidth 1).
  constexpr struct {
    int src, dst;
    double data;
  } kEdges[] = {
      {0, 1, 18}, {0, 2, 12}, {0, 3, 9},  {0, 4, 11}, {0, 5, 14},
      {1, 7, 19}, {1, 8, 16}, {2, 6, 23}, {3, 7, 27}, {3, 8, 23},
      {4, 8, 13}, {5, 7, 15}, {6, 9, 17}, {7, 9, 11}, {8, 9, 13},
  };
  for (const auto& e : kEdges) {
    g.add_edge(static_cast<graph::TaskId>(e.src),
               static_cast<graph::TaskId>(e.dst), e.data);
  }

  sim::CostTable costs(10, 3);
  for (graph::TaskId v = 0; v < 10; ++v) {
    double mean = 0.0;
    for (platform::ProcId p = 0; p < 3; ++p) {
      costs.set(v, p, kW[v][p]);
      mean += kW[v][p];
    }
    g.set_work(v, mean / 3.0);
  }

  sim::Workload w{std::move(g), std::move(costs),
                  platform::Platform(3, /*bandwidth=*/1.0)};
  w.validate();
  return w;
}

}  // namespace hdlts::workload
