#include "hdlts/workload/costs.hpp"

#include <algorithm>

namespace hdlts::workload {

void CostParams::validate() const {
  if (num_procs == 0) throw InvalidArgument("num_procs must be >= 1");
  if (wdag <= 0.0) throw InvalidArgument("wdag must be positive");
  if (beta < 0.0 || beta > 2.0) {
    throw InvalidArgument("beta must be in [0, 2] (costs stay non-negative)");
  }
  if (ccr < 0.0) throw InvalidArgument("ccr must be non-negative");
}

sim::Workload make_workload(graph::TaskGraph structure,
                            const CostParams& params, util::Rng& rng) {
  params.validate();
  auto normalized = normalize_single_entry_exit(structure);
  graph::TaskGraph& g = normalized.graph;
  const std::size_t n = g.num_tasks();

  sim::CostTable costs(n, params.num_procs);
  for (graph::TaskId v = 0; v < n; ++v) {
    // Pseudo tasks (work == 0) are free; every real task draws its mean
    // computation cost from U[0, 2*Wdag] so the DAG-wide mean is Wdag.
    const double wbar =
        g.work(v) == 0.0 ? 0.0 : rng.uniform(0.0, 2.0 * params.wdag);
    g.set_work(v, wbar);
    for (platform::ProcId p = 0; p < params.num_procs; ++p) {
      const double lo = wbar * (1.0 - params.beta / 2.0);
      const double hi = wbar * (1.0 + params.beta / 2.0);
      costs.set(v, p, lo >= hi ? lo : rng.uniform(lo, hi));
    }
  }
  for (graph::TaskId v = 0; v < n; ++v) {
    // Copy the adjacency first: set_edge_data mutates what children() views.
    const std::vector<graph::Adjacent> kids(g.children(v).begin(),
                                            g.children(v).end());
    for (const graph::Adjacent& c : kids) {
      g.set_edge_data(v, c.task, g.work(v) * params.ccr);
    }
  }

  sim::Workload w{std::move(g), std::move(costs),
                  platform::Platform(params.num_procs, /*bandwidth=*/1.0)};
  w.validate();
  return w;
}

sim::Workload make_workload(graph::TaskGraph structure,
                            const CostParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_workload(std::move(structure), params, rng);
}

void randomize_bandwidths(sim::Workload& workload, double gamma,
                          double mean_bandwidth, util::Rng& rng) {
  if (gamma < 0.0 || gamma >= 2.0) {
    throw InvalidArgument("bandwidth heterogeneity gamma must be in [0, 2)");
  }
  if (mean_bandwidth <= 0.0) {
    throw InvalidArgument("mean bandwidth must be positive");
  }
  auto& platform = workload.platform;
  for (platform::ProcId a = 0; a < platform.num_procs(); ++a) {
    for (platform::ProcId b = a + 1; b < platform.num_procs(); ++b) {
      const double lo = mean_bandwidth * (1.0 - gamma / 2.0);
      const double hi = mean_bandwidth * (1.0 + gamma / 2.0);
      platform.set_bandwidth(a, b, lo >= hi ? lo : rng.uniform(lo, hi));
    }
  }
}

}  // namespace hdlts::workload
