// Fork-join pipeline workflow (extension workload): an entry task fans out
// into `chains` independent pipelines of `length` tasks each, joined by an
// exit task. The pattern that stresses entry-task duplication hardest: the
// entry's output must reach every chain.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct ForkJoinParams {
  std::size_t chains = 4;
  std::size_t length = 5;
  CostParams costs;

  void validate() const;
};

/// 2 + chains * length tasks; single entry and exit by construction.
graph::TaskGraph forkjoin_structure(std::size_t chains, std::size_t length);

sim::Workload forkjoin_workload(const ForkJoinParams& params,
                                std::uint64_t seed);

}  // namespace hdlts::workload
