#include "hdlts/workload/fft.hpp"

#include <bit>

namespace hdlts::workload {

void FftParams::validate() const {
  if (points < 2 || !std::has_single_bit(points)) {
    throw InvalidArgument("FFT points must be a power of two >= 2");
  }
  costs.validate();
}

std::size_t fft_task_count(std::size_t points) {
  const auto log2m = static_cast<std::size_t>(std::bit_width(points) - 1);
  return 2 * (points - 1) + 1 + points * log2m;
}

graph::TaskGraph fft_structure(std::size_t points) {
  if (points < 2 || !std::has_single_bit(points)) {
    throw InvalidArgument("FFT points must be a power of two >= 2");
  }
  const std::size_t m = points;
  const auto log2m = static_cast<std::size_t>(std::bit_width(m) - 1);
  graph::TaskGraph g;
  // 2m-2 tree edges plus 2m per butterfly stage.
  g.reserve(fft_task_count(points), 2 * (m - 1) + 2 * m * log2m);

  // Recursive part: a full binary tree with m leaves (2m-1 nodes), data
  // flowing from the root (the entry task) down to the leaves.
  std::vector<std::vector<graph::TaskId>> tree(log2m + 1);
  for (std::size_t depth = 0; depth <= log2m; ++depth) {
    const std::size_t count = std::size_t{1} << depth;
    for (std::size_t i = 0; i < count; ++i) {
      tree[depth].push_back(
          g.add_task("rec_" + std::to_string(depth) + "_" + std::to_string(i)));
      if (depth > 0) {
        g.add_edge(tree[depth - 1][i / 2], tree[depth][i], 0.0);
      }
    }
  }

  // Butterfly part: log2(m) stages of m tasks; stage s task i consumes
  // stage s-1 tasks i and i XOR 2^(s-1) (stage 0 consumes the tree leaves).
  std::vector<graph::TaskId> prev = tree[log2m];
  for (std::size_t s = 0; s < log2m; ++s) {
    std::vector<graph::TaskId> stage;
    stage.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      stage.push_back(
          g.add_task("bfly_" + std::to_string(s) + "_" + std::to_string(i)));
    }
    const std::size_t stride = std::size_t{1} << s;
    for (std::size_t i = 0; i < m; ++i) {
      g.add_edge(prev[i], stage[i], 0.0);
      g.add_edge(prev[i ^ stride], stage[i], 0.0);
    }
    prev = std::move(stage);
  }

  HDLTS_ENSURES(g.num_tasks() == fft_task_count(points));
  return g;
}

sim::Workload fft_workload(const FftParams& params, std::uint64_t seed) {
  params.validate();
  return make_workload(fft_structure(params.points), params.costs, seed);
}

}  // namespace hdlts::workload
