// Cost assignment shared by every workload generator (paper §V-B).
//
// Given a task-graph structure, draws the mean computation cost of each task
// uniformly from [0, 2*Wdag], spreads it across processors with the
// heterogeneity factor beta (Eq. 13), and sets each edge's data volume to
// w_src * CCR (Eq. 14; link bandwidth is uniformly 1, so communication time
// equals data volume). Tasks with work == 0 (the pseudo entry/exit tasks
// added by normalization) keep zero-cost rows and zero-data edges.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/util/rng.hpp"

namespace hdlts::workload {

struct CostParams {
  std::size_t num_procs = 4;
  double wdag = 50.0;  ///< mean computation cost of the DAG (W_dag)
  double beta = 0.8;   ///< processor heterogeneity factor
  double ccr = 1.0;    ///< communication-to-computation ratio

  /// Throws InvalidArgument when out of the generator's domain.
  void validate() const;
};

/// Normalizes `structure` to a single entry/exit (pseudo tasks) and assigns
/// execution and communication costs. The task `work` fields are overwritten
/// with the drawn mean computation costs.
sim::Workload make_workload(graph::TaskGraph structure,
                            const CostParams& params, util::Rng& rng);

/// Seed-based convenience overload.
sim::Workload make_workload(graph::TaskGraph structure,
                            const CostParams& params, std::uint64_t seed);

/// Network-heterogeneity extension: redraws every link bandwidth uniformly
/// from [mean*(1 - gamma/2), mean*(1 + gamma/2)] (gamma in [0, 2)), so
/// communication time depends on *which* processors talk — the "uncertain
/// network conditions" direction of the paper's §VI. gamma = 0 is a no-op.
void randomize_bandwidths(sim::Workload& workload, double gamma,
                          double mean_bandwidth, util::Rng& rng);

}  // namespace hdlts::workload
