#include "hdlts/workload/montage.hpp"

#include <algorithm>

namespace hdlts::workload {

void MontageParams::validate() const {
  if (num_nodes < 13) {
    throw InvalidArgument("montage needs >= 13 nodes (2 images)");
  }
  costs.validate();
}

graph::TaskGraph montage_structure(const MontageParams& params,
                                   util::Rng& rng) {
  params.validate();
  // Fixed singleton stages: mConcatFit, mBgModel, mImgtbl, mAdd, mShrink,
  // mJPEG (6 tasks). The rest splits into k mProjectPP + k mBackground +
  // (budget - 6 - 2k) mDiffFit, aiming at the canonical 3k/2 mDiffFit.
  const std::size_t budget = params.num_nodes - 6;
  const std::size_t k = std::max<std::size_t>(2, (budget * 2) / 7);
  const std::size_t diffs = budget - 2 * k;

  graph::TaskGraph g;
  // 2 in-edges per mDiffFit + diffs into mConcatFit + 3 per mBackground
  // stage + the fixed tail chain.
  g.reserve(params.num_nodes, 3 * diffs + 3 * k + 4);
  std::vector<graph::TaskId> project(k), background(k), diff(diffs);
  for (std::size_t i = 0; i < k; ++i) {
    project[i] = g.add_task("mProjectPP_" + std::to_string(i));
  }
  for (std::size_t i = 0; i < diffs; ++i) {
    diff[i] = g.add_task("mDiffFit_" + std::to_string(i));
  }
  const graph::TaskId concat = g.add_task("mConcatFit");
  const graph::TaskId bgmodel = g.add_task("mBgModel");
  for (std::size_t i = 0; i < k; ++i) {
    background[i] = g.add_task("mBackground_" + std::to_string(i));
  }
  const graph::TaskId imgtbl = g.add_task("mImgtbl");
  const graph::TaskId add = g.add_task("mAdd");
  const graph::TaskId shrink = g.add_task("mShrink");
  const graph::TaskId jpeg = g.add_task("mJPEG");

  // Each mDiffFit compares two projected images: the first k-1 take the
  // adjacent chain (i, i+1); extras draw random distinct pairs.
  for (std::size_t i = 0; i < diffs; ++i) {
    std::size_t a;
    std::size_t b;
    if (i + 1 < k) {
      a = i;
      b = i + 1;
    } else {
      a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
      b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 2));
      if (b >= a) ++b;
    }
    if (!g.has_edge(project[a], diff[i])) g.add_edge(project[a], diff[i], 0.0);
    if (!g.has_edge(project[b], diff[i])) g.add_edge(project[b], diff[i], 0.0);
  }
  for (std::size_t i = 0; i < diffs; ++i) g.add_edge(diff[i], concat, 0.0);
  g.add_edge(concat, bgmodel, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    g.add_edge(bgmodel, background[i], 0.0);
    g.add_edge(project[i], background[i], 0.0);
    g.add_edge(background[i], imgtbl, 0.0);
  }
  g.add_edge(imgtbl, add, 0.0);
  g.add_edge(add, shrink, 0.0);
  g.add_edge(shrink, jpeg, 0.0);

  HDLTS_ENSURES(g.num_tasks() == params.num_nodes);
  return g;
}

sim::Workload montage_workload(const MontageParams& params,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  graph::TaskGraph structure = montage_structure(params, rng);
  return make_workload(std::move(structure), params.costs, rng);
}

}  // namespace hdlts::workload
