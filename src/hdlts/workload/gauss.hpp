// Gaussian-elimination workflow (a standard structured benchmark in the
// HEFT/PEFT literature; included as an extension workload): for an m×m
// matrix, each elimination step k contributes one pivot task feeding m-1-k
// update tasks, which feed the next step. (m-1) + m(m-1)/2 tasks total,
// single entry and exit.
#pragma once

#include <cstdint>

#include "hdlts/sim/problem.hpp"
#include "hdlts/workload/costs.hpp"

namespace hdlts::workload {

struct GaussParams {
  std::size_t matrix_size = 5;  ///< m >= 2
  CostParams costs;

  void validate() const;
};

std::size_t gauss_task_count(std::size_t matrix_size);

graph::TaskGraph gauss_structure(std::size_t matrix_size);

sim::Workload gauss_workload(const GaussParams& params, std::uint64_t seed);

}  // namespace hdlts::workload
