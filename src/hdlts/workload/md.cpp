#include "hdlts/workload/md.hpp"

namespace hdlts::workload {

graph::TaskGraph md_structure() {
  graph::TaskGraph g;
  for (int i = 0; i < 41; ++i) g.add_task("md" + std::to_string(i));
  // Levels: {0}, {1..6}, {7..13}, {14..20}, {21..26}, {27..31}, {32..35},
  // {36..38}, {39}, {40}; a handful of edges skip a level, as in the
  // original figure.
  constexpr struct {
    int src, dst;
  } kEdges[] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},
      {1, 7},   {1, 8},   {2, 8},   {2, 9},   {3, 9},   {3, 10},
      {3, 11},  {4, 11},  {4, 12},  {5, 12},  {5, 13},  {6, 13},
      {6, 7},   {1, 14},  // level skip
      {7, 14},  {7, 15},  {8, 15},  {8, 16},  {9, 16},  {9, 17},
      {10, 17}, {10, 18}, {11, 18}, {12, 19}, {13, 20}, {9, 20},
      {14, 21}, {15, 21}, {15, 22}, {16, 22}, {16, 23}, {17, 23},
      {17, 24}, {18, 24}, {18, 25}, {19, 25}, {19, 26}, {20, 26},
      {7, 21},  // level skip
      {21, 27}, {22, 27}, {22, 28}, {23, 28}, {23, 29}, {24, 29},
      {24, 30}, {25, 30}, {25, 31}, {26, 31},
      {16, 30}, // level skip
      {27, 32}, {28, 32}, {28, 33}, {29, 33}, {29, 34}, {30, 34},
      {30, 35}, {31, 35},
      {32, 36}, {33, 36}, {33, 37}, {34, 37}, {34, 38}, {35, 38},
      {36, 39}, {37, 39}, {38, 39},
      {39, 40},
  };
  for (const auto& e : kEdges) {
    g.add_edge(static_cast<graph::TaskId>(e.src),
               static_cast<graph::TaskId>(e.dst), 0.0);
  }
  HDLTS_ENSURES(g.entry_tasks().size() == 1 && g.exit_tasks().size() == 1);
  return g;
}

sim::Workload md_workload(const MdParams& params, std::uint64_t seed) {
  params.validate();
  return make_workload(md_structure(), params.costs, seed);
}

}  // namespace hdlts::workload
