// NEON (AArch64 Advanced SIMD) kernel backend. Compiled only on aarch64
// builds (see src/CMakeLists.txt); baseline AArch64 mandates Advanced SIMD,
// so no runtime feature probe is needed. The kernels mirror the AVX2
// backend's two-pass semantics at 2-lane width; tie-break passes are scalar
// (they touch at most a handful of equality hits). Differential coverage
// comes from the same tests/simd_test.cpp comparisons against the scalar
// backend when this backend is available.
#ifdef HDLTS_SIMD_HAVE_NEON

#include <arm_neon.h>

#include <limits>

#include "hdlts/simd/kernels.hpp"

namespace hdlts::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// std::min(a, b) per lane: (b < a) ? b : a.
inline float64x2_t vmin_std(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcltq_f64(b, a), b, a);
}

/// std::max(a, b) per lane: (a < b) ? b : a.
inline float64x2_t vmax_std(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcltq_f64(a, b), b, a);
}

double min_value(const double* row, std::size_t n) {
  std::size_t i = 0;
  double m = kInf;
  if (n >= 2) {
    float64x2_t acc = vdupq_n_f64(kInf);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(row + i);
      acc = vbslq_f64(vcltq_f64(v, acc), v, acc);
    }
    const double lane0 = vgetq_lane_f64(acc, 0);
    const double lane1 = vgetq_lane_f64(acc, 1);
    if (lane0 < m) m = lane0;
    if (lane1 < m) m = lane1;
  }
  for (; i < n; ++i) {
    if (row[i] < m) m = row[i];
  }
  return m;
}

std::size_t argmin_neon(const double* row, std::size_t n) {
  const double m = min_value(row, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] == m) return i;
  }
  return 0;  // all NaN
}

std::size_t argmin_masked_neon(const double* row, const unsigned char* alive,
                               std::size_t n) {
  double m = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0 && row[i] < m) m = row[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0 && row[i] == m) return i;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0) return i;  // alive but all NaN
  }
  return n;  // nothing alive
}

std::size_t argmax_key_neon(const double* pv, const std::uint32_t* key,
                            std::size_t n) {
  std::size_t i = 0;
  double m = -kInf;
  if (n >= 2) {
    float64x2_t acc = vdupq_n_f64(-kInf);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(pv + i);
      acc = vbslq_f64(vcgtq_f64(v, acc), v, acc);
    }
    const double lane0 = vgetq_lane_f64(acc, 0);
    const double lane1 = vgetq_lane_f64(acc, 1);
    if (lane0 > m) m = lane0;
    if (lane1 > m) m = lane1;
  }
  for (; i < n; ++i) {
    if (pv[i] > m) m = pv[i];
  }
  std::size_t best = n;
  std::uint32_t best_key = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (pv[j] == m && (best == n || key[j] < best_key)) {
      best = j;
      best_key = key[j];
    }
  }
  return best == n ? 0 : best;  // all NaN
}

void combine_up_neon(util::ReductionTree::Op op, double* nodes,
                     std::size_t base) {
  using Op = util::ReductionTree::Op;
  for (std::size_t width = base / 2; width >= 1; width /= 2) {
    std::size_t p = width;
    const std::size_t end = 2 * width;
    for (; p + 2 <= end; p += 2) {
      // Children of parents [p, p+2): nodes[2p .. 2p+4).
      const float64x2_t a = vld1q_f64(nodes + 2 * p);      // c0 c1
      const float64x2_t b = vld1q_f64(nodes + 2 * p + 2);  // c2 c3
      const float64x2_t even = vuzp1q_f64(a, b);           // c0 c2
      const float64x2_t odd = vuzp2q_f64(a, b);            // c1 c3
      float64x2_t r = even;
      switch (op) {
        case Op::kSum:
          r = vaddq_f64(even, odd);
          break;
        case Op::kMin:
          r = vmin_std(even, odd);
          break;
        case Op::kMax:
          r = vmax_std(even, odd);
          break;
      }
      vst1q_f64(nodes + p, r);
    }
    for (; p < end; ++p) {
      nodes[p] = util::tree_ops::combine(op, nodes[2 * p], nodes[2 * p + 1]);
    }
  }
}

void square_neon(const double* src, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(src + i);
    vst1q_f64(dst + i, vmulq_f64(v, v));
  }
  for (; i < n; ++i) dst[i] = src[i] * src[i];
}

}  // namespace

extern const Dispatch kNeon = {argmin_neon, argmin_masked_neon,
                               argmax_key_neon, combine_up_neon, square_neon,
                               "neon"};

}  // namespace hdlts::simd

#endif  // HDLTS_SIMD_HAVE_NEON
