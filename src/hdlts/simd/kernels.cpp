// Scalar reference kernels and the startup backend selection.
//
// The scalar bodies below are the semantic ground truth: every SIMD backend
// must reproduce them bit for bit (tests/simd_test.cpp compares them on
// NaN/inf/denormal edge cases and on full scheduler runs). Keep them
// boring — two passes, exact comparisons, no clever short-circuits.
#include "hdlts/simd/kernels.hpp"

#include <atomic>
#include <limits>

#include "hdlts/util/env.hpp"

namespace hdlts::simd {

#ifdef HDLTS_SIMD_HAVE_AVX2
extern const Dispatch kAvx2;  // kernels_avx2.cpp
#endif
#ifdef HDLTS_SIMD_HAVE_NEON
extern const Dispatch kNeon;  // kernels_neon.cpp
#endif

namespace {

std::size_t argmin_scalar(const double* row, std::size_t n) {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] < m) m = row[i];  // NaN never passes strict-less
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] == m) return i;
  }
  return 0;  // all NaN
}

std::size_t argmin_masked_scalar(const double* row, const unsigned char* alive,
                                 std::size_t n) {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0 && row[i] < m) m = row[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0 && row[i] == m) return i;
  }
  for (std::size_t i = 0; i < n; ++i) {  // alive but all NaN
    if (alive[i] != 0) return i;
  }
  return n;  // nothing alive
}

std::size_t argmax_key_scalar(const double* pv, const std::uint32_t* key,
                              std::size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (pv[i] > m) m = pv[i];
  }
  std::size_t best = n;
  std::uint32_t best_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pv[i] == m && (best == n || key[i] < best_key)) {
      best = i;
      best_key = key[i];
    }
  }
  return best == n ? 0 : best;  // all NaN
}

void combine_up_scalar(util::ReductionTree::Op op, double* nodes,
                       std::size_t base) {
  util::tree_ops::combine_up(op, std::span<double>(nodes, 2 * base), base);
}

void square_scalar(const double* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] * src[i];
}

constexpr Dispatch kScalar = {
    argmin_scalar, argmin_masked_scalar, argmax_key_scalar,
    combine_up_scalar, square_scalar, "scalar"};

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Dispatch* avx2() {
#ifdef HDLTS_SIMD_HAVE_AVX2
  return cpu_has_avx2() ? &kAvx2 : nullptr;
#else
  return nullptr;
#endif
}

const Dispatch* neon() {
#ifdef HDLTS_SIMD_HAVE_NEON
  return &kNeon;  // baseline aarch64 always has Advanced SIMD
#else
  return nullptr;
#endif
}

const Dispatch* select() {
  const std::string env = util::env_string("HDLTS_SIMD", "");
  if (const Dispatch* forced = backend(env); forced != nullptr) return forced;
  if (const Dispatch* d = avx2()) return d;
  if (const Dispatch* d = neon()) return d;
  return &kScalar;
}

std::atomic<const Dispatch*> g_active{nullptr};

}  // namespace

const Dispatch& active() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d == nullptr) {
    // Benign race: concurrent first calls select the same table.
    d = select();
    g_active.store(d, std::memory_order_release);
  }
  return *d;
}

std::string_view active_backend() { return active().name; }

const Dispatch* backend(std::string_view name) {
  if (name == "scalar" || name == "off") return &kScalar;
  if (name == "avx2") return avx2();
  if (name == "neon") return neon();
  return nullptr;
}

bool force_backend(std::string_view name) {
  const Dispatch* d = backend(name);
  if (d == nullptr) return false;
  g_active.store(d, std::memory_order_release);
  return true;
}

}  // namespace hdlts::simd
