// Runtime-dispatched SIMD kernels for the scheduler hot loops.
//
// Three scans dominate the per-decision cost of the compiled HDLTS/HEFT
// paths (bench/micro_scale): the min-EFT argmin over a processor row, the
// max-PV selection sweep over the ITQ, and the pairwise reduction that
// maintains the PV moments. Each gets a kernel here with a portable scalar
// implementation and an AVX2 implementation compiled into its own
// translation unit with -mavx2 (x86 only; aarch64 builds get a NEON slot,
// see kernels_neon.cpp). A Dispatch table is selected once at startup from
// CPUID and can be overridden with HDLTS_SIMD=off|scalar|avx2|neon for
// differential testing (tests/simd_test.cpp).
//
// Bitwise contract: every backend implements the *same* order-independent
// semantics, spelled out per kernel below, so schedules are bit-identical
// under any backend (and identical to the pre-kernel sequential scans on
// the NaN-free rows real problems produce). The selection kernels use a
// two-pass shape — reduce to the extremum, then resolve the index/key
// tie-break by exact equality — because a lane-decomposed single-pass scan
// does not match a sequential scan when NaN is present.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "hdlts/util/reduction_tree.hpp"

namespace hdlts::simd {

struct Dispatch {
  /// Index of the first occurrence of the row minimum (strict-less; ties go
  /// to the lowest index). NaN entries are never minimal; an all-NaN row
  /// returns 0. n >= 1. On NaN-free rows this equals the classic
  /// `if (row[i] < row[best]) best = i` sweep.
  std::size_t (*argmin)(const double* row, std::size_t n);

  /// argmin restricted to entries with alive[i] != 0. Returns the first
  /// alive index holding the masked minimum; if every alive entry is NaN,
  /// the first alive index; if nothing is alive, n.
  std::size_t (*argmin_masked)(const double* row, const unsigned char* alive,
                               std::size_t n);

  /// Index of the entry maximizing pv, ties broken toward the smallest key
  /// (the HDLTS "highest PV wins, ties to the lower task id" rule, which is
  /// order-independent by construction). NaN PVs never win; an all-NaN
  /// array returns 0. n >= 1.
  std::size_t (*argmax_key)(const double* pv, const std::uint32_t* key,
                            std::size_t n);

  /// Recomputes every internal node of a 1-indexed complete binary
  /// reduction tree from its leaves — the same node values, level by level,
  /// as util::tree_ops::combine_up (each parent is one exact op over its
  /// two children, so vector width cannot change the bits).
  void (*combine_up)(util::ReductionTree::Op op, double* nodes,
                     std::size_t base);

  /// dst[i] = src[i] * src[i] (the sum-of-squares tree leaves).
  void (*square)(const double* src, double* dst, std::size_t n);

  const char* name;  ///< "scalar", "avx2", or "neon"
};

/// The active table. Selected on first use: HDLTS_SIMD env override if set,
/// otherwise the best backend this binary and CPU support. Hot loops should
/// grab the reference once per schedule call.
const Dispatch& active();

/// The active backend's name ("scalar", "avx2", "neon").
std::string_view active_backend();

/// A specific backend, or nullptr when it is not compiled in or the CPU
/// lacks the feature ("off" aliases "scalar"). Test hook.
const Dispatch* backend(std::string_view name);

/// Replaces the active table (test-only; not thread-safe against concurrent
/// schedule calls). Returns false and leaves the table unchanged when the
/// backend is unavailable.
bool force_backend(std::string_view name);

}  // namespace hdlts::simd
