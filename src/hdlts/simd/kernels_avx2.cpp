// AVX2 kernel backend. This translation unit is compiled with -mavx2 (see
// src/CMakeLists.txt) and must therefore contain ONLY the kernel bodies:
// the CPUID gate that decides whether any of this code may run lives in
// kernels.cpp, which is built without the flag.
//
// Bitwise contract with the scalar backend (kernels.cpp):
//  - The selection kernels share the two-pass shape: pass 1 reduces to the
//    extremum with a strict compare (NaN lanes never replace the running
//    value, so lane decomposition cannot change the result), pass 2
//    resolves the index / key tie-break by exact equality in array order.
//  - min/max combines are expressed as blends on a strict-less mask,
//    reproducing std::min/std::max exactly — _mm256_min_pd alone differs
//    from std::min on (+0.0, -0.0) and NaN operand order.
//  - Sums combine the same operand pairs as the scalar tree walk, so the
//    pairwise reduction is exact regardless of vector width.
#ifdef HDLTS_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <limits>

#include "hdlts/simd/kernels.hpp"

namespace hdlts::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// std::min(a, b) per lane: (b < a) ? b : a.
inline __m256d vmin(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

/// std::max(a, b) per lane: (a < b) ? b : a.
inline __m256d vmax(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
}

/// Strict-less running-minimum fold of `row`, NaN entries skipped; +inf
/// when every entry is NaN. The value (not its zero sign) is order-exact,
/// which is all the equality pass consumes.
double min_value(const double* row, std::size_t n) {
  std::size_t i = 0;
  double m = kInf;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(kInf);
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(row + i);
      acc = _mm256_blendv_pd(acc, v, _mm256_cmp_pd(v, acc, _CMP_LT_OQ));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (const double lane : lanes) {
      if (lane < m) m = lane;
    }
  }
  for (; i < n; ++i) {
    if (row[i] < m) m = row[i];
  }
  return m;
}

/// First index with row[i] == x, or n.
std::size_t find_equal(const double* row, std::size_t n, double x) {
  std::size_t i = 0;
  const __m256d needle = _mm256_set1_pd(x);
  for (; i + 4 <= n; i += 4) {
    const __m256d eq =
        _mm256_cmp_pd(_mm256_loadu_pd(row + i), needle, _CMP_EQ_OQ);
    const int mask = _mm256_movemask_pd(eq);
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (row[i] == x) return i;
  }
  return n;
}

std::size_t argmin_avx2(const double* row, std::size_t n) {
  const std::size_t hit = find_equal(row, n, min_value(row, n));
  return hit == n ? 0 : hit;  // all NaN
}

std::size_t argmin_masked_avx2(const double* row, const unsigned char* alive,
                               std::size_t n) {
  std::size_t i = 0;
  double m = kInf;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(kInf);
    const __m256d inf = _mm256_set1_pd(kInf);
    for (; i + 4 <= n; i += 4) {
      std::uint32_t packed;
      __builtin_memcpy(&packed, alive + i, 4);
      const __m256i wide =
          _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
      const __m256d dead = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(wide, _mm256_setzero_si256()));
      // Dead columns become +inf: they can never win the strict-less fold.
      const __m256d v = _mm256_blendv_pd(_mm256_loadu_pd(row + i), inf, dead);
      acc = _mm256_blendv_pd(acc, v, _mm256_cmp_pd(v, acc, _CMP_LT_OQ));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (const double lane : lanes) {
      if (lane < m) m = lane;
    }
  }
  for (; i < n; ++i) {
    if (alive[i] != 0 && row[i] < m) m = row[i];
  }
  // Equality pass. Note a dead +inf column must not satisfy row[i] == m when
  // m == +inf (all alive entries NaN or +inf), hence the alive re-check.
  for (std::size_t j = 0; j < n; ++j) {
    if (alive[j] != 0 && row[j] == m) return j;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (alive[j] != 0) return j;  // alive but all NaN
  }
  return n;  // nothing alive
}

std::size_t argmax_key_avx2(const double* pv, const std::uint32_t* key,
                            std::size_t n) {
  std::size_t i = 0;
  double m = -kInf;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(-kInf);
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(pv + i);
      acc = _mm256_blendv_pd(acc, v, _mm256_cmp_pd(v, acc, _CMP_GT_OQ));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (const double lane : lanes) {
      if (lane > m) m = lane;
    }
  }
  for (; i < n; ++i) {
    if (pv[i] > m) m = pv[i];
  }

  // Tie-break pass: smallest key among pv[i] == m. Equality hits are sparse
  // (usually one), so resolve each masked lane scalar.
  std::size_t best = n;
  std::uint32_t best_key = 0;
  const __m256d needle = _mm256_set1_pd(m);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(pv + j), needle, _CMP_EQ_OQ));
    while (mask != 0) {
      const std::size_t hit = j + static_cast<std::size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      if (best == n || key[hit] < best_key) {
        best = hit;
        best_key = key[hit];
      }
    }
  }
  for (; j < n; ++j) {
    if (pv[j] == m && (best == n || key[j] < best_key)) {
      best = j;
      best_key = key[j];
    }
  }
  return best == n ? 0 : best;  // all NaN
}

void combine_up_avx2(util::ReductionTree::Op op, double* nodes,
                     std::size_t base) {
  using Op = util::ReductionTree::Op;
  for (std::size_t width = base / 2; width >= 1; width /= 2) {
    std::size_t p = width;
    const std::size_t end = 2 * width;
    for (; p + 4 <= end; p += 4) {
      // Children of parents [p, p+4): nodes[2p .. 2p+8).
      const __m256d a = _mm256_loadu_pd(nodes + 2 * p);      // c0 c1 c2 c3
      const __m256d b = _mm256_loadu_pd(nodes + 2 * p + 4);  // c4 c5 c6 c7
      const __m256d even = _mm256_unpacklo_pd(a, b);         // c0 c4 c2 c6
      const __m256d odd = _mm256_unpackhi_pd(a, b);          // c1 c5 c3 c7
      __m256d r = even;
      switch (op) {
        case Op::kSum:
          r = _mm256_add_pd(even, odd);
          break;
        case Op::kMin:
          r = vmin(even, odd);
          break;
        case Op::kMax:
          r = vmax(even, odd);
          break;
      }
      // (c0.c1, c4.c5, c2.c3, c6.c7) -> parent order via [0, 2, 1, 3].
      _mm256_storeu_pd(nodes + p, _mm256_permute4x64_pd(r, 0xD8));
    }
    for (; p < end; ++p) {
      nodes[p] = util::tree_ops::combine(op, nodes[2 * p], nodes[2 * p + 1]);
    }
  }
}

void square_avx2(const double* src, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(v, v));
  }
  for (; i < n; ++i) dst[i] = src[i] * src[i];
}

}  // namespace

extern const Dispatch kAvx2 = {argmin_avx2, argmin_masked_avx2,
                               argmax_key_avx2, combine_up_avx2, square_avx2,
                               "avx2"};

}  // namespace hdlts::simd

#endif  // HDLTS_SIMD_HAVE_AVX2
