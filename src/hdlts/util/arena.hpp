// Monotonic scratch arena for scheduler hot loops.
//
// A scheduler's per-call working set (ITQ rows, EFT matrices, PV reduction
// trees) has a size that is a pure function of the problem shape, so the
// allocations repeat identically call after call. ScratchArena turns them
// into bump-pointer carves from one reusable buffer: reset() rewinds the
// cursor, and once the buffer has grown to the per-call high-water mark no
// further heap allocation happens — the property the zero-allocation
// steady-state regression test (tests/alloc_test.cpp) pins for
// core::Hdlts::schedule_into on the compiled path.
//
// Carved memory is uninitialized; callers write before they read (the same
// contract a freshly reserve()d vector would not give). Only trivially
// copyable, trivially destructible element types are allowed — nothing is
// ever destroyed, the cursor just rewinds.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t initial_bytes = 0);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Rewinds the cursor. If the previous cycle overflowed into side blocks,
  /// the primary buffer is regrown to the cycle's total so the next cycle
  /// fits contiguously — this is the only place the arena allocates after
  /// construction, and it stops firing once the high-water mark stabilizes.
  void reset();

  /// Carves `count` elements of T (uninitialized). Alignment is taken from
  /// T. Never fails for reasonable sizes; grows the arena when needed.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ScratchArena holds only trivial element types");
    void* p = carve(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Bytes carved since the last reset().
  std::size_t used() const { return used_; }
  /// Capacity of the primary buffer.
  std::size_t capacity() const { return capacity_; }
  /// True when the current cycle spilled past the primary buffer (a
  /// steady-state cycle must keep this false).
  bool overflowed() const { return !overflow_.empty(); }

 private:
  void* carve(std::size_t bytes, std::size_t align);

  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t cursor_ = 0;  // offset into buffer_
  std::size_t used_ = 0;    // total carved this cycle (all blocks)
  // Overflow blocks carved when the primary buffer runs out; folded into a
  // bigger primary buffer on the next reset().
  struct Overflow {
    std::unique_ptr<std::byte[]> block;
    std::size_t size = 0;
    std::size_t cursor = 0;
  };
  std::vector<Overflow> overflow_;
};

}  // namespace hdlts::util
