// Minimal JSON parser for the service wire protocol (hdlts/net/). The
// library so far only *writes* JSON (util/json.hpp); the serve daemon also
// has to read it from untrusted network peers, so this parser is strict and
// bounded by construction:
//
//  * full RFC 8259 value grammar (null/bool/number/string/array/object),
//    UTF-8 passed through opaquely, \uXXXX escapes decoded to UTF-8;
//  * a hard nesting-depth limit (default 32) so a "[[[[..." frame cannot
//    recurse the stack away;
//  * numbers parse via strtod into double (the only numeric type the
//    protocol uses); integers that fit exactly are exact;
//  * trailing garbage after the value is an error — a frame is one value.
//
// Errors throw util::JsonParseError with a byte offset, which the protocol
// layer maps onto the kMalformedRequest taxonomy (docs/SERVICE.md).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

class JsonParseError : public Error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : Error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// One parsed JSON value. Object member order is not preserved (the
/// protocol is name-addressed); duplicate keys are an error.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed access; throws InvalidArgument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; null when absent (or when not an object).
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

struct JsonParseOptions {
  /// Maximum container nesting depth before the parser rejects the input.
  std::size_t max_depth = 32;
};

/// Parses exactly one JSON value covering the whole input (leading and
/// trailing whitespace allowed). Throws JsonParseError on any violation.
JsonValue parse_json(std::string_view text, JsonParseOptions options = {});

}  // namespace hdlts::util
