// Tabular output: CSV files for plotting and aligned markdown tables for the
// bench harness stdout (the "same rows the paper reports").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdlts::util {

/// Collects rows of string cells and renders them as CSV or markdown.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders "a,b,c" lines with minimal quoting (fields containing comma,
  /// quote or newline are double-quoted).
  void write_csv(std::ostream& os) const;

  /// Renders a GitHub-style pipe table with aligned columns.
  void write_markdown(std::ostream& os) const;

  /// Convenience: write_csv to a file; throws hdlts::Error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places (fixed notation).
std::string fmt(double value, int digits = 2);

}  // namespace hdlts::util
