#include "hdlts/util/config.hpp"

#include <cerrno>
#include <cstdlib>

#include "hdlts/util/error.hpp"

namespace hdlts::util {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_value(std::string_view key, const std::string& value,
                            const char* expected) {
  throw InvalidArgument("config key '" + std::string(key) + "': expected " +
                        expected + ", got '" + value + "'");
}

}  // namespace

Config::Config(std::string_view text) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view segment = trim(
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos));
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (segment.empty()) continue;
    const std::size_t eq = segment.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidArgument("config segment '" + std::string(segment) +
                            "' has no '='");
    }
    const std::string_view key = trim(segment.substr(0, eq));
    if (key.empty()) {
      throw InvalidArgument("config segment '" + std::string(segment) +
                            "' has an empty key");
    }
    if (find(key) != nullptr) {
      throw InvalidArgument("config key '" + std::string(key) +
                            "' given twice");
    }
    entries_.push_back(Entry{std::string(key),
                             std::string(trim(segment.substr(eq + 1))), false});
  }
}

Config::Entry* Config::find(std::string_view key) {
  for (Entry& e : entries_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

bool Config::has(std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return true;
  }
  return false;
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) {
  Entry* e = find(key);
  if (e == nullptr) return std::string(fallback);
  e->used = true;
  return e->value;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->used = true;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(e->value.c_str(), &end, 10);
  if (e->value.empty() || end != e->value.c_str() + e->value.size() ||
      errno == ERANGE) {
    bad_value(key, e->value, "an integer");
  }
  return v;
}

double Config::get_double(std::string_view key, double fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->used = true;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(e->value.c_str(), &end);
  if (e->value.empty() || end != e->value.c_str() + e->value.size() ||
      errno == ERANGE) {
    bad_value(key, e->value, "a number");
  }
  return v;
}

bool Config::get_bool(std::string_view key, bool fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->used = true;
  if (e->value == "1" || e->value == "true") return true;
  if (e->value == "0" || e->value == "false") return false;
  bad_value(key, e->value, "0/1/true/false");
}

std::vector<std::string> Config::get_list(std::string_view key,
                                          std::string_view fallback,
                                          char sep) {
  const std::string joined = get_string(key, fallback);
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= joined.size()) {
    const std::size_t next = joined.find(sep, pos);
    const std::string_view item =
        trim(std::string_view(joined).substr(
            pos, next == std::string::npos ? std::string::npos : next - pos));
    pos = next == std::string::npos ? joined.size() + 1 : next + 1;
    if (!item.empty()) out.emplace_back(item);
  }
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (!e.used) out.push_back(e.key);
  }
  return out;
}

}  // namespace hdlts::util
