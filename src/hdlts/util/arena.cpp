#include "hdlts/util/arena.hpp"

#include <algorithm>

namespace hdlts::util {

namespace {

std::size_t align_up(std::size_t offset, std::size_t align) {
  return (offset + align - 1) & ~(align - 1);
}

}  // namespace

ScratchArena::ScratchArena(std::size_t initial_bytes) {
  if (initial_bytes > 0) {
    buffer_ = std::make_unique<std::byte[]>(initial_bytes);
    capacity_ = initial_bytes;
  }
}

void ScratchArena::reset() {
  if (!overflow_.empty()) {
    // The cycle spilled: regrow the primary buffer to the cycle's total
    // (with headroom) so the next cycle is contiguous and allocation-free.
    std::size_t total = capacity_;
    for (const Overflow& o : overflow_) total += o.size;
    total += total / 2;
    buffer_ = std::make_unique<std::byte[]>(total);
    capacity_ = total;
    overflow_.clear();
  }
  cursor_ = 0;
  used_ = 0;
}

void* ScratchArena::carve(std::size_t bytes, std::size_t align) {
  HDLTS_EXPECTS(align != 0 && (align & (align - 1)) == 0 &&
                align <= alignof(std::max_align_t));
  if (bytes == 0) bytes = 1;  // keep carves distinct
  // Try the primary buffer first.
  const std::size_t aligned = align_up(cursor_, align);
  if (aligned + bytes <= capacity_) {
    cursor_ = aligned + bytes;
    used_ += bytes;
    return buffer_.get() + aligned;
  }
  // Then the most recent overflow block.
  if (!overflow_.empty()) {
    Overflow& o = overflow_.back();
    const std::size_t oa = align_up(o.cursor, align);
    if (oa + bytes <= o.size) {
      o.cursor = oa + bytes;
      used_ += bytes;
      return o.block.get() + oa;
    }
  }
  // Grow: a fresh block sized to the larger of the request and the current
  // capacity (geometric growth across cycles; warm-up only).
  const std::size_t block_size =
      std::max({bytes + align, capacity_, std::size_t{4096}});
  Overflow o;
  o.block = std::make_unique<std::byte[]>(block_size);
  o.size = block_size;
  const std::size_t oa =
      align_up(reinterpret_cast<std::uintptr_t>(o.block.get()) % align == 0
                   ? std::size_t{0}
                   : align,
               align);
  o.cursor = oa + bytes;
  used_ += bytes;
  void* p = o.block.get() + oa;
  overflow_.push_back(std::move(o));
  return p;
}

}  // namespace hdlts::util
