#include "hdlts/util/reduction_tree.hpp"

#include <algorithm>
#include <limits>

namespace hdlts::util {

ReductionTree::ReductionTree(Op op, std::size_t n) : op_(op), n_(n) {
  if (n == 0) throw InvalidArgument("reduction tree needs >= 1 leaf");
  while (base_ < n_) base_ *= 2;
  node_.assign(2 * base_, identity());
}

double ReductionTree::identity() const {
  switch (op_) {
    case Op::kSum:
      return 0.0;
    case Op::kMin:
      return std::numeric_limits<double>::infinity();
    case Op::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  throw ContractViolation("unhandled ReductionTree::Op");
}

double ReductionTree::combine(double a, double b) const {
  switch (op_) {
    case Op::kSum:
      return a + b;
    case Op::kMin:
      return std::min(a, b);
    case Op::kMax:
      return std::max(a, b);
  }
  throw ContractViolation("unhandled ReductionTree::Op");
}

void ReductionTree::assign(std::span<const double> xs) {
  if (xs.size() != n_) {
    throw InvalidArgument("reduction tree assign: size mismatch");
  }
  std::copy(xs.begin(), xs.end(), node_.begin() + static_cast<long>(base_));
  for (std::size_t i = base_ - 1; i >= 1; --i) {
    node_[i] = combine(node_[2 * i], node_[2 * i + 1]);
  }
}

void ReductionTree::update(std::size_t i, double x) {
  if (i >= n_) throw InvalidArgument("reduction tree update: leaf out of range");
  std::size_t node = base_ + i;
  node_[node] = x;
  for (node /= 2; node >= 1; node /= 2) {
    node_[node] = combine(node_[2 * node], node_[2 * node + 1]);
  }
}

double ReductionTree::leaf(std::size_t i) const {
  if (i >= n_) throw InvalidArgument("reduction tree leaf: out of range");
  return node_[base_ + i];
}

}  // namespace hdlts::util
