#include "hdlts/util/reduction_tree.hpp"

#include <algorithm>
#include <limits>

namespace hdlts::util {

namespace tree_ops {

std::size_t base_for(std::size_t n) {
  std::size_t base = 1;
  while (base < n) base *= 2;
  return base;
}

double identity(ReductionTree::Op op) {
  switch (op) {
    case ReductionTree::Op::kSum:
      return 0.0;
    case ReductionTree::Op::kMin:
      return std::numeric_limits<double>::infinity();
    case ReductionTree::Op::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  throw ContractViolation("unhandled ReductionTree::Op");
}

void fill_identity(ReductionTree::Op op, std::span<double> nodes) {
  std::fill(nodes.begin(), nodes.end(), identity(op));
}

void combine_up(ReductionTree::Op op, std::span<double> nodes,
                std::size_t base) {
  for (std::size_t i = base - 1; i >= 1; --i) {
    nodes[i] = combine(op, nodes[2 * i], nodes[2 * i + 1]);
  }
}

void assign(ReductionTree::Op op, std::span<double> nodes, std::size_t base,
            std::span<const double> xs) {
  std::copy(xs.begin(), xs.end(), nodes.begin() + static_cast<long>(base));
  combine_up(op, nodes, base);
}

void update(ReductionTree::Op op, std::span<double> nodes, std::size_t base,
            std::size_t i, double x) {
  std::size_t node = base + i;
  nodes[node] = x;
  for (node /= 2; node >= 1; node /= 2) {
    nodes[node] = combine(op, nodes[2 * node], nodes[2 * node + 1]);
  }
}

}  // namespace tree_ops

ReductionTree::ReductionTree(Op op, std::size_t n) : op_(op), n_(n) {
  if (n == 0) throw InvalidArgument("reduction tree needs >= 1 leaf");
  base_ = tree_ops::base_for(n_);
  node_.assign(2 * base_, tree_ops::identity(op_));
}

void ReductionTree::assign(std::span<const double> xs) {
  if (xs.size() != n_) {
    throw InvalidArgument("reduction tree assign: size mismatch");
  }
  tree_ops::assign(op_, node_, base_, xs);
}

void ReductionTree::update(std::size_t i, double x) {
  if (i >= n_) throw InvalidArgument("reduction tree update: leaf out of range");
  tree_ops::update(op_, node_, base_, i, x);
}

double ReductionTree::leaf(std::size_t i) const {
  if (i >= n_) throw InvalidArgument("reduction tree leaf: out of range");
  return node_[base_ + i];
}

}  // namespace hdlts::util
