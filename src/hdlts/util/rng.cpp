#include "hdlts/util/rng.hpp"

// Header-only implementation; this translation unit pins the module into the
// static library and provides a home for future out-of-line helpers.

namespace hdlts::util {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == 0xffffffffffffffffULL);

}  // namespace hdlts::util
