// Streaming statistics (Welford) used by the experiment harness and by the
// schedulers themselves (the HDLTS penalty value is a standard deviation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hdlts::util {

/// Numerically stable running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance_population() const;
  /// Sample variance (divide by n-1); 0 when fewer than two samples.
  double variance_sample() const;
  double stddev_population() const;
  double stddev_sample() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sequence; 0 for an empty sequence.
double mean(std::span<const double> xs);

/// Population standard deviation (divide by n); 0 for an empty sequence.
double stddev_population(std::span<const double> xs);

/// Sample standard deviation (divide by n-1); 0 for fewer than two values.
/// This is the estimator behind the HDLTS penalty value (paper Eq. 8) — the
/// Table I trace only reproduces with the n-1 denominator.
double stddev_sample(std::span<const double> xs);

/// max - min; 0 for an empty sequence. Offered as a PV ablation variant.
double range(std::span<const double> xs);

}  // namespace hdlts::util
