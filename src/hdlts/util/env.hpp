// Environment-variable helpers. Bench harnesses read HDLTS_REPS etc. so that
// the paper-scale sweeps can be re-run without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace hdlts::util {

/// Returns the value of `name` or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the integer value of `name`, or `fallback` when unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace hdlts::util
