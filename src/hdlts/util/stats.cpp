#include "hdlts/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hdlts::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance_population() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::variance_sample() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

double RunningStats::stddev_sample() const {
  return std::sqrt(variance_sample());
}

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev_sample() / std::sqrt(static_cast<double>(count_));
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_population(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev_population();
}

double stddev_sample(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev_sample();
}

double range(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return *hi - *lo;
}

}  // namespace hdlts::util
