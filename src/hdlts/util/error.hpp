// Error handling primitives shared across the library.
//
// Construction-time validation throws hdlts::Error; internal invariants use
// HDLTS_EXPECTS / HDLTS_ENSURES, which throw ContractViolation so that tests
// can assert on them without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace hdlts {

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user input (graph, parameters, files) is malformed.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal precondition/postcondition is violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace hdlts

#define HDLTS_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hdlts::detail::contract_failure("precondition", #cond, __FILE__,     \
                                        __LINE__);                           \
  } while (false)

#define HDLTS_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hdlts::detail::contract_failure("postcondition", #cond, __FILE__,    \
                                        __LINE__);                           \
  } while (false)
