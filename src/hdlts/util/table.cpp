#include "hdlts/util/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HDLTS_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw InvalidArgument("Table row width " + std::to_string(cells.size()) +
                          " does not match header width " +
                          std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(cells[i]);
  }
  os << '\n';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  write_csv_row(os, header_);
  for (const auto& row : rows_) write_csv_row(os, row);
}

void Table::write_markdown(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(width[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  write_csv(out);
  if (!out) throw Error("write failed: " + path);
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace hdlts::util
