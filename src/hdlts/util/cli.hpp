// Minimal command-line parsing for examples and bench harnesses.
// Supports --key=value and boolean --flag forms (the space-separated
// "--key value" form is deliberately unsupported: it is ambiguous with
// boolean flags followed by positional arguments).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hdlts::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  const std::string& program() const { return program_; }

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Every value given for a repeated option (--fail=1@0.4 --fail=2@0.7),
  /// in command-line order; empty when the option never appears. The
  /// single-value accessors above keep their last-one-wins behaviour.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Non-option arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  /// (key, value) in command-line order, backing get_all().
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positional_;
};

}  // namespace hdlts::util
