// Minimal command-line parsing for examples and bench harnesses.
// Supports --key=value and boolean --flag forms (the space-separated
// "--key value" form is deliberately unsupported: it is ambiguous with
// boolean flags followed by positional arguments).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hdlts::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  const std::string& program() const { return program_; }

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Non-option arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace hdlts::util
