// cppsuite-style configuration strings: a single flat "key=value,key=value"
// string describing a whole run, so a soak scenario fits in one shell
// argument or one CI matrix cell:
//
//   "duration=30,threads=4,mix_fft=2,schedulers=heft+cpop,check=1"
//
// Grammar: comma-separated key=value pairs; whitespace around keys, values,
// and separators is trimmed; empty segments (trailing commas) are ignored.
// Keys must be non-empty and unique — a duplicate key throws rather than
// silently letting the last one win. Values may be empty.
//
// Typed getters parse on access and throw InvalidArgument with the offending
// key and text on malformed input. Every get marks its key as consumed;
// unused_keys() returns the keys nobody asked about, letting callers reject
// typos ("duratoin=30") instead of running a 10-minute soak with defaults.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hdlts::util {

class Config {
 public:
  /// Parses "key=value,key=value,...". Throws InvalidArgument on a segment
  /// without '=', an empty key, or a duplicate key.
  explicit Config(std::string_view text);

  bool has(std::string_view key) const;

  /// Typed access with a default for absent keys. Parsing the full value
  /// must succeed ("30x" is an error, not 30). get_bool accepts 0/1 and
  /// true/false. All getters mark the key consumed.
  std::string get_string(std::string_view key, std::string_view fallback);
  std::int64_t get_int(std::string_view key, std::int64_t fallback);
  double get_double(std::string_view key, double fallback);
  bool get_bool(std::string_view key, bool fallback);

  /// Splits the value on `sep` ('+' by convention, so commas stay free for
  /// the pair separator): "heft+cpop" -> {"heft", "cpop"}. Absent key ->
  /// `fallback` split the same way.
  std::vector<std::string> get_list(std::string_view key,
                                    std::string_view fallback, char sep = '+');

  /// Keys present in the string that no getter has consumed yet, in input
  /// order. Callers treat a non-empty result as a config typo.
  std::vector<std::string> unused_keys() const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool used = false;
  };
  Entry* find(std::string_view key);

  std::vector<Entry> entries_;
};

}  // namespace hdlts::util
