#include "hdlts/util/env.hpp"

#include <cstdlib>

namespace hdlts::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

}  // namespace hdlts::util
