#include "hdlts/util/cli.hpp"

#include <cstdlib>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

Cli::Cli(int argc, const char* const* argv) {
  HDLTS_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "true" : arg.substr(eq + 1);
    options_[key] = value;
    ordered_.emplace_back(std::move(key), std::move(value));
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::vector<std::string> Cli::get_all(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : ordered_) {
    if (k == key) values.push_back(v);
  }
  return values;
}

std::string Cli::get(const std::string& key,
                     const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects an integer, got '" +
                          it->second + "'");
  }
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects a number, got '" +
                          it->second + "'");
  }
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + key + " expects a boolean, got '" + v +
                        "'");
}

}  // namespace hdlts::util
