// A fixed-shape pairwise reduction over n doubles supporting O(log n)
// single-leaf updates with a bitwise-reproducibility guarantee: because every
// internal node is a deterministic function of its two children, updating a
// leaf and recomputing its ancestors yields *exactly* the same root as
// rebuilding the whole tree from the current leaves. That property is what
// lets the incremental HDLTS penalty-value maintenance be differentially
// checked, bit for bit, against a brute-force recompute (see core/pv.hpp).
//
// Floating-point caveat this class exists to solve: maintaining a running sum
// with `sum += new - old` drifts away from a fresh left-to-right sum, so an
// incremental scheduler using it could diverge from its reference on exact
// PV ties. The fixed reduction tree has no such drift by construction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

class ReductionTree {
 public:
  enum class Op { kSum, kMin, kMax };

  /// A tree over `n` leaves, all initialized to the op's identity (0 for
  /// sum, +inf for min, -inf for max).
  ReductionTree(Op op, std::size_t n);

  std::size_t size() const { return n_; }

  /// Sets every leaf; leaves beyond xs.size() are not allowed (xs must have
  /// exactly size() elements). O(n).
  void assign(std::span<const double> xs);

  /// Sets leaf i to x and recomputes its ancestors. O(log n).
  void update(std::size_t i, double x);

  /// Current value of leaf i. O(1).
  double leaf(std::size_t i) const;

  /// The reduction over all leaves. O(1).
  double root() const { return node_[1]; }

 private:
  double combine(double a, double b) const;
  double identity() const;

  Op op_;
  std::size_t n_ = 0;     // logical leaf count
  std::size_t base_ = 1;  // smallest power of two >= n_
  // 1-indexed complete binary tree: node_[1] is the root, leaves start at
  // node_[base_]; unused leaves hold the identity.
  std::vector<double> node_;
};

}  // namespace hdlts::util
