// A fixed-shape pairwise reduction over n doubles supporting O(log n)
// single-leaf updates with a bitwise-reproducibility guarantee: because every
// internal node is a deterministic function of its two children, updating a
// leaf and recomputing its ancestors yields *exactly* the same root as
// rebuilding the whole tree from the current leaves. That property is what
// lets the incremental HDLTS penalty-value maintenance be differentially
// checked, bit for bit, against a brute-force recompute (see core/pv.hpp).
//
// Floating-point caveat this class exists to solve: maintaining a running sum
// with `sum += new - old` drifts away from a fresh left-to-right sum, so an
// incremental scheduler using it could diverge from its reference on exact
// PV ties. The fixed reduction tree has no such drift by construction.
//
// The arithmetic lives in the span-based tree_ops free functions so that
// arena-backed trees (core/hdlts.cpp's compiled fast path carves node
// storage from a ScratchArena) and the owning ReductionTree class reduce
// through literally the same code — one source of truth for the FP op
// sequence the bitwise contract depends on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "hdlts/util/error.hpp"

namespace hdlts::util {

class ReductionTree {
 public:
  enum class Op { kSum, kMin, kMax };

  /// A tree over `n` leaves, all initialized to the op's identity (0 for
  /// sum, +inf for min, -inf for max).
  ReductionTree(Op op, std::size_t n);

  std::size_t size() const { return n_; }

  /// Sets every leaf; leaves beyond xs.size() are not allowed (xs must have
  /// exactly size() elements). O(n).
  void assign(std::span<const double> xs);

  /// Sets leaf i to x and recomputes its ancestors. O(log n).
  void update(std::size_t i, double x);

  /// Current value of leaf i. O(1).
  double leaf(std::size_t i) const;

  /// The reduction over all leaves. O(1).
  double root() const { return node_[1]; }

 private:
  Op op_;
  std::size_t n_ = 0;     // logical leaf count
  std::size_t base_ = 1;  // smallest power of two >= n_
  // 1-indexed complete binary tree: node_[1] is the root, leaves start at
  // node_[base_]; unused leaves hold the identity.
  std::vector<double> node_;
};

/// Span-based reduction-tree primitives over externally owned node storage.
/// `nodes` is the 1-indexed complete binary tree (size 2*base, nodes[0]
/// unused); leaves live at nodes[base + i]. Callers must fill_identity()
/// once before the first reduction so padding leaves hold the identity.
namespace tree_ops {

/// Smallest power of two >= n (n >= 1).
std::size_t base_for(std::size_t n);

double identity(ReductionTree::Op op);

inline double combine(ReductionTree::Op op, double a, double b) {
  switch (op) {
    case ReductionTree::Op::kSum:
      return a + b;
    case ReductionTree::Op::kMin:
      return std::min(a, b);
    case ReductionTree::Op::kMax:
      return std::max(a, b);
  }
  throw ContractViolation("unhandled ReductionTree::Op");
}

/// Fills all 2*base node slots with the op's identity.
void fill_identity(ReductionTree::Op op, std::span<double> nodes);

/// Recomputes every internal node from the current leaves. O(base).
void combine_up(ReductionTree::Op op, std::span<double> nodes,
                std::size_t base);

/// Copies xs into the first xs.size() leaves and recombines. Padding leaves
/// are untouched (they must already hold the identity). O(base).
void assign(ReductionTree::Op op, std::span<double> nodes, std::size_t base,
            std::span<const double> xs);

/// Sets leaf i and recomputes its ancestors. O(log base).
void update(ReductionTree::Op op, std::span<double> nodes, std::size_t base,
            std::size_t i, double x);

}  // namespace tree_ops

}  // namespace hdlts::util
